"""Experiment T1-2rel — Table 1, row "Two relations".

Paper claim: external-memory cost ``N1·N2/(MB)``, optimal (trivially,
via nested-loop join).  We sweep ``N`` on the cross-product worst case
and ``M``/``B`` at fixed ``N``; the measured I/O over the formula must
stay a bounded constant.
"""

from _util import print_table, run_em
from repro.analysis import two_relation_bound
from repro.core import nested_loop_join
from repro.query import line_query
from repro.workloads import schemas_for


def cross_instance(n):
    schemas = schemas_for(line_query(2))
    data = {"e1": [(i, 0) for i in range(n)],
            "e2": [(0, j) for j in range(n)]}
    return schemas, data


def runner(query, instance, emitter):
    nested_loop_join(instance["e1"], instance["e2"], emitter)


def sweep():
    rows = []
    q = line_query(2)
    for n, M, B in [(64, 16, 4), (128, 16, 4), (256, 16, 4),
                    (128, 8, 4), (128, 32, 4), (128, 16, 8)]:
        schemas, data = cross_instance(n)
        m = run_em(q, schemas, data, runner, M, B)
        bound = two_relation_bound(n, n, M, B)
        rows.append({"N1=N2": n, "M": M, "B": B, "io": m["io"],
                     "bound N1N2/MB": round(bound, 1),
                     "io/bound": m["io"] / bound,
                     "results": m["results"]})
    return rows


def test_two_relation_worst_case(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Table 1 / two relations: NLJ vs N1N2/(MB)", rows, capsys)
    # Shape: the ratio is a bounded constant across the whole sweep.
    ratios = [r["io/bound"] for r in rows]
    assert max(ratios) <= 4.0
    assert max(ratios) / min(ratios) <= 3.0
    # Every pair of the cross product is emitted.
    assert all(r["results"] == r["N1=N2"] ** 2 for r in rows)
