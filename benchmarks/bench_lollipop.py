"""Experiment E-lollipop — Section 7.2: lollipop joins.

Paper claim: Algorithm 2 is optimal on lollipops; which star to peel
first depends on ``N0`` vs ``N_n`` (core vs stick size).  We run both
peel directions (via the plan exploration) on the Section 7.2
worst-case constructions and check the best branch tracks the lower
bound across cases.
"""

from _util import best_branch, print_table
from repro.analysis import lower_bound
from repro.query import lollipop_query
from repro.workloads import lollipop_worstcase_instance


def sweep():
    rows = []
    M, B = 4, 2
    for case in ("petals", "ends"):
        for scale in (4, 8):
            q = lollipop_query(3)
            schemas, data = lollipop_worstcase_instance(q, case=case,
                                                        scale=scale)
            sizes = {e: len(t) for e, t in data.items()}
            q = q.with_sizes(sizes)
            m = best_branch(q, schemas, data, M, B, limit=24)
            lb = lower_bound(q, data, schemas, M, B) \
                + sum(sizes.values()) / B
            ios = "n/a"
            rows.append({"case": case, "scale": scale,
                         "N": tuple(sizes.values()),
                         "io": m["io"], "branches": m["branches"],
                         "io/lower": m["io"] / lb,
                         "results": m["results"]})
    return rows


def test_lollipop_optimality(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Section 7.2: lollipop worst cases, Algorithm 2 best "
                "branch", rows, capsys)
    for r in rows:
        assert r["io/lower"] <= 40
    # Shape: per case, the ratio grows at most Õ-slowly (the small
    # scales keep per-level sort constants visible) — no power-of-M
    # blow-up as the scale doubles.
    for case in ("petals", "ends"):
        fam = [r for r in rows if r["case"] == case]
        assert fam[-1]["io/lower"] <= 2.5 * fam[0]["io/lower"]
