"""Experiment T1-line3 — Table 1, row ``L3`` and Theorem 1.

Paper claim: Algorithm 1 computes the 3-relation line join in
``Õ(N1·N3/(MB))`` I/Os, versus the naive cascade's
``N1·N2·N3/(M²B)``.  Sweep the Figure 3 family and report measured
I/O against both formulas; Algorithm 1's ratio must stay flat while the
cascade formula over-predicts by a growing factor once ``N2`` grows.
"""

from _util import print_table, run_em
from repro.analysis import line3_bound, nested_loop_cascade_bound
from repro.core import line3_join
from repro.query import line_query
from repro.workloads import fig3_line3_instance


def widened_fig3(n, width):
    """Figure 3 plus `width` parallel light bridges (inflates N2)."""
    schemas, data = fig3_line3_instance(n, n)
    data["e1"] = data["e1"] + [(10_000 + i, 1 + i) for i in range(width)]
    data["e2"] = data["e2"] + [(1 + i, 1 + i) for i in range(width)]
    data["e3"] = data["e3"] + [(1 + i, 20_000) for i in range(width)]
    return schemas, data


def sweep():
    rows = []
    q = line_query(3)
    M, B = 8, 2
    for n, width in [(32, 0), (64, 0), (128, 0), (64, 64), (64, 128)]:
        schemas, data = widened_fig3(n, width)
        sizes = [len(data[e]) for e in ("e1", "e2", "e3")]
        m = run_em(q, schemas, data, line3_join, M, B)
        t1 = line3_bound(sizes[0], sizes[2], M, B, n2=sizes[1])
        cascade = nested_loop_cascade_bound(sizes, M, B)
        rows.append({"N1": sizes[0], "N2": sizes[1], "N3": sizes[2],
                     "io": m["io"], "thm1 N1N3/MB": round(t1, 1),
                     "io/thm1": m["io"] / t1,
                     "cascade N1N2N3/M2B": round(cascade, 1),
                     "results": m["results"]})
    return rows


def test_line3_theorem1(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Table 1 / L3: Algorithm 1 vs Theorem 1 bound", rows,
                capsys)
    ratios = [r["io/thm1"] for r in rows]
    assert max(ratios) <= 8.0
    assert max(ratios) / min(ratios) <= 3.0
    # Shape vs the strawman: once N2 is inflated, the cascade formula
    # exceeds Theorem 1's by a growing factor — the gap Algorithm 1
    # closes.
    wide = [r for r in rows if r["N2"] > 1]
    assert all(r["cascade N1N2N3/M2B"] > 2 * r["thm1 N1N3/MB"]
               for r in wide)
