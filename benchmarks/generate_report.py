#!/usr/bin/env python3
"""Regenerate the measured tables in EXPERIMENTS.md — and guard them.

Default mode runs every benchmark module's ``sweep()`` (the same
measurements the pytest harness asserts on) and prints the tables as
markdown, so EXPERIMENTS.md can be refreshed with
``python benchmarks/generate_report.py > measured.md`` and pasted.

Baseline modes pin the Table-1 counters (see ``_util.table1_baseline``
and ``repro.obs.baseline``)::

    # regenerate benchmarks/BENCH_table1.json after an intentional change
    python benchmarks/generate_report.py --write-baseline

    # CI: re-measure and fail (exit 1) on any I/O-count drift
    python benchmarks/generate_report.py --check-baseline \\
        --trace-summary-out trace_summary.json

Slope mode guards the *shape* of the cost curves rather than the raw
counts: it refits the hidden constants of the Table-1 bounds over the
standard sweeps (``repro.analysis.fitting``) and fails when any class's
measured I/O grows superlinearly in its bound::

    # CI: fail (exit 1) when a log-log slope exceeds 1 + eps
    python benchmarks/generate_report.py --check-slopes \\
        --fit-out fitted_constants.json
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

BASELINE_PATH = Path(__file__).parent / "BENCH_table1.json"

EXPERIMENTS = [
    ("T1-2rel", "bench_table1_two_relations", "sweep",
     "Table 1 / two relations"),
    ("T1-line3", "bench_table1_line3", "sweep", "Table 1 / L3 (Thm 1)"),
    ("T1-line4", "bench_table1_line4", "sweep", "Table 1 / L4"),
    ("T1-acyclic", "bench_table1_acyclic", "sweep",
     "Table 1 / general acyclic (Thm 2-3)"),
    ("T1-star", "bench_table1_star", "sweep",
     "Table 1 / star (Cor 1, Thm 4)"),
    ("T1-equal", "bench_table1_equal_sizes", "sweep",
     "Table 1 / equal sizes (Thm 7)"),
    ("F1", "bench_fig1_subjoin_vs_partial", "sweep",
     "Figure 1: subjoin vs partial join"),
    ("F3", "bench_fig3_lower_bound", "sweep",
     "Figure 3: the L3 lower bound"),
    ("G", "bench_gens_examples", "branch_costs",
     "GenS worked examples (L5 branches)"),
    ("E-L5", "bench_line5_unbalanced", "sweep",
     "Unbalanced L5 (Alg 4 crossover)"),
    ("E-L7", "bench_line7_unbalanced", "sweep",
     "Unbalanced L7 (Alg 5)"),
    ("E-yann", "bench_yannakakis_gap", "sweep",
     "Emit-model gap (Sec 1.2)"),
    ("E-lollipop", "bench_lollipop", "sweep", "Lollipop (Sec 7.2)"),
    ("E-dumbbell", "bench_dumbbell", "sweep", "Dumbbell (Sec 7.3)"),
    ("E-agm", "bench_agm_internal", "sweep",
     "AGM / internal column"),
    ("T1-triangle", "bench_table1_triangle", "sweep",
     "Table 1 / triangle C3"),
    ("T1-LW", "bench_table1_lw", "sweep", "Table 1 / LW_n"),
    ("M-scale", "bench_memory_scaling", "sweep",
     "I/O vs M (the 1/M law)"),
    ("O2-probe", "bench_instance_optimality_probe", "sweep",
     "Open problem 2 probe"),
    ("A-branch", "bench_ablation_strategies", "sweep",
     "Strategy ablation"),
    ("E-line-bal", "bench_line_balanced", "sweep",
     "Theorems 5-6 balanced lines"),
]


def markdown_table(rows) -> str:
    if not rows:
        return "(no rows)\n"
    cols = list(rows[0].keys())
    out = ["| " + " | ".join(str(c) for c in cols) + " |",
           "|" + "|".join("---" for _ in cols) + "|"]
    for r in rows:
        out.append("| " + " | ".join(_fmt(r[c]) for c in cols) + " |")
    return "\n".join(out) + "\n"


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


def _measure(trace_path: str | None) -> tuple[dict, dict]:
    """Measure all baseline classes; optionally dump tracer summaries."""
    from _util import table1_baseline

    summaries: dict = {}
    classes = table1_baseline(tracer_summaries=summaries)
    if trace_path:
        with open(trace_path, "w", encoding="utf-8") as fh:
            json.dump(summaries, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote tracer summaries for {len(summaries)} classes "
              f"to {trace_path}")
    return classes, summaries


def write_baseline_cmd(path: Path, trace_path: str | None) -> int:
    from repro.obs import write_baseline

    classes, _ = _measure(trace_path)
    write_baseline(path, classes, meta={
        "source": "benchmarks/generate_report.py --write-baseline",
        "classes": sorted(classes)})
    print(f"wrote baseline for {len(classes)} query classes to {path}")
    return 0


def check_baseline_cmd(path: Path, trace_path: str | None) -> int:
    from repro.obs import compare_baselines, load_baseline

    if not path.exists():
        print(f"error: no committed baseline at {path}; create one "
              f"with --write-baseline", file=sys.stderr)
        return 1
    committed = load_baseline(path)
    classes, _ = _measure(trace_path)
    drift = compare_baselines(committed, {"classes": classes})
    if drift:
        print(f"BASELINE DRIFT against {path} "
              f"({len(drift)} difference(s)):")
        for line in drift:
            print(f"  {line}")
        print("If the change is intentional, regenerate with "
              "--write-baseline and commit the result.")
        return 1
    print(f"baseline OK: {len(classes)} query classes match {path}")
    return 0


def _fit_all() -> list:
    from repro.analysis import FIT_CLASSES, fit_class

    return [fit_class(name) for name in sorted(FIT_CLASSES)]


def _fit_rows(fits) -> list[dict]:
    return [{"class": f.name, "bound": f.bound_name,
             "constant": f.constant, "slope": f.slope, "r2": f.r2,
             "dominant term": f.dominant_term,
             "regression": f.regression} for f in fits]


def _write_fits(path: str, fits) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"fits": [f.as_dict() for f in fits]}, fh, indent=2,
                  sort_keys=False)
        fh.write("\n")
    print(f"wrote fitted constants for {len(fits)} classes to {path}")


def check_slopes_cmd(fit_out: str | None) -> int:
    fits = _fit_all()
    if fit_out:
        _write_fits(fit_out, fits)
    bad = [f for f in fits if f.regression]
    for f in fits:
        flag = "REGRESSION" if f.regression else "ok"
        print(f"  {f.name}: constant={f.constant:.3f} "
              f"slope={f.slope:.3f} (eps={f.eps}) r2={f.r2:.4f} "
              f"dominant={f.dominant_term}  [{flag}]")
    if bad:
        print(f"SLOPE REGRESSION in {len(bad)} class(es): measured "
              f"I/O grows superlinearly in the fitted bound.")
        return 1
    print(f"slopes OK: {len(fits)} classes within 1+eps of linear")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate EXPERIMENTS.md tables or manage the "
                    "pinned Table-1 I/O baseline.")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write-baseline", action="store_true",
                      help="measure the Table-1 classes and (re)write "
                           "the pinned baseline JSON")
    mode.add_argument("--check-baseline", action="store_true",
                      help="re-measure and exit 1 on any drift against "
                           "the committed baseline")
    mode.add_argument("--check-slopes", action="store_true",
                      help="refit the Table-1 bound constants and exit "
                           "1 on any superlinear log-log slope")
    parser.add_argument("--baseline-path", type=Path,
                        default=BASELINE_PATH, metavar="PATH",
                        help=f"baseline file (default {BASELINE_PATH})")
    parser.add_argument("--trace-summary-out", metavar="PATH",
                        help="also write per-class tracer rollup "
                             "summaries to PATH (CI artifact)")
    parser.add_argument("--fit-out", metavar="PATH",
                        help="also write the full fit results (points, "
                             "term shares) to PATH (CI artifact)")
    args = parser.parse_args(argv)

    if args.write_baseline:
        return write_baseline_cmd(args.baseline_path,
                                  args.trace_summary_out)
    if args.check_baseline:
        return check_baseline_cmd(args.baseline_path,
                                  args.trace_summary_out)
    if args.check_slopes:
        return check_slopes_cmd(args.fit_out)

    for exp_id, module_name, fn_name, title in EXPERIMENTS:
        module = importlib.import_module(module_name)
        rows = getattr(module, fn_name)()
        print(f"### {exp_id} — {title}\n")
        print(markdown_table(rows))
    fits = _fit_all()
    if args.fit_out:
        _write_fits(args.fit_out, fits)
    print("### Fit — fitted constants of the Table 1 bounds\n")
    print(markdown_table(_fit_rows(fits)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
