#!/usr/bin/env python3
"""Regenerate the measured tables in EXPERIMENTS.md.

Runs every benchmark module's ``sweep()`` (the same measurements the
pytest harness asserts on) and prints the tables as markdown, so
EXPERIMENTS.md can be refreshed with
``python benchmarks/generate_report.py > measured.md`` and pasted.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

EXPERIMENTS = [
    ("T1-2rel", "bench_table1_two_relations", "sweep",
     "Table 1 / two relations"),
    ("T1-line3", "bench_table1_line3", "sweep", "Table 1 / L3 (Thm 1)"),
    ("T1-line4", "bench_table1_line4", "sweep", "Table 1 / L4"),
    ("T1-acyclic", "bench_table1_acyclic", "sweep",
     "Table 1 / general acyclic (Thm 2-3)"),
    ("T1-star", "bench_table1_star", "sweep",
     "Table 1 / star (Cor 1, Thm 4)"),
    ("T1-equal", "bench_table1_equal_sizes", "sweep",
     "Table 1 / equal sizes (Thm 7)"),
    ("F1", "bench_fig1_subjoin_vs_partial", "sweep",
     "Figure 1: subjoin vs partial join"),
    ("F3", "bench_fig3_lower_bound", "sweep",
     "Figure 3: the L3 lower bound"),
    ("G", "bench_gens_examples", "branch_costs",
     "GenS worked examples (L5 branches)"),
    ("E-L5", "bench_line5_unbalanced", "sweep",
     "Unbalanced L5 (Alg 4 crossover)"),
    ("E-L7", "bench_line7_unbalanced", "sweep",
     "Unbalanced L7 (Alg 5)"),
    ("E-yann", "bench_yannakakis_gap", "sweep",
     "Emit-model gap (Sec 1.2)"),
    ("E-lollipop", "bench_lollipop", "sweep", "Lollipop (Sec 7.2)"),
    ("E-dumbbell", "bench_dumbbell", "sweep", "Dumbbell (Sec 7.3)"),
    ("E-agm", "bench_agm_internal", "sweep",
     "AGM / internal column"),
    ("T1-triangle", "bench_table1_triangle", "sweep",
     "Table 1 / triangle C3"),
    ("T1-LW", "bench_table1_lw", "sweep", "Table 1 / LW_n"),
    ("M-scale", "bench_memory_scaling", "sweep",
     "I/O vs M (the 1/M law)"),
    ("O2-probe", "bench_instance_optimality_probe", "sweep",
     "Open problem 2 probe"),
    ("A-branch", "bench_ablation_strategies", "sweep",
     "Strategy ablation"),
    ("E-line-bal", "bench_line_balanced", "sweep",
     "Theorems 5-6 balanced lines"),
]


def markdown_table(rows) -> str:
    if not rows:
        return "(no rows)\n"
    cols = list(rows[0].keys())
    out = ["| " + " | ".join(str(c) for c in cols) + " |",
           "|" + "|".join("---" for _ in cols) + "|"]
    for r in rows:
        out.append("| " + " | ".join(_fmt(r[c]) for c in cols) + " |")
    return "\n".join(out) + "\n"


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


def main() -> None:
    for exp_id, module_name, fn_name, title in EXPERIMENTS:
        module = importlib.import_module(module_name)
        rows = getattr(module, fn_name)()
        print(f"### {exp_id} — {title}\n")
        print(markdown_table(rows))


if __name__ == "__main__":
    main()
