"""Experiment E-L7 — Section 6.3 / Appendix A.3: unbalanced ``L7``.

Paper claims: when the optimal cover is ``(1,1,0,1,0,1,1)`` the query
reduces to end nested-loops around Algorithm 4; when it is
``(1,0,1,0,1,0,1)`` with a broken balancing condition, Algorithm 5
(materialize ``R3⋈R4⋈R5``, then ``AcyclicJoin``) is optimal.  We build
instance families from the A.3 mapping constructions and compare
Algorithm 5 against Algorithm 2's best branch and the instance lower
bound.
"""

from _util import best_branch, print_table, run_em
from repro.analysis import lower_bound
from repro.core import line7_unbalanced_join, line_join_auto
from repro.query import line_query
from repro.query.lines import balanced_violations, line_cover
from repro.workloads import mapping_line_instance


def a3_case_instance(scale):
    """An A.3-style family with a broken middle balance condition.

    Sizes come out as ``(s, 2s, 2, 2s, s, s, s)``: the window
    ``N1·N3·N5 = 2s² < N2·N4 = 4s²`` breaks the middle balance the way
    the Appendix A.3 cases do, with mapping ends around cross-product
    middles.
    """
    s = scale
    return mapping_line_instance(
        [1, s, 2, 2, s, 1, s, 1],
        ["cross", "cross", "onto", "cross", "cross", "fanout", "onto"])


def sweep():
    rows = []
    M, B = 4, 2
    for scale in (4, 8):
        schemas, data = a3_case_instance(scale)
        sizes = [len(data[f"e{i}"]) for i in range(1, 8)]
        q = line_query(7, sizes)
        cover = line_cover(sizes)
        violations = balanced_violations(sizes)
        alg5 = run_em(q, schemas, data, line7_unbalanced_join, M, B)
        alg2 = best_branch(q, schemas, data, M, B, limit=6)
        assert alg5["results"] == alg2["results"]
        lb = lower_bound(q, data, schemas, M, B) + sum(sizes) / B
        rows.append({"scale": scale, "N": tuple(sizes),
                     "cover": cover,
                     "violations": len(violations),
                     "alg5 io": alg5["io"], "alg2 io": alg2["io"],
                     "alg5/lower": alg5["io"] / lb,
                     "alg2/lower": alg2["io"] / lb,
                     "results": alg5["results"]})
    return rows


def test_line7_unbalanced(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("L7 unbalanced: Algorithm 5 vs Algorithm 2", rows, capsys)
    for r in rows:
        # the family does break a balancing condition
        assert r["violations"] >= 1
        # Algorithm 5's optimality ratio stays modest
        assert r["alg5/lower"] <= 40
    # Shape: Algorithm 5's ratio does not grow with scale.
    assert rows[-1]["alg5/lower"] <= 1.8 * rows[0]["alg5/lower"]


def test_line_auto_dispatches_l7(benchmark, capsys):
    """The Section 6 dispatcher routes unbalanced L7 correctly."""

    def run():
        from repro import Device, Instance
        from repro.core import CountingEmitter

        schemas, data = a3_case_instance(4)
        sizes = [len(data[f"e{i}"]) for i in range(1, 8)]
        q = line_query(7, sizes)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        label = line_join_auto(q, inst, CountingEmitter())
        return [{"N": tuple(sizes), "label": label,
                 "io": device.stats.total}]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("L7 dispatch", rows, capsys)
    assert rows[0]["label"] in ("algorithm-5", "l7-double-nlj+algorithm-4",
                                "algorithm-2-best-branch")
