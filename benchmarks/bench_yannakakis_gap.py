"""Experiment E-yann — Section 1.2: the emit-model gap.

Paper claim: the external-memory port of Yannakakis' algorithm
(pairwise joins, materialized output, ``Õ(|Q(R)|/B)``) is worse than
the optimal algorithm by a factor up to ``M`` already for two
relations, and the gap grows as more relations join.  Sweep ``M`` on
cross-product and Figure 3 families and report the ratio.
"""

from _util import print_table, run_em
from repro.core import line3_join, sort_merge_join, yannakakis_em
from repro.query import line_query
from repro.workloads import fig3_line3_instance, schemas_for


def two_rel_runner(query, instance, emitter):
    sort_merge_join(instance["e1"], instance["e2"], emitter)


def sweep():
    rows = []
    B = 2
    n = 96
    # two relations, full cross product
    q2 = line_query(2)
    schemas2 = schemas_for(q2)
    data2 = {"e1": [(i, 0) for i in range(n)],
             "e2": [(0, j) for j in range(n)]}
    # L3, Figure 3
    q3 = line_query(3)
    schemas3, data3 = fig3_line3_instance(n, n)
    for M in (4, 8, 16, 32):
        opt2 = run_em(q2, schemas2, data2, two_rel_runner, M, B)
        base2 = run_em(q2, schemas2, data2, yannakakis_em, M, B,
                       reduce_first=False)
        opt3 = run_em(q3, schemas3, data3, line3_join, M, B)
        base3 = run_em(q3, schemas3, data3, yannakakis_em, M, B,
                       reduce_first=False)
        rows.append({"M": M,
                     "2rel opt": opt2["io"], "2rel yann": base2["io"],
                     "2rel gap": base2["io"] / opt2["io"],
                     "L3 opt": opt3["io"], "L3 yann": base3["io"],
                     "L3 gap": base3["io"] / opt3["io"]})
    return rows


def test_emit_model_gap(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Section 1.2: emit-model gap vs external Yannakakis",
                rows, capsys)
    # Shape 1: the baseline never wins.
    for r in rows:
        assert r["2rel gap"] >= 1.0
        assert r["L3 gap"] >= 1.0
    # Shape 2: the gap grows with M on both queries.
    gaps2 = [r["2rel gap"] for r in rows]
    gaps3 = [r["L3 gap"] for r in rows]
    assert gaps2[-1] > 1.5 * gaps2[0]
    assert gaps3[-1] > 1.5 * gaps3[0]
