"""Experiment F1-subjoin — Figure 1: subjoins vs partial joins.

The paper's Figure 1 illustrates, on an ``L3`` instance, that for a
*disconnected* subset ``S = {e1, e3}`` the subjoin (a cross product)
strictly contains the partial join, while for connected subsets the two
coincide on fully reduced instances.  This bench regenerates those
numbers on a parameterized family.
"""

from _util import print_table
from repro.analysis import partial_join_size, psi_partial, psi_subjoin, subjoin_size
from repro.query import line_query
from repro.workloads import mapping_line_instance


def sweep():
    rows = []
    q = line_query(3)
    M, B = 4, 2
    # k parallel chains: R1, R3 fan out, R2 is a matching -> partial
    # join on {e1,e3} only pairs endpoints of the *same* chain.
    for k, fan in [(2, 2), (4, 4), (8, 4)]:
        schemas, data = mapping_line_instance([k * fan, k, k, k * fan],
                                              ["onto", "one1", "fanout"])
        for subset in ({"e1", "e2"}, {"e2", "e3"}, {"e1", "e3"},
                       {"e1", "e2", "e3"}):
            sj = subjoin_size(q, data, schemas, subset)
            pj = partial_join_size(q, data, schemas, subset)
            rows.append({"chains": k, "fan": fan,
                         "S": "+".join(sorted(subset)),
                         "subjoin": sj, "partial": pj,
                         "Psi": psi_subjoin(q, data, schemas, subset,
                                            M, B),
                         "psi": psi_partial(q, data, schemas, subset,
                                            M, B)})
    return rows


def test_fig1_subjoin_vs_partial(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Figure 1: subjoin vs partial join on L3", rows, capsys)
    for r in rows:
        # partial join is a projection of the full join: never larger.
        assert r["partial"] <= r["subjoin"]
        assert r["psi"] <= r["Psi"] + 1e-9
        if r["S"] in ("e1+e2", "e2+e3", "e1+e2+e3"):
            # connected subsets coincide on fully reduced instances
            assert r["partial"] == r["subjoin"]
    # The Figure 1 phenomenon: strict gap on the disconnected subset.
    gaps = [r for r in rows if r["S"] == "e1+e3"]
    assert all(r["partial"] < r["subjoin"] for r in gaps)
