#!/usr/bin/env python3
"""Service throughput: the long-lived engine vs one-shot runs.

The service layer (``repro.server``) exists to amortize what a solo
``repro run`` pays per query: CSV parsing, instance materialization,
and — with the shared pool on — the base relations' physical reads.
This benchmark quantifies that on the Figure-3 line-3 workload
(``n1 = n3 = 16``, per-query machine ``M=8, B=2`` — the pinned
``line3_planner`` class of ``BENCH_table1.json``):

* **serial**: the CLI model.  Every query builds a fresh
  :class:`QueryService`, loads the CSVs, runs one-shot, and tears
  down.
* **service**: one engine, 48 queries dealt over persistent worker
  sessions at concurrency 1 / 4 / 16, shared pool off and on.

Reported per configuration: queries/sec and per-query wall p50/p99
(informational — they move with the host) plus the model-level
counters, which are *deterministic* and pinned in
``BENCH_service.json``:

* pool off, any concurrency: every query costs exactly the solo-run
  207 I/Os and 256 results — the byte-identity guarantee;
* pool on, any concurrency: the 17 base-relation pages miss exactly
  once service-wide, every other logical read hits, each query writes
  back its own 80 intermediate pages, and nothing is evicted
  (aggregates are schedule-independent because request ``i`` always
  runs on worker ``i mod c`` and frames are keyed by shared labels);
* flight recorder on (the default) vs off: identical counters — the
  recorder observes lifecycle records, it never charges the device.

CI gate (``--check-baseline``): the deterministic counters match the
committed baseline exactly, and the concurrency-16 pooled service
beats the serial model by more than 1 query/sec.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.query import line_query  # noqa: E402
from repro.server import QueryService  # noqa: E402
from repro.workloads import fig3_line3_instance  # noqa: E402

BASELINE_PATH = Path(__file__).parent / "BENCH_service.json"

N_QUERIES = 48
QUERY_M, QUERY_B = 8, 2  # the pinned line3_planner machine
GLOBAL_M = 256
POOL_FRAMES = 4096  # roomy: no evictions, so counters stay exact
CONCURRENCIES = (1, 4, 16)
#: Timing rounds per configuration; the best round is reported (the
#: deterministic counters must agree across rounds, and do).
REPEATS = 3


def _dataset():
    return fig3_line3_instance(16, 16)


def _write_csvs(tmpdir: Path) -> dict[str, str]:
    """The workload as CSV files (what the serial model re-parses)."""
    schemas, data = _dataset()
    tables = {}
    for rel, attrs in schemas.items():
        path = tmpdir / f"{rel}.csv"
        lines = [",".join(attrs)]
        lines += [",".join(str(v) for v in t) for t in data[rel]]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        tables[rel] = str(path)
    return tables


def _percentiles(walls_ms: list[float]) -> tuple[float, float]:
    qs = statistics.quantiles(walls_ms, n=100, method="inclusive")
    return qs[49], qs[98]  # p50, p99


def _timing_row(label: str, wall_s: float,
                walls_ms: list[float]) -> dict:
    p50, p99 = _percentiles(walls_ms)
    return {"config": label, "qps": round(N_QUERIES / wall_s, 1),
            "p50_ms": round(p50, 3), "p99_ms": round(p99, 3)}


def run_serial(tables: dict[str, str], pool: bool) -> tuple[dict, dict]:
    """The one-shot model: fresh engine + CSV load per query.

    With ``pool=True`` every query also rebuilds the (cold) shared
    pool, so each one re-faults the base pages the long-lived service
    faults exactly once — the serial leg of the speedup gate.
    """
    q = line_query(3)
    walls, io_totals, results = [], set(), set()
    t0 = time.perf_counter()
    for _ in range(N_QUERIES):
        svc = QueryService(M=GLOBAL_M, B=QUERY_B,
                           pool_frames=POOL_FRAMES if pool else 0)
        try:
            svc.load_tables("default", tables)
            r = svc.execute(q, M=QUERY_M)
        finally:
            svc.close()
        walls.append(r.wall_s * 1e3)
        io_totals.add(r.io["total"])
        results.add(r.results)
    wall = time.perf_counter() - t0
    det = {"per_query_io_totals": sorted(io_totals),
           "per_query_results": sorted(results)}
    label = f"serial one-shot pool={'on' if pool else 'off'}"
    return det, _timing_row(label, wall, walls)


def run_service(tables: dict[str, str], concurrency: int,
                pool: bool, flight: bool = True) -> tuple[dict, dict]:
    """One engine, N_QUERIES requests over persistent workers.

    ``flight=False`` switches the query flight recorder off — the
    recorder is an observer, so its setting must not move a counter.
    """
    q = line_query(3)
    svc = QueryService(M=GLOBAL_M, B=QUERY_B, default_query_M=QUERY_M,
                       pool_frames=POOL_FRAMES if pool else 0,
                       flight_records=256 if flight else 0,
                       workers=max(CONCURRENCIES))
    try:
        svc.load_tables("default", tables)
        requests = [{"query": q} for _ in range(N_QUERIES)]
        t0 = time.perf_counter()
        rs = svc.execute_batch(requests, concurrency=concurrency)
        wall = time.perf_counter() - t0
    finally:
        svc.close()
    walls = [r.wall_s * 1e3 for r in rs]
    det: dict = {"per_query_results": sorted({r.results for r in rs})}
    if pool:
        agg = {k: sum(r.cache[k] for r in rs)
               for k in ("hits", "misses", "evictions", "writebacks")}
        det["cache_aggregate"] = agg
        det["io_total"] = sum(r.io["total"] for r in rs)
    else:
        det["per_query_io_totals"] = sorted({r.io["total"] for r in rs})
    label = f"service c={concurrency} pool={'on' if pool else 'off'}"
    if not flight:
        label += " flight=off"
    return det, _timing_row(label, wall, walls)


def measure() -> dict:
    """All configurations; deterministic counters + timing rows."""
    def best(fn, *args):
        """Best-of-REPEATS wall clock; counters must not move."""
        runs = [fn(*args) for _ in range(REPEATS)]
        det = runs[0][0]
        assert all(d == det for d, _ in runs), runs
        return det, max((row for _, row in runs),
                        key=lambda row: row["qps"])

    with tempfile.TemporaryDirectory() as td:
        tables = _write_csvs(Path(td))
        serial_det, serial_t = best(run_serial, tables, False)
        serial_pool_det, serial_pool_t = best(run_serial, tables, True)
        timings = [serial_t, serial_pool_t]
        pool_off: dict[int, dict] = {}
        pool_on: dict[int, dict] = {}
        for c in CONCURRENCIES:
            for pool, bucket in ((False, pool_off), (True, pool_on)):
                det, row = best(run_service, tables, c, pool)
                bucket[c] = det
                timings.append(row)
        # Flight-recorder identity leg: same configuration with the
        # recorder off must reproduce the recorder-on counters exactly.
        flight_off_det, flight_off_row = best(
            run_service, tables, CONCURRENCIES[0], False, False)
        timings.append(flight_off_row)
    assert flight_off_det == pool_off[CONCURRENCIES[0]], (
        "flight recorder moved the deterministic counters",
        flight_off_det, pool_off[CONCURRENCIES[0]])
    # Pool-off counters and pooled aggregates are schedule-independent:
    # collapse across concurrency, failing loudly if they ever differ.
    assert all(pool_off[c] == pool_off[CONCURRENCIES[0]]
               for c in CONCURRENCIES), pool_off
    assert all(pool_on[c] == pool_on[CONCURRENCIES[0]]
               for c in CONCURRENCIES), pool_on
    return {
        "deterministic": {
            "machine": {"M": QUERY_M, "B": QUERY_B,
                        "global_M": GLOBAL_M,
                        "pool_frames": POOL_FRAMES},
            "n_queries": N_QUERIES,
            "serial": serial_det,
            "serial_pool_on": serial_pool_det,
            "service_pool_off": pool_off[CONCURRENCIES[0]],
            "service_pool_on": pool_on[CONCURRENCIES[0]],
        },
        "informational": {"timings": timings},
    }


def speedup_gate(doc: dict) -> tuple[float, float, bool]:
    """(qps_serial, qps_c16_pool_on, passed).

    Both legs run with the shared pool on, so the gate isolates what
    the service layer amortizes — engine construction, CSV parsing,
    materialization, cold-pool faults — from the pool's fixed
    bookkeeping cost, which both sides pay per page.
    """
    rows = {r["config"]: r["qps"]
            for r in doc["informational"]["timings"]}
    serial = rows["serial one-shot pool=on"]
    pooled = rows[f"service c={max(CONCURRENCIES)} pool=on"]
    return serial, pooled, pooled - serial > 1.0


def print_report(doc: dict) -> None:
    print("service throughput (line3, M=8 B=2 per query, "
          f"{N_QUERIES} queries):")
    for r in doc["informational"]["timings"]:
        print(f"  {r['config']:<28} {r['qps']:>8} qps   "
              f"p50 {r['p50_ms']:.2f} ms   p99 {r['p99_ms']:.2f} ms")
    det = doc["deterministic"]
    print(f"  pool-off per-query io: "
          f"{det['service_pool_off']['per_query_io_totals']} "
          f"(solo-run identical)")
    print(f"  pool-on aggregate cache: "
          f"{det['service_pool_on']['cache_aggregate']}")
    serial, pooled, ok = speedup_gate(doc)
    print(f"  speedup gate: {pooled} qps (c=16, pool on) vs "
          f"{serial} qps serial -> {'PASS' if ok else 'FAIL'}")


def write_baseline(path: Path, doc: dict) -> int:
    pinned = {
        "meta": {"source": "benchmarks/bench_service_throughput.py "
                           "--write-baseline",
                 "workload": "fig3 line3 n1=n3=16, line_query(3)"},
        "deterministic": doc["deterministic"],
        "informational": doc["informational"],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(pinned, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote service baseline to {path}")
    return 0


def check_baseline(path: Path, doc: dict) -> int:
    if not path.exists():
        print(f"error: no committed baseline at {path}; create one "
              f"with --write-baseline", file=sys.stderr)
        return 1
    committed = json.loads(path.read_text(encoding="utf-8"))
    drift = _diff(committed["deterministic"], doc["deterministic"])
    if drift:
        print(f"SERVICE BASELINE DRIFT against {path} "
              f"({len(drift)} difference(s)):")
        for line in drift:
            print(f"  {line}")
        print("If the change is intentional, regenerate with "
              "--write-baseline and commit the result.")
        return 1
    print(f"service baseline OK: deterministic counters match {path}")
    serial, pooled, ok = speedup_gate(doc)
    if not ok:
        print(f"SPEEDUP GATE FAILED: c=16 pooled service at {pooled} "
              f"qps does not beat serial {serial} qps by > 1")
        return 1
    print(f"speedup gate OK: {pooled} qps pooled vs {serial} qps serial")
    return 0


def _diff(want, got, prefix="deterministic") -> list[str]:
    out: list[str] = []
    if isinstance(want, dict) and isinstance(got, dict):
        for k in sorted(set(want) | set(got)):
            if k not in want:
                out.append(f"{prefix}.{k}: unexpected (not pinned)")
            elif k not in got:
                out.append(f"{prefix}.{k}: missing from measurement")
            else:
                out.extend(_diff(want[k], got[k], f"{prefix}.{k}"))
    elif want != got:
        out.append(f"{prefix}: pinned {want!r}, measured {got!r}")
    return out


def test_service_throughput(benchmark, capsys):
    doc = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print_report(doc)
    det = doc["deterministic"]
    # Byte-identity: every query through the service costs the solo run.
    assert det["service_pool_off"]["per_query_io_totals"] == [207]
    assert det["serial"]["per_query_io_totals"] == [207]
    assert det["service_pool_on"]["cache_aggregate"]["evictions"] == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Service-layer throughput benchmark and its "
                    "deterministic-counter baseline.")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write-baseline", action="store_true",
                      help="measure and (re)write BENCH_service.json")
    mode.add_argument("--check-baseline", action="store_true",
                      help="re-measure; exit 1 on counter drift or a "
                           "failed speedup gate")
    parser.add_argument("--baseline-path", type=Path,
                        default=BASELINE_PATH, metavar="PATH")
    args = parser.parse_args(argv)
    doc = measure()
    if args.write_baseline:
        return write_baseline(args.baseline_path, doc)
    if args.check_baseline:
        print_report(doc)
        return check_baseline(args.baseline_path, doc)
    print_report(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main())
