"""Experiment T1-line4 — Table 1, row ``L4``.

Paper claim (Section 4.1): the two peeling strategies cost
``Õ(N1·N3·N4/(M²B))`` and ``Õ(N1·N2·N4/(M²B))`` respectively; a smart
algorithm compares ``N2`` and ``N3`` and takes the minimum.  We build
cross-product families with a small ``N2`` (or ``N3``), run Algorithm 2
under the two end-peeling strategies, and verify the best branch
follows the smaller middle relation.
"""

from _util import print_table
from repro import Device, Instance
from repro.analysis import line4_bound
from repro.core import (CountingEmitter, acyclic_join, end_chooser)
from repro.query import line_query
from repro.workloads import cross_product_line_instance


def run_strategy(schemas, data, decisions, M, B):
    q = line_query(4)
    device = Device(M=M, B=B)
    inst = Instance.from_dicts(device, schemas, data)
    em = CountingEmitter()
    acyclic_join(q, inst, em, chooser=end_chooser(decisions))
    return device.stats.total, em.count


FAMILIES = [
    # domain vector z -> sizes N_i = z_i * z_{i+1}
    ("small N2", [8, 2, 1, 16, 1]),     # N = (16, 2, 16, 16)
    ("small N3", [1, 16, 1, 2, 8]),     # N = (16, 16, 2, 16)
    ("uniform", [4, 2, 2, 2, 4]),       # N = (8, 4, 4, 8)
]


def sweep():
    rows = []
    M, B = 4, 2
    for label, z in FAMILIES:
        schemas, data = cross_product_line_instance(z)
        sizes = [len(data[f"e{i}"]) for i in range(1, 5)]
        io_l, n_l = run_strategy(schemas, data, "L", M, B)
        io_r, n_r = run_strategy(schemas, data, "R", M, B)
        assert n_l == n_r
        bound = line4_bound(sizes, M, B)
        rows.append({"family": label, "N": tuple(sizes),
                     "io peel-left": io_l, "io peel-right": io_r,
                     "min/bound": min(io_l, io_r) / bound,
                     "results": n_l})
    return rows


def test_line4_strategy_choice(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Table 1 / L4: min(N1N3N4, N1N2N4)/(M2B) via peel choice",
                rows, capsys)
    by_family = {r["family"]: r for r in rows}
    # Shape 1: the smart choice follows the smaller middle relation.
    assert (by_family["small N2"]["io peel-right"]
            < by_family["small N2"]["io peel-left"])
    assert (by_family["small N3"]["io peel-left"]
            < by_family["small N3"]["io peel-right"])
    # Shape 2: the best strategy stays within a constant of the Table 1
    # formula on every family (small scale -> generous constant).
    assert all(r["min/bound"] <= 10.0 for r in rows)
