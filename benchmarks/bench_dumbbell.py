"""Experiment E-dumbbell — Section 7.3: dumbbell joins.

Paper claim: Algorithm 2 is optimal on dumbbells under condition (7)
``N_i · N_j ≥ N_0 · N_m`` (petal pairs against the two cores) — the
condition generalizing the ``L5`` balance.  We sweep constructions on
both sides of the condition and report the best branch against the
instance lower bound.
"""

from _util import best_branch, print_table
from repro.analysis import lower_bound
from repro.query import dumbbell_query
from repro.workloads import cross_product_instance


def build(scale, cores_big):
    """Cross-product dumbbell; big cores break condition (7)."""
    q = dumbbell_query(3, 6)
    dom = {a: 1 for a in q.attributes}
    # petal unique attributes get the scale
    for a in ("u1", "u2", "u4", "u5"):
        dom[a] = scale
    if cores_big:
        # widen both cores via their shared bar attributes
        dom["v3"] = 2
        dom["v4"] = 2
    schemas, data = cross_product_instance(q, dom)
    sizes = {e: len(t) for e, t in data.items()}
    return q.with_sizes(sizes), schemas, data


def condition7_holds(sizes):
    # petals e1,e2 (star one) vs e4,e5 (star two); cores e0, e6.
    return all(sizes[i] * sizes[j] >= sizes["e0"] * sizes["e6"]
               for i in ("e1", "e2") for j in ("e4", "e5"))


def sweep():
    rows = []
    M, B = 4, 2
    for cores_big in (False, True):
        for scale in (3, 6):
            q, schemas, data = build(scale, cores_big)
            sizes = {e: len(t) for e, t in data.items()}
            m = best_branch(q, schemas, data, M, B, limit=24)
            lb = lower_bound(q, data, schemas, M, B) \
                + sum(sizes.values()) / B
            rows.append({"cores": "big" if cores_big else "unit",
                         "scale": scale,
                         "cond(7)": condition7_holds(sizes),
                         "io": m["io"], "io/lower": m["io"] / lb,
                         "results": m["results"],
                         "branches": m["branches"]})
    return rows


def test_dumbbell_condition7(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Section 7.3: dumbbell, Algorithm 2 best branch", rows,
                capsys)
    holds = [r for r in rows if r["cond(7)"]]
    assert holds, "sweep must include condition-(7) instances"
    # Shape: where condition (7) holds, the ratio is bounded and flat.
    for r in holds:
        assert r["io/lower"] <= 60
    by_scale = {}
    for r in holds:
        by_scale.setdefault(r["cores"], []).append(r["io/lower"])
    for ratios in by_scale.values():
        if len(ratios) > 1:
            assert ratios[-1] <= 2.5 * ratios[0]
