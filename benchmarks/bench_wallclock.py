"""Wall-clock benchmark: block-at-a-time vs tuple-at-a-time execution.

The I/O counters of this repo are simulated and deterministic; wall
clock is the one axis where the columnar/block refactor must prove
itself.  This benchmark runs every rewritten cursor-bound operator at
sizes large enough for interpreter overhead to dominate, once with
``block_mode=True`` (the default block paths) and once with
``block_mode=False`` (the tuple-at-a-time reference paths), on the
same machine in the same process — so the ratio is machine-independent
even though the absolute seconds are not.

Two groups of cases:

* **gated** — operators whose cost is cursor overhead: sequential
  scans, group-boundary scans, filtered scans, light-chunk loads, and
  the semijoin merge pass.  These are what the block refactor targets;
  the CI gate holds their geo-mean speedup.
* **context** (``in_gate: false``) — end-to-end workloads (external
  sort, the full reducer, joins) whose wall clock mixes cursor work
  with costs block execution cannot remove: the Python merge heap,
  ``list.sort``, and the emit model's per-result dict+hash.  Reported
  for honesty about whole-query impact, not gated.

``--check-baseline`` (the CI gate) re-measures and fails if

- any case's I/O counters or result counts differ between the two
  modes (the byte-identity invariant, fully deterministic), or
- the geo-mean speedup over the gated cases falls below the committed
  ``gate_min_speedup`` (generous: far below the measured speedup, so
  scheduler noise cannot flake the gate, while a regression that
  loses the block advantage still fails).

Usage::

    python benchmarks/bench_wallclock.py                  # print table
    python benchmarks/bench_wallclock.py --write-baseline
    python benchmarks/bench_wallclock.py --check-baseline \
        --profile-out wallclock_spans.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
import time
from pathlib import Path

from _util import print_table  # noqa: E402 - benchmarks/ sibling import

from repro import Device, Instance
from repro.core import CountingEmitter
from repro.data.relation import Relation
from repro.data.schema import RelationSchema
from repro.em import external_sort
from repro.em.loaders import (group_boundaries, load_chunks,
                              load_light_chunks, scan_matching,
                              split_heavy_light)
from repro.obs.spans import SpanProfiler

BASELINE = Path(__file__).with_name("BENCH_wallclock.json")

#: The gate threshold committed into the baseline.  Measured speedups
#: are far higher (see BENCH_wallclock.json); the gate only has to
#: catch "the block paths stopped being faster", not defend the exact
#: factor against CPU scheduling noise.
GATE_MIN_SPEEDUP = 1.5


# -- cases -------------------------------------------------------------
#
# Each case is a (setup, run) pair: ``setup(device)`` builds the input
# files (untimed — writing the instance takes the same block fast path
# in both modes) and ``run(device, state)`` executes the measured
# workload, returning a result count.  Sizes are chosen so each
# tuple-at-a-time leg takes a noticeable fraction of a second — large
# enough to measure, small enough for CI.


def _fill(device, rows, name="src"):
    f = device.new_file(name)
    with f.writer() as w:
        w.extend(rows)
    return f


def _seq_scan_setup(device):
    return _fill(device, [(i, i * 3) for i in range(120_000)])


def _seq_scan(device, f):
    n = 0
    for chunk in load_chunks(f.whole(), device.M):
        n += len(chunk)
    return n


def _group_scan_setup(device):
    return _fill(device, [(i // 64, i) for i in range(120_000)])


def _group_scan(device, f):
    return len(group_boundaries(f.whole(), lambda t: t[0]))


def _filter_scan_setup(device):
    return _fill(device, [(i % 2048, i) for i in range(120_000)])


def _filter_scan(device, f):
    wanted = set(range(0, 2048, 3))
    return sum(1 for _ in scan_matching(f.whole(), lambda t: t[0],
                                        wanted))


def _light_loads_setup(device):
    return _fill(device, [(i // 8, i) for i in range(60_000)])


def _light_loads(device, f):
    groups = group_boundaries(f.whole(), lambda t: t[0])
    _, light = split_heavy_light(groups, device.M)
    n = 0
    for chunk in load_light_chunks(f.whole(), light, device.M):
        n += len(chunk)
    return n


def _semijoin_merge_setup(device):
    # Pre-sorted inputs so the measurement isolates the merge pass of
    # the reducer (sort_by is a no-op on them).
    n = 60_000
    left = Relation.from_tuples(device, RelationSchema("e1", ("v", "x")),
                                [(i, i * 3) for i in range(n)])
    right = Relation.from_tuples(device,
                                 RelationSchema("e2", ("v", "y")),
                                 [(i * 2, i) for i in range(n // 2)])
    return (dataclasses.replace(left, sorted_on="v"),
            dataclasses.replace(right, sorted_on="v"))


def _semijoin_merge(device, state):
    from repro.core.reducer_em import _semijoin_em

    left, right = state
    return len(_semijoin_em(left, right, "v"))


def _sort_setup(device):
    n = 60_000
    return _fill(device, [(i * 48271 % n, i) for i in range(n)])


def _sort(device, f):
    return len(external_sort(f, lambda t: t[0], name="sorted"))


def _reduce_setup(device):
    from repro.query import line_query
    from repro.workloads import schemas_for

    q = line_query(3)
    n = 30_000
    data = {"e1": [(i, i % 997) for i in range(n)],
            "e2": [(i % 997, i % 499) for i in range(n)],
            "e3": [(i % 499, i) for i in range(n)]}
    return q, Instance.from_dicts(device, schemas_for(q), data)


def _reduce(device, state):
    from repro.core.reducer_em import full_reduce_em

    q, instance = state
    reduced = full_reduce_em(q, instance)
    return sum(len(r) for r in reduced.values())


def _line3_setup(device):
    from repro.workloads import fig3_line3_instance

    schemas, data = fig3_line3_instance(192, 192)
    return Instance.from_dicts(device, schemas, data)


def _line3(device, instance):
    from repro.core import line3_join
    from repro.query import line_query

    emitter = CountingEmitter()
    line3_join(line_query(3), instance, emitter)
    return emitter.count


def wallclock_cases() -> dict:
    """Case name -> (setup, run, M, B, in_gate)."""
    return {
        "seq_scan_120k": (_seq_scan_setup, _seq_scan, 4096, 256, True),
        "group_scan_120k": (_group_scan_setup, _group_scan,
                            4096, 256, True),
        "filter_scan_120k": (_filter_scan_setup, _filter_scan,
                             4096, 256, True),
        "light_loads_60k": (_light_loads_setup, _light_loads,
                            4096, 256, True),
        "semijoin_merge_60k": (_semijoin_merge_setup, _semijoin_merge,
                               4096, 256, True),
        "sort_60k": (_sort_setup, _sort, 4096, 256, False),
        "reduce_line3_30k": (_reduce_setup, _reduce,
                             4096, 256, False),
        "line3_join_192": (_line3_setup, _line3, 64, 8, False),
    }


# -- measurement -------------------------------------------------------


def _run_once(setup, run, M: int, B: int, *, block_mode: bool,
              profiler: SpanProfiler | None = None) -> dict:
    device = Device(M=M, B=B, block_mode=block_mode, profiler=profiler)
    state = setup(device)
    device.stats.reset()
    t0 = time.perf_counter()
    results = run(device, state)
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "results": results,
            "reads": device.stats.reads, "writes": device.stats.writes}


def _operator_wall(profiler: SpanProfiler) -> dict[str, float]:
    """Exclusive wall seconds per span name (children subtracted)."""
    out: dict[str, float] = {}
    for span in profiler.iter_spans():
        if not span.closed:
            continue
        exclusive = span.wall_s - sum(c.wall_s for c in span.children
                                      if c.closed)
        out[span.name] = out.get(span.name, 0.0) + max(0.0, exclusive)
    return out


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def measure(repeat: int = 3) -> dict:
    """Measure all cases in both modes; return the baseline document."""
    cases = {}
    op_wall: dict[str, dict[str, float]] = {}
    for name, (setup, run, M, B, in_gate) in wallclock_cases().items():
        legs = {}
        for mode_name, block in (("scalar", False), ("block", True)):
            best = None
            best_profile: dict[str, float] = {}
            for _ in range(repeat):
                profiler = SpanProfiler()
                r = _run_once(setup, run, M, B, block_mode=block,
                              profiler=profiler)
                if best is None or r["wall_s"] < best["wall_s"]:
                    best = r
                    best_profile = _operator_wall(profiler)
            legs[mode_name] = best
            for op, secs in best_profile.items():
                op_wall.setdefault(op, {}).setdefault(mode_name, 0.0)
                op_wall[op][mode_name] += secs
        if (legs["scalar"]["results"] != legs["block"]["results"]
                or legs["scalar"]["reads"] != legs["block"]["reads"]
                or legs["scalar"]["writes"] != legs["block"]["writes"]):
            raise AssertionError(
                f"{name}: block mode changed deterministic counters: "
                f"scalar={legs['scalar']} block={legs['block']}")
        cases[name] = {
            "scalar_s": round(legs["scalar"]["wall_s"], 4),
            "block_s": round(legs["block"]["wall_s"], 4),
            "speedup": round(legs["scalar"]["wall_s"]
                             / legs["block"]["wall_s"], 2),
            "in_gate": in_gate,
            "io": legs["block"]["reads"] + legs["block"]["writes"],
            "results": legs["block"]["results"],
        }
    gated = [c["speedup"] for c in cases.values() if c["in_gate"]]
    operators = {
        op: {"scalar_s": round(w.get("scalar", 0.0), 4),
             "block_s": round(w.get("block", 0.0), 4),
             "speedup": (round(w["scalar"] / w["block"], 2)
                         if w.get("block", 0.0) > 1e-9
                         and "scalar" in w else None)}
        for op, w in sorted(op_wall.items())}
    return {
        "meta": {
            "source": "benchmarks/bench_wallclock.py",
            "note": ("absolute seconds are machine-dependent; the "
                     "gate checks the block/scalar ratio measured on "
                     "one machine in one process, over the in_gate "
                     "cases only (end-to-end cases are context)"),
            "repeat": repeat,
        },
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "geomean_speedup": round(_geomean(gated), 2),
        "geomean_all": round(_geomean(
            [c["speedup"] for c in cases.values()]), 2),
        "cases": cases,
        "operators": operators,
    }


# -- CLI ---------------------------------------------------------------


def _rows(doc: dict) -> list[dict]:
    return [{"case": name, **vals} for name, vals in
            sorted(doc["cases"].items())]


def check_baseline_cmd(doc: dict) -> int:
    if not BASELINE.exists():
        print(f"error: no committed baseline at {BASELINE}; create "
              f"one with --write-baseline", file=sys.stderr)
        return 1
    committed = json.loads(BASELINE.read_text(encoding="utf-8"))
    gate = committed.get("gate_min_speedup", GATE_MIN_SPEEDUP)
    failures = []
    missing = set(committed["cases"]) - set(doc["cases"])
    if missing:
        failures.append(f"cases vanished from the sweep: "
                        f"{sorted(missing)}")
    for name, vals in doc["cases"].items():
        pinned = committed["cases"].get(name)
        if pinned is None:
            continue  # a new case is fine until pinned
        for k in ("io", "results"):
            if vals[k] != pinned[k]:
                failures.append(
                    f"{name}.{k}: {pinned[k]} -> {vals[k]} "
                    f"(deterministic counter drifted)")
    if doc["geomean_speedup"] < gate:
        failures.append(
            f"gated geo-mean block speedup "
            f"{doc['geomean_speedup']:.2f}x fell below the gate "
            f"{gate:.2f}x (committed measurement: "
            f"{committed['geomean_speedup']:.2f}x)")
    if failures:
        print(f"WALL-CLOCK GATE FAILED against {BASELINE} "
              f"({len(failures)} problem(s)):")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"wall-clock gate OK: gated geo-mean speedup "
          f"{doc['geomean_speedup']:.2f}x >= {gate:.2f}x, "
          f"{len(doc['cases'])} cases' counters match {BASELINE}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--write-baseline", action="store_true",
                      help=f"measure and write {BASELINE.name}")
    mode.add_argument("--check-baseline", action="store_true",
                      help="measure and gate against the committed "
                           "baseline (ratio + deterministic counters)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing repetitions per leg (min wins)")
    parser.add_argument("--profile-out", default=None,
                        help="write the per-operator wall-clock "
                             "breakdown to this JSON file (CI artifact)")
    args = parser.parse_args(argv)

    doc = measure(repeat=args.repeat)
    print_table("block vs tuple-at-a-time wall clock", _rows(doc))
    print(f"\ngeo-mean speedup: {doc['geomean_speedup']:.2f}x gated "
          f"(gate: >= {doc['gate_min_speedup']:.2f}x), "
          f"{doc['geomean_all']:.2f}x over all cases")

    if args.profile_out:
        with open(args.profile_out, "w", encoding="utf-8") as fh:
            json.dump({"operators": doc["operators"],
                       "meta": doc["meta"]}, fh, indent=1,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote per-operator profile to {args.profile_out}")

    if args.write_baseline:
        BASELINE.write_text(
            json.dumps(doc, indent=1, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"wrote wall-clock baseline to {BASELINE}")
        return 0
    if args.check_baseline:
        return check_baseline_cmd(doc)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
