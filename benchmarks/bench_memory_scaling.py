"""Experiment M-scale — the ``1/M`` law behind Table 1's denominators.

Every external-memory bound in Table 1 divides the internal-memory
quantity by powers of ``M`` (each block read combines with the
``O(M^{k})`` partial tuples resident in memory).  Fixing the instance
and sweeping ``M`` makes that law directly visible: Algorithm 1 on the
Figure 3 family must scale like ``1/M``, the star worst case like
``1/M^{k-1}``, while the materializing baseline barely moves.
"""

from _util import best_branch, print_table, run_em
from repro.core import line3_join, yannakakis_em
from repro.query import line_query, star_query
from repro.workloads import fig3_line3_instance, star_worstcase_instance


def sweep():
    rows = []
    B = 2
    n = 96
    schemas3, data3 = fig3_line3_instance(n, n)
    schemas_s, data_s = star_worstcase_instance([24, 24])
    for M in (4, 8, 16, 32):
        alg1 = run_em(line_query(3), schemas3, data3, line3_join, M, B)
        base = run_em(line_query(3), schemas3, data3, yannakakis_em, M,
                      B, reduce_first=False)
        star = best_branch(star_query(2), schemas_s, data_s, M, B,
                           limit=4)
        rows.append({"M": M, "L3 alg1 io": alg1["io"],
                     "L3 yann io": base["io"],
                     "star alg2 io": star["io"]})
    return rows


def test_memory_scaling(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("I/O vs M at fixed N (the 1/M law)", rows, capsys)
    # Shape 1: Algorithm 1's cost falls markedly as M grows (the N²/M
    # term dominates at this N).
    alg1 = [r["L3 alg1 io"] for r in rows]
    assert alg1[-1] * 2.5 < alg1[0]
    # Shape 2: so does Algorithm 2 on the star family.
    star = [r["star alg2 io"] for r in rows]
    assert star[-1] * 2 < star[0]
    # Shape 3: the materializing baseline's |Q|/B write bill does not
    # shrink with M — its relative improvement is much smaller.
    base = [r["L3 yann io"] for r in rows]
    assert base[0] / base[-1] < alg1[0] / alg1[-1]
