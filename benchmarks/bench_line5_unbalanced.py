"""Experiment E-L5 — Section 6.3: the unbalanced 5-relation line join.

Paper claims: (a) on *balanced* ``L5`` Algorithm 2 is optimal
(Theorem 5); (b) when ``N1·N3·N5 < N2·N4`` the lower bound drops and
Algorithm 4 achieves it while Algorithm 2 does not.  Sweep the
imbalance and report both algorithms against the instance lower bound;
the crossover — Algorithm 4 overtaking Algorithm 2 — is the headline
shape.
"""

from _util import best_branch, print_table, run_em
from repro.analysis import lower_bound
from repro.core import line5_unbalanced_join
from repro.query.lines import is_balanced
from repro.workloads import l5_for_regime


def sweep():
    rows = []
    M, B = 4, 2
    for balanced, scale in [(True, 6), (True, 10),
                            (False, 12), (False, 24), (False, 36)]:
        q, schemas, data = l5_for_regime(scale, balanced=balanced)
        sizes = [len(data[f"e{i}"]) for i in range(1, 6)]
        lb = lower_bound(q, data, schemas, M, B) \
            + sum(sizes) / B                      # linear term
        alg2 = best_branch(q, schemas, data, M, B, limit=16)
        alg4 = run_em(q, schemas, data, line5_unbalanced_join, M, B)
        assert alg2["results"] == alg4["results"]
        rows.append({"regime": "balanced" if balanced else "unbalanced",
                     "N": tuple(sizes),
                     "balanced?": is_balanced(sizes),
                     "alg2 io": alg2["io"], "alg4 io": alg4["io"],
                     "alg2/lower": alg2["io"] / lb,
                     "alg4/lower": alg4["io"] / lb})
    return rows


def test_line5_unbalanced_crossover(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("L5: Algorithm 2 vs Algorithm 4 across balancedness",
                rows, capsys)
    unbal = [r for r in rows if r["regime"] == "unbalanced"]
    bal = [r for r in rows if r["regime"] == "balanced"]
    # Shape 1: on the unbalanced family Algorithm 4 wins.
    assert all(r["alg4 io"] < r["alg2 io"] for r in unbal)
    # Shape 2: Algorithm 4's optimality ratio stays flat with scale,
    # Algorithm 2's grows.
    assert unbal[-1]["alg4/lower"] <= 1.6 * unbal[0]["alg4/lower"]
    assert unbal[-1]["alg2/lower"] > unbal[0]["alg2/lower"]
    # Shape 3: on balanced instances Algorithm 2 stays near the bound
    # (the drift between scales is Õ's hidden log, not a power of M).
    assert all(r["alg2/lower"] <= 24 for r in bal)
    assert bal[-1]["alg2/lower"] <= 1.6 * bal[0]["alg2/lower"]
