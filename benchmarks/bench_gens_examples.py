"""Experiment G-L3/L4/L5 — the Section 4.2 worked GenS examples.

Regenerates, structurally, the paper's three worked examples: the
``L3`` collection of equation (4), the two ``L4`` peel strategies, and
the ``L5`` branches (the paper's ``S1..S4``).  Branch quality is
compared the way the paper does — "in terms of the worst case" — by
evaluating ``max_S max_R Ψ(R, S)`` per branch from the size vector:
two of the four ``L5`` strategies must come out strictly better.
"""

from _util import print_table
from repro.analysis import worst_case_branch_bound, worst_case_psi
from repro.query import gens_all, line_query


# Sizes with N2·N4 > N1·N3 so the S1/S4-only triples {e2,e4,e5} /
# {e1,e2,e4} dominate the common {e1,e3,e5}.
L5_SIZES = [4, 16, 4, 16, 16]
M, B = 4, 2


def branch_costs():
    q = line_query(5, L5_SIZES)
    rows = []
    for i, branch in enumerate(sorted(gens_all(q),
                                      key=lambda b: sorted(map(sorted, b)))):
        worst_s, worst = max(
            ((s, worst_case_psi(q, s, M, B)) for s in branch if s),
            key=lambda p: p[1])
        rows.append({"branch": i, "collection size": len(branch),
                     "worst-case bound": round(worst, 1),
                     "arg max": "+".join(sorted(worst_s))})
    return rows


def test_gens_worked_examples(benchmark, capsys):
    rows = benchmark.pedantic(branch_costs, rounds=1, iterations=1)
    print_table(f"GenS on L5 (sizes {L5_SIZES}): per-branch worst-case "
                "bound", rows, capsys)

    def fs(*names):
        return frozenset(names)

    # Equation (4): the L3 collection is exactly all subsets but the
    # full one.
    eq4 = {fs("e1", "e3"), fs("e2", "e3"), fs("e1", "e2"), fs("e1"),
           fs("e2"), fs("e3"), frozenset()}
    assert frozenset(eq4) in gens_all(line_query(3))

    # L4: both strategies exist and differ by their surviving triple.
    l4 = gens_all(line_query(4))
    assert any(fs("e1", "e3", "e4") in b and fs("e1", "e2", "e4") not in b
               for b in l4)
    assert any(fs("e1", "e2", "e4") in b and fs("e1", "e3", "e4") not in b
               for b in l4)

    # L5: every branch carries {e1,e3,e5}; the four strategies split —
    # "two of the four peeling strategies are better than the others".
    for b in gens_all(line_query(5)):
        assert fs("e1", "e3", "e5") in b
    costs = sorted(r["worst-case bound"] for r in rows)
    assert costs[0] < costs[-1]
    worst_rows = [r for r in rows
                  if r["worst-case bound"] == costs[-1]]
    # The worse branches are pinned on an e2/e4 triple.
    assert all(set(r["arg max"].split("+")) & {"e2", "e4"}
               for r in worst_rows)
    assert all(len(r["arg max"].split("+")) == 3 for r in worst_rows)
