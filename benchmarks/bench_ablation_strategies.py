"""Experiment A-branch — strategy ablation for Algorithm 2's choice.

Compares four ways of resolving the nondeterministic leaf pick on the
same instances: first-leaf (naive), smallest-leaf (greedy), the paper's
guided rule where one exists (Section 7.2), and best-branch exploration
(the round-robin guarantee).  The ordering best ≤ guided/greedy ≤ naive
is the design-choice evidence DESIGN.md's ablation row calls for.
"""

from _util import print_table
from repro import Device, Instance
from repro.core import (CountingEmitter, acyclic_join, acyclic_join_best,
                        first_leaf_chooser, smallest_leaf_chooser)
from repro.core.guided import lollipop_paper_chooser
from repro.query import line_query, lollipop_query
from repro.workloads import (cross_product_line_instance,
                             lollipop_worstcase_instance)


def run_with(q, schemas, data, chooser):
    device = Device(M=4, B=2)
    inst = Instance.from_dicts(device, schemas, data)
    em = CountingEmitter()
    acyclic_join(q, inst, em, chooser=chooser)
    return device.stats.total, em.count


def sweep():
    rows = []

    # Asymmetric L4: peel order matters a lot.
    schemas, data = cross_product_line_instance([8, 2, 1, 16, 1])
    q = line_query(4)
    io_first, n1 = run_with(q, schemas, data, first_leaf_chooser)
    io_small, n2 = run_with(q, schemas, data, smallest_leaf_chooser)
    device = Device(M=4, B=2)
    inst = Instance.from_dicts(device, schemas, data)
    best = acyclic_join_best(q, inst)
    assert n1 == n2 == best.best.emitted
    rows.append({"query": "L4 asymmetric", "first-leaf": io_first,
                 "greedy": io_small, "guided": "n/a",
                 "best-branch": best.io,
                 "branches": len(best.runs)})

    # Lollipop worst case: the paper's own rule applies.
    q = lollipop_query(3)
    schemas, data = lollipop_worstcase_instance(q, case="petals",
                                                scale=6)
    io_first, n1 = run_with(q, schemas, data, first_leaf_chooser)
    io_small, _ = run_with(q, schemas, data, smallest_leaf_chooser)
    device = Device(M=4, B=2)
    inst = Instance.from_dicts(device, schemas, data)
    io_guided, _ = run_with(q, schemas, data,
                            lollipop_paper_chooser(q, inst))
    device = Device(M=4, B=2)
    inst = Instance.from_dicts(device, schemas, data)
    best = acyclic_join_best(q, inst, limit=24)
    rows.append({"query": "lollipop worst-case", "first-leaf": io_first,
                 "greedy": io_small, "guided": io_guided,
                 "best-branch": best.io,
                 "branches": len(best.runs)})
    return rows


def test_strategy_ablation(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Ablation: leaf-choice strategies for Algorithm 2",
                rows, capsys)
    for r in rows:
        # Exploration never loses.
        assert r["best-branch"] <= r["first-leaf"]
        assert r["best-branch"] <= r["greedy"]
        if r["guided"] != "n/a":
            # The paper's guided rule lands within 2x of the best
            # branch at a single run's cost.
            assert r["guided"] <= 2.0 * r["best-branch"]