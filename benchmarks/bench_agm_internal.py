"""Experiment E-agm — Table 1's internal-memory column.

Paper context (Section 2.2.1): the AGM bound
``max_R |Q(R)| = min_x ∏ N(e)^{x(e)}`` with integral optimal covers on
acyclic queries (Lemma 2), attained by the generic worst-case-optimal
join.  We regenerate the internal column: per query class, the AGM
formula, a worst-case instance attaining it, and the generic join's
output/work.
"""

from _util import print_table
from repro.internal import generic_join
from repro.query import agm_bound, line_query, star_query
from repro.workloads import (cross_product_line_instance,
                             star_worstcase_instance)


def sweep():
    rows = []
    # Lines: AGM = product over the alternating cover.
    for z, label in [([4, 1, 4, 1], "L3"),
                     ([3, 1, 3, 1, 3, 1], "L5")]:
        schemas, data = cross_product_line_instance(z)
        n = len(z) - 1
        sizes = {f"e{i}": len(data[f"e{i}"]) for i in range(1, n + 1)}
        q = line_query(n, [sizes[f"e{i}"] for i in range(1, n + 1)])
        agm = agm_bound(q)
        out = generic_join(q, data, schemas)
        rows.append({"query": label, "sizes": tuple(sizes.values()),
                     "AGM": round(agm, 1), "|Q(R)|": len(out),
                     "attained": len(out) == round(agm)})
    # Stars: AGM = product of the petals.
    for k, n in [(2, 6), (3, 4)]:
        schemas, data = star_worstcase_instance([n] * k)
        sizes = {e: len(t) for e, t in data.items()}
        q = star_query(k, [sizes["e0"]] + [n] * k)
        agm = agm_bound(q)
        out = generic_join(q, data, schemas)
        rows.append({"query": f"star{k}", "sizes": tuple(sizes.values()),
                     "AGM": round(agm, 1), "|Q(R)|": len(out),
                     "attained": len(out) == round(agm)})
    return rows


def test_agm_internal_column(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Table 1 internal column: AGM bound attained", rows,
                capsys)
    # Shape: the constructions attain the AGM bound exactly, and no
    # instance exceeds it.
    for r in rows:
        assert r["|Q(R)|"] <= r["AGM"] + 1e-6
        assert r["attained"]
