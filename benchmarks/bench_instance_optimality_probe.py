"""Experiment O2 — probing the paper's open problem 2.

Section 8, open problem 2: Yannakakis' algorithm is *instance* optimal
in internal memory; the authors conjecture no external-memory
equivalent exists even on 3 relations.  The natural instance target is
``Θ(N/B + |Q(R)|/(MB))``.  This probe runs Algorithm 1 (worst-case
optimal) on an instance family whose output is tiny while its partial
joins stay large: the measured cost divided by the *instance* target
grows with the family parameter — evidence in the conjecture's
direction (the worst-case-optimal algorithm is demonstrably not
instance optimal; whether *some* algorithm could be remains open).
"""

from _util import print_table, run_em
from repro.core import line3_join
from repro.query import line_query
from repro.workloads import mapping_line_instance


def family(k):
    """k parallel chains with fan-out ends but a perfect-matching core.

    ``R2`` is a k-matching, so the output is only ``k·fan²`` while the
    subjoin/partial join on ``{e1, e3}`` is ``(k·fan)²``-ish — the
    structure that separates worst-case cost from instance cost.
    """
    fan = 4
    schemas, data = mapping_line_instance(
        [k * fan, k, k, k * fan], ["onto", "one1", "fanout"])
    return schemas, data


def sweep():
    rows = []
    M, B = 4, 2
    q = line_query(3)
    for k in (4, 8, 16):
        schemas, data = family(k)
        m = run_em(q, schemas, data, line3_join, M, B)
        n_total = sum(len(t) for t in data.values())
        instance_target = n_total / B + m["results"] / (M * B)
        rows.append({"k": k, "inputs": n_total,
                     "results": m["results"], "io": m["io"],
                     "instance target": round(instance_target, 1),
                     "io/target": m["io"] / instance_target})
    return rows


def test_instance_optimality_probe(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Open problem 2 probe: worst-case-optimal vs the "
                "instance target", rows, capsys)
    # The worst-case-optimal algorithm is NOT instance optimal: its
    # ratio to the instance target must not stay constant.  (A constant
    # ratio here would actually *refute* the probe, not the paper.)
    ratios = [r["io/target"] for r in rows]
    assert all(r >= 0.9 for r in ratios)
    assert ratios[-1] > 1.15 * ratios[0]
