"""Experiment E-line-bal — Theorems 5 and 6: balanced line joins.

Paper claims: on a balanced odd line join Algorithm 2 is optimal with
cost ``max_S ∏_{e∈S} N(e) / (M^{|S|-1}B)`` over independent subsets
(Corollary 2); on an even line with a balanced split at odd ``k`` the
same holds with the pair ``e_k, e_{k+1}`` additionally allowed
(Theorem 6).  Sweep Theorem 5's cross-product construction and check
the measured best branch stays a flat factor above the Corollary 2
formula, which in turn matches the instance lower bound.
"""

from _util import best_branch, print_table
from repro.analysis import line_independent_bound, lower_bound
from repro.query import line_query
from repro.query.lines import balanced_split, is_balanced
from repro.workloads import balanced_line_sizes, cross_product_line_instance


def sweep():
    rows = []
    M, B = 4, 2
    cases = [
        ("L5", [3, 1, 3, 1, 3, 1], None),
        ("L5", [4, 1, 4, 1, 4, 1], None),
        ("L7", [3, 1, 3, 1, 3, 1, 3, 1], None),
        ("L4 split", [4, 1, 4, 1, 4], 1),        # interior z=1: Thm 6
        ("L6 split", [3, 1, 3, 1, 3, 1, 3], 1),
    ]
    for label, z, pair in cases:
        schemas, data = cross_product_line_instance(z)
        sizes = balanced_line_sizes(z)
        n = len(sizes)
        q = line_query(n, sizes)
        if n % 2 == 1:
            assert is_balanced(sizes)
        else:
            assert balanced_split(sizes) is not None
        m = best_branch(q, schemas, data, M, B, limit=12)
        bound = line_independent_bound(sizes, M, B,
                                       allow_adjacent_pair=pair)
        lb = lower_bound(q, data, schemas, M, B) + sum(sizes) / B
        rows.append({"case": label, "N": tuple(sizes), "io": m["io"],
                     "corollary2": round(bound, 1),
                     "io/corollary2": m["io"] / bound,
                     "corollary2/lower": bound / lb,
                     "results": m["results"]})
    return rows


def test_balanced_lines(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Theorems 5-6: balanced lines vs Corollary 2", rows,
                capsys)
    for r in rows:
        # measured within a modest constant of the formula...
        assert r["io/corollary2"] <= 14
        # ...and the formula itself meets the instance lower bound up
        # to a small constant (the optimality pairing).
        assert r["corollary2/lower"] <= 4
    # flat ratio across the two L5 scales
    l5 = [r["io/corollary2"] for r in rows if r["case"] == "L5"]
    assert max(l5) / min(l5) <= 2.0
