"""Experiment F3-lower — Figure 3: the L3 lower-bound instance.

Figure 3 realizes ``ψ(R, {e1, e3}) = N1·N3/(MB)``: every ``R1`` tuple
joins every ``R3`` tuple through one bridge tuple.  The bench verifies
the lower-bound arithmetic and that Algorithm 1 matches it within a
constant while the measured cost of *any* algorithm cannot beat it.
"""

from _util import print_table, run_em
from repro.analysis import dominant_subsets, lower_bound
from repro.core import line3_join, yannakakis_em
from repro.query import line_query
from repro.workloads import fig3_line3_instance


def sweep():
    rows = []
    q = line_query(3)
    M, B = 8, 2
    for n in (32, 64, 128):
        schemas, data = fig3_line3_instance(n, n)
        lb = lower_bound(q, data, schemas, M, B)
        top = dominant_subsets(q, data, schemas, M, B, top=1)[0]
        alg1 = run_em(q, schemas, data, line3_join, M, B)
        base = run_em(q, schemas, data, yannakakis_em, M, B,
                      reduce_first=False)
        rows.append({"N1=N3": n, "psi lower": round(lb, 1),
                     "arg max": "+".join(sorted(top[0])),
                     "alg1 io": alg1["io"],
                     "alg1/lower": alg1["io"] / lb,
                     "yann-em io": base["io"],
                     "yann/lower": base["io"] / lb})
    return rows


def test_fig3_lower_bound(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Figure 3: psi({e1,e3}) = N1*N3/(MB) lower bound", rows,
                capsys)
    for r in rows:
        n = r["N1=N3"]
        # the dominating partial join is exactly {e1, e3} at n²/(MB)
        assert r["arg max"] == "e1+e3"
        assert abs(r["psi lower"] - n * n / (8 * 2)) < 1e-6
        # no algorithm can beat the lower bound; Algorithm 1 tracks it
        assert r["alg1 io"] >= r["psi lower"] * 0.9
        assert r["alg1/lower"] <= 8
        # the materializing baseline drifts further above it
        assert r["yann/lower"] > r["alg1/lower"]
