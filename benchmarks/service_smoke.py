#!/usr/bin/env python3
"""CI smoke test for ``repro serve``: the real process, real sockets.

The in-process service tests (``tests/test_server.py``) cover the
engine; this script covers the last mile CI cannot see from there —
the console entry point, argument parsing, the banner, and the HTTP
surface under concurrent clients:

1. write a small line-3 dataset as CSVs;
2. start ``python -m repro serve --port 0`` as a subprocess and read
   the bound port off the banner;
3. fire concurrent ``POST /query`` requests (mixed sticky sessions and
   one-shots) and check every response;
4. scrape ``/metrics`` and assert the service counters saw the
   queries, and ``/healthz`` reports live;
5. shut the process down and fail on a non-clean exit.

Exit status 0 on success; any assertion or timeout fails the job.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

N_CLIENTS = 8
QUERIES_PER_CLIENT = 6


def write_dataset(tmpdir: Path) -> list[str]:
    sys.path.insert(0, str(Path(__file__).parent))
    from bench_service_throughput import _write_csvs

    tables = _write_csvs(tmpdir)
    args = []
    for rel, path in sorted(tables.items()):
        args += ["--table", f"{rel}={path}"]
    return args


def start_server(table_args: list[str]) -> tuple[subprocess.Popen, int]:
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "-M", "256", "-B", "2", "--pool-frames", "2048",
         *table_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 30
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise AssertionError("serve exited before binding")
        print(f"serve> {line.rstrip()}")
        m = re.search(r"http://[\d.]+:(\d+)", line)
        if m:
            return proc, int(m.group(1))
    raise AssertionError("serve never printed its listening banner")


def post_query(base: str, client: int, i: int) -> dict:
    body = {"query": "e1(v1,v2), e2(v2,v3), e3(v3,v4)",
            "M": 8, "B": 2}
    if client % 2 == 0:  # half the clients keep a sticky session
        body["session"] = f"smoke-{client}"
    req = urllib.request.Request(
        f"{base}/query", data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        assert resp.status == 200, resp.status
        return json.load(resp)


def main() -> int:
    with tempfile.TemporaryDirectory() as td:
        table_args = write_dataset(Path(td))
        proc, port = start_server(table_args)
        base = f"http://127.0.0.1:{port}"
        try:
            errors: list[BaseException] = []
            io_totals: list[int] = []

            def client(c: int) -> None:
                try:
                    for i in range(QUERIES_PER_CLIENT):
                        doc = post_query(base, c, i)
                        assert doc["results"] == 256, doc["results"]
                        # Warm queries cost their 80 intermediate
                        # writes; whoever faults base pages pays up to
                        # 17 more.  (Which query pays is a race; the
                        # sum is not.)
                        assert 80 <= doc["io"]["total"] <= 97, doc
                        io_totals.append(doc["io"]["total"])
                except BaseException as exc:  # noqa: BLE001 - reported
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(c,))
                       for c in range(N_CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if errors:
                raise errors[0]
            total = N_CLIENTS * QUERIES_PER_CLIENT
            # Schedule-independent: 80 writebacks per query, plus the
            # 17 base pages faulted exactly once service-wide.
            assert sum(io_totals) == total * 80 + 17, sum(io_totals)

            with urllib.request.urlopen(f"{base}/metrics",
                                        timeout=10) as resp:
                metrics = resp.read().decode("utf-8")
            m = re.search(r"^repro_service_queries(?:_total)?\s+(\d+)",
                          metrics, re.MULTILINE)
            assert m, "no repro_service_queries in /metrics"
            assert int(m.group(1)) == total, (m.group(1), total)

            # The flight recorder must have seen every query — no
            # drops, no double counting — and still store them all
            # (default capacity 256 > the barrage).
            with urllib.request.urlopen(f"{base}/debug/queries?n={total}",
                                        timeout=10) as resp:
                flight = json.load(resp)
            assert flight["seen"] == total, (flight["seen"], total)
            assert flight["stored"] == total and \
                flight["overwritten"] == 0, flight
            assert flight["returned"] == len(flight["records"]) == total
            assert all(r["status"] == "ok" for r in flight["records"])
            assert sum(r["io_total"] for r in flight["records"]) == \
                sum(io_totals)

            # One record fetched by id round-trips the full lifecycle.
            newest = flight["records"][0]
            with urllib.request.urlopen(
                    f"{base}/debug/queries/{newest['id']}",
                    timeout=10) as resp:
                full = json.load(resp)
            assert full["admission"]["outcome"] in ("granted", "queued")
            assert full["io"]["total"] == newest["io_total"]

            with urllib.request.urlopen(f"{base}/stats",
                                        timeout=10) as resp:
                stats = json.load(resp)
            assert stats["flight"]["seen"] == total, stats["flight"]
            assert "queue_depth" in stats["admission"]
            assert "pins" in stats["pool"], stats["pool"]

            with urllib.request.urlopen(f"{base}/healthz",
                                        timeout=10) as resp:
                assert json.load(resp)["ok"] is True
            print(f"smoke OK: {total} concurrent queries, flight "
                  f"records, metrics and health check out")
        finally:
            proc.terminate()
            rc = proc.wait(timeout=15)
        assert rc in (0, -15), f"serve exited with {rc}"
    return 0


if __name__ == "__main__":
    sys.exit(main())
