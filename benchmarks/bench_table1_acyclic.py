"""Experiment T1-acyclic — Table 1, row "General acyclic join".

Paper claim: Algorithm 2's cost is
``min_{S∈GenS} max_{S∈S} Ψ(R,S)`` (Theorem 3), and the algorithm is
worst-case optimal for every acyclic query with ``n ≤ 8`` relations.
We run a mixed zoo of general acyclic shapes (not just the named
families) and check measured I/O against the per-instance Theorem 3
bound and the ψ lower bound.
"""

from _util import best_branch, print_table
from repro.analysis import gens_bound, lower_bound
from repro.query import JoinQuery
from repro.workloads import cross_product_instance


def caterpillar():
    """A star whose core also chains onward — general acyclic."""
    return JoinQuery(edges={
        "e1": frozenset({"a", "b"}),
        "e2": frozenset({"b", "c", "d"}),
        "e3": frozenset({"d", "e", "f"}),
        "e4": frozenset({"c", "u4"}),
        "e5": frozenset({"e", "u5"}),
        "e6": frozenset({"f", "u6"}),
    })


def broom():
    """A path ending in a fan of petals."""
    return JoinQuery(edges={
        "e1": frozenset({"a", "b"}),
        "e2": frozenset({"b", "c"}),
        "e3": frozenset({"c", "p", "q"}),
        "e4": frozenset({"p", "x"}),
        "e5": frozenset({"q", "y"}),
    })


def sweep():
    rows = []
    M, B = 4, 2
    for name, q in [("caterpillar", caterpillar()), ("broom", broom())]:
        for scale in (3, 4):
            # Join domains of 2 keep every relation at least M tuples
            # big — the paper's standing assumption N(e) >= M, without
            # which ceiling effects dominate the measurement.
            dom = {a: (scale if a.startswith(("u", "x", "y", "a"))
                       else 2) for a in q.attributes}
            schemas, data = cross_product_instance(q, dom)
            sizes = {e: len(t) for e, t in data.items()}
            sized_q = q.with_sizes(sizes)
            m = best_branch(sized_q, schemas, data, M, B, limit=16)
            lb = lower_bound(sized_q, data, schemas, M, B) \
                + sum(sizes.values()) / B
            gb = gens_bound(sized_q, data, schemas, M, B) \
                + sum(sizes.values()) / B
            rows.append({"query": name, "scale": scale,
                         "io": m["io"],
                         "io/gens(thm3)": m["io"] / gb,
                         "io/lower": m["io"] / lb,
                         "gens/lower": gb / lb,
                         "results": m["results"]})
    return rows


def test_general_acyclic(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Table 1 / general acyclic: Theorem 3 bound vs measured",
                rows, capsys)
    for r in rows:
        # Theorem 3: the best branch respects its own GenS budget
        # (generous constant: at these scales group sizes sit right at
        # M, so per-chunk ceilings — which the paper explicitly elides
        # under N(e) >= M — are visible).
        assert r["io/gens(thm3)"] <= 32
        # n <= 8 optimality: on these worst-case-style instances the
        # Theorem 3 bound *coincides* with the psi lower bound — the
        # bound pair is tight, which is the optimality statement.
        assert r["gens/lower"] <= 1.5
