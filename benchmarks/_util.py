"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a Table 1 row, a
worked example, or an optimality theorem's sweep) and prints the rows it
measured in a paper-shaped table.  Absolute numbers depend on the
simulated machine; the *shape* — who wins, by what factor, where the
crossover sits — is the reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro import Device, Instance
from repro.core import CountingEmitter
from repro.em import PoolConfig
from repro.obs import Tracer


def run_em(query, schemas, data, runner: Callable, M: int, B: int,
           pool: PoolConfig | None = None, **kwargs) -> dict:
    """Run an EM algorithm on a fresh device; return io/result counts.

    ``pool`` opts the device into a buffer pool; the pool is flushed
    before counting so totals are deterministic, and the returned dict
    gains ``hits``/``misses``/``hit_rate``.
    """
    device = Device(M=M, B=B, buffer_pool=pool)
    instance = Instance.from_dicts(device, schemas, data)
    emitter = CountingEmitter()
    runner(query, instance, emitter, **kwargs)
    device.flush_pool()
    out = {"io": device.stats.total, "reads": device.stats.reads,
           "writes": device.stats.writes, "results": emitter.count,
           "peak_mem": device.memory.peak}
    if pool is not None:
        c = device.stats.cache
        out.update({"hits": c.hits, "misses": c.misses,
                    "hit_rate": c.hit_rate})
    return out


def best_branch(query, schemas, data, M: int, B: int,
                limit: int = 12,
                pool: PoolConfig | None = None) -> dict:
    """Measure Algorithm 2's best peel branch."""
    from repro.core import acyclic_join_best

    device = Device(M=M, B=B, buffer_pool=pool)
    instance = Instance.from_dicts(device, schemas, data)
    best = acyclic_join_best(query, instance, limit=limit)
    return {"io": best.io, "reads": best.best.reads,
            "writes": best.best.writes, "results": best.best.emitted,
            "branches": len(best.runs),
            "round_robin_io": best.round_robin_io}


def print_table(title: str, rows: Sequence[Mapping], capsys=None) -> None:
    """Print measurement rows as an aligned table (outside capture)."""
    def do_print():
        print()
        print(f"== {title} ==")
        if not rows:
            print("(no rows)")
            return
        cols = list(rows[0].keys())
        widths = {c: max(len(str(c)),
                         *(len(_fmt(r[c])) for r in rows)) for c in cols}
        header = "  ".join(str(c).ljust(widths[c]) for c in cols)
        print(header)
        print("-" * len(header))
        for r in rows:
            print("  ".join(_fmt(r[c]).ljust(widths[c]) for c in cols))

    if capsys is not None:
        with capsys.disabled():
            do_print()
    else:
        do_print()


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


# -- pinned Table-1 baselines (BENCH_table1.json) ----------------------
#
# One deterministic fixed instance per Table-1 query class, measured
# pool-off (the paper-faithful counts) and pool-on (cache behaviour).
# generate_report.py writes/checks the committed baseline from these;
# CI fails on any drift in the counters.

#: LRU frames for the pooled leg of each baseline measurement.
def _baseline_pool(M: int, B: int) -> PoolConfig:
    return PoolConfig(frames=max(2, M // B), policy="lru")


def table1_baseline_cases() -> dict:
    """Query class -> ``(query, schemas, data, M, B, runner)``.

    Every instance is a fixed deterministic construction (no RNG), so
    the measured counters are exactly reproducible — that is what makes
    them pinnable.
    """
    from repro.core import (acyclic_join_best, execute, line3_join,
                            nested_loop_join)
    from repro.core.triangle import triangle_join
    from repro.query import (JoinQuery, line_query, star_query,
                             triangle_query)
    from repro.workloads import (cross_product_instance,
                                 fig3_line3_instance, schemas_for,
                                 star_worstcase_instance)

    cases: dict = {}

    q2 = line_query(2)
    cases["two_relations"] = (
        q2, schemas_for(q2),
        {"e1": [(i, 0) for i in range(64)],
         "e2": [(0, j) for j in range(64)]},
        16, 4,
        lambda q, i, e: nested_loop_join(i["e1"], i["e2"], e))

    schemas, data = fig3_line3_instance(32, 32)
    cases["line3"] = (line_query(3), schemas, data, 4, 2,
                      lambda q, i, e: line3_join(q, i, e))

    schemas, data = fig3_line3_instance(16, 16)
    cases["line3_planner"] = (line_query(3), schemas, data, 8, 2,
                              lambda q, i, e: execute(q, i, e))

    schemas, data = star_worstcase_instance([16, 16])
    cases["star"] = (star_query(2), schemas, data, 4, 2,
                     lambda q, i, e: acyclic_join_best(q, i, e, limit=16))

    broom = JoinQuery(edges={
        "e1": frozenset({"a", "b"}),
        "e2": frozenset({"b", "c"}),
        "e3": frozenset({"c", "p", "q"}),
        "e4": frozenset({"p", "x"}),
        "e5": frozenset({"q", "y"}),
    })
    dom = {a: (3 if a in ("a", "x", "y") else 2)
           for a in broom.attributes}
    schemas, data = cross_product_instance(broom, dom)
    cases["acyclic_broom"] = (broom, schemas, data, 4, 2,
                              lambda q, i, e: acyclic_join_best(
                                  q, i, e, limit=16))

    clique = [(i, j) for i in range(8) for j in range(8)]
    cases["triangle"] = (
        triangle_query(),
        {"e1": ("v1", "v2"), "e2": ("v1", "v3"), "e3": ("v2", "v3")},
        {"e1": clique, "e2": clique, "e3": clique},
        32, 4,
        lambda q, i, e: triangle_join(q, i, e))

    return cases


def measure_class(query, schemas, data, runner: Callable, M: int, B: int,
                  *, pool: PoolConfig | None = None,
                  tracer: Tracer | None = None) -> dict:
    """One full baseline measurement: I/O, phases, memory, cache.

    Like :func:`run_em` but returns the whole counter tree the baseline
    pins (per-phase breakdown and peak memory included).
    """
    device = Device(M=M, B=B, buffer_pool=pool, tracer=tracer)
    instance = Instance.from_dicts(device, schemas, data)
    emitter = CountingEmitter()
    runner(query, instance, emitter)
    device.flush_pool()
    out = {"io": {"reads": device.stats.reads,
                  "writes": device.stats.writes,
                  "total": device.stats.total},
           "results": emitter.count,
           "phases": device.phases.report(),
           "peak_mem": device.memory.peak}
    if pool is not None:
        out["cache"] = device.stats.cache.as_dict()
    return out


def table1_baseline(tracer_summaries: dict | None = None) -> dict:
    """Measure every baseline class pool-off and pool-on.

    When ``tracer_summaries`` is a dict, each class's pool-off leg runs
    with a :class:`~repro.obs.Tracer` attached and its exact rollup
    summary is stored under the class name (the CI artifact) — the
    counters are identical either way, which the tracer-transparency
    test pins.
    """
    out: dict = {}
    for name, (query, schemas, data, M, B, runner) in sorted(
            table1_baseline_cases().items()):
        tracer = None
        if tracer_summaries is not None:
            tracer = Tracer(capacity=1024, sample_every=64)
        pool_off = measure_class(query, schemas, data, runner, M, B,
                                 tracer=tracer)
        pool_on = measure_class(query, schemas, data, runner, M, B,
                                pool=_baseline_pool(M, B))
        out[name] = {"machine": {"M": M, "B": B},
                     "pool_off": pool_off, "pool_on": pool_on}
        if tracer is not None:
            tracer_summaries[name] = tracer.summary()
    return out
