"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a Table 1 row, a
worked example, or an optimality theorem's sweep) and prints the rows it
measured in a paper-shaped table.  Absolute numbers depend on the
simulated machine; the *shape* — who wins, by what factor, where the
crossover sits — is the reproduction target (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro import Device, Instance
from repro.core import CountingEmitter
from repro.em import PoolConfig


def run_em(query, schemas, data, runner: Callable, M: int, B: int,
           pool: PoolConfig | None = None, **kwargs) -> dict:
    """Run an EM algorithm on a fresh device; return io/result counts.

    ``pool`` opts the device into a buffer pool; the pool is flushed
    before counting so totals are deterministic, and the returned dict
    gains ``hits``/``misses``/``hit_rate``.
    """
    device = Device(M=M, B=B, buffer_pool=pool)
    instance = Instance.from_dicts(device, schemas, data)
    emitter = CountingEmitter()
    runner(query, instance, emitter, **kwargs)
    device.flush_pool()
    out = {"io": device.stats.total, "reads": device.stats.reads,
           "writes": device.stats.writes, "results": emitter.count,
           "peak_mem": device.memory.peak}
    if pool is not None:
        c = device.stats.cache
        out.update({"hits": c.hits, "misses": c.misses,
                    "hit_rate": c.hit_rate})
    return out


def best_branch(query, schemas, data, M: int, B: int,
                limit: int = 12,
                pool: PoolConfig | None = None) -> dict:
    """Measure Algorithm 2's best peel branch."""
    from repro.core import acyclic_join_best

    device = Device(M=M, B=B, buffer_pool=pool)
    instance = Instance.from_dicts(device, schemas, data)
    best = acyclic_join_best(query, instance, limit=limit)
    return {"io": best.io, "reads": best.best.reads,
            "writes": best.best.writes, "results": best.best.emitted,
            "branches": len(best.runs),
            "round_robin_io": best.round_robin_io}


def print_table(title: str, rows: Sequence[Mapping], capsys=None) -> None:
    """Print measurement rows as an aligned table (outside capture)."""
    def do_print():
        print()
        print(f"== {title} ==")
        if not rows:
            print("(no rows)")
            return
        cols = list(rows[0].keys())
        widths = {c: max(len(str(c)),
                         *(len(_fmt(r[c])) for r in rows)) for c in cols}
        header = "  ".join(str(c).ljust(widths[c]) for c in cols)
        print(header)
        print("-" * len(header))
        for r in rows:
            print("  ".join(_fmt(r[c]).ljust(widths[c]) for c in cols))

    if capsys is not None:
        with capsys.disabled():
            do_print()
    else:
        do_print()


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)
