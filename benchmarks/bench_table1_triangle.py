"""Experiment T1-triangle — Table 1, row "Triangle C3" (prior work).

Paper context: the triangle query has external-memory cost
``√(N1·N2·N3/M)/B`` — for equal sizes ``N^{3/2}/(√M·B)`` — optimal on
equal sizes [7, 12].  Our grid-partitioning implementation is swept on
clique inputs against that formula and against the naive blocked
3-nested-loop bound ``N²·N/(M²B)``-style cascade.
"""

import math

from _util import print_table, run_em
from repro.core import CountingEmitter
from repro.core.triangle import triangle_join
from repro.query import triangle_query


def clique_instance(k):
    rows = [(i, j) for i in range(k) for j in range(k)]
    schemas = {"e1": ("v1", "v2"), "e2": ("v1", "v3"),
               "e3": ("v2", "v3")}
    return schemas, {"e1": rows, "e2": rows, "e3": rows}


def triangle_bound(n, M, B):
    return math.sqrt(n ** 3 / M) / B + 3 * n / B


def sweep():
    rows = []
    for k, M, B in [(8, 32, 4), (12, 32, 4), (16, 32, 4),
                    (12, 16, 4), (12, 64, 4)]:
        schemas, data = clique_instance(k)
        n = k * k
        m = run_em(triangle_query(), schemas, data, triangle_join, M, B)
        bound = triangle_bound(n, M, B)
        rows.append({"N": n, "M": M, "B": B, "io": m["io"],
                     "N^1.5/(sqrtM*B)": round(bound, 1),
                     "io/bound": m["io"] / bound,
                     "triangles": m["results"]})
    return rows


def test_triangle_table1_row(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Table 1 / triangle C3: grid algorithm vs "
                "N^{3/2}/(sqrt(M)B)", rows, capsys)
    # Clique on k vertices: k³ directed triangle assignments.
    for r in rows:
        k = int(math.isqrt(r["N"]))
        assert r["triangles"] == k ** 3
        assert r["io/bound"] <= 12.0
    # Shape: ratio stays flat as N doubles at fixed M.
    fixed_m = [r for r in rows if r["M"] == 32 and r["B"] == 4]
    ratios = [r["io/bound"] for r in fixed_m]
    assert max(ratios) / min(ratios) <= 2.5
