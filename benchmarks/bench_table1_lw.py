"""Experiment T1-LW — Table 1, row "LW join LW_n" (prior work, [6]).

Paper context: Loomis–Whitney joins cost
``∏ (N_i/(M))^{1/(n-1)} · M/B``-shaped I/O in external memory
(for equal sizes ``(N/M)^{n/(n-1)} · M/B``), optimality unknown.  The
grid algorithm is swept on dense equal-size inputs for ``LW_3`` and
``LW_4`` against that formula.
"""

import math

from _util import print_table, run_em
from repro.core.lw import lw_join, lw_query


def dense_lw_instance(n, k):
    """Each relation = the full k^{n-1} grid over its attributes."""
    q = lw_query(n)
    schemas = {e: tuple(sorted(q.edges[e])) for e in q.edges}
    rows = [tuple(idx) for idx in _grid(k, n - 1)]
    data = {e: rows for e in schemas}
    return q, schemas, data


def _grid(k, d):
    out = [()]
    for _ in range(d):
        out = [r + (x,) for r in out for x in range(k)]
    return out


def lw_bound(n, size, M, B):
    return (size / M) ** (n / (n - 1)) * M / B + n * size / B


def sweep():
    rows = []
    for n, ks in [(3, (8, 12, 16)), (4, (4, 6))]:
        for k in ks:
            q, schemas, data = dense_lw_instance(n, k)
            size = len(data["e1"])
            M, B = 32, 4
            m = run_em(q, schemas, data, lw_join, M, B)
            bound = lw_bound(n, size, M, B)
            rows.append({"n": n, "N": size, "io": m["io"],
                         "(N/M)^{n/(n-1)}M/B": round(bound, 1),
                         "io/bound": m["io"] / bound,
                         "results": m["results"]})
    return rows


def test_lw_table1_row(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Table 1 / LW_n: grid algorithm vs the cited bound",
                rows, capsys)
    for r in rows:
        # dense grids: every attribute combination is a result
        k = round(r["N"] ** (1.0 / (r["n"] - 1)))
        assert r["results"] == k ** r["n"]
        assert r["io/bound"] <= 12.0
    # Shape: flat ratio across N per n.
    for n in (3, 4):
        fam = [r["io/bound"] for r in rows if r["n"] == n]
        assert max(fam) / min(fam) <= 3.0
