"""Experiment T1-star — Table 1, row "Star", Corollary 1 and Theorem 4.

Paper claim: on a star join the partial join on the petals alone forces
``Ω(∏ N_i / (M^{n-1} B))`` I/Os, and Algorithm 2 matches it.  We run
the Theorem 4 construction (one-tuple core, one-to-many petals) across
petal counts and scales.
"""

from _util import best_branch, print_table
from repro.analysis import lower_bound, star_bound
from repro.query import star_query
from repro.workloads import star_worstcase_instance


def sweep():
    rows = []
    M, B = 4, 2
    for k, n in [(2, 16), (2, 32), (3, 8), (3, 12)]:
        schemas, data = star_worstcase_instance([n] * k)
        q = star_query(k)
        m = best_branch(q, schemas, data, M, B, limit=16)
        bound = star_bound(len(data["e0"]), [n] * k, M, B)
        lb = lower_bound(q, data, schemas, M, B)
        rows.append({"petals": k, "N_i": n, "io": m["io"],
                     "corollary1": round(bound, 1),
                     "io/corollary1": m["io"] / bound,
                     "psi lower": round(lb, 1),
                     "results": m["results"],
                     "branches": m["branches"]})
    return rows


def test_star_worst_case(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Table 1 / star: Algorithm 2 vs prod(N_i)/(M^{n-1}B)",
                rows, capsys)
    # |Q(R)| = prod N_i on the construction.
    for r in rows:
        assert r["results"] == r["N_i"] ** r["petals"]
    ratios = [r["io/corollary1"] for r in rows]
    assert max(ratios) <= 16.0
