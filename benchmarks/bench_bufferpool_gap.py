"""Experiment BP-gap — worst-case accounting vs buffer-managed execution.

The paper's cost model charges every block transfer; a real engine
sits behind a buffer manager and pays only for misses.  This benchmark
re-runs representative Table 1 rows (two relations, `L3`, star, a
general acyclic shape) plus a probe-heavy random star with the buffer
pool off (paper-faithful) and on under each replacement policy, with a
frame budget of ``M`` tuples, and reports the measured gap.

Expected shape, asserted below:

* the pool never *increases* I/O — every written page is written back
  exactly once, so all savings are read hits;
* on repeated-probe workloads (the star's dimension-table probes) an
  LRU pool of ``M`` tuples strictly reduces total I/O;
* on long cyclic re-scans larger than the pool (the blocked
  nested-loop row) LRU degenerates to zero hits — sequential flooding
  — while MRU retains a stable prefix; the worst-case-optimal
  algorithms leave little on the table either way, which is itself the
  paper-relevant measurement: worst-case counts are close to what a
  buffer-managed execution of the same plans pays.
"""

import random

from _util import print_table, run_em
from repro.core import execute, nested_loop_join
from repro.em import POLICIES, PoolConfig
from repro.query import JoinQuery, line_query, star_query
from repro.workloads import (cross_product_instance,
                             fig3_line3_instance, schemas_for,
                             star_worstcase_instance)


def _two_relation(n=64):
    schemas = schemas_for(line_query(2))
    data = {"e1": [(i, 0) for i in range(n)],
            "e2": [(0, j) for j in range(n)]}
    runner = (lambda q, inst, em:
              nested_loop_join(inst["e1"], inst["e2"], em))
    return line_query(2), schemas, data, runner


def _random_star(k=3, rows=60, domain=6, seed=1):
    """A random star: petals repeatedly probed per core group."""
    q = star_query(k)
    schemas = schemas_for(q)
    rng = random.Random(seed)
    data = {e: sorted({tuple(rng.randrange(domain) for _ in attrs)
                       for _ in range(rows)})
            for e, attrs in schemas.items()}
    return q, schemas, data, execute


def _caterpillar(scale=3):
    q = JoinQuery(edges={
        "e1": frozenset({"a", "b"}),
        "e2": frozenset({"b", "c", "d"}),
        "e3": frozenset({"d", "e", "f"}),
        "e4": frozenset({"c", "u4"}),
        "e5": frozenset({"e", "u5"}),
        "e6": frozenset({"f", "u6"}),
    })
    dom = {a: (scale if a.startswith(("u", "a")) else 2)
           for a in q.attributes}
    schemas, data = cross_product_instance(q, dom)
    return q, schemas, data, execute


def workloads():
    two = _two_relation()
    l3_s, l3_d = fig3_line3_instance(32, 32)
    star_s, star_d = star_worstcase_instance([16, 16])
    return [
        ("two-rel NLJ", *two, 16, 4),
        ("L3 fig3", line_query(3), l3_s, l3_d, execute, 8, 2),
        ("star worst-case", star_query(2), star_s, star_d, execute, 4, 2),
        ("star probes", *_random_star(), 8, 2),
        ("acyclic caterpillar", *_caterpillar(), 4, 2),
    ]


def sweep():
    rows = []
    for name, q, schemas, data, runner, M, B in workloads():
        off = run_em(q, schemas, data, runner, M, B)
        row = {"workload": name, "M": M, "B": B, "io off": off["io"]}
        for policy in sorted(POLICIES):
            on = run_em(q, schemas, data, runner, M, B,
                        pool=PoolConfig(tuples=M, policy=policy))
            assert on["results"] == off["results"]
            assert on["writes"] == off["writes"], (
                "flushed pool must write back each page exactly once")
            row[f"io {policy}"] = on["io"]
            row[f"hit% {policy}"] = 100.0 * on["hit_rate"]
        row["saved lru"] = off["io"] - row["io lru"]
        rows.append(row)
    return rows


def test_bufferpool_gap(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Buffer-pool gap: pool of M tuples vs paper accounting",
                rows, capsys)
    for r in rows:
        # The pool can only save I/O, never add (writes are conserved).
        for policy in sorted(POLICIES):
            assert r[f"io {policy}"] <= r["io off"]
    # An LRU pool of M tuples strictly reduces I/O on the
    # repeated-probe star workloads.
    saved = {r["workload"]: r["saved lru"] for r in rows}
    assert saved["star probes"] > 0
    assert saved["star worst-case"] > 0
    # Sequential flooding: the blocked NLJ's cyclic inner re-scan defeats
    # LRU at this pool size (the classic pathology, kept as a landmark).
    flood = next(r for r in rows if r["workload"] == "two-rel NLJ")
    assert flood["hit% lru"] == 0.0
