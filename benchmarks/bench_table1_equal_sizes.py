"""Experiment T1-equal — Table 1, row "Acyclic join with equal N_i",
Theorem 7.

Paper claim: with all relations of size ``N``, Algorithm 2 costs
``Õ((N/M)^c · M/B)`` where ``c`` is the minimum edge cover number, and
this is optimal (vertex-packing construction).  We sweep ``N`` for
query classes with different ``c`` and check the measured growth
exponent: doubling ``N`` should multiply I/O by ≈ ``2^c``.
"""

import math

from _util import best_branch, print_table
from repro.analysis import equal_size_bound
from repro.query import cover_number, line_query, lollipop_query, star_query
from repro.workloads import equal_size_packing_instance


FAMILIES = [
    ("L3 (c=2)", line_query(3), (8, 16, 32)),
    ("L5 (c=3)", line_query(5), (6, 12)),
    ("star3 (c=3)", star_query(3), (6, 12)),
    ("lollipop3 (c=4)", lollipop_query(3), (4, 8)),
]


def sweep():
    rows = []
    M, B = 4, 2
    for label, q, ns in FAMILIES:
        c = cover_number(q)
        prev = None
        for n in ns:
            schemas, data = equal_size_packing_instance(q, n)
            m = best_branch(q, schemas, data, M, B, limit=8)
            bound = equal_size_bound(q, n, M, B)
            growth = (m["io"] / prev) if prev else float("nan")
            prev = m["io"]
            rows.append({"family": label, "c": c, "N": n, "io": m["io"],
                         "(N/M)^c*M/B": round(bound, 1),
                         "io/bound": m["io"] / bound,
                         "growth": growth,
                         "results(N^c)": m["results"]})
    return rows


def test_equal_size_scaling(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Table 1 / equal sizes: (N/M)^c scaling (Theorem 7)",
                rows, capsys)
    for r in rows:
        assert r["results(N^c)"] == r["N"] ** r["c"]
        assert r["io/bound"] <= 20.0
    # Growth exponent check per family: log2(growth) ≈ c.
    for label, q, ns in FAMILIES:
        fam = [r for r in rows if r["family"] == label]
        c = fam[0]["c"]
        for a, b in zip(fam, fam[1:]):
            exponent = math.log2(b["io"] / a["io"])
            assert c - 1.2 <= exponent <= c + 1.2, (label, exponent)
