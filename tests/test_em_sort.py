"""Unit and property tests for external merge sort."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.em import Device, external_sort, is_sorted


def make_file(device, rows):
    f = device.new_file("in")
    with f.writer() as w:
        for t in rows:
            w.append(t)
    return f


class TestExternalSort:
    def test_sorts_small_input(self, small_device):
        rows = [(i,) for i in (5, 3, 9, 1, 1, 7)]
        f = make_file(small_device, rows)
        out = external_sort(f, lambda t: t[0])
        assert list(out.peek_tuples()) == sorted(rows)

    def test_sorts_multi_run_input(self):
        device = Device(M=8, B=2)
        rng = random.Random(1)
        rows = [(rng.randrange(1000), i) for i in range(200)]
        f = make_file(device, rows)
        out = external_sort(f, lambda t: t[0])
        assert is_sorted(out, lambda t: t[0])
        assert sorted(out.peek_tuples()) == sorted(rows)

    def test_empty_input(self, small_device):
        f = make_file(small_device, [])
        out = external_sort(f, lambda t: t[0])
        assert len(out) == 0

    def test_single_run_costs_one_read_and_write_pass(self):
        device = Device(M=64, B=4)
        rows = [(i % 7,) for i in range(64)]  # fits in one memory load
        f = device.file_from_tuples_free(rows)
        device.stats.reset()
        external_sort(f, lambda t: t[0])
        assert device.stats.reads == 16
        assert device.stats.writes == 16

    def test_io_within_sort_bound(self):
        # Õ((N/B) log_{M/B}(N/M)) with small constants.
        device = Device(M=16, B=4)
        rng = random.Random(2)
        n = 400
        f = device.file_from_tuples_free([(rng.randrange(10**6),)
                                          for _ in range(n)])
        device.stats.reset()
        external_sort(f, lambda t: t[0])
        pages = n / device.B
        fan_in = device.M // device.B - 1
        passes = 1 + math.ceil(math.log(max(2, n / device.M), fan_in))
        assert device.stats.total <= 2 * pages * (passes + 1)

    def test_sorts_segment_only(self, small_device):
        f = make_file(small_device, [(9 - i,) for i in range(10)])
        out = external_sort(f.segment(2, 7), lambda t: t[0])
        assert list(out.peek_tuples()) == sorted(
            f.peek_tuples()[2:7])

    def test_is_sorted_on_segment(self, small_device):
        f = make_file(small_device, [(3,), (1,), (2,), (4,), (0,)])
        assert is_sorted(f.segment(2, 4), lambda t: t[0])
        assert not is_sorted(f.segment(0, 3), lambda t: t[0])
        assert is_sorted(f.segment(1, 1), lambda t: t[0])

    def test_strict_memory_polices_run_formation(self):
        """Regression: `_form_runs` used to read the whole chunk before
        charging the gauge, so a strict budget fired only after the
        over-budget read had already been performed and charged."""
        import pytest

        from repro.em import MemoryBudgetExceeded

        device = Device(M=16, B=4, mem_slack=0.5, strict_memory=True)
        f = device.file_from_tuples_free([(i,) for i in range(32)])
        with pytest.raises(MemoryBudgetExceeded):
            external_sort(f, lambda t: t[0])
        # The budget must fire before the chunk streams in: no read
        # I/O may have been charged for the rejected run.
        assert device.stats.reads == 0

    def test_run_formation_peak_is_chunk_sized(self):
        device = Device(M=8, B=2, strict_memory=True, mem_slack=2.0)
        f = device.file_from_tuples_free([(31 - i,) for i in range(32)])
        out = external_sort(f, lambda t: t[0])
        assert is_sorted(out, lambda t: t[0])
        # Peak is the M-tuple run chunk (merge holds (fan_in+1)*B = 8
        # tuples too); under the pre-fix ordering the chunk was read
        # outside the gauge, but the charge amount itself was the same.
        assert device.memory.peak == device.M

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-50, 50), max_size=120),
           st.integers(2, 6))
    def test_property_sorted_permutation(self, values, b):
        device = Device(M=max(b, 8), B=b)
        rows = [(v, i) for i, v in enumerate(values)]
        f = device.file_from_tuples_free(rows)
        out = external_sort(f, lambda t: t[0])
        result = list(out.peek_tuples())
        assert sorted(result) == sorted(rows)
        assert is_sorted(out, lambda t: t[0])
