"""Unit and property tests for external merge sort."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.em import Device, external_sort, is_sorted


def make_file(device, rows):
    f = device.new_file("in")
    with f.writer() as w:
        for t in rows:
            w.append(t)
    return f


class TestExternalSort:
    def test_sorts_small_input(self, small_device):
        rows = [(i,) for i in (5, 3, 9, 1, 1, 7)]
        f = make_file(small_device, rows)
        out = external_sort(f, lambda t: t[0])
        assert list(out.peek_tuples()) == sorted(rows)

    def test_sorts_multi_run_input(self):
        device = Device(M=8, B=2)
        rng = random.Random(1)
        rows = [(rng.randrange(1000), i) for i in range(200)]
        f = make_file(device, rows)
        out = external_sort(f, lambda t: t[0])
        assert is_sorted(out, lambda t: t[0])
        assert sorted(out.peek_tuples()) == sorted(rows)

    def test_empty_input(self, small_device):
        f = make_file(small_device, [])
        out = external_sort(f, lambda t: t[0])
        assert len(out) == 0

    def test_single_run_costs_one_read_and_write_pass(self):
        device = Device(M=64, B=4)
        rows = [(i % 7,) for i in range(64)]  # fits in one memory load
        f = device.file_from_tuples_free(rows)
        device.stats.reset()
        external_sort(f, lambda t: t[0])
        assert device.stats.reads == 16
        assert device.stats.writes == 16

    def test_io_within_sort_bound(self):
        # Õ((N/B) log_{M/B}(N/M)) with small constants.
        device = Device(M=16, B=4)
        rng = random.Random(2)
        n = 400
        f = device.file_from_tuples_free([(rng.randrange(10**6),)
                                          for _ in range(n)])
        device.stats.reset()
        external_sort(f, lambda t: t[0])
        pages = n / device.B
        fan_in = device.M // device.B - 1
        passes = 1 + math.ceil(math.log(max(2, n / device.M), fan_in))
        assert device.stats.total <= 2 * pages * (passes + 1)

    def test_sorts_segment_only(self, small_device):
        f = make_file(small_device, [(9 - i,) for i in range(10)])
        out = external_sort(f.segment(2, 7), lambda t: t[0])
        assert list(out.peek_tuples()) == sorted(
            f.peek_tuples()[2:7])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-50, 50), max_size=120),
           st.integers(2, 6))
    def test_property_sorted_permutation(self, values, b):
        device = Device(M=max(b, 8), B=b)
        rows = [(v, i) for i, v in enumerate(values)]
        f = device.file_from_tuples_free(rows)
        out = external_sort(f, lambda t: t[0])
        result = list(out.peek_tuples())
        assert sorted(result) == sorted(rows)
        assert is_sorted(out, lambda t: t[0])
