"""Corner cases called out by the paper's proofs and API edges.

* Appendix A.2's last paragraph: "two or more petals joining with e0 on
  the same join attribute" — the star machinery and Algorithm 2 must
  handle shared-attribute petals.
* Relation names that are not Python identifiers (the instance API
  must not rely on keyword arguments anywhere on the hot path).
* Very small machines (M = B) and single-page relations.
"""

import pytest

from repro import Device, Instance
from repro.core import (AssignmentEmitter, CountingEmitter, acyclic_join,
                        execute)
from repro.internal import join_query
from repro.query import JoinQuery, find_stars, line_query
from repro.query.shapes import classify_shape


class TestSharedAttributePetals:
    def query(self):
        # Core e0(v1, v2); petals e1, e2 BOTH on v1; petal e3 on v2.
        return JoinQuery(edges={
            "e0": frozenset({"v1", "v2"}),
            "e1": frozenset({"v1", "u1"}),
            "e2": frozenset({"v1", "u2"}),
            "e3": frozenset({"v2", "u3"}),
        })

    def test_star_detection_sees_all_petals(self):
        q = self.query()
        stars = [s for s in find_stars(q) if s.core == "e0"]
        assert any(s.petals == frozenset({"e1", "e2", "e3"})
                   for s in stars)

    def test_join_correct_with_shared_attr_petals(self):
        q = self.query()
        schemas = {"e0": ("v1", "v2"), "e1": ("u1", "v1"),
                   "e2": ("u2", "v1"), "e3": ("u3", "v2")}
        data = {"e0": [(i % 2, i % 3) for i in range(6)],
                "e1": [(i, i % 2) for i in range(8)],
                "e2": [(i, i % 2) for i in range(8)],
                "e3": [(i, i % 3) for i in range(9)]}
        oracle = join_query(q, data, schemas)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        acyclic_join(q, inst, em)
        assert em.assignment_set() == oracle
        assert em.count == len(oracle)

    def test_shape_is_star(self):
        assert classify_shape(self.query()) == "star"


class TestNonIdentifierNames:
    def test_dashed_and_dotted_names(self):
        q = JoinQuery(edges={
            "fact-2024": frozenset({"k", "x"}),
            "dim.customer": frozenset({"k", "name"}),
        })
        schemas = {"fact-2024": ("k", "x"), "dim.customer": ("k", "name")}
        data = {"fact-2024": [(1, 10), (2, 20)],
                "dim.customer": [(1, "a"), (2, "b"), (3, "c")]}
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        execute(q, inst, em)
        assert em.count == 2


class TestTinyMachines:
    def test_m_equals_b(self):
        q = line_query(3)
        schemas = {"e1": ("v1", "v2"), "e2": ("v2", "v3"),
                   "e3": ("v3", "v4")}
        data = {"e1": [(i, i % 2) for i in range(6)],
                "e2": [(i % 2, i % 3) for i in range(5)],
                "e3": [(i % 3, i) for i in range(6)]}
        oracle = join_query(q, data, schemas)
        device = Device(M=2, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        acyclic_join(q, inst, em)
        assert em.assignment_set() == oracle

    def test_single_tuple_relations(self):
        q = line_query(4)
        schemas = {f"e{i}": (f"v{i}", f"v{i + 1}") for i in range(1, 5)}
        data = {f"e{i}": [(0, 0)] for i in range(1, 5)}
        device = Device(M=2, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = CountingEmitter()
        acyclic_join(q, inst, em)
        assert em.count == 1

    def test_all_relations_empty(self):
        q = line_query(3)
        schemas = {"e1": ("v1", "v2"), "e2": ("v2", "v3"),
                   "e3": ("v3", "v4")}
        data = {"e1": [], "e2": [], "e3": []}
        device = Device(M=2, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = CountingEmitter()
        acyclic_join(q, inst, em)
        assert em.count == 0


class TestStrictMemoryMode:
    def test_algorithms_respect_slacked_budget(self):
        # With strict accounting on and the paper's c·M allowance, the
        # recursion must not blow the budget.
        q = line_query(4)
        schemas = {f"e{i}": (f"v{i}", f"v{i + 1}") for i in range(1, 5)}
        data = {f"e{i}": [(j % 5, (j + i) % 5) for j in range(20)]
                for i in range(1, 5)}
        data = {e: sorted(set(t)) for e, t in data.items()}
        device = Device(M=8, B=2, mem_slack=16.0, strict_memory=True)
        inst = Instance.from_dicts(device, schemas, data)
        acyclic_join(q, inst, CountingEmitter())   # must not raise
        assert device.memory.peak <= 16 * 8
