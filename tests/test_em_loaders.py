"""Unit tests for the Section 2.3 chunk loaders and skew handling."""

import pytest

from repro.em import (Device, group_boundaries, load_chunks,
                      load_group_chunks, load_light_chunks, scan_matching,
                      split_heavy_light)


def sorted_file(device, rows, name="r"):
    f = device.new_file(name)
    with f.writer() as w:
        for t in sorted(rows):
            w.append(t)
    return f


def key0(t):
    return t[0]


class TestGroupBoundaries:
    def test_groups_cover_file_in_order(self, small_device):
        rows = [(0, i) for i in range(3)] + [(1, i) for i in range(5)] \
            + [(7, 0)]
        f = sorted_file(small_device, rows)
        groups = group_boundaries(f.whole(), key0)
        assert [g.value for g in groups] == [0, 1, 7]
        assert [g.count for g in groups] == [3, 5, 1]
        assert groups[0].start == 0
        assert groups[-1].stop == len(f)
        for a, b in zip(groups, groups[1:]):
            assert a.stop == b.start

    def test_costs_one_scan(self, small_device):
        f = sorted_file(small_device, [(i // 3, i) for i in range(24)])
        small_device.stats.reset()
        group_boundaries(f.whole(), key0)
        assert small_device.stats.reads == small_device.pages(24)

    def test_empty_file(self, small_device):
        f = sorted_file(small_device, [])
        assert group_boundaries(f.whole(), key0) == []


class TestHeavyLightSplit:
    def test_threshold_is_at_least_m(self):
        device = Device(M=4, B=2)
        rows = [(0, i) for i in range(4)] + [(1, i) for i in range(3)]
        f = sorted_file(device, rows)
        groups = group_boundaries(f.whole(), key0)
        heavy, light = split_heavy_light(groups, device.M)
        assert [g.value for g in heavy] == [0]   # 4 >= M
        assert [g.value for g in light] == [1]   # 3 < M


class TestLoadChunks:
    def test_chunks_of_m_tuples(self, small_device):
        f = sorted_file(small_device, [(i,) for i in range(40)])
        chunks = list(load_chunks(f.whole(), small_device.M))
        assert [len(c) for c in chunks] == [16, 16, 8]
        assert [t for c in chunks for t in c] == [(i,) for i in range(40)]

    def test_memory_gauge_charged_during_yield(self, small_device):
        f = sorted_file(small_device, [(i,) for i in range(20)])
        for chunk in load_chunks(f.whole(), small_device.M):
            assert small_device.memory.current >= len(chunk)
        assert small_device.memory.current == 0


class TestLoadGroupChunks:
    def test_reads_only_the_group(self, small_device):
        rows = ([(0, i) for i in range(20)] + [(1, i) for i in range(20)]
                + [(2, i) for i in range(4)])
        f = sorted_file(small_device, rows)
        groups = group_boundaries(f.whole(), key0)
        small_device.stats.reset()
        chunks = list(load_group_chunks(f.whole(), groups[1],
                                        small_device.M))
        assert sum(len(c) for c in chunks) == 20
        assert all(t[0] == 1 for c in chunks for t in c)


class TestLoadLightChunks:
    def test_light_chunk_invariants(self):
        # The paper's guarantees: < 2M tuples and < M-or-so distinct
        # values per chunk; groups never split across chunks.
        device = Device(M=8, B=2)
        rows = []
        for v in range(12):
            for j in range(v % 4 + 1):   # group sizes 1..4, all < M
                rows.append((v, j))
        f = sorted_file(device, rows)
        groups = group_boundaries(f.whole(), key0)
        heavy, light = split_heavy_light(groups, device.M)
        assert not heavy
        seen = []
        for chunk in load_light_chunks(f.whole(), light, device.M):
            assert len(chunk) < 2 * device.M
            values = [t[0] for t in chunk]
            assert len(set(values)) <= device.M
            seen.extend(chunk)
            # group atomicity: a value never spans chunks
        assert seen == sorted(rows)
        all_values = [t[0] for t in seen]
        # each value forms one contiguous run across the concatenation
        runs = {v: [i for i, x in enumerate(all_values) if x == v]
                for v in set(all_values)}
        for idxs in runs.values():
            assert idxs == list(range(idxs[0], idxs[-1] + 1))

    def test_skips_heavy_groups_without_reading_them(self):
        device = Device(M=4, B=2)
        rows = [(0, i) for i in range(2)] + [(1, i) for i in range(40)] \
            + [(2, i) for i in range(2)]
        f = sorted_file(device, rows)
        groups = group_boundaries(f.whole(), key0)
        heavy, light = split_heavy_light(groups, device.M)
        assert [g.value for g in heavy] == [1]
        device.stats.reset()
        out = [t for c in load_light_chunks(f.whole(), light, device.M)
               for t in c]
        assert all(t[0] != 1 for t in out)
        # far fewer reads than the full 22-page file
        assert device.stats.reads <= 4

    def test_rejects_heavy_group(self):
        device = Device(M=2, B=2)
        rows = [(0, i) for i in range(5)]
        f = sorted_file(device, rows)
        groups = group_boundaries(f.whole(), key0)
        with pytest.raises(ValueError):
            list(load_light_chunks(f.whole(), groups, device.M))


class TestScanMatching:
    def test_filters_by_membership(self, small_device):
        f = sorted_file(small_device, [(i % 5, i) for i in range(25)])
        out = list(scan_matching(f.whole(), key0, {1, 3}))
        assert all(t[0] in (1, 3) for t in out)
        assert len(out) == 10
