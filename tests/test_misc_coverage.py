"""Small targeted tests for otherwise-uncovered helpers."""

import pytest

from repro.analysis import (line5_unbalanced_bound, line7_cover11_bound,
                            yannakakis_em_bound)
from repro.query import fractional_edge_cover, line_query
from repro.workloads.worstcase import scaled


class TestBoundHelpers:
    def test_line7_cover11_bound_composition(self):
        sizes = [10, 10, 10, 10, 10, 10, 10]
        b = line7_cover11_bound(sizes, 4, 2)
        mid = line5_unbalanced_bound(sizes[1:6], 4, 2)
        assert b == pytest.approx((10 / 4) * (10 / 4) * mid
                                  + sum(sizes) / 2)

    def test_yannakakis_bound(self):
        assert yannakakis_em_bound(1000, 100, 8, 2) \
            == pytest.approx(1000 / 2 + 100 / 2)


class TestCoverHelpers:
    def test_support(self):
        cover = fractional_edge_cover(line_query(3, [10, 10, 10]))
        assert cover.support() == frozenset({"e1", "e3"})


class TestScaled:
    def test_floors_and_clamps(self):
        assert scaled(3.9) == 3
        assert scaled(0.2) == 1
        assert scaled(-5) == 1
