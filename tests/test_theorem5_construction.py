"""Tests for the Theorem 5 construction solver (feasibility from sizes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.internal import join_count
from repro.query import line_query
from repro.query.lines import is_balanced
from repro.query.reduce import is_fully_reduced
from repro.workloads import (balanced_line_sizes, theorem5_domains,
                             theorem5_line_instance)


class TestDomains:
    def test_solves_equal_sizes(self):
        z = theorem5_domains([6, 6, 6])
        assert z is not None
        assert balanced_line_sizes(z) == [6, 6, 6]

    def test_validates_explicit_z1(self):
        assert theorem5_domains([6, 6, 6], z1=1) is not None
        assert theorem5_domains([6, 6, 6], z1=4) is None  # 6 % 4 != 0

    def test_unbalanced_l5_is_infeasible(self):
        sizes = [4, 16, 2, 16, 4]
        assert not is_balanced(sizes)
        assert theorem5_domains(sizes) is None

    def test_empty(self):
        assert theorem5_domains([]) is None

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 6), min_size=3, max_size=7))
    def test_roundtrip_from_domains(self, z):
        """Any domain chain's sizes are feasible and solvable again."""
        sizes = balanced_line_sizes(z)
        solved = theorem5_domains(sizes)
        assert solved is not None
        assert balanced_line_sizes(solved) == sizes


class TestInstance:
    def test_builds_worst_case(self):
        sizes = [6, 6, 6]
        schemas, data = theorem5_line_instance(sizes)
        q = line_query(3)
        assert [len(data[f"e{i}"]) for i in (1, 2, 3)] == sizes
        assert is_fully_reduced(q, data, schemas)
        # Partial join on the alternating cover attains N1·N3.
        from repro.analysis import partial_join_size
        assert partial_join_size(q, data, schemas, {"e1", "e3"}) == 36

    def test_infeasible_raises_with_pointer_to_6_3(self):
        with pytest.raises(ValueError, match="6.3"):
            theorem5_line_instance([4, 16, 2, 16, 4])
