"""Fixture: an observer that materializes the scans it watches.

EM002 does not police ``obs/``, but EM009 (observer purity) must:
an observer pulling a charged scan into memory perturbs the very
counters it exists to report.
"""


def snapshot(rel):
    return list(rel.data.scan())
