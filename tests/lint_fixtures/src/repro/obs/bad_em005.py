"""Known-bad fixture: context-manager factory called bare (EM005)."""


def pause(stats):
    stats.suspend()
    return stats
