"""Fixture helper: a declared host-only report writer.

The ``# em-effects: HOST_ONLY`` declaration exempts it from EM009 and
stops effect propagation — but also bars counted layers from calling
it (EM011, see ``core/bad_em011.py``).
"""


def dump_report(path, rows):  # em-effects: HOST_ONLY -- fixture host-side writer
    with open(path, "w", encoding="utf-8") as fh:  # emlint: disable=EM001
        for row in rows:
            fh.write(f"{row}\n")
