"""Fixture helper: wall-clock in a layer EM004 does not police.

``obs/`` may import ``time`` (EM004 covers only core/ and em/) — but
a counted-layer caller of ``now()`` must be caught by the transitive
EM010.
"""

import time


def now():
    return time.time()
