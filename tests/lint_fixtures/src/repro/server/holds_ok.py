"""Fixture: the ``em-holds`` contract used correctly (clean).

``_append`` mutates a guarded field without taking the lock itself —
legal, because its ``def`` line declares the caller must already
hold ``_lock``, and its one caller does.
"""

import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []  # em-guarded-by: _lock

    def put(self, x):
        with self._lock:
            self._append(x)

    def _append(self, x):  # em-holds: _lock
        self.items.append(x)
