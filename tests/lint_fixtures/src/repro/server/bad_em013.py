"""Fixture: a monitor class mutating an undeclared shared field.

``Tally`` owns a lock and its ``add`` runs on two thread roots (the
spawned worker and main), yet ``total`` carries no ``em-guarded-by``
declaration.  The write is even correctly locked — EM013 is about
the missing contract, not the missing lock.
"""

import threading


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, n):
        with self._lock:
            self.total += n


def run():
    tally = Tally()
    worker = threading.Thread(target=tally.add, args=(1,))
    worker.start()
    tally.add(2)
    worker.join()
