"""Fixture: a guard declaration naming a lock that does not exist.

``items`` claims to be guarded by ``_lok`` — a typo for ``_lock``.
A drifted declaration is worse than none: readers trust it, and the
EM012 check silently checks nothing.
"""

import threading


class Drifty:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []  # em-guarded-by: _lok
