"""Fixture: blocking on a condition while holding an unrelated lock.

Waiting on ``done`` releases *its* lock but keeps ``_lock`` held for
the whole sleep, stalling every other ``_lock`` user.  ``_lock`` is
not declared ``# em-lock: coarse``, so EM015 fires at the wait.
"""

import threading


class Slow:
    def __init__(self):
        self._lock = threading.Lock()
        self.done = threading.Condition()

    def block(self):
        with self._lock:
            with self.done:
                self.done.wait()
