"""Fixture: two locks nested in opposite orders on two threads.

``ab`` acquires ``a`` then ``b``; ``ba`` acquires ``b`` then ``a``;
``run`` arranges for both to execute concurrently.  The lock-order
graph has the cycle ``a -> b -> a`` — the classic ABBA deadlock.
"""

import threading


class Pair:
    def __init__(self):
        self.a = threading.Lock()
        self.b = threading.Lock()

    def ab(self):
        with self.a:
            with self.b:
                pass

    def ba(self):
        with self.b:
            with self.a:
                pass


def run():
    pair = Pair()
    worker = threading.Thread(target=pair.ab)
    worker.start()
    pair.ba()
    worker.join()
