"""Fixture: a declared guard violated by a lock-free write.

``count`` declares ``_lock`` as its guard; ``bump`` mutates it with
no lock held.  The declaration is the contract — EM012 fires whether
or not the analysis can prove another thread exists.
"""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # em-guarded-by: _lock

    def bump(self):
        self.count += 1

    def bump_locked(self):
        with self._lock:
            self.count += 1
