"""Fixture: declared ``N/B`` but the body rescans per tuple.

The nested loop performs one buffered write per (outer, inner) pair —
``N^2/B`` — while the declaration claims a single linear pass.  EM018
must catch the asymptotic excess (``N^2/B`` over ``N/B``).
"""

from repro.em.cost_helpers import buffered_put


# em-cost: N/B -- claims a single buffered pass over the input
def rescan_join(device, outer, inner):
    # em-loop-bound: N -- one outer tuple per iteration
    for _ in outer:
        # em-loop-bound: N -- rescans the whole inner input per tuple
        for _ in inner:
            buffered_put(device)
