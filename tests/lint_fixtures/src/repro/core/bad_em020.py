"""Fixture: an em-cost declaration attached to nothing (orphan).

The annotation below sits above a plain assignment, not a function
definition; EM020 flags it as documentation rot.
"""


# em-cost: N/B -- a bound with no function under it
SCAN_BUDGET = 42
