"""Known-bad fixture: unparseable file (emlint EM000)."""

def broken(:
