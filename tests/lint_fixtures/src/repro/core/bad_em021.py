"""Fixture: a charge site invisible to the symbolic cost table.

``_mystery_flush`` charges the device directly but is private (so not
an EM017 root) and unreachable from any cost-declared function; EM021
flags the unattributed I/O.
"""


def _mystery_flush(device):
    device.charge_write(1)
