"""Known-bad fixture: scan materialized outside a hold (EM002)."""


def slurp(rel):
    return list(rel.data.scan())
