"""Known-bad fixture: wall-clock in a counted path (EM004)."""

import time


def stamp():
    return time.monotonic()
