"""Fixture: a counted path calling into declared-HOST_ONLY code.

``dump_report`` is legitimately host-only (and a propagation
barrier, so no EM007 here) — but calling it from core/ would put
uncounted host work under the algorithms the paper measures (EM011).
"""

from repro.obs.host_dump import dump_report


def solve_and_dump(rows, path):
    dump_report(path, rows)
    return len(rows)
