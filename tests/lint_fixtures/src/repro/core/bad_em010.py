"""Fixture: nondeterminism smuggled into a counted path by a call.

No ``import time`` here, so the intraprocedural EM004 passes — the
wall-clock arrives through ``repro.obs.clock_helper.now()`` and only
the effect fixpoint (EM010) sees it reach core/.
"""

from repro.obs.clock_helper import now


def stamp(run):
    return (run, now())
