"""Known-bad fixture: phase literal with no PHASES declaration (EM006)."""


def run(device):
    with device.phases.phase("sort"):
        pass
