"""Fixture: costly public entry point with no em-cost declaration.

``undeclared_scan`` is a module-level public function in ``core/``
whose derived cost is ``N/B`` (via the declared helper); EM017
requires such algorithm entry points to declare their bound.
"""

from repro.em.cost_helpers import scan_input


def undeclared_scan(device, blocks):
    scan_input(device, blocks)
