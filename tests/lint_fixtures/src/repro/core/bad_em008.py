"""Fixture: algorithm code reading tuples through the free peek.

``peek_tuples()`` charges zero block transfers — an algorithm using
it gets its input for free and its measured I/O stops bounding the
paper's cost (EM008).
"""


def shortcut(rel):
    return rel.peek_tuples()
