"""Fixture: algorithm code laundering raw I/O through em/ helpers.

``load`` never mentions ``open`` — the raw I/O is two calls deep
(``read_all`` → ``read_blob`` → ``open``), so the intraprocedural
EM001 passes this file.  Only the whole-program effect fixpoint
(EM007) sees the PHYS_IO reaching a counted-layer function.
"""

from repro.em.io_helpers import read_all


def load(path):
    return read_all(path)
