"""Fixture: a violation silenced by a same-line pragma."""


def slurp(rel):
    return list(rel.data.scan())  # emlint: disable=EM002
