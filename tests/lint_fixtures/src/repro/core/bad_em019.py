"""Fixture: data-dependent costly loop with no declared trip count.

``_drain`` performs charged I/O once per iteration of a loop whose
trip count the analysis cannot see; EM019 demands an
``# em-loop-bound:`` annotation.
"""

from repro.em.cost_helpers import buffered_put


def _drain(device, queue):
    while queue:
        buffered_put(device)
        queue.pop()
