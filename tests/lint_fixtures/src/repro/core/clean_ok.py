"""Fixture: fully compliant core module (no findings expected)."""

#: Phase names this module attributes I/O to (emlint EM006).
PHASES = ("load",)


def load(rel):
    device = rel.device
    with device.phases.phase("load"):
        with device.memory.hold(len(rel)):
            rows = list(rel.data.scan())
    return rows
