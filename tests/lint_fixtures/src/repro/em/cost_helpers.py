"""Fixture helpers: declared charged primitives for emcost fixtures.

Both carry ``# em-cost:`` declarations, so charge sites inside them
are reachable from a cost-declared function (no EM021) and callers
inherit a precise per-call summary.
"""


# em-cost: amortized 1/B -- one block transfer per B calls (buffered)
def buffered_put(device):
    device.charge_write(1)


# em-cost: N/B -- one full scan of the input, one block per transfer
def scan_input(device, blocks):
    # em-loop-bound: N/B -- one input block per iteration
    for _ in blocks:
        device.charge_read(1)
