"""Fixture: raw-I/O helpers in the EM001-exempt ``em/`` layer.

``read_blob`` wraps ``open()``; ``read_all`` wraps ``read_blob``.
Neither triggers the intraprocedural EM001 (em/ simulates the disk,
so it is exempt) — but a ``core/`` caller two hops away must still be
caught by the transitive EM007.
"""


def read_blob(path):
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def read_all(path):
    return read_blob(path)
