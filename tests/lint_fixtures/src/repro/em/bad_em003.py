"""Known-bad fixture: the machine importing an algorithm (EM003)."""

from repro.core import execute


def run(query, instance, emitter):
    return execute(query, instance, emitter)
