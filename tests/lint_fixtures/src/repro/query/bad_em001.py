"""Known-bad fixture: raw OS I/O outside em/ and data/io.py (EM001)."""


def leak(path):
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()
