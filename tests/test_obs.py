"""Tests for the observability layer: tracer, rollups, baselines."""

import json

import pytest

from repro import Device, Instance, Tracer, line_query
from repro.core import CountingEmitter, line3_join
from repro.em import PoolConfig
from repro.obs import (IOBreakdown, UNATTRIBUTED, compare_baselines,
                       load_baseline, write_baseline)
from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.workloads import fig3_line3_instance


def traced_line3(M=4, B=2, pool=None, **tracer_kwargs):
    """Run the fixed L3 instance with a tracer; return (device, tracer)."""
    tracer = Tracer(**tracer_kwargs)
    device = Device(M=M, B=B, buffer_pool=pool, tracer=tracer)
    schemas, data = fig3_line3_instance(32, 32)
    instance = Instance.from_dicts(device, schemas, data)
    line3_join(line_query(3), instance, CountingEmitter())
    device.flush_pool()
    return device, tracer


class TestTracer:
    def test_rollups_sum_to_device_total(self):
        device, tracer = traced_line3()
        s = tracer.summary()
        assert s["io"]["reads"] == device.stats.reads == 325
        assert s["io"]["writes"] == device.stats.writes == 146
        per_phase = sum(v["total"] for v in s["per_phase"].values())
        assert per_phase == device.stats.total
        per_file = sum(v["total"] for v in s["per_file"].values())
        assert per_file == device.stats.total

    def test_per_phase_matches_phase_tracker(self):
        device, tracer = traced_line3()
        s = tracer.summary()
        got = {k: v["total"] for k, v in s["per_phase"].items()}
        assert got == device.phases.report()

    def test_memory_peak_matches_gauge(self):
        device, tracer = traced_line3()
        assert tracer.summary()["memory"]["peak"] == device.memory.peak

    def test_pooled_cache_rollup_matches_cache_stats(self):
        device, tracer = traced_line3(pool=PoolConfig(frames=8))
        c = device.stats.cache
        s = tracer.summary()
        assert s["cache"] == {"hits": c.hits, "misses": c.misses,
                              "evictions": c.evictions,
                              "writebacks": c.writebacks}
        assert c.hits + c.misses == c.logical_reads

    def test_sampling_keeps_rollups_exact(self):
        exact_device, exact = traced_line3()
        device, sampled = traced_line3(sample_every=13)
        assert (device.stats.reads, device.stats.writes) == (
            exact_device.stats.reads, exact_device.stats.writes)
        assert sampled.summary()["io"] == exact.summary()["io"]
        assert sampled.summary()["per_phase"] == \
            exact.summary()["per_phase"]
        ev = sampled.summary()["events"]
        assert ev["sampled_out"] > 0
        assert ev["stored"] < ev["seen"]

    def test_ring_buffer_overwrites_oldest(self):
        device, tracer = traced_line3(capacity=32)
        events = tracer.events()
        assert len(events) == 32
        ev = tracer.summary()["events"]
        assert ev["overwritten"] == ev["seen"] - 32
        # Oldest first, and strictly increasing sequence numbers.
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        # Rollups were unaffected by the overwrites.
        assert tracer.summary()["io"]["total"] == device.stats.total

    def test_export_jsonl_is_parseable(self, tmp_path):
        _, tracer = traced_line3()
        path = tmp_path / "trace.jsonl"
        n = tracer.export_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == n == len(tracer.events())
        reads = writes = 0
        for line in lines:
            obj = json.loads(line)
            assert obj["kind"] in EVENT_KINDS
            reads += obj["kind"] == "read"
            writes += obj["kind"] == "write"
        # Unsampled export carries every physical I/O.
        assert reads == 325 and writes == 146

    def test_io_events_carry_file_page_phase(self):
        _, tracer = traced_line3()
        io_events = [e for e in tracer.events()
                     if e.kind in ("read", "write")]
        assert io_events
        for e in io_events:
            assert e.file and e.page is not None and e.page >= 0

    def test_suspended_io_is_invisible(self):
        tracer = Tracer()
        device = Device(M=16, B=4, tracer=tracer)
        device.file_from_tuples_free([(i,) for i in range(64)])
        assert tracer.seen == 0
        assert tracer.summary()["io"]["total"] == 0

    def test_reset_stats_resets_tracer(self):
        device, tracer = traced_line3()
        device.reset_stats()
        assert tracer.seen == 0 and tracer.events() == []
        assert tracer.summary()["io"]["total"] == 0

    def test_detach_stops_observation(self):
        tracer = Tracer()
        device = Device(M=16, B=4, tracer=tracer)
        f = device.file_from_tuples_free([(i,) for i in range(8)])
        device.detach_tracer()
        list(f.reader())
        assert device.stats.reads == 2 and tracer.seen == 0

    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(sample_every=0)

    def test_event_as_dict_omits_none_fields(self):
        e = TraceEvent(seq=3, kind="mem_peak", value=7)
        assert e.as_dict() == {"seq": 3, "kind": "mem_peak", "value": 7}

    def test_unattributed_phase_key(self):
        tracer = Tracer()
        device = Device(M=16, B=4, tracer=tracer)
        f = device.file_from_tuples_free([(i,) for i in range(8)])
        list(f.reader())
        assert tracer.summary()["per_phase"] == {
            UNATTRIBUTED: IOBreakdown(reads=2).as_dict()}


class TestInclusiveRollups:
    def test_exclusive_sums_to_total_inclusive_overlaps(self):
        device, tracer = traced_line3()
        s = tracer.summary()
        exclusive = sum(v["total"] for v in s["per_phase"].values())
        assert exclusive == device.stats.total
        # Inclusive rows overlap whenever phases nest, so their sum
        # can only meet or exceed the exclusive partition.
        inclusive = sum(v["total"] for v in
                        s["per_phase_inclusive"].values())
        assert inclusive >= exclusive

    def test_inclusive_dominates_exclusive_per_label(self):
        _, tracer = traced_line3()
        s = tracer.summary()
        assert set(s["per_phase"]) == set(s["per_phase_inclusive"])
        for label, b in s["per_phase"].items():
            inc = s["per_phase_inclusive"][label]
            assert inc["reads"] >= b["reads"]
            assert inc["writes"] >= b["writes"]

    def test_nested_charge_goes_to_innermost_exclusively(self):
        from repro.obs import Rollups

        r = Rollups()
        r.record_io("read", "f", ("outer", "inner"))
        r.record_io("write", "f", ("outer",))
        r.record_io("read", "f", ())
        assert {k: v.total for k, v in r.per_phase.items()} == {
            "inner": 1, "outer": 1, UNATTRIBUTED: 1}
        assert {k: v.total for k, v in r.per_phase_inclusive.items()} \
            == {"inner": 1, "outer": 2, UNATTRIBUTED: 1}

    def test_recursive_label_charged_once_inclusively(self):
        from repro.obs import Rollups

        r = Rollups()
        r.record_io("read", "f", ("sort", "merge", "sort"))
        assert r.per_phase["sort"].reads == 1
        assert r.per_phase_inclusive["sort"].reads == 1
        assert r.per_phase_inclusive["merge"].reads == 1

    def test_reset_clears_inclusive_view(self):
        from repro.obs import Rollups

        r = Rollups()
        r.record_io("read", "f", ("p",))
        r.reset()
        assert r.per_phase_inclusive == {}


class TestBaseline:
    def doc(self):
        return {"classes": {
            "line3": {"machine": {"M": 4, "B": 2},
                      "pool_off": {"io": {"reads": 325, "writes": 146,
                                          "total": 471},
                                   "results": 1024,
                                   "phases": {"sort": 200},
                                   "peak_mem": 8}}}}

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_baseline(path, self.doc()["classes"], meta={"note": "t"})
        loaded = load_baseline(path)
        assert loaded["classes"] == self.doc()["classes"]
        assert loaded["meta"] == {"note": "t"}

    def test_load_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999,
                                    "classes": {}}))
        with pytest.raises(ValueError, match="schema_version"):
            load_baseline(path)

    def test_no_drift_on_identical_docs(self):
        assert compare_baselines(self.doc(), self.doc()) == []

    def test_integer_drift_is_reported(self):
        fresh = json.loads(json.dumps(self.doc()))
        fresh["classes"]["line3"]["pool_off"]["io"]["reads"] = 326
        drift = compare_baselines(self.doc(), fresh)
        assert drift == ["line3.pool_off.io.reads: 325 -> 326"]

    def test_missing_class_is_reported_both_ways(self):
        fresh = {"classes": {}}
        assert "not re-measured" in compare_baselines(
            self.doc(), fresh)[0]
        assert "missing from the committed" in compare_baselines(
            fresh, self.doc())[0]

    def test_float_tolerance(self):
        old = {"classes": {"c": {"hit_rate": 0.5}}}
        new = {"classes": {"c": {"hit_rate": 0.5 + 1e-12}}}
        assert compare_baselines(old, new) == []
        new = {"classes": {"c": {"hit_rate": 0.51}}}
        assert compare_baselines(old, new) == [
            "c.hit_rate: 0.5 -> 0.51"]

    def test_committed_table1_baseline_matches_fresh_run(self):
        """The committed BENCH_table1.json must reproduce exactly —
        the same check CI runs, minus the subprocess."""
        import pathlib
        import sys

        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
        sys.path.insert(0, str(bench_dir))
        try:
            from _util import table1_baseline
        finally:
            sys.path.pop(0)
        committed = load_baseline(bench_dir / "BENCH_table1.json")
        fresh = {"classes": table1_baseline()}
        assert compare_baselines(committed, fresh) == []
