"""Pool-off I/O counts must stay byte-identical to the seed accounting.

These exact (reads, writes, results) triples were recorded on fixed
instances *before* the buffer-pool subsystem existed.  With the pool
disabled (the default), the routing through ``Device.charge_read`` /
``charge_write`` must reproduce them exactly — the paper-faithful
accounting is the contract every benchmark number rests on.
"""

from repro import Device, Instance, Tracer
from repro.core import (CountingEmitter, acyclic_join_best, execute,
                        line3_join, nested_loop_join)
from repro.em import PoolConfig
from repro.query import line_query, star_query
from repro.workloads import (fig3_line3_instance, schemas_for,
                             star_worstcase_instance)


def measure(query, schemas, data, M, B, runner, **device_kwargs):
    device = Device(M=M, B=B, **device_kwargs)
    instance = Instance.from_dicts(device, schemas, data)
    emitter = CountingEmitter()
    runner(query, instance, emitter)
    return device.stats.reads, device.stats.writes, emitter.count


class TestSeedCounts:
    def test_two_relation_nested_loop(self):
        schemas = schemas_for(line_query(2))
        data = {"e1": [(i, 0) for i in range(64)],
                "e2": [(0, j) for j in range(64)]}
        got = measure(line_query(2), schemas, data, 16, 4,
                      lambda q, i, e: nested_loop_join(i["e1"], i["e2"], e))
        assert got == (80, 0, 4096)

    def test_line3_algorithm1(self):
        schemas, data = fig3_line3_instance(32, 32)
        got = measure(line_query(3), schemas, data, 4, 2,
                      lambda q, i, e: line3_join(q, i, e))
        assert got == (325, 146, 1024)

    def test_star_best_branch(self):
        schemas, data = star_worstcase_instance([16, 16])
        got = measure(star_query(2), schemas, data, 4, 2,
                      lambda q, i, e: acyclic_join_best(q, i, e, limit=16))
        assert got == (210, 157, 256)

    def test_tracer_does_not_change_any_count(self):
        """A tracer is a pure observer: with one attached, every seed
        triple stays byte-identical — pool off and pool on."""
        cases = [
            (line_query(2), schemas_for(line_query(2)),
             {"e1": [(i, 0) for i in range(64)],
              "e2": [(0, j) for j in range(64)]}, 16, 4,
             lambda q, i, e: nested_loop_join(i["e1"], i["e2"], e)),
            (line_query(3), *fig3_line3_instance(32, 32), 4, 2,
             lambda q, i, e: line3_join(q, i, e)),
            (star_query(2), *star_worstcase_instance([16, 16]), 4, 2,
             lambda q, i, e: acyclic_join_best(q, i, e, limit=16)),
        ]
        for query, schemas, data, M, B, runner in cases:
            plain = measure(query, schemas, data, M, B, runner)
            traced = measure(query, schemas, data, M, B, runner,
                             tracer=Tracer())
            assert traced == plain
            pooled = measure(query, schemas, data, M, B, runner,
                             buffer_pool=PoolConfig(frames=4))
            pooled_traced = measure(query, schemas, data, M, B, runner,
                                    buffer_pool=PoolConfig(frames=4),
                                    tracer=Tracer(sample_every=3))
            assert pooled_traced == pooled

    def test_planner_execute_line3(self):
        schemas, data = fig3_line3_instance(16, 16)
        device = Device(M=8, B=2)
        instance = Instance.from_dicts(device, schemas, data)
        emitter = CountingEmitter()
        report = execute(line_query(3), instance, emitter)
        assert report.algorithm == "algorithm-1"
        assert (device.stats.reads, device.stats.writes,
                emitter.count) == (127, 80, 256)
