"""Smoke tests for the example scripts.

The quickstart runs end-to-end (it is fast); the heavier examples are
compile-checked and their entry points imported, which catches API
drift without paying their full runtime in the unit suite.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


class TestExamples:
    @pytest.mark.parametrize("name", [
        "quickstart.py", "star_schema_warehouse.py",
        "path_queries_graph.py", "planner_tour.py", "explain_join.py",
        "table1.py",
    ])
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)

    def test_explain_join_runs(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "explain_join.py")],
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "Theorem 3 bound report" in proc.stdout
        assert "gap 2.00" in proc.stdout

    def test_table1_runs(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "table1.py")],
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "Table 1 of the paper" in proc.stdout
        assert "yes (Thm 7)" in proc.stdout

    def test_quickstart_runs(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "algorithm         : algorithm-1" in proc.stdout
        assert "join results      : 65536" in proc.stdout
