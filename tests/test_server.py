"""The service layer: catalog, sessions, shared pool, HTTP surface.

The headline assertion is the ISSUE's acceptance criterion: a query
run through a server session reports I/O counters *byte-identical* to
a solo run — checked against the committed ``BENCH_table1.json``
``line3_planner`` class, not against a fresh measurement, so a
regression in either path trips it.
"""

import json
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.em import BufferPoolError
from repro.query import line_query
from repro.server import (AdmissionRejected, AdmissionTimeout, Catalog,
                          CatalogError, QueryService, ServiceError,
                          SessionClosed, start_http_server)
from repro.workloads import fig3_line3_instance

BENCH_TABLE1 = (Path(__file__).resolve().parent.parent
                / "benchmarks" / "BENCH_table1.json")

M, B = 8, 2  # the pinned line3_planner machine


def pinned_line3():
    doc = json.loads(BENCH_TABLE1.read_text(encoding="utf-8"))
    return doc["classes"]["line3_planner"]


def line3_service(**kwargs) -> QueryService:
    svc = QueryService(M=256, B=B, default_query_M=M, **kwargs)
    schemas, data = fig3_line3_instance(16, 16)
    svc.add_instance("default", schemas, data)
    return svc


# ----------------------------------------------------------- catalog


class TestCatalog:
    LAYOUTS = {"r": ("a", "b")}
    ROWS = {"r": [(1, 2), (3, 4)]}

    def test_add_get_and_refcount(self):
        cat = Catalog()
        cat.add("d", self.LAYOUTS, self.ROWS)
        entry = cat.acquire("d")
        assert entry.pins == 1 and cat.stats["hits"] == 1
        assert entry.rows["r"] == [(1, 2), (3, 4)]
        cat.release(entry)
        assert entry.pins == 0

    def test_unknown_instance(self):
        with pytest.raises(CatalogError):
            Catalog().acquire("nope")

    def test_duplicate_requires_replace(self):
        cat = Catalog()
        cat.add("d", self.LAYOUTS, self.ROWS)
        with pytest.raises(CatalogError):
            cat.add("d", self.LAYOUTS, self.ROWS)
        e2 = cat.add("d", self.LAYOUTS, self.ROWS, replace=True)
        assert e2.generation == 2  # stale caches can tell
        assert cat.stats["replaced"] == 1

    def test_layouts_and_rows_validated(self):
        with pytest.raises(ValueError):
            Catalog().add("d", {"r": ("a", "b")}, {"s": []})
        with pytest.raises(ValueError):
            Catalog().add("d", {"r": ("a", "b")}, {"r": [(1, 2, 3)]})

    def test_eviction_skips_pinned(self):
        cat = Catalog(capacity=2)
        cat.add("a", self.LAYOUTS, self.ROWS)
        held = cat.acquire("a")  # pins a, refreshes its recency
        cat.add("b", self.LAYOUTS, self.ROWS)
        cat.add("c", self.LAYOUTS, self.ROWS)  # b is LRU and unpinned
        assert "a" in cat and "b" not in cat and "c" in cat
        cat.release(held)
        cat.add("d", self.LAYOUTS, self.ROWS)  # a LRU, now evictable
        assert "a" not in cat
        assert cat.stats["evictions"] == 2

    def test_force_evict_only_when_unpinned(self):
        cat = Catalog()
        cat.add("d", self.LAYOUTS, self.ROWS)
        held = cat.acquire("d")
        assert cat.evict("d") is False  # refused: in use
        assert cat.evict("d", force=True) is True
        cat.release(held)  # releasing a ghost entry still works

    def test_load_csv_matches_solo_normalization(self, tmp_path):
        p = tmp_path / "r.csv"
        p.write_text("a,b\n3,4\n1,2\n3,4\n", encoding="utf-8")
        cat = Catalog()
        entry = cat.load_csv("d", {"r": str(p)})
        # Same normalization as repro.data.io.load_csv: typed, deduped,
        # sorted — so served instances equal solo-loaded ones.
        assert entry.rows["r"] == [(1, 2), (3, 4)]
        assert cat.stats["loads"] == 1


# ------------------------------------------- the byte-identity proof


class TestByteIdentity:
    def test_session_counters_equal_pinned_solo_run(self):
        pinned = pinned_line3()
        assert pinned["machine"] == {"M": M, "B": B}
        with line3_service() as svc:
            s = svc.session("alice")
            r = s.execute(line_query(3), M=M, B=B)
        want = pinned["pool_off"]
        assert r.io["reads"] == want["io"]["reads"]
        assert r.io["writes"] == want["io"]["writes"]
        assert r.io["total"] == want["io"]["total"]
        assert r.results == want["results"]
        assert r.peak_mem == want["peak_mem"]
        assert r.phases == want["phases"]

    def test_repeated_queries_stay_identical(self):
        """A long-lived device must report every query as its first."""
        want = pinned_line3()["pool_off"]
        with line3_service() as svc:
            s = svc.session("alice")
            for _ in range(3):
                r = s.execute(line_query(3), M=M, B=B)
                assert r.io["total"] == want["io"]["total"]
                assert r.phases == want["phases"]
                assert r.peak_mem == want["peak_mem"]

    def test_sessions_do_not_see_each_other(self):
        with line3_service() as svc:
            a = svc.session("a")
            b = svc.session("b")
            ra = a.execute(line_query(3), M=M, B=B)
            rb = b.execute(line_query(3), M=M, B=B)
        assert ra.io == rb.io  # same query, same cost, no bleed
        assert ra.session == "a" and rb.session == "b"

    def test_result_shape_and_algorithm(self):
        with line3_service() as svc:
            r = svc.execute(line_query(3), M=M, B=B)
        assert r.shape == "line"
        assert "1" in r.algorithm  # Algorithm 1 handles L3
        assert r.machine == {"M": M, "B": B}
        assert r.admission["need"] == M


# ------------------------------------------------------- shared pool


class TestSharedPool:
    def test_second_session_reads_for_free(self):
        with line3_service(pool_frames=4096) as svc:
            a = svc.session("a")
            ra = a.execute(line_query(3), M=M, B=B)
            b = svc.session("b")
            rb = b.execute(line_query(3), M=M, B=B)
        # a faulted the 17 base pages in; b misses nothing.
        assert ra.cache["misses"] == 17
        assert rb.cache["misses"] == 0
        assert rb.cache["hits"] == 127  # every logical read hit
        assert rb.io["reads"] == 0
        assert rb.io["writes"] == 80  # own intermediates still cost

    def test_logical_reads_match_pool_off_physical(self):
        pinned = pinned_line3()["pool_off"]
        with line3_service(pool_frames=4096) as svc:
            r = svc.execute(line_query(3), M=M, B=B)
        assert (r.cache["hits"] + r.cache["misses"]
                == pinned["io"]["reads"])
        assert r.results == pinned["results"]

    def test_different_B_session_skips_the_pool(self):
        with line3_service(pool_frames=64) as svc:
            r = svc.execute(line_query(3), M=16, B=4)  # B != pool B
        assert r.cache is None  # no view attached: pool-off semantics

    def test_pin_relation_survives_other_sessions(self):
        with line3_service(pool_frames=64) as svc:
            a = svc.session("a")
            pages = a.pin_relation("e1", M=M, B=B)
            assert pages == 8  # 16 tuples at B=2
            assert svc.pool.stats()["pins"]["a"]["pins"] == 8
            b = svc.session("b")
            b.execute(line_query(3), M=M, B=B)  # churns the pool
            # a's pinned pages never left residency: re-reading them
            # through a's device is all hits.
            ra = a.execute(line_query(3), M=M, B=B)
            assert ra.results == 256
            svc.close_session("a")
            assert svc.pool.stats()["pins"] == {}  # pins died with a

    def test_pin_leak_regression_close_releases_only_own_pins(self):
        """Satellite: closing one session must unpin its frames and
        nobody else's."""
        with line3_service(pool_frames=64) as svc:
            a = svc.session("a")
            b = svc.session("b")
            a.pin_relation("e1", M=M, B=B)
            b.pin_relation("e3", M=M, B=B)
            svc.close_session("a")
            pins = svc.pool.stats()["pins"]
            assert "a" not in pins
            assert pins["b"]["pins"] == 8  # b's pins untouched
            svc.close_session("b")
            assert svc.pool.stats()["pins"] == {}

    def test_pin_cap_fairness(self):
        """One session cannot pin the pool out from under the others."""
        with line3_service(pool_frames=16, max_pin_share=0.25) as svc:
            a = svc.session("a")
            with pytest.raises(BufferPoolError, match="fairness cap"):
                a.pin_relation("e1", M=M, B=B)  # 8 pages > 4-frame cap

    def test_pin_relation_needs_a_pool(self):
        with line3_service() as svc:
            with pytest.raises(RuntimeError, match="shared pool"):
                svc.session("a").pin_relation("e1", M=M, B=B)


# --------------------------------------------------------- admission


class TestAdmissionThroughSessions:
    def test_impossible_need_rejected(self):
        with line3_service() as svc:  # global budget 256
            with pytest.raises(AdmissionRejected):
                svc.execute(line_query(3), M=512, B=B)

    def test_queue_timeout_surfaces(self):
        with line3_service() as svc:
            hog = svc.admission.acquire(256)  # hold the whole budget
            with pytest.raises(AdmissionTimeout):
                svc.execute(line_query(3), M=M, B=B, timeout=0.05)
            svc.admission.release(hog)
            r = svc.execute(line_query(3), M=M, B=B, timeout=5)
            assert r.results == 256

    def test_wait_time_reported(self):
        with line3_service() as svc:
            r = svc.execute(line_query(3), M=M, B=B)
            assert r.admission["wait_ms"] >= 0


# ---------------------------------------------------------- sessions


class TestSessionsAndService:
    def test_unknown_relation_and_layout_mismatch(self):
        with line3_service() as svc:
            s = svc.session("a")
            with pytest.raises(CatalogError, match="e9"):
                s.execute("e9(v1,v2)", M=M, B=B)
            with pytest.raises(CatalogError, match="attributes"):
                s.execute("e1(v1,wrong)", M=M, B=B)

    def test_closed_session_refuses_queries(self):
        with line3_service() as svc:
            s = svc.session("a")
            svc.close_session("a")
            with pytest.raises(SessionClosed):
                s.execute(line_query(3), M=M, B=B)
            with pytest.raises(ServiceError):
                svc.close_session("a")  # already gone

    def test_session_rejoin_by_name(self):
        with line3_service() as svc:
            a1 = svc.session("alice")
            a1.execute(line_query(3), M=M, B=B)
            a2 = svc.session("alice")
            assert a2 is a1  # the connection abstraction
            assert a2.queries == 1

    def test_one_shot_sessions_are_reaped(self):
        with line3_service() as svc:
            svc.execute(line_query(3), M=M, B=B)
            assert svc.sessions() == []

    def test_execute_batch_order_and_counters(self):
        with line3_service() as svc:
            rs = svc.execute_batch(
                [{"query": line_query(3), "M": M, "B": B}
                 for _ in range(6)], concurrency=3)
        assert len(rs) == 6
        assert all(r.io["total"] == 207 for r in rs)  # pool off: solo
        assert {r.session for r in rs} == {"w0", "w1", "w2"}

    def test_execute_batch_error_propagates(self):
        with line3_service() as svc:
            good = {"query": line_query(3), "M": M, "B": B}
            with pytest.raises(ServiceError, match="request 1"):
                svc.execute_batch([good, {"query": "e9(v1,v2)"}, good])

    def test_text_query_and_collected_rows(self):
        with line3_service() as svc:
            r = svc.execute("e1(v1,v2), e2(v2,v3), e3(v3,v4)",
                            M=M, B=B, collect=True)
        assert r.results == 256 and len(r.rows) == 256
        doc = r.as_dict()
        assert doc["rows"][0].keys() == {"e1", "e2", "e3"}

    def test_closed_service_refuses_everything(self):
        svc = line3_service()
        svc.close()
        with pytest.raises(ServiceError):
            svc.session("a")
        with pytest.raises(ServiceError):
            svc.execute_batch([{"query": line_query(3)}])

    def test_service_metrics_aggregate(self):
        with line3_service() as svc:
            svc.execute(line_query(3), M=M, B=B)
            svc.execute(line_query(3), M=M, B=B)
            text = svc.prometheus()
        assert "repro_service_queries 2" in text
        assert "repro_service_shape_line 2" in text

    def test_stats_document(self):
        with line3_service(pool_frames=64) as svc:
            svc.session("alice").execute(line_query(3), M=M, B=B)
            doc = svc.stats()
        assert doc["machine"]["M"] == 256
        assert doc["admission"]["budget"] == 256
        assert doc["catalog"]["entries"][0]["name"] == "default"
        assert doc["pool"]["frames"] == 64
        assert any(s["name"] == "alice" for s in doc["sessions"])


# --------------------------------------------------------------- http


@pytest.fixture(scope="module")
def http_service():
    svc = line3_service(pool_frames=4096)
    server = start_http_server(svc, port=0)
    base = f"http://127.0.0.1:{server.server_port}"
    yield svc, base
    server.shutdown()
    svc.close()


def _post(base, doc, path="/query"):
    req = urllib.request.Request(
        base + path, data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.load(resp)


class TestHttp:
    QUERY = "e1(v1,v2), e2(v2,v3), e3(v3,v4)"

    def test_query_round_trip(self, http_service):
        _, base = http_service
        status, doc = _post(base, {"query": self.QUERY, "M": M, "B": B})
        assert status == 200
        assert doc["results"] == 256
        assert doc["shape"] == "line"
        assert doc["io"]["writes"] == 80

    def test_sticky_session(self, http_service):
        _, base = http_service
        for _ in range(2):
            status, doc = _post(base, {"query": self.QUERY, "M": M,
                                       "B": B, "session": "web"})
            assert status == 200 and doc["session"] == "web"

    def test_metrics_and_health(self, http_service):
        _, base = http_service
        with urllib.request.urlopen(base + "/metrics",
                                    timeout=10) as resp:
            assert resp.status == 200
            assert "version=0.0.4" in resp.headers["Content-Type"]
            body = resp.read().decode("utf-8")
        assert "repro_service_queries" in body
        with urllib.request.urlopen(base + "/healthz",
                                    timeout=10) as resp:
            assert json.load(resp)["ok"] is True

    def test_stats_and_catalog_routes(self, http_service):
        _, base = http_service
        for path in ("/stats", "/catalog"):
            with urllib.request.urlopen(base + path, timeout=10) as resp:
                assert resp.status == 200
                json.load(resp)  # valid JSON

    def test_unknown_route_404_lists_routes(self, http_service):
        _, base = http_service
        with pytest.raises(urllib.error.HTTPError) as e:
            urllib.request.urlopen(base + "/nope", timeout=10)
        assert e.value.code == 404
        assert "/metrics" in json.load(e.value)["routes"]

    def test_bad_body_400(self, http_service):
        _, base = http_service
        with pytest.raises(urllib.error.HTTPError) as e:
            _post(base, {"not_a_query": 1})
        assert e.value.code == 400

    def test_unknown_relation_400(self, http_service):
        _, base = http_service
        with pytest.raises(urllib.error.HTTPError) as e:
            _post(base, {"query": "e9(v1,v2)", "M": M, "B": B})
        assert e.value.code == 400

    def test_non_numeric_machine_params_400(self, http_service):
        _, base = http_service
        for doc in ({"query": self.QUERY, "M": "eight", "B": B},
                    {"query": self.QUERY, "M": M, "B": B,
                     "timeout_s": "soon"},
                    {"query": self.QUERY, "M": [8], "B": B}):
            with pytest.raises(urllib.error.HTTPError) as e:
                _post(base, doc)
            assert e.value.code == 400
            assert "bad request body" in json.load(e.value)["error"]

    def test_internal_error_is_500_json_not_dropped(self, http_service):
        svc, base = http_service
        original = svc.execute

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        svc.execute = boom
        try:
            with pytest.raises(urllib.error.HTTPError) as e:
                _post(base, {"query": self.QUERY, "M": M, "B": B})
            assert e.value.code == 500
            doc = json.load(e.value)
            assert doc["kind"] == "internal"
            assert "RuntimeError" in doc["error"]
        finally:
            svc.execute = original
        # The handler survived; the service keeps answering.
        status, doc = _post(base, {"query": self.QUERY, "M": M, "B": B})
        assert status == 200 and doc["results"] == 256

    def test_internal_keyerror_is_500_not_400(self, http_service):
        svc, base = http_service
        original = svc.execute

        def missing(*args, **kwargs):
            raise KeyError("frame_table")

        svc.execute = missing
        try:
            with pytest.raises(urllib.error.HTTPError) as e:
                _post(base, {"query": self.QUERY, "M": M, "B": B})
            assert e.value.code == 500  # used to masquerade as 400
        finally:
            svc.execute = original

    def test_impossible_need_422(self, http_service):
        _, base = http_service
        with pytest.raises(urllib.error.HTTPError) as e:
            _post(base, {"query": self.QUERY, "M": 4096, "B": B})
        assert e.value.code == 422
        assert json.load(e.value)["kind"] == "rejected"

    def test_busy_503_with_retry_after(self, http_service):
        svc, base = http_service
        hog = svc.admission.acquire(256)  # hold the whole budget
        try:
            with pytest.raises(urllib.error.HTTPError) as e:
                _post(base, {"query": self.QUERY, "M": M, "B": B,
                             "timeout_s": 0.05})
            assert e.value.code == 503
            assert e.value.headers["Retry-After"] == "1"
        finally:
            svc.admission.release(hog)
