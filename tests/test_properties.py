"""Cross-algorithm property tests on random acyclic hypergraphs.

The strongest correctness statement in the suite: on arbitrary random
Berge-acyclic queries and instances, every external-memory algorithm
(Algorithm 2 under several choosers, the planner, the Yannakakis
baseline) emits exactly the oracle's result set, with exact counts (no
duplicates) — and structural invariants (Lemma 1, GenS well-formedness)
hold along the way.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Device, Instance
from repro.core import (AssignmentEmitter, acyclic_join, execute,
                        smallest_leaf_chooser, yannakakis_em)
from repro.internal import generic_join, join_query, yannakakis
from repro.query import gens_all, is_berge_acyclic, JoinQuery
from repro.query.classify import has_island_bud_or_leaf


@st.composite
def acyclic_query_and_data(draw, max_edges=5, max_rows=10, domain=3):
    """A random Berge-acyclic query with random data.

    Edges are grown attached to at most one existing attribute, which
    keeps the attribute-edge incidence graph a forest.
    """
    n_edges = draw(st.integers(1, max_edges))
    edges: dict[str, frozenset[str]] = {}
    attrs: list[str] = []
    counter = 0
    for i in range(n_edges):
        members: set[str] = set()
        if attrs and draw(st.booleans()):
            members.add(draw(st.sampled_from(attrs)))
        n_fresh = draw(st.integers(0 if members else 1, 2))
        for _ in range(n_fresh):
            a = f"x{counter}"
            counter += 1
            attrs.append(a)
            members.add(a)
        edges[f"e{i}"] = frozenset(members)
    query = JoinQuery(edges=edges)

    seed = draw(st.integers(0, 10**6))
    rng = random.Random(seed)
    schemas = {e: tuple(sorted(a)) for e, a in edges.items()}
    data = {}
    for e, cols in schemas.items():
        n_rows = draw(st.integers(1, max_rows))
        rows = {tuple(rng.randrange(domain) for _ in cols)
                for _ in range(n_rows)}
        data[e] = sorted(rows)
    return query, schemas, data


@settings(max_examples=40, deadline=None)
@given(acyclic_query_and_data())
def test_acyclic_join_matches_oracle_on_random_hypergraphs(case):
    query, schemas, data = case
    assert is_berge_acyclic(query)
    oracle = join_query(query, data, schemas)
    device = Device(M=4, B=2)
    inst = Instance.from_dicts(device, schemas, data)
    em = AssignmentEmitter(schemas)
    acyclic_join(query, inst, em)
    assert em.assignment_set() == oracle
    assert em.count == len(oracle)


@settings(max_examples=25, deadline=None)
@given(acyclic_query_and_data(max_edges=4))
def test_planner_and_baseline_agree_everywhere(case):
    query, schemas, data = case
    oracle = join_query(query, data, schemas)

    device = Device(M=4, B=2)
    inst = Instance.from_dicts(device, schemas, data)
    em1 = AssignmentEmitter(schemas)
    execute(query, inst, em1, plan_limit=4)
    assert em1.assignment_set() == oracle
    assert em1.count == len(oracle)

    device2 = Device(M=4, B=2)
    inst2 = Instance.from_dicts(device2, schemas, data)
    em2 = AssignmentEmitter(schemas)
    yannakakis_em(query, inst2, em2)
    assert em2.assignment_set() == oracle
    assert em2.count == len(oracle)


@settings(max_examples=25, deadline=None)
@given(acyclic_query_and_data(max_edges=4))
def test_internal_algorithms_agree(case):
    query, schemas, data = case
    a = join_query(query, data, schemas)
    b = generic_join(query, data, schemas)
    c = yannakakis(query, data, schemas)
    assert a == b == c


@settings(max_examples=40, deadline=None)
@given(acyclic_query_and_data(max_edges=5))
def test_structural_invariants(case):
    query, _, _ = case
    # Lemma 1 on the query and on every edge-deletion residue.
    q = query
    while q.edges:
        assert has_island_bud_or_leaf(q)
        q = q.drop_edges([q.edge_names[0]])


@settings(max_examples=15, deadline=None)
@given(acyclic_query_and_data(max_edges=4))
def test_gens_branches_are_wellformed(case):
    query, _, _ = case
    all_edges = frozenset(query.edges)
    branches = gens_all(query)
    assert branches
    for branch in branches:
        # every S is a set of edges of Q; the empty set is present
        assert frozenset() in branch
        for s in branch:
            assert s <= all_edges


@settings(max_examples=20, deadline=None)
@given(acyclic_query_and_data(max_edges=4))
def test_chooser_independence(case):
    """Any leaf-choice strategy yields the same result set."""
    query, schemas, data = case
    device = Device(M=4, B=2)
    inst = Instance.from_dicts(device, schemas, data)
    em1 = AssignmentEmitter(schemas)
    acyclic_join(query, inst, em1)

    device2 = Device(M=4, B=2)
    inst2 = Instance.from_dicts(device2, schemas, data)
    em2 = AssignmentEmitter(schemas)
    acyclic_join(query, inst2, em2, chooser=smallest_leaf_chooser)
    assert em1.assignment_set() == em2.assignment_set()
    assert em1.count == em2.count
