"""Tests for emflow: call graph, effect fixpoint, EM007–EM011.

The interprocedural pass is whole-program, so most tests build a tiny
tree under ``tmp_path`` and lint it with :func:`lint_paths`; the
call-graph internals (SCC order, resolution, conservatism) are tested
against :func:`build_program` directly.
"""

import ast
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (Baseline, build_program, check_source,
                        compact_effect_signatures,
                        compare_effect_signatures, evaluate, lint_paths,
                        signature_table, write_baseline)
from repro.lint.callgraph import UNKNOWN, strongly_connected
from repro.lint.effects import EFFECTS_SCHEMA_VERSION

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
FIXTURE_SRC = FIXTURES / "src"


def tree(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path/src/repro and lint."""
    for rel, source in files.items():
        f = tmp_path / "src" / "repro" / rel
        f.parent.mkdir(parents=True, exist_ok=True)
        f.write_text(source)
    return lint_paths([tmp_path / "src"], root=tmp_path)


def program_of(files, **kwargs):
    """Build a Program straight from in-memory sources."""
    modules = []
    for rel, source in files.items():
        path = f"src/repro/{rel}"
        pkg = tuple(Path(rel).parts)
        modules.append((path, source, ast.parse(source), pkg))
    return build_program(modules, **kwargs)


# ------------------------------------------------- the acceptance proof


class TestEm007Transitivity:
    """The ISSUE's acceptance criterion: a helper wrapping open() two
    calls deep is flagged by EM007 while the same code passes the
    intraprocedural EM001."""

    HELPER = FIXTURE_SRC / "repro/em/io_helpers.py"
    CALLER = FIXTURE_SRC / "repro/core/bad_em007.py"

    def test_intraprocedural_em001_passes_both_files(self):
        for f in (self.HELPER, self.CALLER):
            rel = f.relative_to(FIXTURES).as_posix()
            assert check_source(f.read_text(), rel) == []

    def test_whole_program_em007_flags_the_caller(self):
        result = lint_paths([self.CALLER, self.HELPER], root=FIXTURES)
        (v,) = result.violations
        assert v.code == "EM007"
        assert v.path.endswith("bad_em007.py")
        assert v.scope == "load"
        # The witness names the helper the PHYS_IO arrived through.
        assert "read_all" in v.message

    def test_helper_alone_is_clean(self):
        # Without the core/ caller there is no counted-layer reach.
        assert lint_paths([self.HELPER], root=FIXTURES).clean


# ------------------------------------------------------ the call graph


class TestCallGraph:
    def test_same_module_and_import_edges(self):
        prog = program_of({
            "em/a.py": "def f():\n    return g()\ndef g():\n    return 0\n",
            "core/b.py": ("from repro.em.a import f\n"
                          "def h():\n    return f()\n"),
        })
        assert prog.nodes["repro.em.a.f"].edges == ["repro.em.a.g"]
        assert prog.nodes["repro.core.b.h"].edges == ["repro.em.a.f"]

    def test_relative_import_resolved(self):
        prog = program_of({
            "core/a.py": "def f():\n    return 0\n",
            "core/b.py": ("from .a import f\n"
                          "def g():\n    return f()\n"),
        })
        assert prog.nodes["repro.core.b.g"].edges == ["repro.core.a.f"]

    def test_package_reexport_followed(self):
        prog = program_of({
            "core/__init__.py": "from repro.core.planner import execute\n",
            "core/planner.py": "def execute():\n    return 0\n",
            "cli.py": ("from repro.core import execute\n"
                       "def run():\n    return execute()\n"),
        })
        assert prog.nodes["repro.cli.run"].edges == [
            "repro.core.planner.execute"]

    def test_self_method_resolved_to_own_class(self):
        prog = program_of({
            "em/a.py": ("class C:\n"
                        "    def f(self):\n        return self.g()\n"
                        "    def g(self):\n        return 0\n"),
        })
        assert prog.nodes["repro.em.a.C.f"].edges == ["repro.em.a.C.g"]

    def test_attr_call_unions_over_all_methods(self):
        prog = program_of({
            "em/a.py": ("class C:\n"
                        "    def probe(self):\n        return 0\n"),
            "em/b.py": ("class D:\n"
                        "    def probe(self):\n        return 1\n"),
            "core/c.py": "def f(x):\n    return x.probe()\n",
        })
        assert sorted(prog.nodes["repro.core.c.f"].edges) == [
            "repro.em.a.C.probe", "repro.em.b.D.probe"]

    def test_constructor_edge_to_init(self):
        prog = program_of({
            "em/a.py": ("class C:\n"
                        "    def __init__(self):\n        self.x = 1\n"),
            "core/b.py": ("from repro.em.a import C\n"
                          "def f():\n    return C()\n"),
        })
        assert prog.nodes["repro.core.b.f"].edges == [
            "repro.em.a.C.__init__"]

    def test_nested_defs_fold_into_enclosing_function(self):
        prog = program_of({
            "core/a.py": ("def outer(rel):\n"
                          "    def inner():\n"
                          "        return rel.peek_tuples()\n"
                          "    return inner\n"),
        })
        assert "repro.core.a.outer" in prog.nodes
        assert "repro.core.a.outer.inner" not in prog.nodes
        assert "FREE_PEEK" in prog.nodes["repro.core.a.outer"].intrinsic

    def test_unknown_callee_is_conservative_top(self):
        prog = program_of({
            "core/a.py": ("import fancylib\n"
                          "def f(cb):\n"
                          "    return cb() + fancylib.go()\n"),
        })
        fn = prog.nodes["repro.core.a.f"]
        assert UNKNOWN in fn.intrinsic
        assert sorted(fn.unknown_calls) == ["cb", "fancylib.go"]

    def test_unknown_propagates_but_fires_no_rule(self, tmp_path):
        result = tree(tmp_path, {
            "core/a.py": ("import fancylib\n"
                          "def helper():\n    return fancylib.go()\n"
                          "def algo():\n    return helper()\n"),
        })
        assert result.clean
        sig = result.signatures["functions"]["repro.core.a.algo"]
        assert sig["inherited"] == [UNKNOWN]

    def test_pure_builtins_and_modules_are_not_unknown(self):
        prog = program_of({
            "core/a.py": ("import json, math\n"
                          "def f(xs):\n"
                          "    return json.dumps(sorted(xs)) + "
                          "str(math.log(len(xs)))\n"),
        })
        fn = prog.nodes["repro.core.a.f"]
        assert fn.unknown_calls == []
        assert fn.intrinsic == set()


# ---------------------------------------------------- SCC and fixpoint


class TestFixpoint:
    def test_scc_order_is_reverse_topological(self):
        prog = program_of({
            "em/a.py": ("def a():\n    return b()\n"
                        "def b():\n    return c()\n"
                        "def c():\n    return 0\n"),
        })
        order = [comp[0] for comp in strongly_connected(prog)]
        assert order.index("repro.em.a.c") < order.index("repro.em.a.b")
        assert order.index("repro.em.a.b") < order.index("repro.em.a.a")

    def test_chain_propagates_effects_transitively(self):
        prog = program_of({
            "obs/a.py": ("def a():\n    return b()\n"
                         "def b():\n    return c()\n"
                         "def c():\n    return open('x').read()\n"),
        })
        evaluate(prog)
        assert "PHYS_IO" in prog.nodes["repro.obs.a.a"].inherited
        assert "PHYS_IO" in prog.nodes["repro.obs.a.b"].inherited
        assert "PHYS_IO" in prog.nodes["repro.obs.a.c"].intrinsic

    def test_mutual_recursion_converges_and_shares_effects(self):
        prog = program_of({
            "obs/a.py": ("def ping(n):\n"
                         "    return pong(n - 1) if n else open('x')\n"
                         "def pong(n):\n"
                         "    return ping(n - 1) if n else 0\n"),
        })
        evaluate(prog)
        ping = prog.nodes["repro.obs.a.ping"]
        pong = prog.nodes["repro.obs.a.pong"]
        assert "PHYS_IO" in ping.intrinsic
        assert "PHYS_IO" in pong.inherited
        # The SCC members see each other exactly once — no divergence.
        comp = [set(c) for c in strongly_connected(prog)
                if len(c) == 2]
        assert comp == [{"repro.obs.a.ping", "repro.obs.a.pong"}]

    def test_self_recursion_does_not_double_report(self, tmp_path):
        result = tree(tmp_path, {
            "query/a.py": ("def walk(path):\n"
                           "    open(path)\n"
                           "    return walk(path)\n"),
        })
        # EM001 for the intrinsic open; no EM007 echo from recursion.
        assert [v.code for v in result.violations] == ["EM001"]

    def test_recursive_chain_to_io_flags_whole_cycle(self, tmp_path):
        result = tree(tmp_path, {
            "core/a.py": ("from repro.em.h import leak\n"
                          "def f(n):\n"
                          "    return g(n - 1) if n else leak()\n"
                          "def g(n):\n"
                          "    return f(n)\n"),
            "em/h.py": "def leak():\n    return open('x')\n",
        })
        assert sorted((v.code, v.scope) for v in result.violations) == [
            ("EM007", "f"), ("EM007", "g")]


# ----------------------------------------------- declarations and EM011


class TestDeclarations:
    def test_declaration_absorbs_and_stops_propagation(self, tmp_path):
        result = tree(tmp_path, {
            "core/a.py": (
                "def peek(rel):  # em-effects: FREE_PEEK -- sanctioned\n"
                "    return rel.peek_tuples()\n"
                "def algo(rel):\n"
                "    return peek(rel)\n"),
        })
        assert result.clean
        sig = result.signatures["functions"]["repro.core.a.peek"]
        assert sig["justification"] == "sanctioned"

    def test_undeclared_core_peek_flagged_everywhere(self, tmp_path):
        result = tree(tmp_path, {
            "core/a.py": ("def peek(rel):\n"
                          "    return rel.peek_tuples()\n"
                          "def algo(rel):\n"
                          "    return peek(rel)\n"),
        })
        assert sorted((v.code, v.scope) for v in result.violations) == [
            ("EM008", "algo"), ("EM008", "peek")]

    def test_drifted_declaration_fails(self, tmp_path):
        result = tree(tmp_path, {
            "query/a.py": (
                "def f():  # em-effects: PHYS_IO -- was true once\n"
                "    return 0\n"),
        })
        (v,) = result.violations
        assert v.code == "EM011" and "drifted" in v.message

    def test_unknown_effect_name_fails(self, tmp_path):
        result = tree(tmp_path, {
            "query/a.py": ("def f():  # em-effects: TURBO\n"
                           "    return 0\n"),
        })
        (v,) = result.violations
        assert v.code == "EM011" and "TURBO" in v.message

    def test_host_only_barrier_blocks_em007(self, tmp_path):
        result = tree(tmp_path, {
            "obs/w.py": (
                "def dump(p):  # em-effects: HOST_ONLY -- report\n"
                "    open(p)  # emlint: disable=EM001\n"),
            "analysis/a.py": ("from repro.obs.w import dump\n"
                              "def report(p):\n    return dump(p)\n"),
        })
        assert result.clean

    def test_counted_layer_calling_host_only_fails(self, tmp_path):
        result = tree(tmp_path, {
            "obs/w.py": (
                "def dump(p):  # em-effects: HOST_ONLY -- report\n"
                "    open(p)  # emlint: disable=EM001\n"),
            "em/a.py": ("from repro.obs.w import dump\n"
                        "def flush(p):\n    return dump(p)\n"),
        })
        (v,) = result.violations
        assert v.code == "EM011" and v.scope == "flush"


# ------------------------------------------------------------ baseline


class TestBaselineStaleness:
    def test_rename_makes_baseline_entry_stale(self, tmp_path):
        src = tmp_path / "src" / "repro" / "core" / "a.py"
        src.parent.mkdir(parents=True)
        src.write_text("def old_name(rel):\n"
                       "    return rel.peek_tuples()\n")
        found = lint_paths([src], root=tmp_path)
        assert [v.scope for v in found.violations] == ["old_name"]
        b = Baseline.from_violations(found.violations,
                                     justification="accepted")
        # Renaming the function is a *different* violation: the old
        # entry must go stale and the new finding must resurface.
        src.write_text("def new_name(rel):\n"
                       "    return rel.peek_tuples()\n")
        renamed = lint_paths([src], root=tmp_path, baseline=b)
        assert [v.scope for v in renamed.violations] == ["new_name"]
        (stale,) = renamed.stale_baseline
        assert stale["scope"] == "old_name" and stale["code"] == "EM008"

    def test_effect_findings_are_baselineable(self, tmp_path):
        paths = [FIXTURE_SRC / "repro/core/bad_em007.py",
                 FIXTURE_SRC / "repro/em/io_helpers.py"]
        found = lint_paths(paths, root=FIXTURES)
        b = Baseline.from_violations(found.violations,
                                     justification="accepted for now")
        bl = tmp_path / "b.json"
        write_baseline(b, bl)
        again = lint_paths(paths, root=FIXTURES,
                           baseline=Baseline(entries=b.entries))
        assert again.clean and not again.stale_baseline


# ----------------------------------------------------- signature table


class TestSignatureTable:
    def test_schema_key_set_is_stable(self):
        prog = program_of({
            "em/a.py": "def f():\n    return open('x')\n",
        })
        evaluate(prog)
        doc = signature_table(prog)
        assert set(doc) == {"schema_version", "functions", "summary"}
        assert doc["schema_version"] == EFFECTS_SCHEMA_VERSION
        entry = doc["functions"]["repro.em.a.f"]
        assert {"path", "line", "layer", "intrinsic", "inherited",
                "effects", "declared", "calls",
                "unknown_calls"} <= set(entry)
        assert set(doc["summary"]) == {"functions",
                                       "with_unknown_calls",
                                       "by_effect"}

    def test_cli_effects_flag_writes_table(self, tmp_path, capsys):
        out = tmp_path / "sig.json"
        rc = main(["lint", str(FIXTURE_SRC / "repro/core/clean_ok.py"),
                   "--root", str(FIXTURES), "--no-baseline",
                   "--effects", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == EFFECTS_SCHEMA_VERSION
        assert doc["summary"]["functions"] >= 1

    def test_cli_effects_stdout(self, capsys):
        rc = main(["lint", str(FIXTURE_SRC / "repro/core/clean_ok.py"),
                   "--root", str(FIXTURES), "--no-baseline",
                   "--effects", "-", "--format", "human"])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"schema_version"' in out


# ------------------------------------------------- effects drift gate


class TestEffectsDriftGate:
    """The CI gate on the inferred-signature table: an effect change
    without a matching ``# em-effects:`` declaration update fails."""

    CLEAN = ("def f():\n"
             "    return 1\n")
    LEAKY = ("def f():\n"
             "    return open('x')\n")
    DECLARED = ("def f():  # em-effects: PHYS_IO -- now loads bytes\n"
                "    return open('x')\n")

    def _table(self, tmp_path, source):
        return tree(tmp_path, {"em/mod.py": source}).signatures

    def test_compact_round_trip(self, tmp_path):
        table = self._table(tmp_path, self.CLEAN)
        compact = compact_effect_signatures(table)
        assert compact["schema_version"] == EFFECTS_SCHEMA_VERSION
        assert compact["signatures"]["repro.em.mod.f"] == {
            "effects": [], "declared": []}

    def test_identical_tables_pass(self, tmp_path):
        table = self._table(tmp_path, self.CLEAN)
        committed = compact_effect_signatures(table)
        failures, notices = compare_effect_signatures(committed, table)
        assert failures == [] and notices == []

    def test_undeclared_effect_change_fails(self, tmp_path):
        committed = compact_effect_signatures(
            self._table(tmp_path, self.CLEAN))
        new = self._table(tmp_path / "b", self.LEAKY)
        failures, _ = compare_effect_signatures(committed, new)
        (failure,) = failures
        assert "repro.em.mod.f" in failure
        assert "em-effects" in failure

    def test_declared_effect_change_is_a_notice(self, tmp_path):
        committed = compact_effect_signatures(
            self._table(tmp_path, self.CLEAN))
        new = self._table(tmp_path / "b", self.DECLARED)
        failures, notices = compare_effect_signatures(committed, new)
        assert failures == []
        assert any("repro.em.mod.f" in n for n in notices)

    def test_added_and_removed_are_notices(self, tmp_path):
        committed = compact_effect_signatures(
            self._table(tmp_path, self.CLEAN))
        new = tree(tmp_path / "b", {"em/other.py": self.CLEAN}).signatures
        failures, notices = compare_effect_signatures(committed, new)
        assert failures == []
        assert any("removed" in n for n in notices)
        assert any("added" in n for n in notices)

    def test_cli_write_then_check(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro" / "em"
        src.mkdir(parents=True)
        (src / "mod.py").write_text(self.CLEAN)
        baseline = tmp_path / "effects-baseline.json"
        rc = main(["lint", str(tmp_path / "src"), "--root", str(tmp_path),
                   "--no-baseline",
                   "--write-effects-baseline", str(baseline)])
        assert rc == 0
        doc = json.loads(baseline.read_text())
        assert "repro.em.mod.f" in doc["signatures"]
        rc = main(["lint", str(tmp_path / "src"), "--root", str(tmp_path),
                   "--no-baseline", "--check-effects", str(baseline)])
        assert rc == 0
        assert "checked against" in capsys.readouterr().out

    def test_cli_check_fails_on_drift(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro" / "em"
        src.mkdir(parents=True)
        (src / "mod.py").write_text(self.CLEAN)
        baseline = tmp_path / "effects-baseline.json"
        assert main(["lint", str(tmp_path / "src"), "--root",
                     str(tmp_path), "--no-baseline",
                     "--write-effects-baseline", str(baseline)]) == 0
        (src / "mod.py").write_text(self.LEAKY)
        rc = main(["lint", str(tmp_path / "src"), "--root", str(tmp_path),
                   "--no-baseline", "--check-effects", str(baseline)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_cli_check_bad_baseline_path(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro" / "em"
        src.mkdir(parents=True)
        (src / "mod.py").write_text(self.CLEAN)
        rc = main(["lint", str(tmp_path / "src"), "--root", str(tmp_path),
                   "--no-baseline",
                   "--check-effects", str(tmp_path / "missing.json")])
        assert rc == 2

    def test_schema_version_move_is_a_notice(self, tmp_path):
        table = self._table(tmp_path, self.CLEAN)
        committed = compact_effect_signatures(table)
        committed["schema_version"] = "0.0"
        failures, notices = compare_effect_signatures(committed, table)
        assert failures == []
        assert any("schema version" in n for n in notices)


# ------------------------------------------------- class hierarchy


class TestClassHierarchy:
    """Inheritance-aware resolution of self/cls/super() calls shrinks
    the UNKNOWN set (this PR's lint satellite)."""

    BASE = ("class Base:\n"
            "    def run(self):\n"
            "        return open('x')\n")

    def test_inherited_self_call_resolves_to_parent(self):
        prog = program_of({
            "em/base.py": self.BASE,
            "em/sub.py": ("from repro.em.base import Base\n"
                          "class Sub(Base):\n"
                          "    def go(self):\n"
                          "        return self.run()\n"),
        })
        fn = prog.nodes["repro.em.sub.Sub.go"]
        assert fn.edges == ["repro.em.base.Base.run"]
        assert fn.unknown_calls == []

    def test_flat_mode_falls_back_to_method_index(self):
        # The same call without hierarchy: `run` is still found through
        # the flat name index (union over all methods so named), so the
        # hierarchy's win here is precision, not reach.
        prog = program_of({
            "em/base.py": self.BASE,
            "em/sub.py": ("from repro.em.base import Base\n"
                          "class Sub(Base):\n"
                          "    def go(self):\n"
                          "        return self.run()\n"),
        }, class_hierarchy=False)
        fn = prog.nodes["repro.em.sub.Sub.go"]
        assert "repro.em.base.Base.run" in fn.edges

    def test_super_call_resolves_above(self):
        prog = program_of({
            "em/base.py": self.BASE,
            "em/sub.py": ("from repro.em.base import Base\n"
                          "class Sub(Base):\n"
                          "    def run(self):\n"
                          "        return super().run()\n"),
        })
        fn = prog.nodes["repro.em.sub.Sub.run"]
        # Not a self-loop: super() skips the override.
        assert fn.edges == ["repro.em.base.Base.run"]
        assert UNKNOWN not in fn.intrinsic

    def test_cls_constructor_idiom(self):
        prog = program_of({
            "em/c.py": ("class C:\n"
                        "    def __init__(self):\n"
                        "        self.x = open('x')\n"
                        "    @classmethod\n"
                        "    def make(cls):\n"
                        "        return cls()\n"),
        })
        fn = prog.nodes["repro.em.c.C.make"]
        assert fn.edges == ["repro.em.c.C.__init__"]
        assert UNKNOWN not in fn.intrinsic

    def test_pure_external_base_methods(self):
        prog = program_of({
            "lint/v.py": ("import ast\n"
                          "class V(ast.NodeVisitor):\n"
                          "    def visit_Call(self, node):\n"
                          "        self.generic_visit(node)\n"),
        })
        fn = prog.nodes["repro.lint.v.V.visit_Call"]
        assert fn.unknown_calls == []
        assert UNKNOWN not in fn.intrinsic

    def test_unknown_count_drops_on_this_repo(self):
        """The satellite's acceptance check, run on the real sources:
        hierarchy-aware resolution strictly shrinks the set of
        functions with UNKNOWN in their own (intrinsic) effects."""
        root = Path(__file__).resolve().parent.parent
        modules = []
        for f in sorted((root / "src").rglob("*.py")):
            if "__pycache__" in f.parts:
                continue
            rel = f.relative_to(root).as_posix()
            source = f.read_text(encoding="utf-8")
            pkg = tuple(f.relative_to(root / "src" / "repro").parts)
            modules.append((rel, source, ast.parse(source), pkg))
        flat = build_program(modules, class_hierarchy=False)
        hier = build_program(modules, class_hierarchy=True)

        def unknowns(prog):
            return sum(1 for fn in prog.nodes.values()
                       if UNKNOWN in fn.intrinsic)

        assert unknowns(hier) < unknowns(flat)


# -------------------------------------------------------- EM002 widen


class TestWidenedEm002:
    @pytest.mark.parametrize("layer", ["core", "query", "analysis"])
    def test_policed_layers_flagged(self, layer):
        src = "def f(rel):\n    return list(rel.data.scan())\n"
        (v,) = check_source(src, f"src/repro/{layer}/x.py")
        assert v.code == "EM002"

    @pytest.mark.parametrize("layer", ["workloads", "obs", "internal"])
    def test_unpoliced_layers_not_flagged(self, layer):
        src = "def f(rel):\n    return list(rel.data.scan())\n"
        assert check_source(src, f"src/repro/{layer}/x.py") == []
