"""Tests for Algorithm 2 (AcyclicJoin) — the paper's main contribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Device, Instance
from repro.core import (AssignmentEmitter, CountingEmitter, acyclic_join,
                        acyclic_join_best, clone_instance, end_chooser,
                        enumerate_plans, first_leaf_chooser,
                        largest_leaf_chooser, plan_chooser,
                        smallest_leaf_chooser)
from repro.internal import join_query
from repro.query import (JoinQuery, dumbbell_query, line_query,
                         lollipop_query, star_query, triangle_query)
from repro.workloads import schemas_for, skewed_instance, uniform_instance

from conftest import make_random_data, run_and_compare


QUERY_ZOO = {
    "L2": line_query(2),
    "L3": line_query(3),
    "L4": line_query(4),
    "L5": line_query(5),
    "star2": star_query(2),
    "star4": star_query(4),
    "lollipop3": lollipop_query(3),
    "dumbbell": dumbbell_query(3, 6),
}


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(QUERY_ZOO))
    def test_uniform_random(self, name):
        q = QUERY_ZOO[name]
        schemas, data = make_random_data(q, 25, 5, seed=hash(name) % 997)
        run_and_compare(q, schemas, data, acyclic_join)

    @pytest.mark.parametrize("name", ["L3", "L4", "star2", "lollipop3"])
    def test_skewed_heavy_values(self, name):
        # Small M makes the hot values heavy, exercising lines 14-20.
        q = QUERY_ZOO[name]
        schemas, data = skewed_instance(q, 40, 8, hot_fraction=0.7,
                                        hot_values=1, seed=3)
        run_and_compare(q, schemas, data, acyclic_join, M=4, B=2)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6), st.sampled_from(sorted(QUERY_ZOO)))
    def test_property_random_instances(self, seed, name):
        q = QUERY_ZOO[name]
        schemas, data = make_random_data(q, 12, 4, seed)
        run_and_compare(q, schemas, data, acyclic_join, M=8, B=2)

    def test_empty_relation(self):
        q = line_query(3)
        schemas = schemas_for(q)
        data = {"e1": [(1, 2)], "e2": [], "e3": [(3, 4)]}
        run_and_compare(q, schemas, data, acyclic_join)

    def test_empty_query_emits_nothing(self, small_device):
        em = CountingEmitter()
        acyclic_join(JoinQuery(edges={}), Instance({}), em)
        assert em.count == 0

    def test_single_relation_emits_every_tuple(self, small_device):
        q = line_query(1)
        inst = Instance.from_dicts(small_device, {"e1": ("v1", "v2")},
                                   {"e1": [(1, 2), (3, 4)]})
        em = CountingEmitter()
        acyclic_join(q, inst, em)
        assert em.count == 2


class TestStructuralPaths:
    def test_island_path_cross_product(self, small_device):
        q = JoinQuery(edges={"e1": frozenset({"a", "b"}),
                             "e2": frozenset({"c", "d"})})
        schemas = {"e1": ("a", "b"), "e2": ("c", "d")}
        data = {"e1": [(i, i) for i in range(20)],
                "e2": [(j, j) for j in range(20)]}
        run_and_compare(q, schemas, data, acyclic_join, M=8, B=2)

    def test_bud_created_by_heavy_peel(self):
        # Star with one heavy core value: peeling a petal with a heavy
        # join value removes the attribute, turning sibling petals of a
        # 2-attr core into buds.
        q = star_query(2)
        schemas = schemas_for(q)
        data = {"e0": [(0, j) for j in range(12)],       # (v1, v2)
                "e1": [(i, 0) for i in range(12)],        # (u1, v1)
                "e2": [(i, j) for i in range(3) for j in range(4)]}
        # e1 layout is sorted(("v1","u1")) = ("u1","v1"); e0 ("v1","v2")
        run_and_compare(q, schemas, data, acyclic_join, M=4, B=2)

    def test_pre_existing_bud_with_reconstruction(self, small_device):
        # A query containing a bud from the start: its tuple must appear
        # in every emitted result (emit-model exactness).
        q = JoinQuery(edges={"b": frozenset({"v"}),
                             "e1": frozenset({"v", "u"})})
        schemas = {"b": ("v",), "e1": ("u", "v")}
        data = {"b": [(1,), (2,)],
                "e1": [(10, 1), (11, 1), (12, 3)]}
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        acyclic_join(q, inst, em)
        oracle = join_query(q, data, schemas)
        assert em.assignment_set() == oracle
        assert em.count == len(oracle) == 2

    def test_bud_filter_blocks_unmatched_values(self, small_device):
        # The correctness fix: bud values must constrain the join even
        # though the paper's pseudocode drops the bud silently.
        q = JoinQuery(edges={"b": frozenset({"v"}),
                             "e1": frozenset({"v", "u"}),
                             "e2": frozenset({"u", "w"})})
        schemas = {"b": ("v",), "e1": ("u", "v"), "e2": ("u", "w")}
        data = {"b": [(1,)],
                "e1": [(10, 1), (20, 2)],      # (20, 2) must not join
                "e2": [(10, 5), (20, 6)]}
        run_and_compare(q, schemas, data, acyclic_join, M=4, B=2)


class TestChoosers:
    def test_all_choosers_agree_on_results(self):
        q = line_query(5)
        schemas, data = make_random_data(q, 20, 4, seed=8)
        oracle = join_query(q, data, schemas)
        for chooser in (first_leaf_chooser, smallest_leaf_chooser,
                        largest_leaf_chooser, end_chooser("L"),
                        end_chooser("R"), end_chooser("LRLR")):
            device = Device(M=8, B=2)
            inst = Instance.from_dicts(device, schemas, data)
            em = AssignmentEmitter(schemas)
            acyclic_join(q, inst, em, chooser=chooser)
            assert em.assignment_set() == oracle
            assert em.count == len(oracle)

    def test_invalid_chooser_rejected(self, small_device):
        q = line_query(3)
        schemas, data = make_random_data(q, 10, 3, seed=0)
        inst = Instance.from_dicts(small_device, schemas, data)
        with pytest.raises(ValueError):
            acyclic_join(q, inst, CountingEmitter(),
                         chooser=lambda _q, _i: "e2")  # e2 is not a leaf


class TestValidation:
    def test_cyclic_query_rejected(self, small_device):
        q = triangle_query()
        schemas, data = make_random_data(q, 5, 3, seed=0)
        inst = Instance.from_dicts(small_device, schemas, data)
        with pytest.raises(Exception):
            acyclic_join(q, inst, CountingEmitter())

    def test_missing_relation_rejected(self, small_device):
        q = line_query(2)
        inst = Instance.from_dicts(small_device, {"e1": ("v1", "v2")},
                                   {"e1": [(1, 2)]})
        with pytest.raises(ValueError):
            acyclic_join(q, inst, CountingEmitter())

    def test_misaligned_schema_rejected(self, small_device):
        q = line_query(2)
        inst = Instance.from_dicts(
            small_device, {"e1": ("v1", "zzz"), "e2": ("v2", "v3")},
            {"e1": [(1, 2)], "e2": [(2, 3)]})
        with pytest.raises(ValueError):
            acyclic_join(q, inst, CountingEmitter())


class TestPlans:
    def test_plan_counts_for_paper_examples(self):
        # L3: two branches of GenS; four structure plans (two per end
        # choice at each stage) collapse to 4.
        assert len(enumerate_plans(line_query(3))) == 4
        assert len(enumerate_plans(line_query(4))) == 12
        assert len(enumerate_plans(line_query(5))) == 52

    def test_limit_truncates_deterministically(self):
        a = enumerate_plans(line_query(6), limit=10)
        b = enumerate_plans(line_query(6), limit=10)
        assert a == b and len(a) == 10

    def test_plans_disagree_on_io_but_not_results(self):
        q = line_query(4)
        # asymmetric sizes make peel order matter
        schemas = schemas_for(q)
        data = {"e1": [(i, i % 2) for i in range(40)],
                "e2": [(i % 2, i % 3) for i in range(6)],
                "e3": [(i % 3, i) for i in range(40)],
                "e4": [(i, i) for i in range(40)]}
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        best = acyclic_join_best(q, inst)
        ios = {r.io for r in best.runs}
        counts = {r.emitted for r in best.runs}
        assert len(counts) == 1
        assert best.best.io == min(ios)
        assert best.round_robin_io == len(best.runs) * best.best.io

    def test_best_run_emits_into_caller_emitter(self):
        q = line_query(3)
        schemas, data = make_random_data(q, 15, 4, seed=4)
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        before = device.stats.total
        acyclic_join_best(q, inst, em)
        assert em.assignment_set() == join_query(q, data, schemas)
        assert device.stats.total > before  # best branch charged here

    def test_clone_instance_copies_freely(self):
        q = line_query(2)
        schemas, data = make_random_data(q, 10, 3, seed=1)
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        dev2, inst2 = clone_instance(inst)
        assert dev2.stats.total == 0
        assert sorted(inst2["e1"].peek_tuples()) == sorted(data["e1"])


class TestMemoryBudget:
    def test_peak_memory_within_constant_times_m(self):
        # The paper's model grants c·M memory; the recursion must not
        # hold more than a small constant times M.
        q = line_query(4)
        schemas, data = make_random_data(q, 60, 6, seed=7)
        for M in (8, 16):
            device = Device(M=M, B=2)
            inst = Instance.from_dicts(device, schemas, data)
            acyclic_join(q, inst, CountingEmitter())
            assert device.memory.peak <= 8 * M
