"""The query flight recorder, per-tenant quotas, and /debug endpoints.

Two honesty properties anchor this file:

* **observational purity** — I/O counters are byte-identical with
  recording on (the default) and off, checked against the pinned
  ``BENCH_table1.json`` counters like the server byte-identity tests;
* **loss honesty** — the ring buffer reports what it *saw* separately
  from what it still *stores* (``seen == stored + overwritten``), so a
  truncated history can never masquerade as a complete one.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.server import (AdmissionController, AdmissionRejected,
                          AdmissionTimeout, FlightRecorder, QueryService,
                          Quota, start_http_server)
from repro.workloads import fig3_line3_instance

BENCH_TABLE1 = (Path(__file__).resolve().parent.parent
                / "benchmarks" / "BENCH_table1.json")

M, B = 8, 2  # the pinned line3_planner machine
QUERY = "e1(v1,v2), e2(v2,v3), e3(v3,v4)"


def line3_service(**kwargs) -> QueryService:
    svc = QueryService(M=256, B=B, default_query_M=M, **kwargs)
    schemas, data = fig3_line3_instance(16, 16)
    svc.add_instance("default", schemas, data)
    return svc


def pinned_line3():
    doc = json.loads(BENCH_TABLE1.read_text(encoding="utf-8"))
    return doc["classes"]["line3_planner"]


# ------------------------------------------------------ the recorder


class TestFlightRecorder:
    def _record(self, rec, i=0, **over):
        fields = dict(session="s", owner="s", query="q", instance="d",
                      status="ok", arrival_unix=1000.0 + i,
                      wait_ms=0.0, run_ms=1.0, total_ms=1.0 + i)
        fields.update(over)
        return rec.record(**fields)

    def test_ids_are_sequential_and_queryable(self):
        rec = FlightRecorder(capacity=8)
        ids = [self._record(rec, i).id for i in range(3)]
        assert ids == [1, 2, 3]
        assert rec.get(2).arrival_unix == 1001.0
        assert rec.get(99) is None

    def test_overflow_honesty_seen_vs_stored(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            self._record(rec, i)
        assert rec.seen == 10
        assert rec.stored == 4
        assert rec.overwritten == 6
        assert rec.seen == rec.stored + rec.overwritten
        # The ring keeps the NEWEST records, newest first.
        assert [r.id for r in rec.records()] == [10, 9, 8, 7]
        # Overwritten ids are gone, not silently renumbered.
        assert rec.get(1) is None and rec.get(7) is not None
        s = rec.stats()
        assert s["seen"] == 10 and s["stored"] == 4
        assert s["overwritten"] == 6 and s["capacity"] == 4

    def test_records_n_and_slow_filter(self):
        rec = FlightRecorder(capacity=16, slow_ms=5.0)
        for i in range(8):
            self._record(rec, i)  # total_ms = 1 + i
        assert len(rec.records(3)) == 3
        slow = rec.records(slow_only=True)
        assert [r.total_ms for r in slow] == [8.0, 7.0, 6.0, 5.0]
        assert all(r.slow for r in slow)
        assert rec.stats()["slow"] == 4

    def test_rejects_nonsense_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(capacity=4, slow_ms=-1.0)

    def test_record_as_dict_and_summary(self):
        rec = FlightRecorder()
        r = self._record(rec, io={"total": 7, "reads": 5, "writes": 2},
                         error=None, cache=None)
        doc = r.as_dict()
        assert doc["id"] == 1 and doc["status"] == "ok"
        assert "cache" not in doc and "error" not in doc
        assert r.summary()["io_total"] == 7

    def test_concurrent_recording_loses_nothing(self):
        rec = FlightRecorder(capacity=4096)

        def pound(k):
            for i in range(100):
                self._record(rec, i)

        threads = [threading.Thread(target=pound, args=(k,))
                   for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.seen == 800
        assert len({r.id for r in rec.records()}) == 800


# ------------------------------------------- recording through sessions


class TestFlightThroughService:
    def test_ok_record_carries_the_whole_lifecycle(self):
        with line3_service() as svc:
            r = svc.execute(QUERY, session="alice", M=M, B=B)
            rec = svc.flight.get(r.flight_id)
        assert rec.status == "ok"
        assert rec.session == "alice" and rec.owner == "alice"
        assert rec.query == QUERY and rec.instance == "default"
        assert rec.shape == "line" and rec.results == r.results
        assert rec.io == r.io and rec.phases == r.phases
        assert rec.peak_mem == r.peak_mem
        assert rec.machine == {"M": M, "B": B}
        assert rec.admission["outcome"] == "granted"
        assert rec.admission["queue_depth_at_arrival"] == 0
        assert rec.arrival_unix > 0
        assert rec.total_ms >= rec.wait_ms

    def test_result_admission_gains_outcome_and_depth(self):
        with line3_service() as svc:
            r = svc.execute(QUERY, M=M, B=B)
        assert r.admission["outcome"] == "granted"
        assert r.admission["queue_depth_at_arrival"] == 0
        assert r.admission["need"] == M
        assert r.as_dict()["flight_id"] == r.flight_id

    def test_rejected_and_timeout_queries_leave_records(self):
        with line3_service() as svc:
            with pytest.raises(AdmissionRejected):
                svc.execute(QUERY, session="big", M=4096, B=B)
            hog = svc.admission.acquire(256)
            try:
                with pytest.raises(AdmissionTimeout):
                    svc.execute(QUERY, session="slow", M=M, B=B,
                                timeout=0.01)
            finally:
                svc.admission.release(hog)
            records = svc.flight.records()
        by_status = {r.status: r for r in records}
        rej = by_status["rejected"]
        assert rej.owner == "big" and rej.results == 0
        assert rej.admission["outcome"] == "rejected"
        assert "budget" in rej.error
        tmo = by_status["timeout"]
        assert tmo.admission["outcome"] == "timeout"
        assert tmo.wait_ms > 0

    def test_execution_error_leaves_an_error_record(self):
        with line3_service() as svc:
            session = svc.session("boom")
            original = session._run

            def explode(*a, **k):
                raise RuntimeError("kaput")

            session._run = explode
            with pytest.raises(RuntimeError):
                session.execute(QUERY, M=M, B=B)
            session._run = original
            (rec,) = svc.flight.records()
        assert rec.status == "error"
        assert rec.error == "kaput"
        assert rec.admission["outcome"] == "granted"

    def test_recording_off_means_no_recorder_and_no_ids(self):
        with line3_service(flight_records=0) as svc:
            r = svc.execute(QUERY, M=M, B=B)
            assert svc.flight is None
            assert r.flight_id is None
            assert "flight_id" not in r.as_dict()
            assert svc.stats()["flight"] is None

    def test_io_counters_byte_identical_recording_on_and_off(self):
        """The acceptance criterion: the recorder observes, never
        charges — counters match the pinned baseline either way."""
        pinned = pinned_line3()["pool_off"]
        for flight_records in (256, 0):
            with line3_service(flight_records=flight_records) as svc:
                r = svc.execute(QUERY, M=M, B=B)
            assert r.results == pinned["results"]
            assert r.io["total"] == pinned["io"]["total"]
            assert r.io["reads"] == pinned["io"]["reads"]
            assert r.io["writes"] == pinned["io"]["writes"]

    def test_ring_overflow_through_the_service(self):
        with line3_service(flight_records=3) as svc:
            for _ in range(5):
                svc.execute(QUERY, session="s", M=M, B=B)
            s = svc.flight.stats()
        assert s["seen"] == 5 and s["stored"] == 3
        assert s["overwritten"] == 2

    def test_slow_query_threshold_flags_and_counts(self):
        with line3_service(slow_query_ms=0.0) as svc:
            r = svc.execute(QUERY, M=M, B=B)  # everything is "slow"
            rec = svc.flight.get(r.flight_id)
            assert rec.slow
            assert svc.flight.stats()["slow"] == 1
        with line3_service(slow_query_ms=1e9) as svc:
            r = svc.execute(QUERY, M=M, B=B)
            assert not svc.flight.get(r.flight_id).slow


# ----------------------------------------------------------- quotas


class TestQuotas:
    def test_quota_validation(self):
        with pytest.raises(ValueError):
            Quota(max_inflight=0)
        with pytest.raises(ValueError):
            Quota(max_share=0.0)
        with pytest.raises(ValueError):
            Quota(max_share=1.5)

    def test_max_inflight_blocks_only_that_owner(self):
        adm = AdmissionController(100, default_timeout=0.05)
        adm.set_quota("a", max_inflight=1)
        g1 = adm.acquire(10, owner="a")
        # Owner "a" is at its cap: its next acquire times out...
        with pytest.raises(AdmissionTimeout):
            adm.acquire(10, owner="a", timeout=0.01)
        # ...but owner "b" sails past the quota-blocked tenant.
        g2 = adm.acquire(10, owner="b")
        adm.release(g1)
        g3 = adm.acquire(10, owner="a")  # freed: under the cap again
        adm.release(g2)
        adm.release(g3)
        assert adm.snapshot()["granted"] == 0

    def test_max_share_caps_budget_not_concurrency(self):
        adm = AdmissionController(100)
        adm.set_quota("a", max_share=0.2)
        g1 = adm.acquire(10, owner="a")
        g2 = adm.acquire(10, owner="a")  # 20 = exactly the share
        with pytest.raises(AdmissionTimeout):
            adm.acquire(1, owner="a", timeout=0.01)
        # A need that can never fit the share is rejected outright.
        with pytest.raises(AdmissionRejected):
            adm.acquire(21, owner="a")
        assert adm.stats["quota_rejections"] == 1
        adm.release(g1)
        adm.release(g2)

    def test_quota_blocked_head_does_not_stall_fifo_queue(self):
        adm = AdmissionController(100, policy="fifo")
        adm.set_quota("a", max_inflight=1)
        g = adm.acquire(10, owner="a")
        got = []

        def want(owner):
            got.append((owner, adm.acquire(10, owner=owner)))

        ta = threading.Thread(target=want, args=("a",))
        ta.start()
        for _ in range(500):  # wait until "a" is actually parked
            if adm.snapshot()["queue_depth"] == 1:
                break
            time.sleep(0.01)
        # "a" is parked behind its quota; "b" must be served anyway
        # even though "a" is ahead of it in the fifo queue.
        gb = adm.acquire(10, owner="b", timeout=5)
        adm.release(g)  # un-parks "a"
        ta.join(timeout=5)
        assert [o for o, _ in got] == ["a"]
        adm.release(gb)
        adm.release(got[0][1])

    def test_default_quota_and_clearing(self):
        adm = AdmissionController(
            100, default_timeout=0.05,
            default_quota=Quota(max_inflight=1))
        g = adm.acquire(10, owner="anyone")
        with pytest.raises(AdmissionTimeout):
            adm.acquire(10, owner="anyone", timeout=0.01)
        # An explicit per-owner quota overrides the default...
        adm.set_quota("anyone", max_inflight=2)
        g2 = adm.acquire(10, owner="anyone")
        # ...and clearing it falls back to the default.
        adm.set_quota("anyone")
        assert adm.quota_for("anyone").max_inflight == 1
        adm.release(g)
        adm.release(g2)

    def test_quota_state_in_snapshot_and_flight_record(self):
        with line3_service() as svc:
            svc.set_quota("alice", max_inflight=2, max_share=0.5)
            r = svc.execute(QUERY, session="alice", M=M, B=B)
            rec = svc.flight.get(r.flight_id)
            snap = svc.admission.snapshot()
        assert r.admission["quota"]["max_inflight"] == 2
        assert rec.admission["quota"]["max_share"] == 0.5
        assert snap["quotas"]["alice"]["max_inflight"] == 2
        assert snap["quotas"]["alice"]["inflight"] == 0  # released

    def test_tenant_overrides_session_as_owner(self):
        with line3_service() as svc:
            svc.set_quota("team-a", max_inflight=4)
            r = svc.execute(QUERY, session="s1", tenant="team-a",
                            M=M, B=B)
            rec = svc.flight.get(r.flight_id)
        assert rec.owner == "team-a" and rec.session == "s1"
        assert r.admission["quota"]["max_inflight"] == 4

    def test_unquotaed_owner_reports_no_quota_noise(self):
        with line3_service() as svc:
            r = svc.execute(QUERY, session="free", M=M, B=B)
        assert "quota" not in r.admission


# --------------------------------------- concurrent metrics under batch


class TestConcurrentMetrics:
    def test_execute_batch_folds_every_query_exactly_once(self):
        n = 48
        with line3_service() as svc:
            reqs = [{"query": QUERY, "M": M, "B": B} for _ in range(n)]
            results = svc.execute_batch(reqs, concurrency=8)
            m = svc.metrics.as_dict()
            fs = svc.flight.stats()
        assert len(results) == n
        assert m["counters"]["service.queries"]["value"] == n
        assert m["counters"]["service.results"]["value"] == sum(
            r.results for r in results)
        hist = m["histograms"]["service.query_wall_ms"]
        assert hist["count"] == n
        wait = m["histograms"]["service.admission_wait_ms"]
        assert wait["count"] == n
        assert fs["seen"] == n  # one flight record per query, no races

    def test_histogram_observation_is_thread_safe(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        h = reg.histogram("t.ms")
        c = reg.counter("t.n")
        lock = threading.Lock()

        def pound():
            for i in range(1000):
                with lock:
                    h.observe(float(i % 97))
                    c.inc()

        threads = [threading.Thread(target=pound) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.as_dict()["histograms"]["t.ms"]["count"] == 8000
        assert reg.as_dict()["counters"]["t.n"]["value"] == 8000


# ------------------------------------------------------ HTTP surface


@pytest.fixture(scope="module")
def http_service():
    svc = line3_service(flight_records=8, slow_query_ms=1e9)
    server = start_http_server(svc, port=0)
    base = f"http://127.0.0.1:{server.server_port}"
    yield svc, base
    server.shutdown()
    svc.close()


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.status, json.load(resp)


def _post(base, doc, path="/query"):
    req = urllib.request.Request(
        base + path, data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.load(resp)


class TestDebugEndpoints:
    def test_debug_queries_lists_what_ran(self, http_service):
        _, base = http_service
        _, r = _post(base, {"query": QUERY, "M": M, "B": B,
                            "session": "dbg"})
        status, doc = _get(base, "/debug/queries")
        assert status == 200
        assert doc["seen"] >= 1
        assert doc["returned"] == len(doc["records"]) == doc["stored"]
        newest = doc["records"][0]
        assert newest["id"] == r["flight_id"]
        assert newest["status"] == "ok"
        assert newest["io_total"] == r["io"]["total"]

    def test_debug_query_by_id_full_record(self, http_service):
        _, base = http_service
        _, r = _post(base, {"query": QUERY, "M": M, "B": B})
        status, doc = _get(base, f"/debug/queries/{r['flight_id']}")
        assert status == 200
        assert doc["query"] == QUERY
        assert doc["io"] == r["io"] and doc["phases"] == r["phases"]
        assert doc["admission"]["outcome"] == "granted"

    def test_debug_queries_n_cap_and_bad_inputs(self, http_service):
        _, base = http_service
        for _ in range(3):
            _post(base, {"query": QUERY, "M": M, "B": B})
        _, doc = _get(base, "/debug/queries?n=2")
        assert doc["returned"] == 2
        with pytest.raises(urllib.error.HTTPError) as e:
            _get(base, "/debug/queries/not-a-number")
        assert e.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as e:
            _get(base, "/debug/queries/999999")
        assert e.value.code == 404
        assert "overwritten" in json.load(e.value)["error"]

    def test_stats_exposes_flight_and_queue_depth(self, http_service):
        _, base = http_service
        _, doc = _get(base, "/stats")
        assert "queue_depth" in doc["admission"]
        assert doc["flight"]["capacity"] == 8
        assert doc["flight"]["seen"] >= 1

    def test_metrics_exposes_latency_and_wait_histograms(self,
                                                         http_service):
        _, base = http_service
        _post(base, {"query": QUERY, "M": M, "B": B})
        with urllib.request.urlopen(base + "/metrics",
                                    timeout=10) as resp:
            body = resp.read().decode("utf-8")
        assert "repro_service_query_wall_ms_bucket" in body
        assert "repro_service_admission_wait_ms_bucket" in body
        assert "repro_flight_records_seen" in body

    def test_tenant_field_reaches_admission(self, http_service):
        svc, base = http_service
        svc.set_quota("http-team", max_inflight=3)
        _, r = _post(base, {"query": QUERY, "M": M, "B": B,
                            "tenant": "http-team"})
        assert r["admission"]["quota"]["max_inflight"] == 3

    def test_debug_on_recorder_off_service_is_404(self):
        svc = line3_service(flight_records=0)
        server = start_http_server(svc, port=0)
        base = f"http://127.0.0.1:{server.server_port}"
        try:
            with pytest.raises(urllib.error.HTTPError) as e:
                _get(base, "/debug/queries")
            assert e.value.code == 404
        finally:
            server.shutdown()
            svc.close()
