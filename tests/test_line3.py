"""Tests for Algorithm 1 (the 3-relation line join, Section 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import line3_bound, nested_loop_cascade_bound
from repro.core import line3_join
from repro.query import line_query, star_query
from repro.workloads import fig3_line3_instance, schemas_for

from conftest import make_random_data, run_and_compare


class TestCorrectness:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6))
    def test_random_instances(self, seed):
        q = line_query(3)
        schemas, data = make_random_data(q, 30, 6, seed)
        run_and_compare(q, schemas, data, line3_join)

    def test_heavy_v2_values(self):
        # A value of v2 heavy in R1 (the line 4-7 path).
        q = line_query(3)
        schemas = schemas_for(q)
        data = {"e1": [(i, 0) for i in range(50)] + [(i, 1)
                                                     for i in range(3)],
                "e2": [(0, j) for j in range(10)] + [(1, 17)],
                "e3": [(j, j % 4) for j in range(18)]}
        run_and_compare(q, schemas, data, line3_join, M=8, B=2)

    def test_fig3_instance(self):
        schemas, data = fig3_line3_instance(40, 40)
        q = line_query(3)
        run_and_compare(q, schemas, data, line3_join, M=8, B=2)

    def test_empty_middle_relation(self):
        q = line_query(3)
        schemas = schemas_for(q)
        data = {"e1": [(1, 2)], "e2": [], "e3": [(3, 4)]}
        run_and_compare(q, schemas, data, line3_join)

    def test_rejects_non_l3(self):
        from repro import Device, Instance
        from repro.core import CountingEmitter
        q = star_query(3)
        schemas, data = make_random_data(q, 5, 3, seed=0)
        inst = Instance.from_dicts(Device(M=8, B=2), schemas, data)
        with pytest.raises(ValueError):
            line3_join(q, inst, CountingEmitter())


class TestTheorem1Cost:
    """Theorem 1: Õ(N1·N3/(MB)) — checked on the Figure 3 family."""

    @pytest.mark.parametrize("n", [32, 64, 128])
    def test_io_tracks_bound(self, n):
        schemas, data = fig3_line3_instance(n, n)
        q = line_query(3)
        device = run_and_compare(q, schemas, data, line3_join, M=8, B=2)
        bound = line3_bound(n, n, 8, 2, n2=1)
        assert device.stats.total <= 6 * bound

    def test_beats_nested_loop_cascade_shape(self):
        # Algorithm 1's bound drops the naive cascade's extra N2/M
        # factor; verify the formulas and the measured cost agree in
        # direction on an instance with a big middle relation.
        n = 64
        schemas, data = fig3_line3_instance(n, n)
        # widen the middle: many parallel bridge values all light
        data["e1"] = data["e1"] + [(1000 + i, 1 + i) for i in range(n)]
        data["e2"] = data["e2"] + [(1 + i, 1 + i) for i in range(n)]
        data["e3"] = data["e3"] + [(1 + i, 999) for i in range(n)]
        q = line_query(3)
        device = run_and_compare(q, schemas, data, line3_join, M=8, B=2)
        sizes = [len(data[e]) for e in ("e1", "e2", "e3")]
        cascade = nested_loop_cascade_bound(sizes, 8, 2)
        theorem1 = line3_bound(sizes[0], sizes[2], 8, 2, n2=sizes[1])
        assert theorem1 < cascade
        assert device.stats.total <= 6 * theorem1
