"""Tests for the external-memory Yannakakis baseline (Section 1.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Device, Instance
from repro.core import (CountingEmitter, acyclic_join_best, line3_join,
                        sort_merge_join, yannakakis_em)
from repro.query import line_query, lollipop_query, star_query
from repro.workloads import fig3_line3_instance, schemas_for

from conftest import make_random_data, run_and_compare


class TestCorrectness:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6),
           st.sampled_from(["L2", "L3", "L5", "star3", "lollipop3"]))
    def test_agrees_with_oracle(self, seed, name):
        q = {"L2": line_query(2), "L3": line_query(3),
             "L5": line_query(5), "star3": star_query(3),
             "lollipop3": lollipop_query(3)}[name]
        schemas, data = make_random_data(q, 15, 4, seed)
        run_and_compare(q, schemas, data, yannakakis_em, M=8, B=2)

    def test_dangling_tuples_removed_by_reduction(self):
        q = line_query(3)
        schemas = schemas_for(q)
        data = {"e1": [(1, 2), (5, 55)], "e2": [(2, 3)],
                "e3": [(3, 4), (66, 6)]}
        run_and_compare(q, schemas, data, yannakakis_em)

    def test_single_relation(self, small_device):
        q = line_query(1)
        inst = Instance.from_dicts(small_device, {"e1": ("v1", "v2")},
                                   {"e1": [(1, 2), (3, 4)]})
        em = CountingEmitter()
        yannakakis_em(q, inst, em, reduce_first=False)
        assert em.count == 2

    def test_disconnected_query_cross_product(self, small_device):
        from repro.query import JoinQuery
        q = JoinQuery(edges={"e1": frozenset({"a", "b"}),
                             "e2": frozenset({"c", "d"})})
        schemas = {"e1": ("a", "b"), "e2": ("c", "d")}
        data = {"e1": [(i, i) for i in range(6)],
                "e2": [(j, j) for j in range(5)]}
        run_and_compare(q, schemas, data, yannakakis_em, M=8, B=2)


class TestEmitModelGap:
    """Section 1.2: in the emit model, the pairwise baseline is worse
    than the optimal algorithm by a factor that grows with M (up to M
    for two relations, more as relations are added)."""

    def test_gap_on_fig3_l3(self):
        schemas, data = fig3_line3_instance(96, 96)
        q = line_query(3)
        M, B = 8, 2

        dev_opt = Device(M=M, B=B)
        inst = Instance.from_dicts(dev_opt, schemas, data)
        line3_join(q, inst, CountingEmitter())

        dev_base = Device(M=M, B=B)
        inst = Instance.from_dicts(dev_base, schemas, data)
        yannakakis_em(q, inst, CountingEmitter(), reduce_first=False)

        # The baseline writes the ~N1·N3-row intermediate; the optimal
        # algorithm never does.  Demand at least a 2x gap here (the
        # asymptotic gap is ~M).
        assert dev_base.stats.total > 2 * dev_opt.stats.total

    def test_gap_grows_with_m(self):
        schemas, data = fig3_line3_instance(128, 128)
        q = line_query(3)
        gaps = []
        for M in (4, 16):
            dev_opt = Device(M=M, B=2)
            inst = Instance.from_dicts(dev_opt, schemas, data)
            line3_join(q, inst, CountingEmitter())
            dev_base = Device(M=M, B=2)
            inst = Instance.from_dicts(dev_base, schemas, data)
            yannakakis_em(q, inst, CountingEmitter(), reduce_first=False)
            gaps.append(dev_base.stats.total / dev_opt.stats.total)
        assert gaps[1] > gaps[0]

    def test_two_relation_gap(self):
        # Cross product of two relations: NLJ-style optimal costs
        # N²/(MB); the baseline emits from a written intermediate of
        # N² rows costing N²/B.
        q = line_query(2)
        schemas = schemas_for(q)
        n = 64
        data = {"e1": [(i, 0) for i in range(n)],
                "e2": [(0, j) for j in range(n)]}
        M, B = 16, 4
        dev_opt = Device(M=M, B=B)
        inst = Instance.from_dicts(dev_opt, schemas, data)
        sort_merge_join(inst["e1"], inst["e2"], CountingEmitter())
        dev_base = Device(M=M, B=B)
        inst = Instance.from_dicts(dev_base, schemas, data)
        yannakakis_em(q, inst, CountingEmitter(), reduce_first=False)
        assert dev_opt.stats.total <= dev_base.stats.total
