"""Tests for query shape detection (the planner's dispatch input)."""

import pytest

from repro.query import (JoinQuery, dumbbell_query, line_query,
                         lollipop_query, star_query, triangle_query)
from repro.query.shapes import (classify_shape, detect_dumbbell,
                                detect_line, detect_lollipop, detect_star)


class TestDetectLine:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_detects_and_orders_lines(self, n):
        chain = detect_line(line_query(n))
        assert chain is not None
        assert chain.edges == tuple(f"e{i}" for i in range(1, n + 1))
        assert chain.join_attrs == tuple(f"v{i}" for i in range(2, n + 1))

    def test_detects_renamed_line(self):
        q = JoinQuery(edges={"left": frozenset({"a", "mid"}),
                             "right": frozenset({"mid", "z"})})
        chain = detect_line(q)
        assert chain is not None
        assert set(chain.edges) == {"left", "right"}
        assert chain.join_attrs == ("mid",)

    def test_rejects_non_lines(self):
        assert detect_line(star_query(3)) is None
        assert detect_line(triangle_query()) is None
        assert detect_line(lollipop_query(3)) is None

    def test_rejects_ternary_edges(self):
        q = JoinQuery(edges={"e1": frozenset({"a", "b", "c"}),
                             "e2": frozenset({"c", "d"})})
        assert detect_line(q) is None


class TestDetectStar:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_detects_stars(self, k):
        info = detect_star(star_query(k))
        assert info is not None
        assert info.core == "e0"
        assert set(info.petals) == {f"e{i}" for i in range(1, k + 1)}

    def test_l3_is_reported_as_line_not_star(self):
        # L3 is structurally both; the classifier prefers "line".
        assert classify_shape(line_query(3)) == "line"

    def test_rejects_lollipop(self):
        assert detect_star(lollipop_query(3)) is None


class TestDetectLollipopAndDumbbell:
    def test_lollipop_parts(self):
        info = detect_lollipop(lollipop_query(3))
        assert info is not None
        assert info.core == "e0"
        assert info.stick == "e3"
        assert info.tip == "e4"
        assert set(info.petals) == {"e1", "e2"}

    def test_dumbbell_parts(self):
        info = detect_dumbbell(dumbbell_query(3, 6))
        assert info is not None
        assert {info.core1, info.core2} == {"e0", "e6"}
        assert info.bar == "e3"

    def test_rejects_each_other(self):
        assert detect_lollipop(dumbbell_query(3, 6)) is None
        assert detect_dumbbell(lollipop_query(3)) is None


class TestClassifyShape:
    def test_labels(self):
        assert classify_shape(line_query(1)) == "single"
        assert classify_shape(line_query(2)) == "two-relation"
        assert classify_shape(line_query(6)) == "line"
        assert classify_shape(star_query(4)) == "star"
        assert classify_shape(lollipop_query(4)) == "lollipop"
        # A dumbbell with a single real petal per side degenerates to a
        # path — the classifier correctly prefers the line solvers.
        assert classify_shape(dumbbell_query(2, 4)) == "line"
        assert classify_shape(dumbbell_query(3, 6)) == "dumbbell"
        assert classify_shape(triangle_query()) == "cyclic"
        assert classify_shape(JoinQuery(edges={})) == "empty"

    def test_general_acyclic_fallback(self):
        # Two adjacent cores (no bar between them): none of the named
        # families matches.
        q = JoinQuery(edges={
            "e1": frozenset({"a", "b"}),
            "e2": frozenset({"b", "c", "d"}),
            "e3": frozenset({"d", "e", "f"}),
            "e4": frozenset({"c", "u4"}),
            "e5": frozenset({"e", "u5"}),
            "e6": frozenset({"f", "u6"}),
        })
        assert classify_shape(q) == "general-acyclic"

    def test_path_with_hanging_core_is_a_star(self):
        # A path whose middle edge also holds a third join attribute is
        # structurally a standalone star (core = the ternary edge).
        q = JoinQuery(edges={
            "e1": frozenset({"v1", "v2"}),
            "e2": frozenset({"v2", "v3", "w"}),
            "e3": frozenset({"v3", "v4"}),
            "e4": frozenset({"w", "u"}),
        })
        assert classify_shape(q) == "star"
