"""Tests for GenS — Algorithm 3 — against the paper's worked examples."""

from repro.query import (gens_all, gens_one, line_query,
                         remove_safely_dominated, star_query)


def fs(*names):
    return frozenset(names)


class TestGensL3:
    """Section 4.2: GenS(L3) equals equation (4)."""

    def test_equation_4_branch_exists(self):
        expected = {fs("e1", "e3"), fs("e2", "e3"), fs("e1", "e2"),
                    fs("e1"), fs("e2"), fs("e3"), frozenset()}
        branches = gens_all(line_query(3))
        assert frozenset(expected) in branches

    def test_all_branches_are_subsets_of_powerset(self):
        for branch in gens_all(line_query(3)):
            for s in branch:
                assert s <= fs("e1", "e2", "e3")

    def test_single_petal_branches_agree(self):
        # "It can be verified that if GenS(Q) peels {e2, e3} first, it
        # will generate the same S."  Both single-petal stars of L3
        # produce equation (4); only the standalone 2-petal star (which
        # adds the full set) differs.
        branches = gens_all(line_query(3))
        eq4 = {b for b in branches
               if fs("e1", "e2", "e3") not in b}
        assert len(eq4) == 1

    def test_best_branch_never_includes_full_set(self):
        # The full subjoin is dominated by {e1, e3}; the eq-(4) branch
        # avoids it entirely.
        eq4 = min(gens_all(line_query(3)), key=len)
        assert fs("e1", "e2", "e3") not in eq4


class TestGensL4:
    """Section 4.2's two L4 peel orders."""

    def test_paper_sets_for_peel_e1e2(self):
        # Peeling {e1,e2} first: dominant sets {e1,e3,e4}, {e1,e3},
        # {e1,e4}, {e2,e4} all appear in some branch.
        branches = gens_all(line_query(4))
        wanted = {fs("e1", "e3", "e4"), fs("e1", "e3"), fs("e1", "e4"),
                  fs("e2", "e4")}
        assert any(wanted <= b for b in branches)

    def test_paper_sets_for_peel_e3e4(self):
        # The paper's second L4 list additionally names {e1,e3,e4};
        # under equation (13) (the version its Theorem 3 proof uses,
        # and the one consistent with the L3 example (4)) that subset
        # arises from the peel-{e1,e2} branch instead — see DESIGN.md's
        # "paper inconsistencies" note.  The branch's own worst-case
        # representative {e1,e2,e4} and the pair {e2,e4} must appear.
        branches = gens_all(line_query(4))
        wanted = {fs("e1", "e2", "e4"), fs("e2", "e4")}
        assert any(wanted <= b and fs("e1", "e3", "e4") not in b
                   for b in branches)

    def test_two_main_strategies_differ(self):
        # The strategies are distinguished by which triple survives:
        # {e1,e3,e4} (from peeling {e1,e2}) vs {e1,e2,e4} (from
        # peeling {e3,e4}).
        branches = gens_all(line_query(4))
        has_134_not_124 = any(fs("e1", "e3", "e4") in b
                              and fs("e1", "e2", "e4") not in b
                              for b in branches)
        has_124_not_134 = any(fs("e1", "e2", "e4") in b
                              and fs("e1", "e3", "e4") not in b
                              for b in branches)
        assert has_134_not_124 and has_124_not_134


class TestGensL5:
    """Section 4.2's four L5 branches (S1..S4)."""

    def test_s2_s3_maximal_sets(self):
        # The good strategies: {e1,e3,e5}, {e2,e4} (+ pairs).
        branches = gens_all(line_query(5))
        wanted = {fs("e1", "e3", "e5"), fs("e2", "e4")}
        good = [b for b in branches if wanted <= b
                and fs("e2", "e4", "e5") not in b
                and fs("e1", "e2", "e4") not in b]
        assert good

    def test_s1_s4_contain_a_bad_triple(self):
        branches = gens_all(line_query(5))
        assert any(fs("e2", "e4", "e5") in b for b in branches)
        assert any(fs("e1", "e2", "e4") in b for b in branches)

    def test_every_branch_contains_e1_e3_e5(self):
        # {e1,e3,e5} is the AGM-cover subjoin; all four S's list it.
        for b in gens_all(line_query(5)):
            assert fs("e1", "e3", "e5") in b


class TestGensStar:
    def test_standalone_star_one_shot_gives_all_subsets(self):
        branches = gens_all(star_query(2))
        all_subsets = {frozenset(s) for s in _powerset(["e0", "e1", "e2"])}
        assert any(b == frozenset(all_subsets) for b in branches)

    def test_petal_peel_excludes_full_join(self):
        # "we could also remove all but one petal, resulting in all
        # subjoins except the full join"
        branches = gens_all(star_query(2))
        full = fs("e0", "e1", "e2")
        assert any(full not in b for b in branches)

    def test_core_with_all_petals_never_required(self):
        # In every branch missing the full set, subsets containing the
        # core never contain every petal.
        branches = gens_all(star_query(3))
        ok = False
        for b in branches:
            if all(not ({"e0"} <= set(s) and {"e1", "e2", "e3"} <= set(s))
                   for s in b):
                ok = True
        assert ok


class TestGensMechanics:
    def test_bud_is_skipped(self):
        q = line_query(2).drop_attributes(["v1"])  # e1 becomes a bud
        branches = gens_all(q)
        for b in branches:
            for s in b:
                assert "e1" not in s

    def test_gens_one_returns_member_of_gens_all(self):
        q = line_query(4)
        assert gens_one(q) in gens_all(q)

    def test_empty_query(self):
        from repro.query import JoinQuery
        assert gens_all(JoinQuery(edges={})) == {frozenset({frozenset()})}

    def test_safely_dominated_filter(self):
        q = line_query(3)
        eq4 = min(gens_all(q), key=len)
        filtered = remove_safely_dominated(eq4, q)
        # {e1} is dominated by {e1,e3} (disconnected addition, N>=M);
        # the empty set always drops.
        assert fs("e1") not in filtered
        assert frozenset() not in filtered
        assert fs("e1", "e3") in filtered
        # {e1,e2} is connected and has no disconnected superset: kept.
        assert fs("e1", "e2") in filtered


def _powerset(items):
    out = [[]]
    for x in items:
        out += [s + [x] for s in out]
    return [frozenset(s) for s in out]
