"""Tests for the full reducer (in-memory and external-memory)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Device, Instance
from repro.core import full_reduce_em
from repro.internal import join_query
from repro.query import (elimination_order, full_reduce, is_fully_reduced,
                         line_query, lollipop_query, semijoin, star_query)
from repro.workloads import schemas_for

from conftest import make_random_data


class TestEliminationOrder:
    def test_covers_all_edges_once(self):
        steps = elimination_order(lollipop_query(3))
        assert sorted(s.edge for s in steps) == sorted(
            lollipop_query(3).edges)

    def test_parents_share_the_attr(self):
        q = star_query(3)
        for step in elimination_order(q):
            if step.parent is not None:
                assert step.shared_attr in q.edges[step.edge]
                assert step.shared_attr in q.edges[step.parent]

    def test_islands_have_no_parent(self):
        from repro.query import JoinQuery
        q = JoinQuery(edges={"e1": frozenset({"a", "b"}),
                             "e2": frozenset({"c", "d"})})
        steps = elimination_order(q)
        assert all(s.parent is None for s in steps)

    def test_cyclic_query_rejected(self):
        import pytest
        from repro.query import triangle_query
        with pytest.raises(ValueError):
            elimination_order(triangle_query())


class TestSemijoin:
    def test_basic_filter(self):
        left = [(1, 10), (2, 20), (3, 30)]
        right = [(20, "x"), (30, "y")]
        out = semijoin(left, ("a", "b"), right, ("b", "c"), "b")
        assert out == [(2, 20), (3, 30)]


class TestFullReduce:
    def test_removes_dangling_tuples(self):
        q = line_query(3)
        schemas = schemas_for(q)
        data = {"e1": [(1, 2), (9, 99)],        # (9,99) dangles
                "e2": [(2, 3)],
                "e3": [(3, 4), (77, 7)]}        # (77,7) dangles
        reduced = full_reduce(q, data, schemas)
        assert reduced["e1"] == [(1, 2)]
        assert reduced["e3"] == [(3, 4)]

    def test_reduced_instance_unchanged(self):
        q = line_query(2)
        schemas = schemas_for(q)
        data = {"e1": [(1, 2)], "e2": [(2, 3)]}
        assert is_fully_reduced(q, data, schemas)

    def test_empty_relation_empties_component(self):
        q = line_query(2)
        schemas = schemas_for(q)
        data = {"e1": [(1, 2)], "e2": []}
        reduced = full_reduce(q, data, schemas)
        assert reduced["e1"] == []

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6), st.integers(2, 5))
    def test_reduction_preserves_join_and_all_tuples_participate(
            self, seed, n):
        q = line_query(n)
        schemas, data = make_random_data(q, 15, 4, seed)
        reduced = full_reduce(q, data, schemas)
        # Join results are unchanged.
        assert join_query(q, data, schemas) == join_query(
            q, reduced, schemas)
        # After reduction every remaining tuple participates.
        results = join_query(q, reduced, schemas)
        for e, attrs in schemas.items():
            for t in reduced[e]:
                wanted = set(zip(attrs, t))
                assert any(wanted <= set(r) for r in results)

    def test_idempotent(self):
        q = star_query(2)
        schemas, data = make_random_data(q, 12, 3, seed=5)
        once = full_reduce(q, data, schemas)
        twice = full_reduce(q, once, schemas)
        assert {e: sorted(t) for e, t in once.items()} \
            == {e: sorted(t) for e, t in twice.items()}


class TestFullReduceEM:
    def test_matches_in_memory_reducer(self):
        q = line_query(4)
        schemas, data = make_random_data(q, 20, 4, seed=9)
        device = Device(M=16, B=4)
        inst = Instance.from_dicts(device, schemas, data)
        reduced_em = full_reduce_em(q, inst)
        expected = full_reduce(q, data, schemas)
        for e in q.edges:
            assert sorted(reduced_em[e].peek_tuples()) == sorted(expected[e])

    def test_charges_io(self):
        q = line_query(3)
        schemas, data = make_random_data(q, 30, 4, seed=2)
        device = Device(M=16, B=4)
        inst = Instance.from_dicts(device, schemas, data)
        full_reduce_em(q, inst)
        assert device.stats.total > 0

    def test_cost_is_linearish(self):
        # Õ(N/B): a few sort+scan passes, not output-sized work.
        q = line_query(3)
        schemas, data = make_random_data(q, 60, 3, seed=3)
        device = Device(M=32, B=8)
        inst = Instance.from_dicts(device, schemas, data)
        full_reduce_em(q, inst)
        n_total = sum(len(t) for t in data.values())
        assert device.stats.total <= 20 * n_total / device.B + 40
