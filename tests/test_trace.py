"""Tests for the Algorithm 2 recursion tracer."""

from repro import Device, Instance
from repro.core import CountingEmitter, acyclic_join
from repro.core.trace import RecursionTrace
from repro.query import line_query, star_query
from repro.workloads import schemas_for

from conftest import make_random_data


class TestRecursionTrace:
    def test_records_leaf_peels_with_split(self):
        q = line_query(3)
        schemas = schemas_for(q)
        # one heavy value (20 >= M=4) and some light ones in e1 on v2
        data = {"e1": [(i, 0) for i in range(20)] + [(i, 1 + i % 3)
                                                     for i in range(6)],
                "e2": [(j % 4, j) for j in range(8)],
                "e3": [(j, j % 3) for j in range(8)]}
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        trace = RecursionTrace()
        acyclic_join(q, inst, CountingEmitter(), trace=trace)
        leafs = [e for e in trace.events if e.action == "leaf"]
        assert leafs
        assert "heavy=1" in leafs[0].detail
        assert trace.max_depth() >= 1
        assert trace.counts()["leaf"] >= 1

    def test_star_trace_shows_bud_or_islands_downstream(self):
        q = star_query(2)
        schemas, data = make_random_data(q, 12, 3, seed=1)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        trace = RecursionTrace()
        acyclic_join(q, inst, CountingEmitter(), trace=trace)
        actions = set(trace.counts())
        assert "leaf" in actions
        assert "scan" in actions  # base case reached

    def test_render_is_indented_and_limited(self):
        q = line_query(2)
        schemas, data = make_random_data(q, 8, 3, seed=0)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        trace = RecursionTrace()
        acyclic_join(q, inst, CountingEmitter(), trace=trace)
        text = trace.render(limit=3)
        assert text.splitlines()
        if len(trace.events) > 3:
            assert "more events" in text

    def test_no_trace_is_default(self):
        q = line_query(2)
        schemas, data = make_random_data(q, 5, 3, seed=0)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        acyclic_join(q, inst, CountingEmitter())  # simply must not fail
