"""Tests for the internal-memory baselines (Table 1's left column)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.internal import (build_value_index, canonical, generic_join,
                            hash_join, join_count, join_query,
                            project_assignments, sort_merge_join,
                            yannakakis, yannakakis_with_stats)
from repro.query import agm_bound, line_query, star_query, triangle_query
from repro.query.reduce import full_reduce
from repro.workloads import schemas_for

from conftest import make_random_data


class TestHashJoin:
    def test_join_on_shared_attr(self):
        out, schema = hash_join([(1, 2), (3, 4)], ("a", "b"),
                                [(2, 9), (2, 8)], ("b", "c"))
        assert schema == ("a", "b", "c")
        assert sorted(out) == [(1, 2, 8), (1, 2, 9)]

    def test_cross_product_when_disjoint(self):
        out, schema = hash_join([(1,)], ("a",), [(2,), (3,)], ("b",))
        assert sorted(out) == [(1, 2), (1, 3)]
        assert schema == ("a", "b")

    def test_multi_shared_attrs(self):
        out, _ = hash_join([(1, 2, 5)], ("a", "b", "c"),
                           [(1, 2, 7)], ("a", "b", "d"))
        assert out == [(1, 2, 5, 7)]

    def test_canonical_and_projection(self):
        a = canonical((1, 2), ("y", "x"))
        assert a == (("x", 2), ("y", 1))
        assert project_assignments({a}, {"x"}) == {(("x", 2),)}


class TestJoinQuery:
    def test_empty_edge_set(self):
        from repro.query import JoinQuery
        assert join_query(JoinQuery(edges={}), {}, {}) == {()}

    def test_count_on_known_instance(self):
        q = line_query(2)
        schemas = schemas_for(q)
        data = {"e1": [(i, 0) for i in range(5)],
                "e2": [(0, j) for j in range(7)]}
        assert join_count(q, data, schemas) == 35


class TestSortMergeJoin:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10**6))
    def test_agrees_with_hash_join(self, seed):
        q = line_query(2)
        schemas, data = make_random_data(q, 25, 5, seed)
        hj, hs = hash_join(data["e1"], schemas["e1"], data["e2"],
                           schemas["e2"])
        sm, ss = sort_merge_join(data["e1"], schemas["e1"], data["e2"],
                                 schemas["e2"], "v2")
        assert {canonical(t, hs) for t in hj} \
            == {canonical(t, ss) for t in sm}


class TestGenericJoin:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6), st.sampled_from([2, 3, 4]))
    def test_agrees_with_pairwise_on_lines(self, seed, n):
        q = line_query(n)
        schemas, data = make_random_data(q, 15, 4, seed)
        assert generic_join(q, data, schemas) \
            == join_query(q, data, schemas)

    def test_works_on_cyclic_queries_too(self):
        q = triangle_query()
        schemas = {"e1": ("v1", "v2"), "e2": ("v1", "v3"),
                   "e3": ("v2", "v3")}
        data = {"e1": [(0, 0), (0, 1), (1, 1)],
                "e2": [(0, 0), (1, 1)],
                "e3": [(0, 0), (1, 1)]}
        out = generic_join(q, data, schemas)
        assert (("v1", 0), ("v2", 0), ("v3", 0)) in out
        assert (("v1", 1), ("v2", 1), ("v3", 1)) in out
        assert len(out) == 2

    def test_respects_custom_attribute_order(self):
        q = line_query(3)
        schemas, data = make_random_data(q, 10, 3, seed=1)
        base = generic_join(q, data, schemas)
        for order in itertools.islice(
                itertools.permutations(sorted(q.attributes)), 5):
            assert generic_join(q, data, schemas, order) == base

    def test_bad_attribute_order_rejected(self):
        import pytest
        q = line_query(2)
        schemas, data = make_random_data(q, 5, 3, seed=0)
        with pytest.raises(ValueError):
            generic_join(q, data, schemas, ["v1"])

    def test_output_never_exceeds_agm(self):
        # Worst-case optimality sanity: |Q(R)| <= AGM bound.
        for seed in range(5):
            q = line_query(3)
            schemas, data = make_random_data(q, 20, 4, seed)
            sized = q.with_sizes({e: len(data[e]) for e in data})
            assert len(generic_join(q, data, schemas)) \
                <= agm_bound(sized) + 1e-9

    def test_build_value_index(self):
        idx = build_value_index([(1, 2), (1, 3), (2, 4)], 0)
        assert idx[1] == [(1, 2), (1, 3)]
        assert idx[2] == [(2, 4)]


class TestYannakakis:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6),
           st.sampled_from(["line3", "line5", "star3"]))
    def test_agrees_with_oracle(self, seed, shape):
        q = {"line3": line_query(3), "line5": line_query(5),
             "star3": star_query(3)}[shape]
        schemas, data = make_random_data(q, 12, 4, seed)
        assert yannakakis(q, data, schemas) == join_query(q, data, schemas)

    def test_intermediates_bounded_by_output_on_reduced(self):
        # The instance-optimality mechanism: on a fully reduced acyclic
        # instance no intermediate exceeds the output size.
        for seed in range(8):
            q = line_query(4)
            schemas, data = make_random_data(q, 20, 4, seed)
            reduced = full_reduce(q, data, schemas)
            results, stats = yannakakis_with_stats(q, reduced, schemas)
            if results:
                assert stats["max_intermediate"] <= stats["output"]
