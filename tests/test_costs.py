"""emcost unit tests: the symbolic domain, derivation, and the gate.

The fixture-level rule tests (EM017–EM021 firing exactly once) live in
``test_lint.py``; the real-tree certification (every Table 1 algorithm
deriving its declared bound) lives in ``test_lint_src.py``.  This file
covers the machinery: the cost expression algebra, annotation
attachment edges, the drift comparator, and the ``--check-costs`` CLI
gate including its placeholder-justification policy.
"""

import json

import pytest

from repro.cli import main
from repro.lint import (Baseline, BaselineEntry, compact_cost_signatures,
                        compare_cost_signatures, evaluate_cost, lint_paths,
                        parse_cost, write_baseline)
from repro.lint.symbolic import CostSyntaxError


# ------------------------------------------------- symbolic domain


class TestSymbolicDomain:
    def test_parse_render_normal_form(self):
        assert parse_cost("N^2/(M*B) + N/B").render() == "N^2/(B*M)"
        assert parse_cost("N/B + N/B").render() == "N/B"
        assert parse_cost("1").render() == "1"

    def test_dominated_terms_are_absorbed(self):
        # N/B is O(N^2/(MB)) under 1 <= B <= M <= N, so the antichain
        # keeps only the dominant term.
        c = parse_cost("N^2/(M*B) + N/B")
        assert len(c.terms) == 1

    def test_incomparable_terms_both_survive(self):
        # N^4/B vs N^6/(M^5 B): neither dominates (take M close to N
        # for one direction, M constant for the other).
        c = parse_cost("N^4/B + N^6/(M^5*B)")
        assert len(c.terms) == 2

    def test_out_is_incomparable_with_n(self):
        assert not parse_cost("OUT/B").le(parse_cost("N/B"))
        assert not parse_cost("N/B").le(parse_cost("OUT/B"))

    def test_le_is_o_tilde_logs_ignored_both_ways(self):
        assert parse_cost("N/B * log(N/M)").le(parse_cost("N/B"))
        assert parse_cost("N/B").le(parse_cost("N/B * log(N/M)"))

    def test_sqrt_is_fractional_exponent(self):
        assert (parse_cost("sqrt(N^3/M)/B").render()
                == parse_cost("N^(3/2)/(M^(1/2)*B)").render())

    def test_excess_over_names_the_offending_term(self):
        excess = parse_cost("N^2/B").excess_over(parse_cost("N/B"))
        assert [t.render() for t in excess] == ["N^2/B"]
        assert parse_cost("N/B").excess_over(parse_cost("N^2/B")) == []

    def test_evaluate_cost_numeric(self):
        c = parse_cost("N^2/(M*B) + OUT/B")
        v = evaluate_cost(c, {"N": 1024.0, "M": 64.0, "B": 8.0,
                              "OUT": 512.0})
        assert v == pytest.approx(1024.0 ** 2 / (64 * 8) + 512 / 8)

    def test_evaluate_cost_log_value(self):
        c = parse_cost("N/B * log(N/M)")
        assert (evaluate_cost(c, {"N": 100.0, "B": 10.0}, log_value=4.0)
                == pytest.approx(40.0))

    @pytest.mark.parametrize("bad", ["N +", "Q/B", "N^^2", "N^(1/)",
                                     "", "log(", "2N"])
    def test_parse_errors(self, bad):
        with pytest.raises(CostSyntaxError):
            parse_cost(bad)


# ------------------------------------------------- derivation edges


def _lint_tree(tmp_path, files):
    """Write ``files`` under ``tmp_path/src/repro`` and lint them."""
    paths = []
    for rel, text in files.items():
        p = tmp_path / "src" / "repro" / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
        paths.append(p)
    return lint_paths(paths, root=tmp_path)


class TestDerivation:
    def test_checked_declaration_matches_derived(self, tmp_path):
        result = _lint_tree(tmp_path, {"core/mod.py": (
            "# em-cost: N/B -- one block per iteration\n"
            "def scan(device, blocks):\n"
            "    # em-loop-bound: N/B -- one block each\n"
            "    for _ in blocks:\n"
            "        device.charge_read(1)\n")})
        assert result.clean, [v.render() for v in result.violations]
        entry = result.costs["functions"]["repro.core.mod.scan"]
        assert entry["cost"] == entry["declared"] == "N/B"

    def test_yields_gives_loops_their_trip_count(self, tmp_path):
        result = _lint_tree(tmp_path, {"core/mod.py": (
            "# em-cost: amortized N/B -- one scan across all chunks\n"
            "# em-yields: N/M\n"
            "def chunks(device):\n"
            "    yield []\n"
            "\n"
            "\n"
            "# em-cost: N/B -- the chunk loop: N/M trips, zero-cost "
            "body,\n"
            "# plus the generator's own scan\n"
            "def consume(device):\n"
            "    for _ in chunks(device):\n"
            "        pass\n")})
        assert result.clean, [v.render() for v in result.violations]
        entry = result.costs["functions"]["repro.core.mod.consume"]
        assert entry["cost"] == "N/B"

    def test_charges_override_replaces_call_cost(self, tmp_path):
        result = _lint_tree(tmp_path, {"core/mod.py": (
            "# em-cost: amortized N^2/(M*B) -- general two-way bound\n"
            "def join(device):\n"
            "    device.charge_read(1)\n"
            "\n"
            "\n"
            "# em-cost: N/B -- the restricted call is one merge pass\n"
            "def outer(device):\n"
            "    # em-charges: N/B -- inputs pre-sorted here\n"
            "    join(device)\n")})
        assert result.clean, [v.render() for v in result.violations]
        entry = result.costs["functions"]["repro.core.mod.outer"]
        assert entry["cost"] == "N/B"

    def test_amortized_member_breaks_recursive_cycle(self, tmp_path):
        src = (
            "{}def ping(device):\n"
            "    device.charge_read(1)\n"
            "    pong(device)\n"
            "\n"
            "\n"
            "def pong(device):\n"
            "    ping(device)\n")
        flagged = _lint_tree(tmp_path, {"core/loop.py": src.format("")})
        assert any(v.code == "EM019" and "recursive cycle" in v.message
                   for v in flagged.violations)
        ok = _lint_tree(tmp_path / "b", {"core/loop.py": src.format(
            "# em-cost: amortized N/B -- recursion depth is the "
            "query's\n# edge count, a query-size constant\n")})
        assert not any(v.code == "EM019" for v in ok.violations)

    def test_annotation_text_in_docstring_is_ignored(self, tmp_path):
        # Regression: the grammar documented inside a docstring must
        # not register as an orphaned annotation (EM020).
        result = _lint_tree(tmp_path, {"core/mod.py": (
            '"""Docs quoting the grammar:\n'
            "\n"
            "    # em-cost: <expr> -- justification\n"
            "    # em-loop-bound: <expr>\n"
            '"""\n')})
        assert result.clean, [v.render() for v in result.violations]

    def test_wrapped_declaration_comment_attaches(self, tmp_path):
        # A justification wrapped over several comment lines still
        # binds to the def below the comment block.
        result = _lint_tree(tmp_path, {"core/mod.py": (
            "# em-cost: N/B -- a justification long enough to wrap\n"
            "# onto a second comment line before the definition\n"
            "def scan(device, blocks):\n"
            "    # em-loop-bound: N/B -- one block each\n"
            "    for _ in blocks:\n"
            "        device.charge_read(1)\n")})
        assert result.clean, [v.render() for v in result.violations]


# ------------------------------------------------- drift comparator


def _table(tmp_path, source):
    result = _lint_tree(tmp_path, {"core/mod.py": source})
    return result.costs


CHECKED = ("# em-cost: N/B -- one pass\n"
           "def scan(device, blocks):\n"
           "    # em-loop-bound: N/B -- one block each\n"
           "    for _ in blocks:\n"
           "        device.charge_read(1)\n")

QUADRATIC = ("# em-cost: amortized N^2/B -- rescans per tuple\n"
             "def scan(device, blocks):\n"
             "    # em-loop-bound: N -- outer tuples\n"
             "    for _ in blocks:\n"
             "        # em-loop-bound: N -- inner rescan\n"
             "        for _ in blocks:\n"
             "            device.charge_read(1)\n")


class TestCostDrift:
    def test_identical_tables_agree(self, tmp_path):
        committed = compact_cost_signatures(_table(tmp_path, CHECKED))
        failures, notices = compare_cost_signatures(
            committed, _table(tmp_path / "b", CHECKED))
        assert failures == [] and notices == []

    def test_cost_change_with_declaration_update_is_a_notice(
            self, tmp_path):
        committed = compact_cost_signatures(_table(tmp_path, CHECKED))
        failures, notices = compare_cost_signatures(
            committed, _table(tmp_path / "b", QUADRATIC))
        assert failures == []
        assert any("declaration updated" in n for n in notices)

    def test_cost_change_without_declaration_update_fails(
            self, tmp_path):
        table = _table(tmp_path, CHECKED)
        committed = compact_cost_signatures(table)
        # Simulate an asymptotic regression the declaration missed:
        # the committed archive pinned a cheaper derived bound.
        committed["costs"]["repro.core.mod.scan"]["cost"] = "1/B"
        failures, notices = compare_cost_signatures(committed, table)
        assert any("without a matching" in f for f in failures)

    def test_added_and_removed_are_notices(self, tmp_path):
        committed = compact_cost_signatures(_table(tmp_path, CHECKED))
        other = _lint_tree(tmp_path / "b",
                           {"core/other.py": CHECKED}).costs
        failures, notices = compare_cost_signatures(committed, other)
        assert failures == []
        assert any("removed" in n for n in notices)
        assert any("added" in n for n in notices)

    def test_schema_version_move_is_a_notice(self, tmp_path):
        table = _table(tmp_path, CHECKED)
        committed = compact_cost_signatures(table)
        committed["schema_version"] = "0.0"
        failures, notices = compare_cost_signatures(committed, table)
        assert failures == []
        assert any("schema version" in n for n in notices)


# ------------------------------------------------- CLI gate


def _write_tree(tmp_path, source=CHECKED):
    src = tmp_path / "src" / "repro" / "core"
    src.mkdir(parents=True)
    (src / "mod.py").write_text(source)
    return tmp_path / "src"


class TestCliCostsGate:
    def test_write_then_check(self, tmp_path, capsys):
        src = _write_tree(tmp_path)
        baseline = tmp_path / "costs-baseline.json"
        rc = main(["lint", str(src), "--root", str(tmp_path),
                   "--no-baseline",
                   "--write-costs-baseline", str(baseline)])
        assert rc == 0
        doc = json.loads(baseline.read_text())
        assert doc["costs"]["repro.core.mod.scan"]["cost"] == "N/B"
        rc = main(["lint", str(src), "--root", str(tmp_path),
                   "--no-baseline", "--check-costs", str(baseline)])
        assert rc == 0
        assert "checked against" in capsys.readouterr().out

    def test_check_fails_on_undeclared_drift(self, tmp_path, capsys):
        src = _write_tree(tmp_path)
        baseline = tmp_path / "costs-baseline.json"
        assert main(["lint", str(src), "--root", str(tmp_path),
                     "--no-baseline",
                     "--write-costs-baseline", str(baseline)]) == 0
        doc = json.loads(baseline.read_text())
        doc["costs"]["repro.core.mod.scan"]["cost"] = "1/B"
        baseline.write_text(json.dumps(doc))
        rc = main(["lint", str(src), "--root", str(tmp_path),
                   "--no-baseline", "--check-costs", str(baseline)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_check_bad_baseline_path(self, tmp_path):
        src = _write_tree(tmp_path)
        rc = main(["lint", str(src), "--root", str(tmp_path),
                   "--no-baseline",
                   "--check-costs", str(tmp_path / "missing.json")])
        assert rc == 2

    def test_costs_table_dump(self, tmp_path):
        src = _write_tree(tmp_path)
        out = tmp_path / "cost_table.json"
        rc = main(["lint", str(src), "--root", str(tmp_path),
                   "--no-baseline", "--costs", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["functions"]["repro.core.mod.scan"]["declared"] == "N/B"

    def test_gate_rejects_placeholder_in_committed_archive(
            self, tmp_path, capsys):
        # Satellite regression: every --check-* gate refuses committed
        # documents whose justification is still the placeholder.
        src = _write_tree(tmp_path)
        baseline = tmp_path / "costs-baseline.json"
        assert main(["lint", str(src), "--root", str(tmp_path),
                     "--no-baseline",
                     "--write-costs-baseline", str(baseline)]) == 0
        doc = json.loads(baseline.read_text())
        doc["costs"]["repro.core.mod.scan"]["justification"] = (
            "TODO: justify")
        baseline.write_text(json.dumps(doc))
        rc = main(["lint", str(src), "--root", str(tmp_path),
                   "--no-baseline", "--check-costs", str(baseline)])
        assert rc == 1
        assert "placeholder justification" in capsys.readouterr().out

    def test_gated_run_polices_suppression_placeholders(
            self, tmp_path, capsys):
        # A lint-baseline entry still carrying the --write-baseline
        # placeholder passes a plain run (iterate locally) but fails
        # any gated (--check-*) run.
        src = _write_tree(tmp_path, CHECKED + (
            "\n\ndef slurp(rel):\n"
            "    return list(rel.data.scan())\n"))
        costs = tmp_path / "costs-baseline.json"
        assert main(["lint", str(src), "--root", str(tmp_path),
                     "--no-baseline",
                     "--write-costs-baseline", str(costs)]) == 1
        suppress = tmp_path / "lint-baseline.json"
        write_baseline(Baseline(entries=[BaselineEntry(
            path="src/repro/core/mod.py", code="EM002", scope="slurp",
            count=1, justification="TODO: justify -- review me")]),
            suppress)
        rc = main(["lint", str(src), "--root", str(tmp_path),
                   "--baseline", str(suppress)])
        assert rc == 0
        rc = main(["lint", str(src), "--root", str(tmp_path),
                   "--baseline", str(suppress),
                   "--check-costs", str(costs)])
        assert rc == 1
        assert "placeholder justification" in capsys.readouterr().out
