"""The load-bearing test: the real tree passes its own discipline.

Every byte of I/O in ``src/repro`` is accounted: the committed
baseline is empty, so a clean run here means zero violations — not
zero *new* violations — and any regression (a raw ``open()``, a layer
inversion, an uncharged materialization) fails CI by name.
"""

import json
from pathlib import Path

import pytest

from repro.lint import lint_paths, load_baseline

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
BASELINE = ROOT / "lint-baseline.json"


def test_committed_baseline_is_empty():
    doc = json.loads(BASELINE.read_text(encoding="utf-8"))
    assert doc["entries"] == [], (
        "lint-baseline.json has accepted violations; fix them or "
        "justify each entry in the PR")


def test_src_tree_is_clean_under_committed_baseline():
    result = lint_paths([SRC], root=ROOT,
                        baseline=load_baseline(BASELINE))
    assert result.clean, "\n".join(v.render() for v in result.violations)
    assert result.stale_baseline == []
    assert result.files_checked > 50


@pytest.mark.parametrize("layer", ["em", "core", "obs", "query", "data",
                                   "analysis", "internal", "workloads",
                                   "lint", "server"])
def test_layer_has_zero_violations(layer):
    """Per-layer zero-violation assertion (no baseline crutch)."""
    result = lint_paths([SRC / "repro" / layer], root=ROOT)
    assert result.clean, "\n".join(v.render() for v in result.violations)


def test_pragma_suppressions_are_few_and_only_em001():
    """Pragmas are reserved for host-side report writers (EM001).

    Current budget: 7 CLI report/baseline writers (lint report,
    effects and locks archives), 4 obs exporters/baselines, and the
    fitted-constants archive save/load in analysis/predict.py.
    """
    result = lint_paths([SRC], root=ROOT)
    codes = {v.code for v in result.suppressed_by_pragma}
    assert codes <= {"EM001"}
    assert len(result.suppressed_by_pragma) <= 13


# ------------------------------------------- effect signatures (emflow)


def test_core_layer_never_reaches_raw_io():
    """The strongest statement emflow can make about the real tree:
    no function in core/ or em/ has PHYS_IO in its *whole-call-graph*
    signature — every byte the algorithms move is simulated."""
    result = lint_paths([SRC], root=ROOT)
    funcs = result.signatures["functions"]
    offenders = [q for q, e in funcs.items()
                 if e["layer"] in ("core", "em")
                 and "PHYS_IO" in e["effects"]]
    assert offenders == []


def test_sanctioned_peek_sites_are_declared():
    """The audited peek_tuples() uses carry FREE_PEEK declarations
    with justifications (the core/acyclic.py clone audit)."""
    result = lint_paths([SRC], root=ROOT)
    funcs = result.signatures["functions"]
    clone = funcs["repro.core.acyclic.clone_instance"]
    assert clone["declared"] == ["FREE_PEEK"]
    assert "pre-existing inputs" in clone["justification"]
    sorted_probe = funcs["repro.em.sort.is_sorted"]
    assert sorted_probe["declared"] == ["FREE_PEEK"]


def test_host_only_declarations_cover_every_export_writer():
    """Each pragma'd EM001 writer is also declared HOST_ONLY, so the
    effect pass proves nothing counted can reach it (EM011)."""
    result = lint_paths([SRC], root=ROOT)
    funcs = result.signatures["functions"]
    for qual in ("repro.obs.tracer.Tracer.export_jsonl",
                 "repro.obs.export.write_chrome_trace",
                 "repro.obs.baseline.write_baseline",
                 "repro.obs.baseline.load_baseline",
                 "repro.data.io.load_csv",
                 "repro.data.io.instance_from_csv",
                 "repro.data.io.dump_results_csv",
                 "repro.cli.cmd_run",
                 "repro.cli.cmd_lint"):
        assert funcs[qual]["declared"] == ["HOST_ONLY"], qual


# --------------------------------------------- lock discipline (emrace)


def test_every_server_lock_guards_at_least_one_field():
    """A lock nobody declares a field against protects nothing — each
    ``threading.Lock``/``Condition`` attribute in server/ must carry
    at least one ``em-guarded-by`` declaration."""
    result = lint_paths([SRC], root=ROOT)
    locks = result.locks["locks"]
    server = {lid: e for lid, e in locks.items()
              if e["path"].startswith("src/repro/server/")}
    assert len(server) >= 7
    naked = [lid for lid, e in server.items() if not e["guards"]]
    assert naked == [], f"server locks guarding no declared field: {naked}"


def test_server_lock_order_graph_is_acyclic():
    """The service layer's global lock order admits no deadlock."""
    result = lint_paths([SRC], root=ROOT)
    assert result.locks["order"]["cycles"] == []
    assert result.locks["summary"]["order_edges"] >= 5


def test_thread_roots_cover_the_service_entry_points():
    """The inferred thread roots name every way work enters: main,
    the HTTP handler pool, and the batch drain workers."""
    result = lint_paths([SRC], root=ROOT)
    roots = result.locks["roots"]
    assert "main" in roots and "http" in roots
    assert "thread:QueryService.execute_batch" in roots
    assert ("repro.server.service.QueryService.execute_batch"
            in roots["thread:QueryService.execute_batch"])


def test_committed_locks_baseline_matches_reality():
    """The drift gate's committed archive agrees with a fresh pass."""
    from repro.lint import compact_lock_signatures, compare_lock_signatures
    committed = json.loads(
        (ROOT / "locks-baseline.json").read_text(encoding="utf-8"))
    result = lint_paths([SRC], root=ROOT)
    failures, notices = compare_lock_signatures(committed, result.locks)
    assert failures == [], failures
    assert notices == [], notices
    assert committed == compact_lock_signatures(result.locks)


def test_coarse_locks_are_exactly_the_sanctioned_two():
    """Coarse (held-across-blocking) locks are an explicit, short
    list: the session serializer and the shared-pool funnel.  Adding
    one is a design decision, not an annotation convenience."""
    result = lint_paths([SRC], root=ROOT)
    coarse = sorted(lid for lid, e in result.locks["locks"].items()
                    if e["coarse"])
    assert coarse == ["repro.server.pool.SharedPool.lock",
                      "repro.server.session.Session._lock"]


# ----------------------------------------------- symbolic costs (emcost)


def _cost_table():
    return lint_paths([SRC], root=ROOT).costs["functions"]


#: Table 1 algorithms whose ``# em-cost:`` declaration is *checked*
#: (machine-derived from the annotated body, not trusted).
CHECKED_TABLE1 = [
    "repro.core.twoway.nested_loop_join",
    "repro.core.twoway.sort_merge_join",
    "repro.core.line3.line3_join",
    "repro.core.line5.line5_unbalanced_join",
    "repro.core.triangle.triangle_join",
    "repro.core.reducer_em.full_reduce_em",
    "repro.core.acyclic.acyclic_join",
    "repro.core.acyclic.acyclic_join_best",
    "repro.core.planner.execute",
    "repro.em.sort.external_sort",
    "repro.em.loaders.group_boundaries",
    "repro.em.loaders.load_chunks",
    "repro.em.loaders.load_group_chunks",
    "repro.em.loaders.scan_matching",
]


def test_every_table1_algorithm_declares_its_bound():
    """Each algorithm entry point carries an ``# em-cost:`` bound, and
    for the checked (non-amortized) ones the derived symbolic cost
    equals the declaration exactly."""
    table = _cost_table()
    for qn in CHECKED_TABLE1:
        entry = table[qn]
        assert entry["declared"] is not None, qn
        assert not entry["amortized"], qn
        assert entry["cost"] == entry["declared"], (
            f"{qn}: derived {entry['cost']} != declared "
            f"{entry['declared']}")
    for qn in ("repro.core.lw.lw_join",
               "repro.core.yannakakis_em.yannakakis_em",
               "repro.core.line7.line7_unbalanced_join",
               "repro.core.line7.line6_unbalanced_join",
               "repro.core.line7.line7_cover11_join",
               "repro.core.line7.line8_join",
               "repro.core.line7.line_join_auto"):
        entry = table[qn]
        assert entry["declared"] is not None, qn
        assert entry["amortized"], qn
        assert entry["justification"], qn


def test_derived_costs_match_closed_form_bounds():
    """Cross-check: evaluating each derived symbolic expression
    numerically agrees with ``analysis/bounds.py``'s closed forms to
    within a constant factor, across an (N, M, B) sweep."""
    import math

    from repro.analysis import bounds
    from repro.lint import evaluate_cost, parse_cost

    cases = [
        ("repro.core.twoway.sort_merge_join",
         lambda N, M, B: bounds.two_relation_bound(N, N, M, B)),
        ("repro.core.twoway.nested_loop_join",
         lambda N, M, B: bounds.nested_loop_cascade_bound([N, N], M, B)),
        ("repro.core.line3.line3_join",
         lambda N, M, B: bounds.line3_bound(N, N, M, B, n2=N)),
        ("repro.core.line5.line5_unbalanced_join",
         lambda N, M, B: bounds.line5_unbalanced_bound([N] * 5, M, B)),
        ("repro.core.line7.line7_cover11_join",
         lambda N, M, B: bounds.line7_cover11_bound([N] * 7, M, B)),
        ("repro.core.triangle.triangle_join",
         lambda N, M, B: bounds.triangle_bound(N, N, N, M, B)),
        # LW_n's bound (N/M)^{n/(n-1)}·M/B is maximized at n = 3,
        # where it coincides with the triangle's closed form.
        ("repro.core.lw.lw_join",
         lambda N, M, B: bounds.triangle_bound(N, N, N, M, B)),
        ("repro.core.yannakakis_em.yannakakis_em",
         lambda N, M, B: bounds.yannakakis_em_bound(N, 3 * N, M, B)),
    ]
    table = _cost_table()
    sweep = [(2 ** 20, 2 ** 10, 32), (2 ** 18, 2 ** 12, 64),
             (2 ** 16, 2 ** 8, 16)]
    for qn, closed_form in cases:
        cost = parse_cost(table[qn]["cost"])
        for N, M, B in sweep:
            derived = evaluate_cost(
                cost, {"N": float(N), "M": float(M), "B": float(B),
                       "OUT": float(N)},
                log_value=max(1.0, math.log2(N / M)))
            expected = closed_form(N, M, B)
            ratio = derived / expected
            assert 1 / 32 <= ratio <= 32, (
                f"{qn} at (N={N}, M={M}, B={B}): derived "
                f"{derived:.3g} vs closed form {expected:.3g}")


def test_committed_costs_baseline_matches_reality():
    """The ``--check-costs`` committed archive agrees with a fresh
    derivation pass."""
    from repro.lint import (compact_cost_signatures,
                            compare_cost_signatures)
    committed = json.loads(
        (ROOT / "costs-baseline.json").read_text(encoding="utf-8"))
    result = lint_paths([SRC], root=ROOT)
    failures, notices = compare_cost_signatures(committed, result.costs)
    assert failures == [], failures
    assert notices == [], notices
    assert committed == compact_cost_signatures(result.costs)


def test_no_declaration_carries_a_placeholder_justification():
    """Every ``# em-cost:`` justification in the tree is real — the
    placeholder the gates reject never ships."""
    table = _cost_table()
    offenders = [qn for qn, e in table.items()
                 if str(e.get("justification", "")).startswith(
                     "TODO: justify")]
    assert offenders == []
