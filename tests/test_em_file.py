"""Unit tests for EM files: page-granular read/write accounting."""

import pytest

from repro.em import Device


def fill(device, n, name="f"):
    f = device.new_file(name)
    with f.writer() as w:
        for i in range(n):
            w.append((i,))
    return f


class TestWriter:
    def test_write_charges_one_io_per_page(self, small_device):
        before = small_device.stats.writes
        fill(small_device, 16)  # B=4 -> 4 pages
        assert small_device.stats.writes - before == 4

    def test_partial_final_page_still_costs_one_io(self, small_device):
        fill(small_device, 5)  # 1 full + 1 partial page
        assert small_device.stats.writes == 2

    def test_empty_file_costs_nothing(self, small_device):
        f = small_device.new_file("empty")
        f.writer().close()
        assert small_device.stats.writes == 0
        assert len(f) == 0

    def test_sealed_file_rejects_new_writer(self, small_device):
        f = fill(small_device, 3)
        with pytest.raises(RuntimeError):
            f.writer()

    def test_closed_writer_rejects_append(self, small_device):
        f = small_device.new_file("g")
        w = f.writer()
        w.close()
        with pytest.raises(RuntimeError):
            w.append((1,))


class TestSequentialReader:
    def test_scan_charges_one_read_per_page(self, small_device):
        f = fill(small_device, 16)
        small_device.stats.reset()
        assert list(f.scan()) == [(i,) for i in range(16)]
        assert small_device.stats.reads == 4

    def test_rescan_charges_again(self, small_device):
        f = fill(small_device, 8)
        small_device.stats.reset()
        list(f.scan())
        list(f.scan())
        assert small_device.stats.reads == 4

    def test_peek_does_not_advance(self, small_device):
        f = fill(small_device, 4)
        r = f.reader()
        assert r.peek() == (0,)
        assert r.next() == (0,)

    def test_peek_within_page_charges_once(self, small_device):
        f = fill(small_device, 4)
        small_device.stats.reset()
        r = f.reader()
        r.peek()
        r.peek()
        r.next()
        r.next()
        assert small_device.stats.reads == 1

    def test_read_up_to_stops_at_end(self, small_device):
        f = fill(small_device, 6)
        r = f.reader()
        assert len(r.read_up_to(10)) == 6
        assert r.exhausted

    def test_skip_to_does_not_charge(self, small_device):
        f = fill(small_device, 40)
        small_device.stats.reset()
        r = f.reader()
        r.skip_to(36)
        assert small_device.stats.reads == 0
        r.next()
        assert small_device.stats.reads == 1

    def test_skip_backwards_rejected(self, small_device):
        f = fill(small_device, 8)
        r = f.reader()
        r.read_up_to(5)
        with pytest.raises(ValueError):
            r.skip_to(2)

    def test_exhausted_peek_raises(self, small_device):
        f = fill(small_device, 1)
        r = f.reader()
        r.next()
        with pytest.raises(StopIteration):
            r.peek()


class TestFileSegment:
    def test_segment_reads_only_its_range(self, small_device):
        f = fill(small_device, 20)
        small_device.stats.reset()
        seg = f.segment(4, 8)  # exactly page 1
        assert list(seg.scan()) == [(i,) for i in range(4, 8)]
        assert small_device.stats.reads == 1

    def test_straddling_segment_charges_both_pages(self, small_device):
        f = fill(small_device, 20)
        small_device.stats.reset()
        seg = f.segment(2, 6)  # straddles pages 0 and 1
        list(seg.scan())
        assert small_device.stats.reads == 2

    def test_n_pages(self, small_device):
        f = fill(small_device, 20)
        assert f.segment(0, 4).n_pages == 1
        assert f.segment(2, 6).n_pages == 2
        assert f.segment(0, 0).n_pages == 0

    def test_out_of_range_rejected(self, small_device):
        f = fill(small_device, 4)
        with pytest.raises(IndexError):
            f.segment(2, 9)

    def test_subsegment_bounds_checked(self, small_device):
        f = fill(small_device, 10)
        seg = f.segment(2, 8)
        with pytest.raises(IndexError):
            seg.subsegment(0, 5)

    def test_free_setup_does_not_charge(self):
        device = Device(M=16, B=4)
        device.file_from_tuples_free([(i,) for i in range(100)])
        assert device.stats.total == 0

    def test_charged_setup_charges(self):
        device = Device(M=16, B=4)
        device.file_from_tuples([(i,) for i in range(100)])
        assert device.stats.writes == 25


class TestDeviceValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Device(M=0, B=1)
        with pytest.raises(ValueError):
            Device(M=4, B=0)
        with pytest.raises(ValueError):
            Device(M=4, B=8)

    def test_pages_helper(self, small_device):
        assert small_device.pages(0) == 0
        assert small_device.pages(1) == 1
        assert small_device.pages(4) == 1
        assert small_device.pages(5) == 2
