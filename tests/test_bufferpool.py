"""Tests for the opt-in buffer pool and its replacement policies.

The pool is accounting-only (the simulated disk always holds the
tuples), so every test here is about *counts*: which accesses hit,
which evict, and — the load-bearing guarantee — that the pool-disabled
default stays byte-identical to the paper-faithful seed accounting.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_random_data
from repro import Device, Instance
from repro.core import CountingEmitter, execute
from repro.em import BufferPoolError, PoolConfig, make_policy
from repro.query import line_query, star_query


def pool_device(frames=2, policy="lru", M=8, B=2):
    return Device(M=M, B=B,
                  buffer_pool=PoolConfig(frames=frames, policy=policy))


class TestPoolConfig:
    def test_frames_budget(self):
        assert PoolConfig(frames=3).n_frames(M=64, B=8) == 3

    def test_tuple_budget_rounds_down_to_frames(self):
        assert PoolConfig(tuples=20).n_frames(M=64, B=8) == 2

    def test_default_budget_is_M_tuples(self):
        assert PoolConfig().n_frames(M=64, B=8) == 8

    def test_at_least_one_frame(self):
        assert PoolConfig(tuples=1).n_frames(M=64, B=8) == 1

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            PoolConfig(frames=0).n_frames(M=8, B=2)
        with pytest.raises(ValueError):
            PoolConfig(tuples=0).n_frames(M=8, B=2)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            Device(M=8, B=2, buffer_pool=PoolConfig(policy="fifo"))

    def test_make_policy_registry(self):
        assert make_policy("lru").__class__.__name__ == "LRUPolicy"
        assert make_policy("clock").__class__.__name__ == "ClockPolicy"
        assert make_policy("mru").__class__.__name__ == "MRUPolicy"


class TestEvictionOrder:
    """Policies see opaque keys, so sentinel 'files' suffice."""

    def test_lru_evicts_coldest(self):
        dev = pool_device(frames=2, policy="lru")
        pool = dev.pool
        pool.read_page("f", 0)
        pool.read_page("f", 1)
        pool.read_page("f", 0)        # hit: 0 becomes most recent
        pool.read_page("f", 2)        # evicts 1, the coldest
        assert pool.contains("f", 0) and pool.contains("f", 2)
        assert not pool.contains("f", 1)
        assert dev.stats.cache.hits == 1
        assert dev.stats.cache.evictions == 1

    def test_mru_evicts_hottest(self):
        dev = pool_device(frames=2, policy="mru")
        pool = dev.pool
        pool.read_page("f", 0)
        pool.read_page("f", 1)
        pool.read_page("f", 0)        # hit: 0 becomes most recent
        pool.read_page("f", 2)        # evicts 0, the hottest
        assert pool.contains("f", 1) and pool.contains("f", 2)
        assert not pool.contains("f", 0)

    def test_clock_second_chance_sweep(self):
        dev = pool_device(frames=2, policy="clock")
        pool = dev.pool
        pool.read_page("f", 0)
        pool.read_page("f", 1)
        # Sweep clears both reference bits, wraps, evicts page 0.
        pool.read_page("f", 2)
        assert pool.contains("f", 1) and pool.contains("f", 2)
        # Page 1's bit is clear and the hand points at it: next victim.
        pool.read_page("f", 3)
        assert pool.contains("f", 2) and pool.contains("f", 3)
        assert not pool.contains("f", 1)

    def test_hits_charge_no_io(self):
        dev = pool_device(frames=4)
        for _ in range(5):
            dev.pool.read_page("f", 0)
        assert dev.stats.reads == 1
        assert dev.stats.cache.hits == 4
        assert dev.stats.cache.misses == 1


class TestPinning:
    def test_pin_prevents_eviction(self):
        dev = pool_device(frames=2, policy="lru")
        pool = dev.pool
        pool.pin("f", 0)              # faults the page in, then pins
        pool.read_page("f", 1)
        pool.read_page("f", 2)        # LRU victim would be 0; it is pinned
        assert pool.contains("f", 0)
        assert not pool.contains("f", 1)
        pool.unpin("f", 0)

    def test_all_pinned_bypasses_without_caching(self):
        dev = pool_device(frames=2)
        pool = dev.pool
        pool.pin("f", 0)
        pool.pin("f", 1)
        pool.read_page("f", 2)        # miss, charged, not admitted
        assert not pool.contains("f", 2)
        pool.read_page("f", 2)        # still a miss: charged again
        assert dev.stats.reads == 4   # 2 pin faults + 2 uncached misses

    def test_pinned_context_manager(self):
        dev = pool_device(frames=2)
        with dev.pool.pinned("f", 0):
            assert dev.pool.pin_count("f", 0) == 1
        assert dev.pool.pin_count("f", 0) == 0

    def test_unpin_without_pin_rejected(self):
        dev = pool_device(frames=2)
        dev.pool.read_page("f", 0)
        with pytest.raises(BufferPoolError):
            dev.pool.unpin("f", 0)


class TestOwnerPins:
    """Owner-attributed pins: the surface the server's shared pool
    stands on (sessions pin as themselves; closing one must not
    disturb the others)."""

    def test_pins_attributed_per_owner(self):
        pool = pool_device(frames=4).pool
        pool.pin("f", 0, owner="a")
        pool.pin("f", 0, owner="b")   # same frame, two owners
        pool.pin("f", 1, owner="b")
        acct = pool.pin_accounting()
        assert acct["a"] == {"frames": 1, "pins": 1}
        assert acct["b"] == {"frames": 2, "pins": 2}
        assert pool.owner_pins("b") == 2
        assert pool.pin_count("f", 0) == 2

    def test_unpin_requires_matching_owner(self):
        pool = pool_device(frames=2).pool
        pool.pin("f", 0, owner="a")
        with pytest.raises(BufferPoolError):
            pool.unpin("f", 0, owner="b")
        pool.unpin("f", 0, owner="a")
        assert pool.pin_accounting() == {}

    def test_release_owner_spares_other_owners(self):
        """The cross-session pin-leak regression at the pool level:
        one owner leaving must drop its pins and *only* its pins."""
        pool = pool_device(frames=2).pool
        pool.pin("f", 0, owner="a")
        pool.pin("f", 0, owner="b")
        assert pool.release_owner("a") == 1
        assert pool.pin_count("f", 0) == 1  # b's pin survives
        pool.read_page("g", 0)
        pool.read_page("g", 1)  # eviction pressure on both frames
        assert pool.contains("f", 0)  # still protected by b
        assert pool.release_owner("b") == 1
        assert pool.release_owner("b") == 0  # idempotent

    def test_fairness_cap_is_per_owner(self):
        dev = Device(M=8, B=2, buffer_pool=PoolConfig(
            frames=4, max_pin_share=0.5))
        pool = dev.pool
        pool.pin("f", 0, owner="a")
        pool.pin("f", 1, owner="a")
        with pytest.raises(BufferPoolError, match="fairness cap"):
            pool.pin("f", 2, owner="a")
        pool.pin("f", 2, owner="b")   # the cap is per owner, not global
        pool.pin("f", 0, owner="a")   # held frame: no new frame counted
        assert pool.owner_pins("a") == 3

    def test_via_routes_charges_to_accessing_device(self):
        """Cross-query accounting: the pool's anchor device stays at
        zero; the device passed as ``via`` pays (and benefits)."""
        anchor = pool_device(frames=4)
        other = Device(M=8, B=2)
        pool = anchor.pool
        pool.read_page("f", 0, via=other)   # miss: physical read
        pool.read_page("f", 0, via=other)   # hit
        pool.write_page("f", 0, via=other)  # deferred
        pool.flush(device=other)            # write-back, charged now
        assert anchor.stats.reads == 0 and anchor.stats.writes == 0
        assert anchor.stats.cache.hits == 0
        assert other.stats.reads == 1 and other.stats.writes == 1
        assert other.stats.cache.hits == 1
        assert other.stats.cache.writebacks == 1

    def test_flush_per_device_writes_only_own_dirt(self):
        anchor = pool_device(frames=4)
        a, b = Device(M=8, B=2), Device(M=8, B=2)
        pool = anchor.pool
        pool.write_page("f", 0, via=a)
        pool.write_page("g", 0, via=b)
        pool.flush(device=a)
        assert a.stats.writes == 1 and b.stats.writes == 0
        pool.flush()  # no filter: the rest goes back too
        assert b.stats.writes == 1

    @pytest.mark.parametrize("reset", ["close", "clear"])
    def test_close_and_clear_reset_pin_accounting(self, reset):
        """close()/clear() must forget owner pins with the frames —
        stale accounting would wrongly trip the fairness cap and block
        release_owner bookkeeping on the next query."""
        pool = pool_device(frames=2).pool
        pool.pin("f", 0, owner="a")
        pool.pin("f", 1, owner="a")
        getattr(pool, reset)()
        assert pool.pin_accounting() == {}
        assert pool.resident_pages == 0
        pool.pin("f", 0, owner="a")  # accounting restarts cleanly
        assert pool.owner_pins("a") == 1

    def test_drop_matching_spares_pinned_and_dirty(self):
        pool = pool_device(frames=4).pool
        pool.pin("f", 0, owner="a")
        pool.write_page("g", 0)       # dirty
        pool.read_page("h", 0)        # clean, droppable
        assert pool.drop_matching(lambda key: True) == 1
        assert pool.contains("f", 0) and pool.contains("g", 0)
        assert not pool.contains("h", 0)
        assert pool.drop_matching(lambda key: True,
                                  include_dirty=True) == 1
        assert pool.contains("f", 0)  # pinned frames never dropped


class TestDirtyPages:
    def test_writes_deferred_then_counted_exactly_once(self):
        dev = pool_device(frames=2, M=8, B=2)
        f = dev.file_from_tuples([(i,) for i in range(6)])  # 3 pages
        # Two frames: page 0 was evicted dirty (1 write-back); pages
        # 1-2 are resident dirty with their writes still deferred.
        assert dev.stats.writes == 1
        dev.flush_pool()
        assert dev.stats.writes == 3
        dev.flush_pool()              # idempotent: pages now clean
        assert dev.stats.writes == 3
        assert dev.stats.cache.writebacks == 3
        # Pages 1-2 are still resident (clean): reading them is free.
        list(f.segment(2, 6).scan())
        assert dev.stats.cache.hits == 2
        assert dev.stats.reads == 0
        # The evicted page 0 is a charged miss.
        list(f.segment(0, 2).scan())
        assert dev.stats.reads == 1

    def test_reset_stats_drops_deferred_writes(self):
        dev = pool_device(frames=4, M=8, B=2)
        dev.file_from_tuples([(i,) for i in range(4)])
        dev.reset_stats()
        dev.flush_pool()
        assert dev.stats.writes == 0
        assert dev.pool.resident_pages == 0

    def test_close_flushes_and_drops(self):
        dev = pool_device(frames=4, M=8, B=2)
        dev.file_from_tuples([(i,) for i in range(4)])  # 2 dirty pages
        dev.pool.close()
        assert dev.stats.writes == 2
        assert dev.pool.resident_pages == 0


class TestPoolDisabledDefault:
    def test_device_has_no_pool_by_default(self):
        dev = Device(M=8, B=2)
        assert dev.pool is None
        assert dev.pool_config is None
        dev.flush_pool()              # no-op, no error

    def test_cache_counters_stay_zero_without_pool(self):
        dev = Device(M=8, B=2)
        f = dev.file_from_tuples([(i,) for i in range(8)])
        list(f.scan())
        c = dev.stats.cache
        assert (c.hits, c.misses, c.evictions, c.writebacks) == (0, 0, 0, 0)


def _run_star(pool):
    q = star_query(2)
    schemas, data = make_random_data(q, 30, 4, seed=3)
    dev = Device(M=8, B=2, buffer_pool=pool)
    inst = Instance.from_dicts(dev, schemas, data)
    em = CountingEmitter()
    execute(q, inst, em)
    dev.flush_pool()
    return dev, em


class TestAccountingInvariants:
    def test_hits_plus_misses_equal_logical_reads(self):
        """Pool-on logical reads must equal pool-off physical reads."""
        dev_off, em_off = _run_star(None)
        dev_on, em_on = _run_star(PoolConfig(tuples=8))
        assert em_on.count == em_off.count
        c = dev_on.stats.cache
        assert c.hits + c.misses == c.logical_reads
        assert c.logical_reads == dev_off.stats.reads

    def test_writes_conserved_and_reads_never_increase(self):
        dev_off, _ = _run_star(None)
        dev_on, _ = _run_star(PoolConfig(tuples=8))
        assert dev_on.stats.writes == dev_off.stats.writes
        assert dev_on.stats.reads <= dev_off.stats.reads


@settings(max_examples=30, deadline=None)
@given(n_edges=st.integers(1, 3), size=st.integers(2, 14),
       domain=st.integers(2, 4), seed=st.integers(0, 10**6),
       policy=st.sampled_from(["lru", "clock", "mru"]))
def test_pool_disabled_counts_equal_seed_counts(n_edges, size, domain,
                                                seed, policy):
    """Property: on random small instances, the pool-off run is the
    ground truth — deterministic, and the pool-on run conserves writes,
    never reads more, and accounts every logical read as hit or miss.
    """
    q = line_query(n_edges)
    schemas, data = make_random_data(q, size, domain, seed=seed)

    def run(pool):
        dev = Device(M=4, B=2, buffer_pool=pool)
        inst = Instance.from_dicts(dev, schemas, data)
        em = CountingEmitter()
        execute(q, inst, em)
        dev.flush_pool()
        return dev, em

    dev_a, em_a = run(None)
    dev_b, em_b = run(None)
    assert (dev_a.stats.reads, dev_a.stats.writes) == \
        (dev_b.stats.reads, dev_b.stats.writes)

    dev_on, em_on = run(PoolConfig(tuples=4, policy=policy))
    assert em_on.count == em_a.count
    assert dev_on.stats.writes == dev_a.stats.writes
    assert dev_on.stats.reads <= dev_a.stats.reads
    c = dev_on.stats.cache
    assert c.logical_reads == dev_a.stats.reads
    assert dev_on.stats.reads == c.misses
