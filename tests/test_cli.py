"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def csv_tables(tmp_path):
    (tmp_path / "follows.csv").write_text(
        "src,dst\n" + "\n".join(f"{i},{(i + 1) % 4}" for i in range(4)))
    (tmp_path / "lives.csv").write_text(
        "dst,city\n" + "\n".join(f"{i},{100 + i}" for i in range(4)))
    return tmp_path


class TestRun:
    def test_basic_join(self, csv_tables, capsys):
        rc = main(["run",
                   "--query", "follows(src, dst), lives(dst, city)",
                   "--table", f"follows={csv_tables}/follows.csv",
                   "--table", f"lives={csv_tables}/lives.csv",
                   "-M", "64", "-B", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "results     : 4" in out
        assert "two-way-sort-merge" in out
        assert "phases" in out

    def test_out_csv(self, csv_tables, capsys):
        out_path = csv_tables / "res.csv"
        rc = main(["run",
                   "--query", "follows(src, dst), lives(dst, city)",
                   "--table", f"follows={csv_tables}/follows.csv",
                   "--table", f"lives={csv_tables}/lives.csv",
                   "--out", str(out_path)])
        assert rc == 0
        assert len(out_path.read_text().strip().splitlines()) == 5

    def test_certificate(self, csv_tables, capsys):
        rc = main(["run",
                   "--query", "follows(src, dst), lives(dst, city)",
                   "--table", f"follows={csv_tables}/follows.csv",
                   "--table", f"lives={csv_tables}/lives.csv",
                   "--certificate"])
        assert rc == 0
        assert "certificate" in capsys.readouterr().out

    def test_missing_table_errors(self, csv_tables, capsys):
        rc = main(["run", "--query", "follows(src,dst), lives(dst,city)",
                   "--table", f"follows={csv_tables}/follows.csv"])
        assert rc == 2
        assert "no --table" in capsys.readouterr().err

    def test_bad_table_spec(self, csv_tables, capsys):
        rc = main(["run", "--query", "follows(src,dst)",
                   "--table", "followspath.csv"])
        assert rc == 2

    def test_mismatched_columns(self, csv_tables, capsys):
        rc = main(["run", "--query", "follows(a, b)",
                   "--table", f"follows={csv_tables}/follows.csv"])
        assert rc == 2
        assert "columns" in capsys.readouterr().err


class TestAnalyze:
    def test_line_with_sizes(self, capsys):
        rc = main(["analyze", "--query",
                   "e1(v1,v2)[100], e2(v2,v3)[10], e3(v3,v4)[100]"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "berge-acyclic  : True" in out
        assert "shape          : line" in out
        assert "AGM bound      : 10000.0" in out
        assert "line regime" in out
        assert "GenS branches" in out

    def test_structural_only(self, capsys):
        rc = main(["analyze", "--query", "R(a,b), S(b,c), T(c,d)"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "AGM" not in out  # no sizes attached

    def test_cyclic_query_reported(self, capsys):
        rc = main(["analyze", "--query",
                   "e1(a,b)[9], e2(a,c)[9], e3(b,c)[9]"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "berge-acyclic  : False" in out
        assert "triangle" in out
