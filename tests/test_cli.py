"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def csv_tables(tmp_path):
    (tmp_path / "follows.csv").write_text(
        "src,dst\n" + "\n".join(f"{i},{(i + 1) % 4}" for i in range(4)))
    (tmp_path / "lives.csv").write_text(
        "dst,city\n" + "\n".join(f"{i},{100 + i}" for i in range(4)))
    return tmp_path


class TestRun:
    def test_basic_join(self, csv_tables, capsys):
        rc = main(["run",
                   "--query", "follows(src, dst), lives(dst, city)",
                   "--table", f"follows={csv_tables}/follows.csv",
                   "--table", f"lives={csv_tables}/lives.csv",
                   "-M", "64", "-B", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "results     : 4" in out
        assert "two-way-sort-merge" in out
        assert "phases" in out

    def test_out_csv(self, csv_tables, capsys):
        out_path = csv_tables / "res.csv"
        rc = main(["run",
                   "--query", "follows(src, dst), lives(dst, city)",
                   "--table", f"follows={csv_tables}/follows.csv",
                   "--table", f"lives={csv_tables}/lives.csv",
                   "--out", str(out_path)])
        assert rc == 0
        assert len(out_path.read_text().strip().splitlines()) == 5

    def test_certificate(self, csv_tables, capsys):
        rc = main(["run",
                   "--query", "follows(src, dst), lives(dst, city)",
                   "--table", f"follows={csv_tables}/follows.csv",
                   "--table", f"lives={csv_tables}/lives.csv",
                   "--certificate"])
        assert rc == 0
        assert "certificate" in capsys.readouterr().out

    def test_missing_table_errors(self, csv_tables, capsys):
        rc = main(["run", "--query", "follows(src,dst), lives(dst,city)",
                   "--table", f"follows={csv_tables}/follows.csv"])
        assert rc == 2
        assert "no --table" in capsys.readouterr().err

    def test_bad_table_spec(self, csv_tables, capsys):
        rc = main(["run", "--query", "follows(src,dst)",
                   "--table", "followspath.csv"])
        assert rc == 2

    def test_mismatched_columns(self, csv_tables, capsys):
        rc = main(["run", "--query", "follows(a, b)",
                   "--table", f"follows={csv_tables}/follows.csv"])
        assert rc == 2
        assert "columns" in capsys.readouterr().err

    def test_buffer_pool_reports_cache_line(self, csv_tables, capsys):
        rc = main(["run",
                   "--query", "follows(src, dst), lives(dst, city)",
                   "--table", f"follows={csv_tables}/follows.csv",
                   "--table", f"lives={csv_tables}/lives.csv",
                   "-M", "64", "-B", "8",
                   "--pool-frames", "8", "--pool-policy", "clock"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cache       : hits=" in out
        assert "hit_rate=" in out


class TestRunJson:
    def _payload(self, csv_tables, capsys, *extra):
        rc = main(["run",
                   "--query", "follows(src, dst), lives(dst, city)",
                   "--table", f"follows={csv_tables}/follows.csv",
                   "--table", f"lives={csv_tables}/lives.csv",
                   "-M", "64", "-B", "8", "--json", *extra])
        assert rc == 0
        return json.loads(capsys.readouterr().out)

    def test_json_is_scrapable(self, csv_tables, capsys):
        p = self._payload(csv_tables, capsys)
        assert p["results"] == 4
        assert p["algorithm"] == "two-way-sort-merge"
        assert p["io"]["total"] == p["io"]["reads"] + p["io"]["writes"]
        assert p["io"]["join"] + p["io"]["reduce"] == p["io"]["total"]
        assert "(unattributed)" in p["phases"]
        assert sum(p["phases"].values()) == p["io"]["total"]
        assert p["memory"]["peak"] >= 0
        assert p["machine"] == {"M": 64, "B": 8}
        assert p["cache"] is None     # pool off by default

    def test_json_with_pool_has_cache_section(self, csv_tables, capsys):
        p = self._payload(csv_tables, capsys, "--pool-frames", "8")
        cache = p["cache"]
        assert cache["hits"] + cache["misses"] == cache["logical_reads"]
        assert 0.0 <= cache["hit_rate"] <= 1.0

    def test_json_with_certificate(self, csv_tables, capsys):
        p = self._payload(csv_tables, capsys, "--certificate")
        assert p["certificate"]["lower"] > 0

    def test_trace_exports_parseable_jsonl(self, csv_tables, capsys):
        trace_path = csv_tables / "trace.jsonl"
        p = self._payload(csv_tables, capsys, "--trace",
                          str(trace_path))
        lines = [json.loads(line) for line in
                 trace_path.read_text().splitlines()]
        assert p["trace"]["events"] == len(lines)
        assert p["trace"]["path"] == str(trace_path)
        reads = sum(1 for e in lines if e["kind"] == "read")
        writes = sum(1 for e in lines if e["kind"] == "write")
        assert reads == p["io"]["reads"]
        assert writes == p["io"]["writes"]

    def test_trace_section_reports_loss_honestly(self, csv_tables,
                                                 capsys):
        """The JSON trace section admits what the ring buffer lost."""
        trace_path = csv_tables / "trace.jsonl"
        p = self._payload(csv_tables, capsys, "--trace",
                          str(trace_path), "--trace-sample", "5",
                          "--trace-buffer", "4")
        t = p["trace"]
        for key in ("seen", "stored", "sampled_out", "overwritten"):
            assert t[key] >= 0
        assert t["stored"] == t["events"] <= 4
        assert t["sampled_out"] > 0
        assert t["seen"] == (t["stored"] + t["sampled_out"]
                             + t["overwritten"])

    def test_trace_summary_sums_to_total(self, csv_tables, capsys):
        p = self._payload(csv_tables, capsys, "--trace-summary")
        s = p["trace_summary"]
        assert sum(v["total"] for v in s["per_phase"].values()) == \
            p["io"]["total"]
        assert sum(v["total"] for v in s["per_file"].values()) == \
            p["io"]["total"]
        assert s["io"]["reads"] == p["io"]["reads"]
        assert {k: v["total"] for k, v in s["per_phase"].items()} == \
            p["phases"]

    def test_trace_summary_prose(self, csv_tables, capsys):
        rc = main(["run",
                   "--query", "follows(src, dst), lives(dst, city)",
                   "--table", f"follows={csv_tables}/follows.csv",
                   "--table", f"lives={csv_tables}/lives.csv",
                   "--trace-summary"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace       :" in out
        assert "phase sort" in out

    def test_trace_sample_keeps_summary_exact(self, csv_tables, capsys):
        p = self._payload(csv_tables, capsys, "--trace-summary",
                          "--trace-sample", "5", "--trace-buffer", "10")
        s = p["trace_summary"]
        assert s["events"]["sampled_out"] > 0
        assert s["io"]["total"] == p["io"]["total"]

    def test_trace_rejects_bad_knobs(self, csv_tables, capsys):
        rc = main(["run",
                   "--query", "follows(src, dst), lives(dst, city)",
                   "--table", f"follows={csv_tables}/follows.csv",
                   "--table", f"lives={csv_tables}/lives.csv",
                   "--trace-summary", "--trace-sample", "0"])
        assert rc == 2
        assert "--trace-sample" in capsys.readouterr().err


class TestRunProfile:
    def _payload(self, csv_tables, capsys, *extra):
        rc = main(["run",
                   "--query", "follows(src, dst), lives(dst, city)",
                   "--table", f"follows={csv_tables}/follows.csv",
                   "--table", f"lives={csv_tables}/lives.csv",
                   "-M", "64", "-B", "8", "--json", *extra])
        assert rc == 0
        return json.loads(capsys.readouterr().out)

    def test_profile_writes_perfetto_json(self, csv_tables, capsys):
        prof_path = csv_tables / "prof.json"
        p = self._payload(csv_tables, capsys, "--profile",
                          str(prof_path))
        doc = json.loads(prof_path.read_text())
        assert len(doc["traceEvents"]) == p["profile"]["events"]
        assert p["profile"]["path"] == str(prof_path)
        for e in doc["traceEvents"]:
            assert e["ph"] == "X" and e["pid"] == 1 and e["tid"] == 1
        # Spans reconcile to the device total, and profiling did not
        # perturb the counters relative to a bare run.
        assert p["profile"]["attributed_io"] + \
            p["profile"]["unattributed_io"] == p["io"]["total"]
        bare = self._payload(csv_tables, capsys)
        assert bare["io"] == p["io"]

    def test_profile_counts_emitted_tuples(self, csv_tables, capsys):
        p = self._payload(csv_tables, capsys, "--profile",
                          str(csv_tables / "prof.json"))
        assert p["profile"]["tuples_produced"] == p["results"] == 4

    def test_metrics_in_json_payload(self, csv_tables, capsys):
        p = self._payload(csv_tables, capsys, "--metrics")
        assert p["metrics"]["histograms"]["sort.run_tuples"]["count"] > 0
        assert "planner.dispatch.two-relation" in p["metrics"]["counters"]

    def test_metrics_out_writes_prometheus_text(self, csv_tables,
                                                capsys):
        met_path = csv_tables / "metrics.prom"
        p = self._payload(csv_tables, capsys, "--metrics-out",
                          str(met_path))
        assert p["metrics_path"] == str(met_path)
        text = met_path.read_text()
        assert "# TYPE repro_sort_run_tuples histogram" in text
        assert "repro_sort_run_tuples_count" in text

    def test_profile_prose_line(self, csv_tables, capsys):
        rc = main(["run",
                   "--query", "follows(src, dst), lives(dst, city)",
                   "--table", f"follows={csv_tables}/follows.csv",
                   "--table", f"lives={csv_tables}/lives.csv",
                   "--profile", str(csv_tables / "p.json"),
                   "--metrics"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "profile     :" in out and "attributed" in out
        assert "metrics     :" in out


class TestFitCommand:
    def test_fit_two_relations_json(self, capsys):
        rc = main(["fit", "two_relations", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        p = json.loads(out)
        assert p["regression"] is False
        (fit,) = p["fits"]
        assert fit["class"] == "two_relations"
        assert 0.5 <= fit["constant"] <= 2.0
        assert abs(fit["slope"] - 1.0) <= fit["eps"]
        assert len(fit["points"]) == 3

    def test_fit_prose_and_custom_sweep(self, capsys):
        rc = main(["fit", "two_relations", "--points", "32", "64",
                   "-M", "16", "-B", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "two_relations" in out and "slope=" in out
        assert "[ok]" in out

    def test_fit_writes_profile(self, tmp_path, capsys):
        prof = tmp_path / "fit.json"
        rc = main(["fit", "two_relations", "--profile", str(prof)])
        assert rc == 0
        doc = json.loads(prof.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "fit:two_relations" in names

    def test_fit_tight_eps_flags_regression(self, capsys):
        """With eps ~ 0 any real sweep's slope trips the gate."""
        rc = main(["fit", "star", "--eps", "0.0001"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSION" in out

    def test_fit_rejects_unknown_class(self, capsys):
        with pytest.raises(SystemExit):
            main(["fit", "bogus"])


class TestAnalyze:
    def test_line_with_sizes(self, capsys):
        rc = main(["analyze", "--query",
                   "e1(v1,v2)[100], e2(v2,v3)[10], e3(v3,v4)[100]"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "berge-acyclic  : True" in out
        assert "shape          : line" in out
        assert "AGM bound      : 10000.0" in out
        assert "line regime" in out
        assert "GenS branches" in out

    def test_structural_only(self, capsys):
        rc = main(["analyze", "--query", "R(a,b), S(b,c), T(c,d)"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "AGM" not in out  # no sizes attached

    def test_cyclic_query_reported(self, capsys):
        rc = main(["analyze", "--query",
                   "e1(a,b)[9], e2(a,c)[9], e3(b,c)[9]"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "berge-acyclic  : False" in out
        assert "triangle" in out
