"""Prediction from fitted constants: matching, math, drift, explain.

The committed ``benchmarks/BENCH_fitted.json`` is itself under test
here — the acceptance criterion is that on the classes ``repro fit``
sweeps, the model's prediction lands within a factor of two of the
measured planner-path I/O (accuracy ratio in ``[0.5, 2.0]``).
"""

import json
import math
from pathlib import Path

import pytest

from repro.analysis.predict import (DRIFT_RTOL, FITTED_VERSION,
                                    ExplainReport, compare_fitted, explain,
                                    load_fitted, match_fit_class, predict,
                                    save_fitted)
from repro.query.builders import (line_query, lollipop_query, star_query,
                                  triangle_query)
from repro.query.parse import parse_query

BENCH_FITTED = (Path(__file__).resolve().parent.parent
                / "benchmarks" / "BENCH_fitted.json")

M, B = 16, 4


def committed():
    return load_fitted(BENCH_FITTED)


def sizes_for(query, n):
    return {e: n for e in query.edge_names}


# ------------------------------------------------------- class matching


class TestMatchFitClass:
    def test_two_relations(self):
        q = parse_query("r(a,b), s(b,c)")
        name, terms = match_fit_class(q, {"r": 64, "s": 64}, M, B)
        assert name == "two_relations"
        assert terms["N1N2/(MB)"] == 64 * 64 / (M * B)
        assert terms["(N1+N2)/B"] == 128 / B

    def test_line3(self):
        q = line_query(3)
        name, terms = match_fit_class(q, sizes_for(q, 32), M, B)
        assert name == "line3"
        assert terms["N1N3/(MB)"] == 32 * 32 / (M * B)
        assert terms["(N1+N2+N3)/B"] == 96 / B

    def test_star_terms_scale_with_petal_count(self):
        q = star_query(3)
        sizes = sizes_for(q, 12)
        name, terms = match_fit_class(q, sizes, M, B)
        assert name == "star"
        assert terms["prodN/(M^(k-1)B)"] == 12 ** 3 / (M ** 2 * B)
        core = sizes[[e for e in q.edge_names
                      if len(q.edges[e]) == 3][0]]
        assert terms["(core+sumN)/B"] == (core + 3 * 12) / B

    def test_triangle(self):
        q = triangle_query()
        name, terms = match_fit_class(q, sizes_for(q, 16), M, B)
        assert name == "triangle"
        assert terms["sqrt(N1N2N3/M)/B"] == \
            pytest.approx(math.sqrt(16 ** 3 / M) / B)

    def test_two_petal_star_is_matched_as_a_line(self):
        # star_query(2) is a path of length 3 — the classifier sees a
        # line, and so must the fit-class matcher (this is exactly why
        # the "star" sweep uses three petals).
        q = star_query(2)
        name, _ = match_fit_class(q, sizes_for(q, 16), M, B)
        assert name == "line3"

    def test_unfitted_shapes_yield_none(self):
        for q in (line_query(4), lollipop_query(3)):
            assert match_fit_class(q, sizes_for(q, 16), M, B) is None


# ----------------------------------------------------------- predict()


class TestPredict:
    def test_prediction_is_constant_times_bound(self):
        doc = committed()
        q = line_query(3)
        sizes = sizes_for(q, 32)
        pred, reason = predict(q, sizes, M, B, doc)
        assert reason == "" and pred is not None
        cls = doc["classes"]["line3"]
        bound = 32 * 32 / (M * B) + 96 / B
        assert pred.io == pytest.approx(cls["constant"] * bound)
        assert pred.bound == pytest.approx(bound)
        assert sum(pred.phases.values()) == pytest.approx(
            pred.io * sum(cls["phase_shares"].values()))
        assert pred.sizes == sizes

    def test_extrapolation_is_flagged_not_hidden(self):
        doc = committed()
        q = line_query(3)
        fitted_m = doc["classes"]["line3"]["machine"]
        on_fitted, _ = predict(q, sizes_for(q, 32),
                               fitted_m["M"], fitted_m["B"], doc)
        assert not on_fitted.extrapolated
        elsewhere, _ = predict(q, sizes_for(q, 32), 4 * fitted_m["M"],
                               fitted_m["B"], doc)
        assert elsewhere.extrapolated
        assert elsewhere.as_dict()["extrapolated"] is True

    def test_unmatched_shape_degrades_with_reason(self):
        q = line_query(4)
        pred, reason = predict(q, sizes_for(q, 16), M, B, committed())
        assert pred is None
        assert "no fitted Table-1 class" in reason

    def test_missing_class_in_document_names_what_it_has(self):
        doc = {"version": 1, "classes":
               {k: v for k, v in committed()["classes"].items()
                if k != "line3"}}
        pred, reason = predict(line_query(3), sizes_for(line_query(3), 16),
                               M, B, doc)
        assert pred is None
        assert "no class 'line3'" in reason


# -------------------------------------------------------- the document


class TestFittedDocument:
    def test_committed_document_loads_and_is_versioned(self):
        doc = committed()
        assert doc["version"] == FITTED_VERSION
        assert set(doc["classes"]) == {"two_relations", "line3",
                                       "star", "triangle"}
        for cls in doc["classes"].values():
            assert cls["constant"] > 0
            assert len(cls["points"]) >= 3
            assert all(isinstance(p["io"], int) for p in cls["points"])
            assert sum(cls["phase_shares"].values()) == pytest.approx(
                1.0, abs=1e-3)

    def test_save_load_round_trip(self, tmp_path):
        from repro.analysis.fitting import fit_class

        fit = fit_class("two_relations", points=(32, 64), planner=True)
        path = tmp_path / "fitted.json"
        written = save_fitted(path, [fit], source="round-trip test")
        loaded = load_fitted(path)
        assert loaded == written
        assert loaded["meta"]["source"] == "round-trip test"
        assert loaded["classes"]["two_relations"]["points"][0]["io"] == \
            fit.points[0].io

    def test_load_rejects_wrong_version_and_shape(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99, "classes": {}}))
        with pytest.raises(ValueError, match="version"):
            load_fitted(bad)
        bad.write_text(json.dumps({"version": FITTED_VERSION}))
        with pytest.raises(ValueError, match="classes"):
            load_fitted(bad)

    def test_compare_fitted_catches_every_drift_kind(self):
        doc = committed()
        assert compare_fitted(doc, doc) == []
        tweaked = json.loads(json.dumps(doc))
        tweaked["classes"]["line3"]["points"][0]["io"] += 1
        tweaked["classes"]["triangle"]["constant"] *= 1 + 10 * DRIFT_RTOL
        del tweaked["classes"]["star"]
        drift = compare_fitted(doc, tweaked)
        assert any("line3.points" in d for d in drift)
        assert any("triangle.constant" in d for d in drift)
        assert any(d.startswith("star:") for d in drift)

    def test_tiny_float_wobble_is_not_drift(self):
        doc = committed()
        wobbled = json.loads(json.dumps(doc))
        wobbled["classes"]["line3"]["constant"] *= 1 + DRIFT_RTOL / 10
        assert compare_fitted(doc, wobbled) == []


# ------------------------------------------- explain: the honest report


class TestExplain:
    def test_phase_rows_pair_predicted_with_measured(self):
        doc = committed()
        q = line_query(3)
        rep = explain(q, sizes_for(q, 32), M, B,
                      measured_io=500,
                      measured_phases={"sort": 300, "other": 200},
                      fitted=doc)
        rows = {r["phase"]: r for r in rep.phase_rows()}
        assert rows["sort"]["measured"] == 300
        assert rows["sort"]["predicted"] is not None
        assert rows["other"]["predicted"] is None  # measured-only phase
        assert rep.as_dict()["accuracy"] == pytest.approx(
            500 / rep.prediction.io, abs=1e-3)

    def test_report_without_prediction_has_no_accuracy(self):
        rep = ExplainReport(prediction=None, reason="nope",
                            measured_io=10, measured_phases={})
        assert rep.accuracy is None
        doc = rep.as_dict()
        assert doc["accuracy"] is None and doc["reason"] == "nope"

    @pytest.mark.parametrize("name", ["two_relations", "line3",
                                      "star", "triangle"])
    def test_fitted_classes_predict_within_2x_of_measured(self, name):
        """Acceptance: rerun each fitted class's sweep on the planner
        path at a point and machine the constant was fitted on, and the
        accuracy ratio must stay within [0.5, 2.0]."""
        from repro.analysis.fitting import FIT_CLASSES, measure_point

        doc = committed()
        cls = doc["classes"][name]
        spec = FIT_CLASSES[name]
        fm = cls["machine"]
        n = cls["points"][-1]["n"]
        point = measure_point(spec, n, M=fm["M"], B=fm["B"],
                              planner=True)
        query, _schemas, data, _runner = spec.build(n)
        sizes = {e: len(data[e]) for e in query.edge_names}
        rep = explain(query, sizes, fm["M"], fm["B"],
                      measured_io=point.io,
                      measured_phases=point.phases, fitted=doc)
        assert rep.prediction is not None, rep.reason
        assert rep.prediction.fit_class == name
        assert not rep.prediction.extrapolated
        assert 0.5 <= rep.accuracy <= 2.0, (
            f"{name}: accuracy {rep.accuracy:.3f} outside [0.5, 2.0] — "
            f"the fitted model lost touch with the implementation")


# ---------------------------------------------- service-level ?explain


class TestServiceExplain:
    def test_service_explain_reports_accuracy_in_band(self):
        from repro.server import QueryService
        from repro.workloads import fig3_line3_instance

        doc = committed()
        fm = doc["classes"]["line3"]["machine"]
        svc = QueryService(M=256, B=fm["B"], default_query_M=fm["M"],
                           fitted=doc)
        schemas, data = fig3_line3_instance(16, 16)
        svc.add_instance("default", schemas, data)
        try:
            result, rep = svc.explain(
                "e1(v1,v2), e2(v2,v3), e3(v3,v4)",
                M=fm["M"], B=fm["B"])
        finally:
            svc.close()
        assert rep.prediction is not None, rep.reason
        assert rep.measured_io == result.io["total"]
        assert 0.5 <= rep.accuracy <= 2.0

    def test_service_without_fitted_degrades_with_reason(self):
        from repro.server import QueryService
        from repro.workloads import fig3_line3_instance

        svc = QueryService(M=256, B=2, default_query_M=8)
        schemas, data = fig3_line3_instance(16, 16)
        svc.add_instance("default", schemas, data)
        try:
            _, rep = svc.explain("e1(v1,v2), e2(v2,v3), e3(v3,v4)",
                                 M=8, B=2)
        finally:
            svc.close()
        assert rep.prediction is None
        assert "repro fit" in rep.reason
