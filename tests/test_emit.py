"""Tests for the emit model implementations."""

import pytest

from repro.core import (AssignmentEmitter, CallbackEmitter,
                        CollectingEmitter, CountingEmitter)


class TestCountingEmitter:
    def test_counts_and_checksums(self):
        a, b = CountingEmitter(), CountingEmitter()
        r1 = {"e1": (1, 2), "e2": (2, 3)}
        r2 = {"e1": (5, 6), "e2": (6, 7)}
        a.emit(r1)
        a.emit(r2)
        b.emit(r2)
        b.emit(r1)
        assert a.signature() == b.signature()   # order-insensitive
        assert a.count == 2

    def test_duplicates_change_count_not_checksum(self):
        a, b = CountingEmitter(), CountingEmitter()
        r = {"e1": (1, 2)}
        a.emit(r)
        b.emit(r)
        b.emit(r)
        assert a.checksum != b.checksum or a.count != b.count


class TestCollectingEmitter:
    def test_collects_copies(self):
        em = CollectingEmitter()
        r = {"e1": (1, 2)}
        em.emit(r)
        r["e1"] = (9, 9)
        assert em.results[0]["e1"] == (1, 2)
        assert em.count == 1
        assert em.result_set() == {frozenset({("e1", (1, 2))})}


class TestAssignmentEmitter:
    def test_flattens_consistent_results(self):
        em = AssignmentEmitter({"e1": ("a", "b"), "e2": ("b", "c")})
        em.emit({"e1": (1, 2), "e2": (2, 3)})
        assert em.assignment_set() == {(("a", 1), ("b", 2), ("c", 3))}

    def test_rejects_inconsistent_results(self):
        em = AssignmentEmitter({"e1": ("a", "b"), "e2": ("b", "c")})
        with pytest.raises(AssertionError):
            em.emit({"e1": (1, 2), "e2": (99, 3)})


class TestCallbackEmitter:
    def test_invokes_function(self):
        seen = []
        em = CallbackEmitter(seen.append)
        em.emit({"e1": (1,)})
        assert seen == [{"e1": (1,)}]
