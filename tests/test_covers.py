"""Tests for edge covers and the AGM bound (Sections 2.2.1, 7.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import (agm_bound, cover_number, fractional_edge_cover,
                         greedy_minimum_edge_cover, line_query,
                         lollipop_query, optimal_integral_cover, star_query,
                         triangle_query)
from repro.query.builders import dumbbell_query


class TestFractionalCover:
    def test_l3_cover_is_1_0_1(self):
        # Section 3: optimal cover of L3 is x1=1, x2=0, x3=1.
        q = line_query(3, [100, 100, 100])
        cover = fractional_edge_cover(q)
        assert cover.weights["e1"] == pytest.approx(1.0)
        assert cover.weights["e2"] == pytest.approx(0.0, abs=1e-8)
        assert cover.weights["e3"] == pytest.approx(1.0)
        assert cover.agm_bound == pytest.approx(10000.0)

    def test_lemma2_integrality_on_acyclic_queries(self):
        # Lemma 2: acyclic queries have 0/1 optimal covers.
        for q in [line_query(5, [10, 20, 30, 40, 50]),
                  star_query(3, [5, 10, 10, 10]),
                  lollipop_query(3, [4, 8, 8, 8, 8]),
                  dumbbell_query(2, 4, [3, 9, 9, 9, 3])]:
            assert fractional_edge_cover(q).is_integral()

    def test_triangle_cover_is_fractional(self):
        # The cyclic C3 has the famous half-half-half cover.
        q = triangle_query([100, 100, 100])
        cover = fractional_edge_cover(q)
        assert not cover.is_integral()
        assert cover.agm_bound == pytest.approx(100 ** 1.5, rel=1e-6)

    def test_lp_matches_brute_force_on_acyclic(self):
        for sizes in ([10, 10, 10, 10], [100, 2, 2, 100],
                      [3, 50, 3, 50]):
            q = line_query(4, sizes)
            lp = fractional_edge_cover(q)
            brute = optimal_integral_cover(q)
            assert lp.agm_bound == pytest.approx(brute.agm_bound,
                                                 rel=1e-6)

    def test_unit_costs_without_sizes(self):
        cover = fractional_edge_cover(line_query(5))
        assert sum(cover.weights.values()) == pytest.approx(3.0)

    def test_empty_query(self):
        from repro.query import JoinQuery
        assert fractional_edge_cover(JoinQuery(edges={})).agm_bound == 1.0


class TestAGM:
    def test_agm_l4_picks_cheaper_cover(self):
        # covers (1,0,1,1) vs (1,1,0,1): min(N1 N3 N4, N1 N2 N4).
        q = line_query(4, [10, 3, 7, 10])
        assert agm_bound(q) == pytest.approx(10 * 3 * 10)
        q2 = line_query(4, [10, 7, 3, 10])
        assert agm_bound(q2) == pytest.approx(10 * 3 * 10)

    def test_agm_star_is_product_of_petals(self):
        q = star_query(3, [1000, 4, 5, 6])
        assert agm_bound(q) == pytest.approx(4 * 5 * 6)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(2, 200), min_size=2, max_size=7))
    def test_agm_equals_brute_force_on_lines(self, sizes):
        q = line_query(len(sizes), sizes)
        assert (fractional_edge_cover(q).agm_bound
                == pytest.approx(optimal_integral_cover(q).agm_bound,
                                 rel=1e-6))


class TestGreedyCover:
    def test_line_cover_numbers(self):
        # c(L_n) = ceil(n+1)/2 edges needed to cover n+1 path vertices.
        assert cover_number(line_query(2)) == 2
        assert cover_number(line_query(3)) == 2
        assert cover_number(line_query(4)) == 3
        assert cover_number(line_query(5)) == 3
        assert cover_number(line_query(7)) == 4

    def test_star_cover_number_is_petal_count(self):
        assert cover_number(star_query(4)) == 4

    def test_greedy_matches_brute_force_minimum(self):
        for q in [line_query(6), star_query(3), lollipop_query(3),
                  dumbbell_query(2, 5)]:
            greedy = greedy_minimum_edge_cover(q)
            brute = optimal_integral_cover(q)  # unit costs
            assert greedy.c == sum(
                1 for x in brute.weights.values() if x > 0.5)

    def test_cover_actually_covers(self):
        q = lollipop_query(4)
        greedy = greedy_minimum_edge_cover(q)
        covered = set()
        for e in greedy.cover:
            covered |= q.edges[e]
        assert covered == set(q.attributes)

    def test_packing_is_valid(self):
        # Each packing vertex belongs to the edge chosen for it, and no
        # chosen edge contains two packing vertices (LP duality).
        q = line_query(7)
        greedy = greedy_minimum_edge_cover(q)
        assert len(greedy.packing) == len(greedy.cover)
        for e, v in zip(greedy.cover, greedy.packing):
            assert v in q.edges[e]
        for e in greedy.cover:
            assert len(set(greedy.packing) & q.edges[e]) <= 1

    def test_uncoverable_query_rejected(self):
        from repro.query import JoinQuery
        q = JoinQuery(edges={"e1": frozenset({"a"})})
        q2 = q.drop_edges(["e1"])
        # empty query covers trivially
        assert greedy_minimum_edge_cover(q2).c == 0
