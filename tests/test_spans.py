"""Tests for the span profiler, metrics, exporters, and bound fits."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Device, Instance, line_query
from repro.analysis import FIT_CLASSES, fit_class, fit_loglog
from repro.analysis.fitting import BoundTerm, FitPoint, FitResult
from repro.core import CountingEmitter, line3_join
from repro.obs import (DEFAULT_BUCKETS, Histogram, MetricsRegistry,
                       NULL_METRICS, NULL_SPAN, ProfiledEmitter,
                       SpanProfiler, to_chrome_trace, to_prometheus)
from repro.workloads import fig3_line3_instance


def profiled_line3(M=4, B=2, metrics=None):
    """The fixed L3 instance under a profiler; (device, profiler, emitter)."""
    profiler = SpanProfiler()
    device = Device(M=M, B=B, profiler=profiler, metrics=metrics)
    schemas, data = fig3_line3_instance(32, 32)
    instance = Instance.from_dicts(device, schemas, data)
    emitter = ProfiledEmitter(CountingEmitter(), profiler)
    line3_join(line_query(3), instance, emitter)
    device.flush_pool()
    return device, profiler, emitter


class TestProfilerTransparency:
    def test_profiling_never_charges(self):
        """Profiled and unprofiled runs have byte-identical counters —
        the same 325/146/1024 the tracer tests pin."""
        device, _, emitter = profiled_line3(metrics=MetricsRegistry())
        assert device.stats.reads == 325
        assert device.stats.writes == 146
        assert emitter.count == 1024

    def test_null_span_is_reentrant_noop(self):
        device = Device(M=16, B=4)
        assert device.span("anything") is NULL_SPAN
        with device.span("outer") as a, device.span("inner") as b:
            a.set("k", 1)
            b.add_tuples(3)
        assert device.profiler is None

    def test_detach_restores_null_behavior(self):
        profiler = SpanProfiler()
        device = Device(M=16, B=4, profiler=profiler)
        assert device.span("x") is not NULL_SPAN and device.profiler
        device.detach_profiler()
        assert device.span("x") is NULL_SPAN
        assert device.phases._profiler is None


class TestSpanTree:
    def test_roots_plus_unattributed_reconcile_to_total(self):
        device, profiler, _ = profiled_line3()
        s = profiler.summary()
        assert s["total_io"] == device.stats.total
        assert s["attributed_io"] + s["unattributed_io"] == s["total_io"]
        # Exclusive I/O over the whole tree also covers exactly the
        # attributed portion (no double counting).
        exclusive = sum(sp.exclusive_io for sp in profiler.iter_spans())
        assert exclusive == s["attributed_io"]

    def test_algorithm_root_contains_phase_spans(self):
        _, profiler, _ = profiled_line3()
        roots = [s for s in profiler.roots if s.closed]
        assert [r.name for r in roots] == ["line3_join"]
        root = roots[0]
        assert root.kind == "algorithm"
        kinds = {c.kind for c in root.children}
        assert "phase" in kinds  # PhaseTracker phases auto-nest
        names = [s.name for s in profiler.iter_spans()]
        assert "heavy_values" in names and "light_values" in names

    def test_tuples_counted_via_profiled_emitter(self):
        _, profiler, _ = profiled_line3()
        assert profiler.tuples_produced == 1024
        (root,) = [s for s in profiler.roots if s.closed]
        assert root.tuples == 1024

    def test_span_deltas_are_consistent(self):
        _, profiler, _ = profiled_line3()
        for sp in profiler.iter_spans():
            assert sp.closed
            assert sp.reads >= 0 and sp.writes >= 0
            assert sp.io == sp.reads + sp.writes
            assert sp.exclusive_io >= 0
            assert sp.wall_s >= 0
            d = sp.as_dict()
            assert d["io"]["total"] == sp.io

    def test_capacity_keeps_nesting_balanced(self):
        profiler = SpanProfiler(capacity=2)
        device = Device(M=16, B=4, profiler=profiler)
        with device.span("a"):
            with device.span("b"):
                with device.span("c"):  # over capacity: dropped
                    with device.span("d"):  # child of dropped: dropped
                        pass
        s = profiler.summary()
        assert s["span_count"] == 2
        assert s["dropped"] == 2
        assert [sp.name for sp in profiler.iter_spans()] == ["a", "b"]

    def test_close_out_of_order_raises(self):
        profiler = SpanProfiler()
        device = Device(M=16, B=4, profiler=profiler)
        a = profiler.open("a")
        profiler.open("b")
        with pytest.raises(RuntimeError, match="innermost"):
            profiler.close(a)

    def test_unattached_open_raises(self):
        with pytest.raises(RuntimeError, match="not attached"):
            SpanProfiler().open("x")

    def test_reset_stats_resets_profiler(self):
        device, profiler, _ = profiled_line3()
        device.reset_stats()
        assert profiler.roots == [] and profiler.span_count == 0
        assert profiler.tuples_produced == 0

    def test_reset_with_open_span_raises(self):
        profiler = SpanProfiler()
        device = Device(M=16, B=4, profiler=profiler)
        profiler.open("still-open")
        with pytest.raises(RuntimeError, match="open"):
            profiler.reset()

    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            SpanProfiler(capacity=0)


class TestMetrics:
    def test_devices_default_to_null_metrics(self):
        device = Device(M=16, B=4)
        assert device.metrics is NULL_METRICS
        device.metrics.counter("x").inc()
        device.metrics.gauge("y").set(3)
        device.metrics.histogram("z").observe(5)
        assert device.metrics.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_sort_populates_run_histogram(self):
        metrics = MetricsRegistry()
        _, _, _ = profiled_line3(metrics=metrics)
        d = metrics.as_dict()
        runs = d["histograms"]["sort.run_tuples"]
        assert runs["count"] == d["counters"]["sort.runs"]["value"] > 0
        assert runs["sum"] > 0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_tracks_extremes(self):
        g = MetricsRegistry().gauge("g")
        for v in (5, 2, 9):
            g.set(v)
        assert g.as_dict() == {"value": 9, "max": 9, "min": 2,
                               "updates": 3}

    def test_histogram_buckets_are_upper_bounds(self):
        h = Histogram("h", buckets=(1, 2, 4))
        for v in (1, 2, 3, 100):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.as_dict()["buckets"] == {"1": 1, "2": 1, "4": 1,
                                          "+inf": 1}

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2, 1))

    def test_histogram_merge_rejects_mismatched_buckets(self):
        with pytest.raises(ValueError, match="different buckets"):
            Histogram("a", (1, 2)).merge(Histogram("b", (1, 3)))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.lists(st.integers(min_value=0, max_value=2 ** 22),
                             max_size=20),
                    min_size=3, max_size=3))
    def test_histogram_merge_is_associative(self, shards):
        """(a+b)+c == a+(b+c) for fixed-boundary histograms."""
        hists = []
        for shard in shards:
            h = Histogram("h", DEFAULT_BUCKETS)
            for v in shard:
                h.observe(v)
            hists.append(h)
        a, b, c = hists
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.counts == right.counts
        assert left.count == right.count
        assert left.sum == right.sum


class TestExporters:
    def test_chrome_trace_round_trips_through_json(self, tmp_path):
        _, profiler, _ = profiled_line3()
        doc = json.loads(json.dumps(to_chrome_trace(profiler)))
        events = doc["traceEvents"]
        assert len(events) == profiler.span_count
        for e in events:
            assert e["ph"] == "X"
            assert e["pid"] == 1 and e["tid"] == 1
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["args"]["io_total"] >= 0
        names = {e["name"] for e in events}
        assert "line3_join" in names
        assert doc["otherData"]["span_count"] == profiler.span_count

    def test_prometheus_text_parses_line_by_line(self):
        metrics = MetricsRegistry()
        metrics.counter("sort.runs").inc(3)
        metrics.gauge("pool.resident_pages").set(7)
        h = metrics.histogram("sort.run_tuples", buckets=(1, 4))
        for v in (1, 3, 9):
            h.observe(v)
        text = to_prometheus(metrics)
        samples = {}
        for line in text.strip().splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split()
                assert kind in ("counter", "gauge", "histogram")
                continue
            name, value = line.rsplit(" ", 1)
            samples[name] = float(value)
        assert samples["repro_sort_runs"] == 3
        assert samples["repro_pool_resident_pages"] == 7
        assert samples["repro_pool_resident_pages_max"] == 7
        # Cumulative buckets end at the total count.
        assert samples['repro_sort_run_tuples_bucket{le="1"}'] == 1
        assert samples['repro_sort_run_tuples_bucket{le="4"}'] == 2
        assert samples['repro_sort_run_tuples_bucket{le="+Inf"}'] == 3
        assert samples["repro_sort_run_tuples_count"] == 3
        assert samples["repro_sort_run_tuples_sum"] == 13

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestFit:
    def test_loglog_recovers_exact_power_law(self):
        xs = [10.0, 100.0, 1000.0]
        ys = [2 * x ** 1.5 for x in xs]
        slope, intercept, r2 = fit_loglog(xs, ys)
        assert slope == pytest.approx(1.5)
        assert r2 == pytest.approx(1.0)

    def test_loglog_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            fit_loglog([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_loglog([1.0, 1.0], [2.0, 3.0])
        with pytest.raises(ValueError):
            fit_loglog([1.0, -2.0], [2.0, 3.0])

    def test_two_relations_constant_and_slope(self):
        """Acceptance: the nested-loop sweep fits its Table-1 bound
        with an O(1) constant and a near-linear slope."""
        res = fit_class("two_relations")
        assert 0.5 <= res.constant <= 2.0
        assert abs(res.slope - 1.0) <= res.eps
        assert not res.regression
        assert res.dominant_term == "N1N2/(MB)"
        for p in res.points:
            assert p.io > 0 and p.bound > 0

    def test_all_registered_classes_fit_cleanly(self):
        for name in FIT_CLASSES:
            res = fit_class(name)
            assert not res.regression, (
                f"{name}: slope {res.slope:.3f} exceeds 1+{res.eps}")
            assert res.r2 > 0.9
            assert res.term_shares
            assert sum(res.term_shares.values()) == pytest.approx(1.0)

    def test_synthetic_regression_is_flagged(self):
        """A quadratic-in-bound measurement must trip the flag."""
        points = [FitPoint(n=n, M=4, B=2, io=n * n, results=0,
                           bound=float(n), ratio=float(n),
                           terms=(BoundTerm("lin", float(n)),))
                  for n in (8, 16, 32)]
        slope, intercept, r2 = fit_loglog(
            [p.bound for p in points], [float(p.io) for p in points])
        res = FitResult(name="synth", bound_name="lin", points=points,
                        constant=16.0, slope=slope, intercept=intercept,
                        r2=r2, eps=0.25, term_shares={"lin": 1.0},
                        dominant_term="lin")
        assert res.slope == pytest.approx(2.0)
        assert res.regression
        assert res.as_dict()["regression"] is True

    def test_unknown_class_raises_with_choices(self):
        with pytest.raises(ValueError, match="two_relations"):
            fit_class("nope")

    def test_fit_profiler_sees_every_point(self):
        profiler = SpanProfiler()
        res = fit_class("two_relations", profiler=profiler)
        fit_roots = [s for s in profiler.roots
                     if s.name == "fit:two_relations"]
        assert len(fit_roots) == len(res.points)
        # Each point ran on a fresh device; the span I/O matches the
        # measured I/O of that point exactly.
        assert [s.io for s in fit_roots] == [p.io for p in res.points]

    def test_measured_points_match_profiled_rerun(self):
        """Profiling a fit does not change the measured I/O."""
        bare = fit_class("two_relations")
        profiled = fit_class("two_relations", profiler=SpanProfiler())
        assert [p.io for p in bare.points] == \
            [p.io for p in profiled.points]
        assert bare.constant == profiled.constant
