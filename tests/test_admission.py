"""The admission controller: one global budget, many queries.

The invariant the service layer rests on — at every instant the sum of
granted budgets stays within ``M`` — is checked three ways: directly,
as a hypothesis property over random grant/release interleavings, and
under a real thread stress.  The failure paths (reject, timeout,
double release) and both fairness policies are covered alongside.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server import (AdmissionController, AdmissionError,
                          AdmissionRejected, AdmissionTimeout)


class TestGrantRelease:
    def test_grant_and_release_round_trip(self):
        ac = AdmissionController(100)
        g = ac.acquire(60)
        assert ac.granted == 60 and ac.available == 40
        ac.release(g)
        assert ac.granted == 0 and ac.available == 100

    def test_zero_need_is_a_valid_grant(self):
        ac = AdmissionController(10)
        g = ac.acquire(0)
        assert ac.granted == 0
        ac.release(g)
        assert ac.stats["released"] == 1

    def test_negative_need_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(10).acquire(-1)

    def test_need_above_budget_rejected_outright(self):
        ac = AdmissionController(100)
        with pytest.raises(AdmissionRejected):
            ac.acquire(101)
        assert ac.stats["rejected"] == 1
        assert ac.queue_depth == 0  # never even queued

    def test_double_release_caught(self):
        ac = AdmissionController(10)
        g = ac.acquire(5)
        ac.release(g)
        with pytest.raises(AdmissionError):
            ac.release(g)
        assert ac.granted == 0  # not driven negative

    def test_try_acquire_non_blocking(self):
        ac = AdmissionController(10)
        g = ac.try_acquire(8)
        assert g is not None
        assert ac.try_acquire(8) is None  # over budget: None, no wait
        ac.release(g)
        assert ac.try_acquire(8) is not None

    def test_admit_context_manager_always_releases(self):
        ac = AdmissionController(10)
        with ac.admit(7):
            assert ac.granted == 7
        assert ac.granted == 0
        with pytest.raises(RuntimeError, match="boom"):
            with ac.admit(7):
                raise RuntimeError("boom")
        assert ac.granted == 0

    def test_snapshot_separates_live_and_lifetime(self):
        ac = AdmissionController(10)
        g = ac.acquire(4)
        ac.release(g)
        snap = ac.snapshot()
        assert snap["granted"] == 0  # live value, not the counter
        assert snap["admitted"] == 1
        assert snap["released"] == 1
        assert snap["peak_granted"] == 4


class TestQueueing:
    def test_timeout_when_budget_never_frees(self):
        ac = AdmissionController(10)
        g = ac.acquire(10)
        with pytest.raises(AdmissionTimeout):
            ac.acquire(5, timeout=0.05)
        assert ac.stats["timeouts"] == 1
        assert ac.queue_depth == 0  # the waiter removed itself
        ac.release(g)
        ac.release(ac.acquire(5, timeout=0.05))  # now it fits

    def test_timeout_zero_fails_fast(self):
        ac = AdmissionController(10)
        g = ac.acquire(10)
        with pytest.raises(AdmissionTimeout):
            ac.acquire(1, timeout=0)
        ac.release(g)

    def test_waiter_served_on_release(self):
        ac = AdmissionController(10)
        g = ac.acquire(10)
        got: list[object] = []

        def waiter():
            got.append(ac.acquire(10, timeout=5))

        t = threading.Thread(target=waiter)
        t.start()
        while ac.queue_depth == 0:  # until the waiter is parked
            pass
        ac.release(g)
        t.join(timeout=5)
        assert not t.is_alive() and got[0].amount == 10

    def test_fifo_head_of_line_blocks_smaller(self):
        ac = AdmissionController(10, policy="fifo")
        g = ac.acquire(8)
        order: list[str] = []

        def queued(name, need):
            grant = ac.acquire(need, timeout=5)
            order.append(name)
            ac.release(grant)

        big = threading.Thread(target=queued, args=("big", 10))
        big.start()
        while ac.queue_depth < 1:
            pass
        small = threading.Thread(target=queued, args=("small", 2))
        small.start()
        while ac.queue_depth < 2:
            pass
        # 2 tuples are free, but FIFO holds "small" behind "big".
        assert order == []
        ac.release(g)
        big.join(timeout=5)
        small.join(timeout=5)
        assert order == ["big", "small"]

    def test_smallest_first_overtakes(self):
        ac = AdmissionController(10, policy="smallest-first")
        g = ac.acquire(8)
        order: list[str] = []

        def queued(name, need):
            grant = ac.acquire(need, timeout=5)
            order.append(name)
            ac.release(grant)

        big = threading.Thread(target=queued, args=("big", 10))
        big.start()
        while ac.queue_depth < 1:
            pass
        small = threading.Thread(target=queued, args=("small", 2))
        small.start()
        small.join(timeout=5)  # overtakes: 2 fits beside the held 8
        assert order == ["small"]
        ac.release(g)
        big.join(timeout=5)
        assert order == ["small", "big"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(10, policy="largest-first")
        with pytest.raises(ValueError):
            AdmissionController(0)


class TestBudgetInvariant:
    @given(st.lists(
        st.one_of(
            st.tuples(st.just("acquire"), st.integers(0, 12)),
            st.tuples(st.just("release"), st.integers(0, 30)),
        ),
        max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_sum_of_grants_never_exceeds_budget(self, script):
        """Random non-blocking acquire/release interleavings: the
        controller's granted total always matches a model ledger and
        never exceeds the budget."""
        budget = 10
        ac = AdmissionController(budget)
        live: list = []
        ledger = 0
        for op, arg in script:
            if op == "acquire":
                if arg > budget:  # impossible need: rejected outright
                    with pytest.raises(AdmissionRejected):
                        ac.try_acquire(arg)
                    continue
                g = ac.try_acquire(arg)
                if g is not None:
                    live.append(g)
                    ledger += arg
                else:
                    assert ledger + arg > budget
            elif live:
                g = live.pop(arg % len(live))
                ac.release(g)
                ledger -= g.amount
            assert ac.granted == ledger
            assert 0 <= ac.granted <= budget
        assert ac.snapshot()["in_flight"] == len(live)

    def test_threaded_stress_respects_budget(self):
        """Blocking acquires from many threads: sampled grant totals
        never exceed the budget and everything drains."""
        budget = 16
        ac = AdmissionController(budget)
        violations: list[int] = []

        def worker(need):
            for _ in range(25):
                with ac.admit(need, timeout=10):
                    seen = ac.granted
                    if seen > budget:
                        violations.append(seen)

        threads = [threading.Thread(target=worker, args=(need,))
                   for need in (3, 5, 7, 11, 16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        assert violations == []
        assert ac.granted == 0 and ac.queue_depth == 0
        assert ac.stats["admitted"] == 5 * 25
        assert ac.stats["released"] == 5 * 25
