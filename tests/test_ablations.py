"""Ablations: measuring the design choices DESIGN.md calls out.

1. The bud semijoin fix (DESIGN.md inconsistency #3): running the
   paper's lines 3–4 verbatim over-emits on instances whose
   restrictions are not reduced; our fix restores exactness at Õ(scan)
   extra cost.
2. Best-branch exploration vs single-strategy choosers: exploring the
   nondeterministic branches never loses, and strictly wins on
   asymmetric instances.
"""

from repro import Device, Instance
from repro.core import (AssignmentEmitter, CountingEmitter, acyclic_join,
                        acyclic_join_best, first_leaf_chooser,
                        smallest_leaf_chooser)
from repro.internal import join_query
from repro.query import JoinQuery
from repro.workloads import schemas_for


class TestBudSemijoinAblation:
    def bud_query_and_data(self):
        # b constrains v; e1 carries v to u; e2 continues to w.  The
        # tuple (20, 2) of e1 has no bud partner.
        q = JoinQuery(edges={"b": frozenset({"v"}),
                             "e1": frozenset({"v", "u"}),
                             "e2": frozenset({"u", "w"})})
        schemas = {"b": ("v",), "e1": ("u", "v"), "e2": ("u", "w")}
        data = {"b": [(1,)],
                "e1": [(10, 1), (20, 2)],
                "e2": [(10, 5), (20, 6)]}
        return q, schemas, data

    def test_fixed_version_is_exact(self):
        q, schemas, data = self.bud_query_and_data()
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        acyclic_join(q, inst, em)
        assert em.assignment_set() == join_query(q, data, schemas)
        assert em.count == 1

    def test_paper_literal_buds_over_emit(self):
        q, schemas, data = self.bud_query_and_data()
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = CountingEmitter()
        acyclic_join(q, inst, em, paper_literal_buds=True)
        oracle = join_query(q, data, schemas)
        # The literal rule ignores the bud's membership constraint and
        # emits the (20,2)-path too.
        assert em.count > len(oracle)

    def test_fix_cost_is_linear(self):
        # The semijoin filter adds sort+scan work, not output-sized
        # work: measure both modes' I/O on a bud-heavy instance.
        q = JoinQuery(edges={"b": frozenset({"v"}),
                             "e1": frozenset({"v", "u"})})
        schemas = {"b": ("v",), "e1": ("u", "v")}
        n = 120
        data = {"b": [(i,) for i in range(n)],
                "e1": [(i, i % n) for i in range(n)]}
        ios = {}
        for literal in (False, True):
            device = Device(M=8, B=4)
            inst = Instance.from_dicts(device, schemas, data)
            acyclic_join(q, inst, CountingEmitter(),
                         paper_literal_buds=literal)
            ios[literal] = device.stats.total
        n_pages = 2 * n / 4
        assert ios[False] - ios[True] <= 10 * n_pages


class TestBranchExplorationAblation:
    def asymmetric_l4(self):
        from repro.query import line_query
        from repro.workloads import cross_product_line_instance

        schemas, data = cross_product_line_instance([8, 2, 1, 16, 1])
        q = line_query(4)
        return q, schemas, data

    def test_best_branch_never_loses_to_first_leaf(self):
        q, schemas, data = self.asymmetric_l4()
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        best = acyclic_join_best(q, inst)

        device2 = Device(M=4, B=2)
        inst2 = Instance.from_dicts(device2, schemas, data)
        acyclic_join(q, inst2, CountingEmitter(),
                     chooser=first_leaf_chooser)
        assert best.io <= device2.stats.total

    def test_branches_spread_on_asymmetric_instances(self):
        q, schemas, data = self.asymmetric_l4()
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        best = acyclic_join_best(q, inst)
        ios = sorted(r.io for r in best.runs)
        assert ios[0] < ios[-1]  # exploration has something to choose

    def test_greedy_chooser_is_single_run(self):
        # The greedy is a heuristic: one run, correct results, cost
        # between best and worst branch.
        q, schemas, data = self.asymmetric_l4()
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        best = acyclic_join_best(q, inst)

        device2 = Device(M=4, B=2)
        inst2 = Instance.from_dicts(device2, schemas, data)
        em = CountingEmitter()
        acyclic_join(q, inst2, em, chooser=smallest_leaf_chooser)
        assert em.count == best.best.emitted
        ios = sorted(r.io for r in best.runs)
        assert ios[0] <= device2.stats.total <= ios[-1] * 1.01
