"""Empirical checks of the paper's theorems on their worst-case families.

These are the reproduction's core claims: on each construction, the
measured I/O of the paper's algorithm stays within a bounded factor of
the instance's lower bound ``max_S ψ(R, S)`` across a scale sweep —
worst-case optimality up to the Õ's constants and log factor.
"""

import pytest

from repro import Device, Instance
from repro.analysis import gens_bound, lower_bound
from repro.core import (CountingEmitter, acyclic_join_best, line3_join,
                        line5_unbalanced_join)
from repro.query import cover_number, line_query, star_query
from repro.workloads import (cross_product_line_instance,
                             equal_size_packing_instance,
                             fig3_line3_instance, l5_for_regime,
                             star_worstcase_instance)


def measure(query, schemas, data, runner, M, B):
    device = Device(M=M, B=B)
    inst = Instance.from_dicts(device, schemas, data)
    em = CountingEmitter()
    runner(query, inst, em)
    return device.stats.total, em.count


class TestTheorem1:
    """Algorithm 1 is optimal on L3: measured / ψ({e1,e3}) bounded."""

    def test_ratio_stable_across_scale(self):
        M, B = 8, 2
        ratios = []
        for n in (32, 64, 128):
            schemas, data = fig3_line3_instance(n, n)
            q = line_query(3)
            io, count = measure(q, schemas, data, line3_join, M, B)
            assert count == n * n
            lb = lower_bound(q, data, schemas, M, B)
            ratios.append(io / lb)
        assert max(ratios) <= 8
        assert max(ratios) / min(ratios) <= 2.5  # no asymptotic drift


class TestTheorems5And6:
    """Algorithm 2 is optimal on balanced lines (odd n; even with a
    balanced split)."""

    @pytest.mark.parametrize("z", [
        [4, 1, 4, 1, 4, 1],          # L5, alternating cover
        [3, 1, 3, 1, 3, 1, 3, 1],    # L7
        [4, 1, 4, 1, 4],             # L4 with interior z=1 split
    ])
    def test_ratio_bounded_on_cross_product_family(self, z):
        M, B = 4, 2
        schemas, data = cross_product_line_instance(z)
        q = line_query(len(z) - 1)
        best = None
        device = Device(M=M, B=B)
        inst = Instance.from_dicts(device, schemas, data)
        best = acyclic_join_best(q, inst, limit=12)
        lb = lower_bound(q, data, schemas, M, B)
        gb = gens_bound(q, data, schemas, M, B)
        assert lb > 0
        # Theorem 3: measured within Õ(1) of the GenS bound; optimality:
        # the GenS bound meets the lower bound on this construction up
        # to the linear terms.
        n_total = sum(len(t) for t in data.values())
        linear = n_total / B
        assert best.io <= 12 * (gb + linear)
        assert gb <= 4 * (lb + linear)


class TestTheorem4:
    """Algorithm 2 is optimal on star joins."""

    def test_ratio_stable_across_petals_and_scale(self):
        M, B = 4, 2
        for k, n in [(2, 12), (3, 8)]:
            schemas, data = star_worstcase_instance([n] * k)
            q = star_query(k)
            device = Device(M=M, B=B)
            inst = Instance.from_dicts(device, schemas, data)
            best = acyclic_join_best(q, inst, limit=16)
            assert best.best.emitted == n ** k
            lb = lower_bound(q, data, schemas, M, B)
            linear = sum(len(t) for t in data.values()) / B
            assert best.io <= 14 * (lb + linear)


class TestTheorem7:
    """Equal sizes: I/O scales as (N/M)^c · M/B."""

    @pytest.mark.parametrize("qname,q", [
        ("L3", line_query(3)), ("star2", star_query(2)),
    ])
    def test_scaling_exponent(self, qname, q):
        M, B = 4, 2
        c = cover_number(q)
        ios = []
        for n in (8, 16):
            schemas, data = equal_size_packing_instance(q, n)
            device = Device(M=M, B=B)
            inst = Instance.from_dicts(device, schemas, data)
            best = acyclic_join_best(q, inst, limit=12)
            assert best.best.emitted == n ** c
            ios.append(best.io)
        growth = ios[1] / ios[0]
        # doubling N should multiply I/O by about 2^c
        assert 2 ** (c - 1) <= growth <= 2 ** (c + 1.2)


class TestUnbalancedL5:
    """Section 6.3: Algorithm 4 is optimal when N1 N3 N5 < N2 N4, where
    Algorithm 2 is not."""

    def test_algorithm4_tracks_lower_bound(self):
        M, B = 4, 2
        ratios = []
        for s in (12, 24):
            q, schemas, data = l5_for_regime(s, balanced=False)
            io, _ = measure(q, schemas, data, line5_unbalanced_join, M, B)
            lb = lower_bound(q, data, schemas, M, B)
            linear = sum(len(t) for t in data.values()) / B
            ratios.append(io / (lb + linear))
        assert max(ratios) <= 30
        # ratio must not blow up with scale
        assert ratios[1] <= 2.0 * ratios[0]

    def test_algorithm2_gap_grows_where_algorithm4_is_flat(self):
        M, B = 4, 2
        gap2, gap4 = [], []
        for s in (12, 24):
            q, schemas, data = l5_for_regime(s, balanced=False)
            lb = lower_bound(q, data, schemas, M, B) \
                + sum(len(t) for t in data.values()) / B
            io4, _ = measure(q, schemas, data, line5_unbalanced_join,
                             M, B)
            device = Device(M=M, B=B)
            inst = Instance.from_dicts(device, schemas, data)
            best = acyclic_join_best(q, inst, limit=16)
            gap2.append(best.io / lb)
            gap4.append(io4 / lb)
        # Algorithm 4 stays flat; Algorithm 2's ratio grows with scale.
        assert gap4[1] <= 1.5 * gap4[0]
        assert gap2[1] > gap4[1]
