"""Tests for workload generators and the worst-case constructions."""

import pytest

from repro.internal import join_count
from repro.query import line_query, lollipop_query, star_query
from repro.query.lines import is_balanced
from repro.query.reduce import is_fully_reduced
from repro.workloads import (balanced_line_sizes, cross_pairs,
                             cross_product_instance,
                             cross_product_line_instance,
                             equal_size_packing_instance,
                             fig3_line3_instance, l5_for_regime,
                             lollipop_worstcase_instance, many_to_one,
                             mapping_line_instance, matching_relation,
                             one_to_many, onto_mapping, skewed_instance,
                             star_worstcase_instance, uniform_instance)


class TestPrimitives:
    def test_matching(self):
        assert matching_relation(3, offset_left=10) == [(10, 0), (11, 1),
                                                        (12, 2)]

    def test_fans(self):
        assert one_to_many(3) == [(0, 0), (0, 1), (0, 2)]
        assert many_to_one(2, right_value=9) == [(0, 9), (1, 9)]

    def test_cross_and_onto(self):
        assert len(cross_pairs(3, 4)) == 12
        m = onto_mapping(5, 2)
        assert len(m) == 5
        assert {b for _, b in m} == {0, 1}
        with pytest.raises(ValueError):
            onto_mapping(2, 5)


class TestRandomGenerators:
    def test_uniform_sizes_and_determinism(self):
        q = line_query(3)
        s1, d1 = uniform_instance(q, 20, 10, seed=7)
        s2, d2 = uniform_instance(q, 20, 10, seed=7)
        assert d1 == d2
        assert all(len(rows) == 20 for rows in d1.values())
        assert all(len(set(rows)) == len(rows) for rows in d1.values())

    def test_uniform_rejects_impossible_size(self):
        with pytest.raises(ValueError):
            uniform_instance(line_query(2), 100, 3, seed=0)

    def test_uniform_reduced_flag(self):
        q = line_query(3)
        schemas, data = uniform_instance(q, 20, 12, seed=3, reduced=True)
        assert is_fully_reduced(q, data, schemas)

    def test_skewed_creates_hot_values(self):
        q = line_query(2)
        schemas, data = skewed_instance(q, 60, 50, hot_fraction=0.8,
                                        hot_values=1, seed=1)
        v2_idx = schemas["e1"].index("v2")
        hot_count = sum(1 for t in data["e1"] if t[v2_idx] == 0)
        assert hot_count >= 20  # value 0 is heavy for small M


class TestFig3:
    def test_structure_and_join_size(self):
        schemas, data = fig3_line3_instance(8, 6)
        q = line_query(3)
        assert len(data["e1"]) == 8
        assert len(data["e2"]) == 1
        assert len(data["e3"]) == 6
        assert join_count(q, data, schemas) == 48
        assert is_fully_reduced(q, data, schemas)


class TestCrossProductLine:
    def test_sizes_are_domain_products(self):
        z = [3, 2, 4, 1, 5, 1]
        schemas, data = cross_product_line_instance(z)
        sizes = balanced_line_sizes(z)
        assert [len(data[f"e{i}"]) for i in range(1, 6)] == sizes

    def test_partial_join_on_independent_set_is_product(self):
        from repro.analysis import partial_join_size
        z = [3, 1, 3, 1, 3, 1]
        schemas, data = cross_product_line_instance(z)
        q = line_query(5)
        n = balanced_line_sizes(z)
        assert partial_join_size(q, data, schemas,
                                 {"e1", "e3", "e5"}) \
            == n[0] * n[2] * n[4]

    def test_fully_reduced(self):
        schemas, data = cross_product_line_instance([2, 2, 2, 2])
        assert is_fully_reduced(line_query(3), data, schemas)

    def test_validation(self):
        with pytest.raises(ValueError):
            cross_product_line_instance([2, 2])
        with pytest.raises(ValueError):
            cross_product_line_instance([2, 0, 2, 2])


class TestStarWorstCase:
    def test_partial_join_on_petals_is_product(self):
        from repro.analysis import partial_join_size
        schemas, data = star_worstcase_instance([4, 5, 6])
        q = star_query(3)
        assert join_count(q, data, schemas) == 120
        assert partial_join_size(q, data, schemas,
                                 {"e1", "e2", "e3"}) == 120
        assert len(data["e0"]) == 1


class TestEqualSizePacking:
    @pytest.mark.parametrize("q,c", [
        (line_query(3), 2), (line_query(5), 3), (star_query(3), 3),
        (lollipop_query(3), 4),
    ])
    def test_join_size_is_n_to_the_c(self, q, c):
        from repro.query import cover_number
        assert cover_number(q) == c
        n = 4
        schemas, data = equal_size_packing_instance(q, n)
        assert all(len(rows) <= n for rows in data.values())
        assert join_count(q, data, schemas) == n ** c


class TestUnbalancedL5:
    def test_regime_helpers(self):
        q, schemas, data = l5_for_regime(8, balanced=True)
        sizes = [len(data[f"e{i}"]) for i in range(1, 6)]
        assert is_balanced(sizes)
        q, schemas, data = l5_for_regime(8, balanced=False)
        sizes = [len(data[f"e{i}"]) for i in range(1, 6)]
        assert not is_balanced(sizes)
        assert sizes[0] * sizes[2] * sizes[4] < sizes[1] * sizes[3]

    def test_instances_fully_reduced(self):
        for balanced in (True, False):
            q, schemas, data = l5_for_regime(6, balanced=balanced)
            assert is_fully_reduced(q, data, schemas)


class TestMappingLine:
    def test_kinds(self):
        schemas, data = mapping_line_instance(
            [3, 3, 6, 2, 2], ["one1", "fanout", "onto", "cross"])
        assert data["e1"] == [(0, 0), (1, 1), (2, 2)]
        assert len(data["e2"]) == 6
        assert len(data["e3"]) == 6
        assert len(data["e4"]) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            mapping_line_instance([2, 3], ["one1"])
        with pytest.raises(ValueError):
            mapping_line_instance([3, 2], ["fanout"])
        with pytest.raises(ValueError):
            mapping_line_instance([2, 2, 2], ["cross"])


class TestLollipopWorstCase:
    def test_cases_build_and_reduce(self):
        q = lollipop_query(3)
        for case in ("petals", "ends"):
            schemas, data = lollipop_worstcase_instance(q, case=case,
                                                        scale=3)
            assert set(schemas) == set(q.edges)
            assert is_fully_reduced(q, data, schemas)

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            lollipop_worstcase_instance(lollipop_query(3), case="zzz",
                                        scale=2)

    def test_non_lollipop_rejected(self):
        with pytest.raises(ValueError):
            lollipop_worstcase_instance(line_query(3), case="petals",
                                        scale=2)


class TestCrossProductInstance:
    def test_general_query(self):
        q = star_query(2)
        schemas, data = cross_product_instance(
            q, {"v1": 2, "v2": 3, "u1": 4, "u2": 1})
        assert len(data["e0"]) == 6
        assert len(data["e1"]) == 8
        assert len(data["e2"]) == 3


class TestDumbbellWorstCase:
    def test_independent_case_partial_join(self):
        from repro.analysis import partial_join_size
        from repro.query import dumbbell_query
        from repro.workloads import dumbbell_worstcase_instance

        q = dumbbell_query(3, 6)
        schemas, data = dumbbell_worstcase_instance(q, case="independent",
                                                    scale=3)
        petals_and_bar = {"e1", "e2", "e3", "e4", "e5"}
        expected = 1  # bar has one tuple; petals have `scale` each
        for e in ("e1", "e2", "e4", "e5"):
            expected *= len(data[e])
        assert partial_join_size(q, data, schemas, petals_and_bar) \
            == expected

    def test_cores_case_widens_the_bar(self):
        from repro.query import dumbbell_query
        from repro.workloads import dumbbell_worstcase_instance

        q = dumbbell_query(3, 6)
        schemas, data = dumbbell_worstcase_instance(q, case="cores",
                                                    scale=3)
        assert len(data["e3"]) == 4  # the 2x2 bar

    def test_condition7(self):
        from repro.query import dumbbell_query
        from repro.workloads import condition7_holds

        q = dumbbell_query(3, 6)
        sizes = {e: 10 for e in q.edges}
        assert condition7_holds(q, sizes)
        sizes["e0"] = 1000
        assert not condition7_holds(q, sizes)

    def test_validation(self):
        import pytest
        from repro.query import dumbbell_query, line_query
        from repro.workloads import (condition7_holds,
                                     dumbbell_worstcase_instance)

        with pytest.raises(ValueError):
            dumbbell_worstcase_instance(line_query(3), case="cores",
                                        scale=2)
        with pytest.raises(ValueError):
            dumbbell_worstcase_instance(dumbbell_query(3, 6),
                                        case="zzz", scale=2)
        with pytest.raises(ValueError):
            condition7_holds(line_query(3), {})
