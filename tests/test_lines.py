"""Tests for line-join theory (Section 6.1-6.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.lines import (alternating_intervals, balanced_split,
                               balanced_violations, classify_line,
                               independent_subsets, is_alternating,
                               is_balanced, line_bound, line_cover)

sizes_strategy = st.lists(st.integers(2, 500), min_size=1, max_size=9)


class TestLineCover:
    @settings(max_examples=100, deadline=None)
    @given(sizes_strategy)
    def test_characterization_rules(self, sizes):
        """Section 6.1's four rules for the optimal cover."""
        x = line_cover(sizes)
        n = len(sizes)
        assert x[0] == 1 and x[-1] == 1                      # rule 1
        assert all(x[i] + x[i + 1] >= 1 for i in range(n - 1))  # rule 2
        # rule 3: our DP never needs three consecutive 1's since
        # dropping the middle one stays feasible and is never worse.
        cost = sum(math.log(s) for s, xi in zip(sizes, x) if xi)
        for i in range(n - 2):
            if x[i] == x[i + 1] == x[i + 2] == 1:
                alt = list(x)
                alt[i + 1] = 0
                alt_cost = sum(math.log(s)
                               for s, xi in zip(sizes, alt) if xi)
                assert cost <= alt_cost + 1e-9

    @settings(max_examples=100, deadline=None)
    @given(sizes_strategy)
    def test_cover_is_optimal_vs_brute_force(self, sizes):
        x = line_cover(sizes)
        n = len(sizes)

        def cost(xs):
            return math.prod(s for s, xi in zip(sizes, xs) if xi)

        best = None
        for mask in range(1 << n):
            xs = [(mask >> i) & 1 for i in range(n)]
            if xs[0] and xs[-1] and all(xs[i] + xs[i + 1] >= 1
                                        for i in range(n - 1)):
                c = cost(xs)
                best = c if best is None else min(best, c)
        assert cost(x) == best

    def test_known_covers(self):
        assert line_cover([10, 10, 10]) == (1, 0, 1)
        assert line_cover([10, 2, 9, 10]) in ((1, 1, 0, 1), (1, 0, 1, 1))
        # n=4: paper says (1,0,1,1) or (1,1,0,1); avoid the huge middle.
        assert line_cover([5, 100, 2, 5]) == (1, 0, 1, 1)
        assert line_cover([5, 2, 100, 5]) == (1, 1, 0, 1)


class TestAlternatingIntervals:
    def test_single_interval(self):
        assert alternating_intervals((1, 0, 1, 0, 1)) == [(0, 4)]
        assert is_alternating((1, 0, 1))

    def test_two_intervals(self):
        assert alternating_intervals((1, 0, 1, 1, 0, 1)) == [(0, 2), (3, 5)]
        assert not is_alternating((1, 1))

    def test_invalid_cover_rejected(self):
        with pytest.raises(ValueError):
            alternating_intervals((0, 1))

    def test_singleton(self):
        assert alternating_intervals((1,)) == [(0, 0)]


class TestBalanced:
    def test_l3_always_balanced(self):
        # Any window of even length ≤ 2 means N_i N_{i+2} >= N_{i+1}
        # must hold; with equal sizes it always does.
        assert is_balanced([7, 7, 7])
        assert is_balanced([100, 5, 100])

    def test_l3_can_be_unbalanced_before_reduction(self):
        # The paper notes L3 is balanced *after dangling removal*; raw
        # sizes can violate N1*N3 >= N2.
        assert not is_balanced([2, 100, 2])

    def test_l5_condition(self):
        # Balanced iff N1 N3 N5 >= N2 N4 (plus the sub-windows).
        assert is_balanced([10, 10, 10, 10, 10])
        assert not is_balanced([10, 40, 2, 40, 10])
        assert balanced_violations([10, 40, 2, 40, 10]) != []

    def test_violations_name_the_window(self):
        v = balanced_violations([2, 100, 2])
        assert v == [(1, 3)]

    def test_balanced_split_even(self):
        assert balanced_split([5, 5, 5, 5]) is not None
        with pytest.raises(ValueError):
            balanced_split([5, 5, 5])

    def test_balanced_split_returns_odd_k(self):
        k = balanced_split([10, 10, 10, 10, 10, 10])
        assert k is not None and k % 2 == 1


class TestIndependentSubsets:
    def test_count_is_fibonacci(self):
        # Independent subsets of a path of n edges: F(n+2).
        fib = [1, 1]
        while len(fib) < 12:
            fib.append(fib[-1] + fib[-2])
        for n in range(1, 9):
            assert len(list(independent_subsets(n))) == fib[n + 1]

    def test_no_two_consecutive(self):
        for s in independent_subsets(6):
            idxs = sorted(int(e[1:]) for e in s)
            assert all(b - a >= 2 for a, b in zip(idxs, idxs[1:]))

    def test_line_bound_l3(self):
        # max over {e1,e3}: N1*N3/(M B).
        assert line_bound([10, 10, 10], M=4, B=2) == pytest.approx(
            100 / (4 * 2))

    def test_line_bound_l5_terms(self):
        # Section 4.2's L5 bound: N1N3N5/M²B dominates for equal sizes.
        b = line_bound([10] * 5, M=2, B=1)
        assert b == pytest.approx(1000 / 4)

    def test_line_bound_theorem6_pair(self):
        # allowing e_k, e_{k+1} together adds the split-pair subsets.
        plain = line_bound([10, 10, 10, 10], M=2, B=1)
        with_pair = line_bound([10, 10, 10, 10], M=2, B=1,
                               allow_adjacent_pair=1)
        assert with_pair >= plain


class TestClassifyLine:
    def test_regimes(self):
        assert classify_line([5, 5, 5]).regime == "balanced-odd"
        assert classify_line([5, 5, 5, 5]).regime == "balanced-even"
        assert classify_line([10, 40, 2, 40, 10]).regime == "unbalanced-5"
        assert classify_line(
            [2, 2, 10, 40, 2, 40, 10, 2, 2]).regime == "unbalanced-open"

    def test_l7_unbalanced(self):
        sizes = [10, 10, 10, 1000, 2, 1000, 10]
        cls = classify_line(sizes)
        assert cls.regime in ("unbalanced-7", "balanced-odd")
