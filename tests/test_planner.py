"""Tests for the planner — the library's public entry point."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Device, Instance
from repro.core import AssignmentEmitter, CountingEmitter, execute
from repro.internal import join_query
from repro.query import (dumbbell_query, line_query, lollipop_query,
                         star_query, triangle_query)
from repro.workloads import schemas_for

from conftest import make_random_data


def plan_run(q, schemas, data, *, M=8, B=2, **kw):
    device = Device(M=M, B=B)
    inst = Instance.from_dicts(device, schemas, data)
    em = AssignmentEmitter(schemas)
    report = execute(q, inst, em, **kw)
    return device, em, report


class TestDispatch:
    def test_labels_per_shape(self):
        cases = [
            (line_query(1), "scan"),
            (line_query(2), "two-way-sort-merge"),
            (line_query(3), "algorithm-1"),
            (star_query(3), "algorithm-2-best-branch[star]"),
            (lollipop_query(3), "algorithm-2-best-branch[lollipop]"),
            (dumbbell_query(3, 6), "algorithm-2-best-branch[dumbbell]"),
        ]
        for q, want in cases:
            schemas, data = make_random_data(q, 10, 3, seed=1)
            _, _, report = plan_run(q, schemas, data)
            assert report.algorithm == want

    def test_cyclic_rejected(self):
        q = triangle_query()
        schemas, data = make_random_data(q, 5, 3, seed=0)
        with pytest.raises(Exception):
            plan_run(q, schemas, data)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6),
           st.sampled_from(["L3", "L4", "L6", "star3", "lollipop3",
                            "dumbbell"]))
    def test_correct_everywhere(self, seed, name):
        q = {"L3": line_query(3), "L4": line_query(4),
             "L6": line_query(6), "star3": star_query(3),
             "lollipop3": lollipop_query(3),
             "dumbbell": dumbbell_query(3, 6)}[name]
        schemas, data = make_random_data(q, 10, 4, seed)
        _, em, _ = plan_run(q, schemas, data)
        oracle = join_query(q, data, schemas)
        assert em.assignment_set() == oracle
        assert em.count == len(oracle)


class TestReduction:
    def test_dangling_tuples_handled(self):
        q = line_query(3)
        schemas = schemas_for(q)
        data = {"e1": [(1, 2), (9, 99)], "e2": [(2, 3)],
                "e3": [(3, 4), (88, 8)]}
        _, em, report = plan_run(q, schemas, data)
        assert em.count == 1
        assert report.reduce_reads + report.reduce_writes > 0

    def test_reduce_can_be_skipped(self):
        q = line_query(2)
        schemas = schemas_for(q)
        data = {"e1": [(1, 2)], "e2": [(2, 3)]}
        _, em, report = plan_run(q, schemas, data, reduce_first=False)
        assert report.reduce_reads == 0 and report.reduce_writes == 0
        assert em.count == 1


class TestReport:
    def test_io_accounting_splits_reduce_and_join(self):
        q = line_query(3)
        schemas, data = make_random_data(q, 30, 4, seed=2)
        device, _, report = plan_run(q, schemas, data)
        assert report.total_io == device.stats.total
        assert report.io == report.reads + report.writes
        assert report.shape == "line"

    def test_multi_device_instance_rejected(self):
        q = line_query(2)
        schemas, data = make_random_data(q, 5, 3, seed=0)
        d1, d2 = Device(M=8, B=2), Device(M=8, B=2)
        from repro.data import Relation, RelationSchema
        inst = Instance({
            "e1": Relation.from_tuples(d1, RelationSchema(
                "e1", schemas["e1"]), data["e1"]),
            "e2": Relation.from_tuples(d2, RelationSchema(
                "e2", schemas["e2"]), data["e2"]),
        })
        with pytest.raises(ValueError):
            execute(q, inst, CountingEmitter())
