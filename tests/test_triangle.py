"""Tests for the grid-partitioned EM triangle join (Table 1, C3 row)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Device, Instance
from repro.core import AssignmentEmitter, CountingEmitter
from repro.core.triangle import detect_triangle, triangle_join
from repro.internal import generic_join
from repro.query import line_query, triangle_query


def random_graph_relations(n_edges, n_vertices, seed):
    """A tripartite triangle instance from one random edge set."""
    rng = random.Random(seed)
    edges = set()
    while len(edges) < n_edges:
        edges.add((rng.randrange(n_vertices), rng.randrange(n_vertices)))
    rows = sorted(edges)
    schemas = {"e1": ("v1", "v2"), "e2": ("v1", "v3"),
               "e3": ("v2", "v3")}
    data = {"e1": rows, "e2": rows, "e3": rows}
    return schemas, data


def oracle(schemas, data):
    return generic_join(triangle_query(), data, schemas)


class TestDetect:
    def test_detects_c3(self):
        assert detect_triangle(triangle_query()) is not None

    def test_rejects_lines_and_partial_shares(self):
        assert detect_triangle(line_query(3)) is None
        from repro.query import JoinQuery
        q = JoinQuery(edges={"e1": frozenset({"a", "b"}),
                             "e2": frozenset({"b", "c"}),
                             "e3": frozenset({"c", "d"})})
        assert detect_triangle(q) is None

    def test_rejects_non_triangle_via_join(self):
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(
            device, {"e1": ("v1", "v2"), "e2": ("v2", "v3"),
                     "e3": ("v3", "v4")},
            {"e1": [(1, 2)], "e2": [(2, 3)], "e3": [(3, 4)]})
        with pytest.raises(ValueError):
            triangle_join(line_query(3), inst, CountingEmitter())


class TestCorrectness:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6), st.integers(1, 4))
    def test_matches_generic_join(self, seed, p):
        schemas, data = random_graph_relations(40, 8, seed)
        device = Device(M=16, B=4)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        triangle_join(triangle_query(), inst, em, partitions=p)
        want = oracle(schemas, data)
        assert em.assignment_set() == want
        assert em.count == len(want)

    def test_default_partitioning(self):
        schemas, data = random_graph_relations(60, 10, seed=3)
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        triangle_join(triangle_query(), inst, em)
        assert em.assignment_set() == oracle(schemas, data)

    def test_skewed_hub_vertex(self):
        # One hub participates in most edges — overflows its grid cell
        # and exercises the fallback path.
        hub_rows = [(0, i) for i in range(50)] + [(i, 0)
                                                  for i in range(1, 30)]
        rows = sorted(set(hub_rows))
        schemas = {"e1": ("v1", "v2"), "e2": ("v1", "v3"),
                   "e3": ("v2", "v3")}
        data = {"e1": rows, "e2": rows, "e3": rows}
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        triangle_join(triangle_query(), inst, em)
        assert em.assignment_set() == oracle(schemas, data)

    def test_empty_relation(self):
        schemas = {"e1": ("v1", "v2"), "e2": ("v1", "v3"),
                   "e3": ("v2", "v3")}
        data = {"e1": [], "e2": [(1, 2)], "e3": [(3, 4)]}
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = CountingEmitter()
        triangle_join(triangle_query(), inst, em)
        assert em.count == 0


class TestCostShape:
    def test_io_tracks_n_to_three_halves(self):
        # Clique-ish inputs at two scales: I/O should grow ≈ N^{1.5},
        # far below the nested-loop N²-N³ growth.
        ios = []
        ns = (8, 16)
        for k in ns:
            rows = [(i, j) for i in range(k) for j in range(k)]
            schemas = {"e1": ("v1", "v2"), "e2": ("v1", "v3"),
                       "e3": ("v2", "v3")}
            data = {"e1": rows, "e2": rows, "e3": rows}
            device = Device(M=32, B=4)
            inst = Instance.from_dicts(device, schemas, data)
            triangle_join(triangle_query(), inst, CountingEmitter())
            ios.append(device.stats.total)
        n_growth = (ns[1] ** 2) / (ns[0] ** 2)      # N quadruples
        measured = ios[1] / ios[0]
        import math
        exponent = math.log(measured) / math.log(n_growth)
        assert 1.0 <= exponent <= 2.2  # ~1.5 with small-scale slack
