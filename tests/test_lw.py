"""Tests for the Loomis–Whitney grid join (Table 1's LW_n row)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Device, Instance
from repro.core import AssignmentEmitter, CountingEmitter
from repro.core.lw import detect_lw, lw_join, lw_query
from repro.internal import generic_join
from repro.query import line_query, triangle_query


def random_lw_data(n, n_rows, domain, seed):
    rng = random.Random(seed)
    q = lw_query(n)
    schemas = {e: tuple(sorted(q.edges[e])) for e in q.edges}
    data = {}
    for e, attrs in schemas.items():
        rows = set()
        guard = 0
        while len(rows) < n_rows and guard < n_rows * 60:
            rows.add(tuple(rng.randrange(domain) for _ in attrs))
            guard += 1
        data[e] = sorted(rows)
    return q, schemas, data


class TestDetect:
    def test_lw3_is_a_triangle(self):
        assert detect_lw(triangle_query()) is not None
        assert detect_lw(lw_query(3)) is not None

    def test_lw4_structure(self):
        q = lw_query(4)
        attrs, omitted = detect_lw(q)
        assert attrs == ["v1", "v2", "v3", "v4"]
        assert omitted["e2"] == "v2"
        assert all(len(q.edges[e]) == 3 for e in q.edges)

    def test_rejects_lines(self):
        assert detect_lw(line_query(3)) is None
        assert detect_lw(line_query(4)) is None

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            lw_query(2)
        with pytest.raises(ValueError):
            lw_query(3, [1, 2])

    def test_join_rejects_non_lw(self):
        q = line_query(3)
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(
            device, {"e1": ("v1", "v2"), "e2": ("v2", "v3"),
                     "e3": ("v3", "v4")},
            {"e1": [(1, 2)], "e2": [(2, 3)], "e3": [(3, 4)]})
        with pytest.raises(ValueError):
            lw_join(q, inst, CountingEmitter())


class TestCorrectness:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6), st.integers(1, 3))
    def test_lw3_matches_generic_join(self, seed, p):
        q, schemas, data = random_lw_data(3, 30, 6, seed)
        device = Device(M=16, B=4)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        lw_join(q, inst, em, partitions=p)
        want = generic_join(q, data, schemas)
        assert em.assignment_set() == want
        assert em.count == len(want)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6))
    def test_lw4_matches_generic_join(self, seed):
        q, schemas, data = random_lw_data(4, 25, 4, seed)
        device = Device(M=16, B=4)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        lw_join(q, inst, em)
        want = generic_join(q, data, schemas)
        assert em.assignment_set() == want
        assert em.count == len(want)

    def test_skewed_cell_fallback(self):
        # One hot value on every attribute overflows its cell.
        q = lw_query(3)
        schemas = {e: tuple(sorted(q.edges[e])) for e in q.edges}
        rows = ([(0, i) for i in range(30)] + [(i, 0)
                                               for i in range(1, 20)])
        data = {e: sorted(set(rows)) for e in schemas}
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        lw_join(q, inst, em)
        want = generic_join(q, data, schemas)
        assert em.assignment_set() == want

    def test_empty_relation(self):
        q = lw_query(3)
        schemas = {e: tuple(sorted(q.edges[e])) for e in q.edges}
        data = {"e1": [], "e2": [(0, 0)], "e3": [(0, 0)]}
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = CountingEmitter()
        lw_join(q, inst, em)
        assert em.count == 0


class TestCostShape:
    def test_lw3_io_grows_subquadratically(self):
        import math
        ios = []
        ns = (8, 16)
        for k in ns:
            rows = [(i, j) for i in range(k) for j in range(k)]
            q = lw_query(3)
            schemas = {e: tuple(sorted(q.edges[e])) for e in q.edges}
            data = {e: rows for e in schemas}
            device = Device(M=32, B=4)
            inst = Instance.from_dicts(device, schemas, data)
            lw_join(q, inst, CountingEmitter())
            ios.append(device.stats.total)
        n_growth = (ns[1] / ns[0]) ** 2      # N quadruples
        exponent = math.log(ios[1] / ios[0]) / math.log(n_growth)
        # LW_3's exponent is 3/2; nested-loop cascades would be >= 2.
        assert 1.0 <= exponent < 2.0
