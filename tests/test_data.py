"""Unit tests for schemas, relations, and instances."""

import pytest

from repro import Device, Instance, Relation, RelationSchema


class TestRelationSchema:
    def test_index_and_contains(self):
        s = RelationSchema("e1", ("v1", "v2"))
        assert s.index("v2") == 1
        assert "v1" in s and "v9" not in s

    def test_unknown_attribute_raises(self):
        s = RelationSchema("e1", ("v1", "v2"))
        with pytest.raises(KeyError):
            s.index("v3")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("e1", ("v1", "v1"))

    def test_key_and_multi_key(self):
        s = RelationSchema("e1", ("a", "b", "c"))
        assert s.key("b")((1, 2, 3)) == 2
        assert s.multi_key(("c", "a"))((1, 2, 3)) == (3, 1)

    def test_project_and_value(self):
        s = RelationSchema("e1", ("a", "b"))
        assert s.value((7, 8), "b") == 8
        assert s.project((7, 8), ("b", "a")) == (8, 7)

    def test_common(self):
        s1 = RelationSchema("e1", ("a", "b"))
        s2 = RelationSchema("e2", ("b", "c"))
        assert s1.common(s2) == ("b",)


class TestRelation:
    def test_from_tuples_free_by_default(self, small_device):
        schema = RelationSchema("e1", ("a", "b"))
        r = Relation.from_tuples(small_device, schema, [(1, 2), (3, 4)])
        assert len(r) == 2
        assert small_device.stats.total == 0

    def test_from_tuples_charged(self, small_device):
        schema = RelationSchema("e1", ("a",))
        Relation.from_tuples(small_device, schema,
                             [(i,) for i in range(8)], charge_io=True)
        assert small_device.stats.writes == 2

    def test_arity_mismatch_rejected(self, small_device):
        schema = RelationSchema("e1", ("a", "b"))
        with pytest.raises(ValueError):
            Relation.from_tuples(small_device, schema, [(1,)])

    def test_sort_by_charges_and_is_idempotent(self, small_device):
        schema = RelationSchema("e1", ("a", "b"))
        r = Relation.from_tuples(small_device, schema,
                                 [(i % 3, i) for i in range(12)])
        s = r.sort_by("a")
        io_after = small_device.stats.total
        assert io_after > 0
        assert s.sorted_on == "a"
        assert s.sort_by("a") is s
        assert small_device.stats.total == io_after
        values = [t[0] for t in s.peek_tuples()]
        assert values == sorted(values)

    def test_restrict_requires_sort(self, small_device):
        schema = RelationSchema("e1", ("a", "b"))
        r = Relation.from_tuples(small_device, schema, [(0, 1)])
        with pytest.raises(ValueError):
            r.restrict(0, 1, attribute="a", value=0)

    def test_restrict_records_fixed_value(self, small_device):
        schema = RelationSchema("e1", ("a", "b"))
        r = Relation.from_tuples(small_device, schema,
                                 [(0, 1), (0, 2), (1, 3)]).sort_by("a")
        sub = r.restrict(0, 2, attribute="a", value=0)
        assert len(sub) == 2
        assert sub.fixed == {"a": 0}


class TestInstance:
    def make(self, device):
        return Instance.from_dicts(
            device,
            {"e1": ("v1", "v2"), "e2": ("v2", "v3")},
            {"e1": [(1, 2)], "e2": [(2, 3), (2, 4)]})

    def test_mapping_interface(self, small_device):
        inst = self.make(small_device)
        assert set(inst) == {"e1", "e2"}
        assert inst.sizes() == {"e1": 1, "e2": 2}
        assert inst.schemas()["e2"] == ("v2", "v3")

    def test_missing_data_rejected(self, small_device):
        with pytest.raises(ValueError):
            Instance.from_dicts(small_device, {"e1": ("a",)}, {})

    def test_drop_and_replace(self, small_device):
        inst = self.make(small_device)
        assert set(inst.drop("e1")) == {"e2"}
        inst2 = inst.replace(e2=inst["e2"].rewrite([(9, 9)], label="x"))
        assert len(inst2["e2"]) == 1
        assert len(inst["e2"]) == 2  # original untouched

    def test_key_name_mismatch_rejected(self, small_device):
        inst = self.make(small_device)
        with pytest.raises(ValueError):
            Instance({"wrong": inst["e1"]})

    def test_value_of_resolves_attribute(self, small_device):
        inst = self.make(small_device)
        result = {"e1": (1, 2), "e2": (2, 3)}
        assert inst.value_of(result, "v1") == 1
        assert inst.value_of(result, "v3") == 3
        with pytest.raises(KeyError):
            inst.value_of(result, "v9")
