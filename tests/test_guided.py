"""Tests for the Section 7.2/7.3 guided peel strategies."""

import pytest

from repro import Device, Instance
from repro.core import (AssignmentEmitter, CountingEmitter, acyclic_join,
                        acyclic_join_best, execute)
from repro.core.guided import (dumbbell_paper_chooser,
                               lollipop_paper_chooser, priority_chooser)
from repro.internal import join_query
from repro.query import dumbbell_query, line_query, lollipop_query
from repro.workloads import cross_product_instance, lollipop_worstcase_instance

from conftest import make_random_data


class TestLollipopChooser:
    def test_priority_flips_on_core_vs_stick_size(self):
        q = lollipop_query(3)
        # N0 (core e0) small vs stick e3: dom sizes control them.
        small_core = cross_product_instance(
            q, {a: (3 if a.startswith("u") else 1)
                for a in q.attributes})
        schemas, data = small_core
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        chooser = lollipop_paper_chooser(q, inst)
        # N0 = 1 <= N3 = 1: tip first
        assert chooser(q, inst) == "e4"

    def test_correct_results(self):
        q = lollipop_query(3)
        schemas, data = make_random_data(q, 15, 4, seed=2)
        oracle = join_query(q, data, schemas)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        acyclic_join(q, inst, em,
                     chooser=lollipop_paper_chooser(q, inst))
        assert em.assignment_set() == oracle
        assert em.count == len(oracle)

    def test_guided_near_best_branch_on_worstcase(self):
        q = lollipop_query(3)
        schemas, data = lollipop_worstcase_instance(q, case="petals",
                                                    scale=6)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        best = acyclic_join_best(q, inst, limit=24)

        device2 = Device(M=4, B=2)
        inst2 = Instance.from_dicts(device2, schemas, data)
        acyclic_join(q, inst2, CountingEmitter(),
                     chooser=lollipop_paper_chooser(q, inst2))
        assert device2.stats.total <= 2.0 * best.io

    def test_rejects_non_lollipop(self):
        q = line_query(3)
        schemas, data = make_random_data(q, 5, 3, seed=0)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        with pytest.raises(ValueError):
            lollipop_paper_chooser(q, inst)


class TestDumbbellChooser:
    def test_correct_results(self):
        q = dumbbell_query(3, 6)
        schemas, data = make_random_data(q, 10, 3, seed=4)
        oracle = join_query(q, data, schemas)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        acyclic_join(q, inst, em,
                     chooser=dumbbell_paper_chooser(q, inst))
        assert em.assignment_set() == oracle

    def test_rejects_non_dumbbell(self):
        q = lollipop_query(3)
        schemas, data = make_random_data(q, 5, 3, seed=0)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        with pytest.raises(ValueError):
            dumbbell_paper_chooser(q, inst)


class TestPlannerStrategy:
    def test_guided_label_and_results(self):
        q = lollipop_query(3)
        schemas, data = make_random_data(q, 12, 4, seed=6)
        oracle = join_query(q, data, schemas)
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        report = execute(q, inst, em, strategy="guided")
        assert report.algorithm == "algorithm-2-guided[lollipop]"
        assert em.assignment_set() == oracle

    def test_guided_general_acyclic_uses_greedy(self):
        from repro.query import JoinQuery
        q = JoinQuery(edges={
            "e1": frozenset({"a", "b"}),
            "e2": frozenset({"b", "c", "d"}),
            "e3": frozenset({"d", "e", "f"}),
            "e4": frozenset({"c", "u4"}),
            "e5": frozenset({"e", "u5"}),
            "e6": frozenset({"f", "u6"}),
        })
        schemas, data = make_random_data(q, 6, 3, seed=1)
        oracle = join_query(q, data, schemas)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        report = execute(q, inst, em, strategy="guided")
        assert "guided" in report.algorithm
        assert em.assignment_set() == oracle

    def test_unknown_strategy_rejected(self):
        q = line_query(2)
        schemas, data = make_random_data(q, 5, 3, seed=0)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        with pytest.raises(ValueError):
            execute(q, inst, CountingEmitter(), strategy="zzz")

    def test_priority_chooser_fallback(self):
        q = line_query(3)
        schemas, data = make_random_data(q, 8, 3, seed=0)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        # priority names no actual leaf -> falls back to first leaf
        acyclic_join(q, inst, em, chooser=priority_chooser(["zz"]))
        assert em.assignment_set() == join_query(q, data, schemas)
