"""Concurrency regressions for the service layer.

The emrace pass (EM012–EM016) proves lock *discipline* statically;
these tests hammer the runtime side of the same contracts: the flight
ring's loss honesty (``seen == stored + overwritten``) and the
admission controller's quota counters under real thread interleavings
(hypothesis drives the shape: thread count, rounds, capacities), plus
the worker-error result channel — a poisoned batch request must land
in ``stats()["errors"]`` and the flight log, never die silently on a
daemon thread.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import line_query
from repro.server import QueryService, ServiceError
from repro.server.admission import AdmissionController
from repro.server.flight import FlightRecorder
from repro.workloads import fig3_line3_instance

M, B = 8, 2  # the pinned line3_planner machine


def line3_service(**kwargs) -> QueryService:
    svc = QueryService(M=256, B=B, default_query_M=M, **kwargs)
    schemas, data = fig3_line3_instance(16, 16)
    svc.add_instance("default", schemas, data)
    return svc


# ------------------------------------------------- flight ring honesty


@settings(max_examples=10, deadline=None)
@given(capacity=st.integers(1, 8), threads=st.integers(2, 6),
       per_thread=st.integers(1, 12))
def test_flight_ring_honesty_under_concurrent_record(
        capacity, threads, per_thread):
    """``seen == stored + overwritten`` holds at every observation
    point, ids stay unique and ordered, and no record is lost
    silently — regardless of how the recording threads interleave."""
    rec = FlightRecorder(capacity=capacity, clock=lambda: 0.0)
    barrier = threading.Barrier(threads)

    def hammer():
        barrier.wait()  # maximize overlap: everyone starts together
        for _ in range(per_thread):
            rec.record(session="s", owner="s", query="q",
                       instance="d", status="ok", arrival_unix=0.0,
                       wait_ms=0.0, run_ms=0.0, total_ms=0.0)

    ts = [threading.Thread(target=hammer) for _ in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    stats = rec.stats()
    assert stats["seen"] == threads * per_thread
    assert stats["seen"] == stats["stored"] + stats["overwritten"]
    assert stats["stored"] == min(capacity, threads * per_thread)
    assert rec.seen == rec.stored + rec.overwritten
    ids = [r.id for r in rec.records()]
    assert len(set(ids)) == len(ids)
    assert ids == sorted(ids, reverse=True)  # newest first


# --------------------------------------------- admission quota counters


@settings(max_examples=10, deadline=None)
@given(threads=st.integers(2, 6), rounds=st.integers(1, 8),
       need=st.integers(1, 4))
def test_admission_counters_under_concurrent_grant_release(
        threads, rounds, need):
    """After every thread's acquire/release pairs drain, the budget is
    fully returned, the queue is empty, the grant/release tallies
    match, and the stressed owner's quota counters read zero."""
    ctl = AdmissionController(16, default_timeout=30.0)
    ctl.set_quota("t", max_inflight=max(1, threads - 1))
    barrier = threading.Barrier(threads)
    over_budget = []

    def worker():
        barrier.wait()
        for _ in range(rounds):
            grant = ctl.acquire(need, owner="t")
            try:
                g = ctl.granted
                if g > 16 or g < need:
                    over_budget.append(g)
            finally:
                ctl.release(grant)

    ts = [threading.Thread(target=worker) for _ in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert over_budget == []
    assert ctl.granted == 0 and ctl.queue_depth == 0
    assert ctl.available == 16
    snap = ctl.snapshot()
    assert snap["in_flight"] == 0
    assert snap["admitted"] == threads * rounds
    assert snap["released"] == threads * rounds
    quota = ctl.quota_state("t")
    assert quota["inflight"] == 0 and quota["granted"] == 0


# -------------------------------------------- worker error propagation


class TestWorkerErrorSurfacing:
    def test_poisoned_query_lands_in_stats_and_flight(self):
        """A batch request naming an unknown relation fails *before*
        the session's own flight recording; the worker channel must
        still surface it in /stats and the flight log."""
        with line3_service() as svc:
            good = {"query": line_query(3), "M": M, "B": B}
            with pytest.raises(ServiceError, match="request 1"):
                svc.execute_batch([good, {"query": "e9(v1,v2)"}, good])
            assert svc.stats()["errors"]["worker_errors"] == 1
            errs = [r for r in svc.flight.records()
                    if r.status == "error"]
            assert len(errs) == 1
            assert errs[0].query == "e9(v1,v2)"
            assert "request 1" in errs[0].error

    def test_missing_query_key_is_reported_not_silent(self):
        with line3_service() as svc:
            good = {"query": line_query(3), "M": M, "B": B}
            with pytest.raises(ServiceError, match="request 1"):
                svc.execute_batch([good, {"M": M, "B": B}, good])
            assert svc.stats()["errors"]["worker_errors"] == 1
            (rec,) = [r for r in svc.flight.records()
                      if r.status == "error"]
            assert rec.query == "<missing>"

    def test_session_recorded_failures_are_not_double_recorded(self):
        """An admission rejection already leaves a flight record via
        the session; the worker channel must only bump the counter."""
        svc = QueryService(M=2, B=2, default_query_M=M)
        schemas, data = fig3_line3_instance(16, 16)
        svc.add_instance("default", schemas, data)
        with svc:
            with pytest.raises(ServiceError):
                svc.execute_batch([{"query": line_query(3),
                                    "M": M, "B": B}])
            stats = svc.flight.stats()
            assert stats["seen"] == 1  # the session's own record
            (rec,) = svc.flight.records()
            assert rec.status == "rejected"
            assert svc.stats()["errors"]["worker_errors"] == 1

    def test_note_server_crash_surfaces_in_stats(self):
        with line3_service() as svc:
            assert svc.stats()["errors"]["serve_crash"] is None
            svc.note_server_crash(RuntimeError("boom"))
            assert "boom" in svc.stats()["errors"]["serve_crash"]

    def test_http_serve_thread_crash_is_reported(self, monkeypatch):
        """If the serve loop dies, the reason must appear in /stats
        instead of vanishing with the daemon thread."""
        from repro.server import http as http_mod

        def boom(self, *a, **k):
            raise RuntimeError("serve loop died")

        monkeypatch.setattr(http_mod.ServiceServer, "serve_forever",
                            boom)
        monkeypatch.setattr(threading, "excepthook",
                            lambda *_args: None)  # keep the log quiet
        with line3_service() as svc:
            server = http_mod.start_http_server(svc)
            try:
                for _ in range(200):
                    crash = svc.stats()["errors"]["serve_crash"]
                    if crash:
                        break
                    time.sleep(0.005)
                assert "serve loop died" in crash
            finally:
                server.server_close()
