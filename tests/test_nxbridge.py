"""Tests for the networkx bridge (and acyclicity cross-validation)."""

import networkx as nx
from hypothesis import given, settings

from repro.query import (JoinQuery, dumbbell_query, is_berge_acyclic,
                         line_query, lollipop_query, star_query,
                         triangle_query)
from repro.query.nxbridge import (hypergraph_stats, incidence_graph,
                                  is_berge_acyclic_nx, join_forest)

from test_classify import random_acyclic_query


class TestIncidenceGraph:
    def test_structure(self):
        g = incidence_graph(line_query(3))
        rel_nodes = [n for n, d in g.nodes(data=True)
                     if d["kind"] == "relation"]
        attr_nodes = [n for n, d in g.nodes(data=True)
                      if d["kind"] == "attribute"]
        assert len(rel_nodes) == 3
        assert len(attr_nodes) == 4
        assert g.number_of_edges() == 6  # 3 binary edges

    def test_name_collision_is_safe(self):
        q = JoinQuery(edges={"x": frozenset({"x", "y"})})
        g = incidence_graph(q)
        assert g.has_node("E:x") and g.has_node("A:x")


class TestAcyclicityCrossValidation:
    @settings(max_examples=60, deadline=None)
    @given(random_acyclic_query())
    def test_agrees_on_random_acyclic(self, q):
        assert is_berge_acyclic_nx(q) == is_berge_acyclic(q) is True

    def test_agrees_on_cyclic(self):
        assert is_berge_acyclic_nx(triangle_query()) is False
        two_shared = JoinQuery(edges={"e1": frozenset({"a", "b"}),
                                      "e2": frozenset({"a", "b"})})
        assert is_berge_acyclic_nx(two_shared) is False

    def test_agrees_on_paper_families(self):
        for q in (line_query(6), star_query(4), lollipop_query(3),
                  dumbbell_query(3, 6)):
            assert is_berge_acyclic_nx(q) and is_berge_acyclic(q)


class TestJoinForest:
    def test_forest_shape(self):
        g = join_forest(star_query(3))
        # early petals point at the core; the elimination root (the
        # last-surviving relation) has no parent
        assert set(g.successors("e1")) == {"e0"}
        roots = [n for n in g.nodes if g.out_degree(n) == 0]
        assert len(roots) == 1
        assert nx.is_forest(g.to_undirected())

    def test_arc_labels_are_shared_attrs(self):
        g = join_forest(line_query(3))
        for u, v, d in g.edges(data=True):
            q = line_query(3)
            assert d["attribute"] in (q.edges[u] & q.edges[v])


class TestStats:
    def test_line_stats(self):
        s = hypergraph_stats(line_query(4))
        assert s["relations"] == 4
        assert s["attributes"] == 5
        assert s["incidences"] == 8
        assert s["components"] == 1
        assert s["max_degree"] == 2

    def test_empty(self):
        s = hypergraph_stats(JoinQuery(edges={}))
        assert s["relations"] == 0 and s["components"] == 0
