"""Unit tests for structure classification (Section 2.2, Figure 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import (JoinQuery, dumbbell_query, find_buds, find_islands,
                         find_leaves, find_stars, has_island_bud_or_leaf,
                         is_bud, is_island, is_leaf, join_attributes,
                         leaf_info, line_query, lollipop_query, star_query,
                         unique_attributes)
from repro.query.hypergraph import is_berge_acyclic


class TestAttributeClasses:
    def test_line_join_and_unique_attrs(self):
        q = line_query(3)
        assert join_attributes(q) == frozenset({"v2", "v3"})
        assert unique_attributes(q) == frozenset({"v1", "v4"})

    def test_star_attrs(self):
        q = star_query(3)
        assert join_attributes(q) == frozenset({"v1", "v2", "v3"})
        assert unique_attributes(q) == frozenset({"u1", "u2", "u3"})


class TestRelationClasses:
    def test_line_ends_are_leaves(self):
        q = line_query(4)
        assert find_leaves(q) == ["e1", "e4"]
        assert not find_islands(q)
        assert not find_buds(q)

    def test_leaf_info(self):
        info = leaf_info(line_query(3), "e1")
        assert info.join_attr == "v2"
        assert info.unique_attrs == frozenset({"v1"})
        assert info.neighbors == frozenset({"e2"})

    def test_leaf_info_rejects_non_leaf(self):
        import pytest
        with pytest.raises(ValueError):
            leaf_info(line_query(3), "e2")

    def test_island_detection(self):
        q = JoinQuery(edges={"e1": frozenset({"a", "b"}),
                             "e2": frozenset({"c", "d"})})
        assert is_island(q, "e1") and is_island(q, "e2")

    def test_attributeless_edge_is_island(self):
        q = JoinQuery(edges={"e1": frozenset(), "e2": frozenset({"a"})})
        assert is_island(q, "e1")

    def test_bud_detection(self):
        # Dropping v1 from e1 of an L2 leaves {v2}: a bud.
        q = line_query(2).drop_attributes(["v1"])
        assert is_bud(q, "e1")
        assert not is_leaf(q, "e1")

    def test_leaf_requires_unique_attr(self):
        q = line_query(2)
        assert is_leaf(q, "e1") and is_leaf(q, "e2")
        q2 = q.drop_attributes(["v1"])
        assert not is_leaf(q2, "e1")


class TestStars:
    def test_l3_is_a_standalone_star(self):
        stars = find_stars(line_query(3))
        full = [s for s in stars if s.petals == frozenset({"e1", "e3"})]
        assert len(full) == 1
        assert full[0].core == "e2"
        assert full[0].external_attrs == frozenset()

    def test_l3_single_petal_stars(self):
        # Section 4.2: {e1, e2} with core e2 (and symmetrically {e2, e3}).
        stars = find_stars(line_query(3), all_petal_subsets=True)
        petalsets = {s.petals for s in stars}
        assert frozenset({"e1"}) in petalsets
        assert frozenset({"e3"}) in petalsets

    def test_l4_star_is_e1_e2(self):
        stars = find_stars(line_query(4))
        assert {(s.core, s.petals) for s in stars} == {
            ("e2", frozenset({"e1"})), ("e3", frozenset({"e4"}))}

    def test_star_query_detected(self):
        stars = find_stars(star_query(3))
        full = [s for s in stars
                if s.petals == frozenset({"e1", "e2", "e3"})]
        assert full and full[0].core == "e0"

    def test_core_with_two_external_attrs_invalid(self):
        # A middle edge of an L5 has two external join attributes once
        # its potential petals are taken away.
        q = line_query(5)
        stars = find_stars(q, all_petal_subsets=True)
        assert all(s.core != "e3" for s in stars)

    def test_lollipop_has_two_star_cores(self):
        q = lollipop_query(3)
        cores = {s.core for s in find_stars(q, all_petal_subsets=True)}
        assert "e0" in cores          # the petal star
        assert "e3" in cores          # the stick acts as a 1-petal core

    def test_dumbbell_cores(self):
        q = dumbbell_query(3, 6)
        cores = {s.core for s in find_stars(q, all_petal_subsets=True)}
        assert {"e0", "e6"} <= cores


class TestLemma1:
    """Lemma 1: an acyclic query always has an island, bud, or leaf."""

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 8), st.integers(0, 10**6))
    def test_on_line_suffixes(self, n, seed):
        q = line_query(n)
        assert has_island_bud_or_leaf(q)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_on_random_acyclic_hypergraphs(self, data):
        q = data.draw(random_acyclic_query())
        assert is_berge_acyclic(q)
        assert has_island_bud_or_leaf(q)


@st.composite
def random_acyclic_query(draw):
    """Random Berge-acyclic hypergraphs grown edge by edge.

    Each new edge attaches to the existing structure through at most
    one existing attribute (keeping the incidence graph a forest) and
    adds 0-2 fresh attributes.
    """
    n_edges = draw(st.integers(1, 6))
    edges: dict[str, frozenset[str]] = {}
    attrs: list[str] = []
    counter = 0
    for i in range(n_edges):
        members: set[str] = set()
        if attrs and draw(st.booleans()):
            members.add(draw(st.sampled_from(attrs)))
        n_fresh = draw(st.integers(0 if members else 1, 2))
        for _ in range(n_fresh):
            a = f"x{counter}"
            counter += 1
            attrs.append(a)
            members.add(a)
        edges[f"e{i}"] = frozenset(members)
    return JoinQuery(edges=edges)
