"""The four Appendix A.3 case families for the unbalanced ``L7``.

A.3 analyzes which of the three balancing conditions break on an
``L7`` with cover ``(1,0,1,0,1,0,1)``:

* (a) ``N1·N3·N5·N7 ≥ N2·N4·N6``
* (b) ``N1·N3·N5 ≥ N2·N4``
* (c) ``N3·N5·N7 ≥ N4·N6``

with four essentially distinct situations: (i) all broken,
(ii) (a)+(b) broken (≅ (a)+(c) by symmetry), (iii) only (a) broken,
(iv) only (b) broken (≅ only (c)).  The concrete instance families
below (found by search over the mapping-kind constructions) realize
each pattern; Algorithm 5 must stay correct and cost-competitive with
Algorithm 2's best branch on every one.
"""

import pytest

from repro import Device, Instance
from repro.core import (AssignmentEmitter, acyclic_join_best,
                        line7_unbalanced_join)
from repro.internal import join_query
from repro.query import line_query
from repro.workloads import mapping_line_instance

# (label, broken (a,b,c), domain chain z, relation kinds)
A3_FAMILIES = [
    ("case-i: all broken", (True, True, True),
     (2, 8, 8, 8, 8, 8, 6, 2),
     ("fanout", "cross", "fanout", "cross", "onto", "onto", "onto")),
    ("case-ii: (a)+(b) broken", (True, True, False),
     (3, 3, 6, 4, 4, 2, 1, 4),
     ("onto", "cross", "onto", "cross", "onto", "cross", "cross")),
    ("case-iii: only (a) broken", (True, False, False),
     (4, 4, 6, 6, 6, 2, 2, 1),
     ("onto", "cross", "onto", "fanout", "onto", "cross", "onto")),
    ("case-iv: only (c) broken", (False, False, True),
     (2, 6, 1, 6, 3, 3, 3, 6),
     ("cross", "onto", "fanout", "cross", "fanout", "cross", "fanout")),
]


def broken_conditions(sizes):
    n1, n2, n3, n4, n5, n6, n7 = sizes
    return (n1 * n3 * n5 * n7 < n2 * n4 * n6,
            n1 * n3 * n5 < n2 * n4,
            n3 * n5 * n7 < n4 * n6)


class TestA3Families:
    @pytest.mark.parametrize("label,broken,z,kinds", A3_FAMILIES)
    def test_family_realizes_its_pattern(self, label, broken, z, kinds):
        schemas, data = mapping_line_instance(z, list(kinds))
        sizes = [len(data[f"e{i}"]) for i in range(1, 8)]
        assert broken_conditions(sizes) == broken, (label, sizes)

    @pytest.mark.parametrize("label,broken,z,kinds", A3_FAMILIES)
    def test_algorithm5_correct_on_each_case(self, label, broken, z,
                                             kinds):
        schemas, data = mapping_line_instance(z, list(kinds))
        q = line_query(7)
        oracle = join_query(q, data, schemas)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        em = AssignmentEmitter(schemas)
        line7_unbalanced_join(q, inst, em, plan_limit=4)
        assert em.assignment_set() == oracle
        assert em.count == len(oracle)

    def test_algorithm5_competitive_on_all_broken(self):
        # The hardest case (i): Algorithm 5 should not lose badly to
        # Algorithm 2's best branch (it wins asymptotically; at this
        # scale allow a small constant either way).
        label, broken, z, kinds = A3_FAMILIES[0]
        schemas, data = mapping_line_instance(z, list(kinds))
        q = line_query(7)

        device5 = Device(M=4, B=2)
        inst5 = Instance.from_dicts(device5, schemas, data)
        from repro.core import CountingEmitter
        line7_unbalanced_join(q, inst5, CountingEmitter(), plan_limit=4)

        device2 = Device(M=4, B=2)
        inst2 = Instance.from_dicts(device2, schemas, data)
        best = acyclic_join_best(q, inst2, limit=4)
        assert device5.stats.total <= 2.5 * best.io
