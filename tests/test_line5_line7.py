"""Tests for Algorithms 4-5 and the L6/L8 reductions (Section 6.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Device, Instance
from repro.core import (AssignmentEmitter, CountingEmitter,
                        acyclic_join_best, line5_unbalanced_join,
                        line6_unbalanced_join, line7_cover11_join,
                        line7_unbalanced_join, line8_join, line_join_auto)
from repro.internal import join_query
from repro.query import line_query, star_query
from repro.query.lines import is_balanced
from repro.workloads import (l5_for_regime, schemas_for,
                             unbalanced_l5_instance)

from conftest import make_random_data, run_and_compare


class TestAlgorithm4:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_correct_on_random_l5(self, seed):
        q = line_query(5)
        schemas, data = make_random_data(q, 15, 4, seed)
        run_and_compare(q, schemas, data, line5_unbalanced_join, M=8, B=2)

    def test_correct_on_unbalanced_construction(self):
        q, schemas, data = l5_for_regime(6, balanced=False)[0:3]
        sizes = [len(data[f"e{i}"]) for i in range(1, 6)]
        assert not is_balanced(sizes)
        run_and_compare(q, schemas, data, line5_unbalanced_join, M=4, B=2)

    def test_correct_with_skew(self):
        from repro.workloads import skewed_instance
        q = line_query(5)
        schemas, data = skewed_instance(q, 30, 6, hot_fraction=0.6,
                                        hot_values=1, seed=11)
        run_and_compare(q, schemas, data, line5_unbalanced_join, M=4, B=2)

    def test_rejects_non_l5(self, small_device):
        q = star_query(3)
        schemas, data = make_random_data(q, 5, 3, seed=0)
        inst = Instance.from_dicts(small_device, schemas, data)
        with pytest.raises(ValueError):
            line5_unbalanced_join(q, inst, CountingEmitter())

    def test_beats_algorithm2_on_unbalanced_family(self):
        # The reason Algorithm 4 exists: when N1 N3 N5 < N2 N4,
        # Algorithm 2's best branch pays more.
        q, schemas, data = l5_for_regime(24, balanced=False)
        M, B = 4, 2
        dev4 = Device(M=M, B=B)
        inst4 = Instance.from_dicts(dev4, schemas, data)
        line5_unbalanced_join(q, inst4, CountingEmitter())

        dev2 = Device(M=M, B=B)
        inst2 = Instance.from_dicts(dev2, schemas, data)
        best = acyclic_join_best(q, inst2)
        assert dev4.stats.total < best.io


class TestL6Reduction:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10**6))
    def test_correct_on_random_l6(self, seed):
        q = line_query(6)
        schemas, data = make_random_data(q, 12, 4, seed)
        run_and_compare(q, schemas, data, line6_unbalanced_join, M=8, B=2)

    def test_mirrored_orientation(self):
        # Make the *last* five relations the unbalanced part so the
        # outer relation is e1.
        schemas, data = unbalanced_l5_instance(1, 8, 2, 2, 8, 1)
        # shift to e2..e6 and add a fresh e1 on the left
        shifted_schemas = {"e1": ("v1", "v2")}
        shifted_data = {"e1": [(i, j) for i in range(3)
                               for j in range(1)]}
        for i in range(1, 6):
            shifted_schemas[f"e{i + 1}"] = (f"v{i + 1}", f"v{i + 2}")
            shifted_data[f"e{i + 1}"] = [
                (a, b) for (a, b) in data[f"e{i}"]]
        q = line_query(6)
        run_and_compare(q, shifted_schemas, shifted_data,
                        line6_unbalanced_join, M=4, B=2)


class TestAlgorithm5:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10**6))
    def test_correct_on_random_l7(self, seed):
        q = line_query(7)
        schemas, data = make_random_data(q, 10, 3, seed)
        run_and_compare(q, schemas, data, line7_unbalanced_join, M=8, B=2)

    def test_emits_all_seven_tuples(self):
        # Emit-model exactness: the S rows must split back into the
        # three participating middle tuples.
        q = line_query(7)
        schemas, data = make_random_data(q, 8, 3, seed=42)
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        results = []

        class Grab:
            def emit(self, r):
                results.append(dict(r))

        line7_unbalanced_join(q, inst, Grab())
        for r in results:
            assert set(r) == {f"e{i}" for i in range(1, 8)}
            for e, t in r.items():
                assert tuple(t) in set(data[e])


class TestL7Cover11AndL8:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 10**6))
    def test_cover11_correct(self, seed):
        q = line_query(7)
        schemas, data = make_random_data(q, 8, 3, seed)
        run_and_compare(q, schemas, data, line7_cover11_join, M=8, B=2)

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10**6))
    def test_l8_correct(self, seed):
        q = line_query(8)
        schemas, data = make_random_data(q, 8, 3, seed)
        run_and_compare(q, schemas, data, line8_join, M=8, B=2)


class TestLineAutoDispatch:
    def test_labels_by_regime(self):
        cases = [
            (line_query(3), make_random_data(line_query(3), 10, 3, 1)[1],
             "algorithm-1"),
        ]
        for q, data, want in cases:
            schemas = schemas_for(q)
            device = Device(M=8, B=2)
            inst = Instance.from_dicts(device, schemas, data)
            label = line_join_auto(q, inst, CountingEmitter())
            assert label == want

    def test_unbalanced_l5_label(self):
        q, schemas, data = l5_for_regime(8, balanced=False)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        label = line_join_auto(q, inst, CountingEmitter())
        assert label == "algorithm-4"

    def test_balanced_l5_label(self):
        q, schemas, data = l5_for_regime(4, balanced=True)
        device = Device(M=4, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        label = line_join_auto(q, inst, CountingEmitter())
        assert label == "algorithm-2-best-branch"

    def test_dispatch_correctness_across_n(self):
        for n in range(2, 9):
            q = line_query(n)
            schemas, data = make_random_data(q, 8, 3, seed=n)
            run_and_compare(
                q, schemas, data,
                lambda qq, ii, ee: line_join_auto(qq, ii, ee),
                M=8, B=2)
