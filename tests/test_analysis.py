"""Tests for the analysis layer: Ψ/ψ, bounds, certificates (Section 1.4)."""

import pytest

from repro.analysis import (all_subsets, certify, dominant_subsets,
                            equal_size_bound, gens_bound, line3_bound,
                            line4_bound, line_independent_bound,
                            lower_bound, nested_loop_cascade_bound,
                            partial_join_size, psi_partial, psi_subjoin,
                            star_bound, subjoin_size, theorem2_bound,
                            two_relation_bound)
from repro.query import line_query, star_query
from repro.workloads import fig3_line3_instance, schemas_for


def figure1_style_instance():
    """An L3 where the subjoin on {e1, e3} strictly exceeds the partial
    join — the Figure 1 phenomenon: the subjoin is a cross product, but
    only some (t1, t3) pairs extend to full paths."""
    schemas = {"e1": ("v1", "v2"), "e2": ("v2", "v3"),
               "e3": ("v3", "v4")}
    data = {"e1": [(1, 0), (2, 1)],
            "e2": [(0, 0), (1, 1)],
            "e3": [(0, 10), (1, 11)]}
    # paths: (1,0)-(0,0)-(0,10) and (2,1)-(1,1)-(1,11); but subjoin
    # {e1,e3} = cross product of 2x2 = 4 pairs.
    return line_query(3), schemas, data


class TestSubjoinVsPartial:
    def test_figure1_distinction(self):
        q, schemas, data = figure1_style_instance()
        s = {"e1", "e3"}
        assert subjoin_size(q, data, schemas, s) == 4
        assert partial_join_size(q, data, schemas, s) == 2

    def test_connected_subset_sizes_agree_on_reduced(self):
        # For connected S on fully reduced acyclic instances,
        # subjoin == partial join (Section 1.4).
        q, schemas, data = figure1_style_instance()
        for s in [{"e1", "e2"}, {"e2", "e3"}, {"e1", "e2", "e3"}]:
            assert subjoin_size(q, data, schemas, s) \
                == partial_join_size(q, data, schemas, s)

    def test_empty_subset(self):
        q, schemas, data = figure1_style_instance()
        assert subjoin_size(q, data, schemas, set()) == 1
        assert psi_subjoin(q, data, schemas, set(), 4, 2) == 0.0

    def test_singleton_subset_is_relation_size(self):
        q, schemas, data = figure1_style_instance()
        assert subjoin_size(q, data, schemas, {"e2"}) == 2
        assert partial_join_size(q, data, schemas, {"e2"}) == 2


class TestPsi:
    def test_psi_formula(self):
        q, schemas, data = figure1_style_instance()
        # Ψ({e1,e3}) = 4 / (M^1 B)
        assert psi_subjoin(q, data, schemas, {"e1", "e3"}, 4, 2) \
            == pytest.approx(4 / 8)
        assert psi_partial(q, data, schemas, {"e1", "e3"}, 4, 2) \
            == pytest.approx(2 / 8)

    def test_lower_bound_on_fig3(self):
        schemas, data = fig3_line3_instance(32, 32)
        q = line_query(3)
        lb = lower_bound(q, data, schemas, 8, 2)
        # dominated by ψ({e1,e3}) = 32*32/(8*2)
        assert lb == pytest.approx(32 * 32 / 16)

    def test_bound_ordering(self):
        # lower <= gens <= theorem2 always.
        schemas, data = fig3_line3_instance(16, 16)
        q = line_query(3)
        lb = lower_bound(q, data, schemas, 4, 2)
        gb = gens_bound(q, data, schemas, 4, 2)
        t2 = theorem2_bound(q, data, schemas, 4, 2)
        assert lb <= gb + 1e-9 <= t2 + 1e-9

    def test_gens_tighter_than_theorem2_on_star(self):
        # The star observation: GenS avoids the core+all-petals subjoin.
        schemas = {"e0": ("v1", "v2"), "e1": ("u1", "v1"),
                   "e2": ("u2", "v2")}
        data = {"e0": [(0, j) for j in range(8)],
                "e1": [(i, 0) for i in range(8)],
                "e2": [(i, j) for i in range(2) for j in range(4)]}
        q = star_query(2)
        gb = gens_bound(q, data, schemas, 2, 1)
        t2 = theorem2_bound(q, data, schemas, 2, 1)
        assert gb <= t2

    def test_all_subsets_count(self):
        assert len(all_subsets(line_query(3))) == 7

    def test_dominant_subsets_sorted(self):
        schemas, data = fig3_line3_instance(16, 16)
        q = line_query(3)
        tops = dominant_subsets(q, data, schemas, 4, 2, top=3)
        values = [v for _, v in tops]
        assert values == sorted(values, reverse=True)
        assert tops[0][0] == frozenset({"e1", "e3"})


class TestClosedFormBounds:
    def test_two_relation(self):
        assert two_relation_bound(100, 100, 10, 5) \
            == pytest.approx(10000 / 50 + 200 / 5)

    def test_line3(self):
        assert line3_bound(64, 64, 8, 2) \
            == pytest.approx(64 * 64 / 16 + 128 / 2)

    def test_line4_min_of_strategies(self):
        b_small2 = line4_bound([10, 2, 50, 10], 2, 1)
        b_small3 = line4_bound([10, 50, 2, 10], 2, 1)
        assert b_small2 == b_small3  # symmetric min

    def test_line_independent_bound_dominates_pairs(self):
        b = line_independent_bound([10] * 5, 2, 1)
        assert b >= 10 * 10 * 10 / 4

    def test_star_bound(self):
        assert star_bound(5, [10, 10], 2, 1) \
            == pytest.approx(100 / 2 + 25 / 1)

    def test_equal_size_bound_uses_cover_number(self):
        q = line_query(5)
        b = equal_size_bound(q, 100, 10, 2)
        assert b == pytest.approx((100 / 10) ** 3 * 10 / 2
                                  + 5 * 100 / 2)

    def test_cascade_bound(self):
        assert nested_loop_cascade_bound([10, 10, 10], 2, 1) \
            == pytest.approx(1000 / 4 + 30)


class TestCertificate:
    def test_ratios(self):
        schemas, data = fig3_line3_instance(32, 32)
        q = line_query(3)
        cert = certify(q, data, schemas, 8, 2, measured_io=200)
        assert cert.lower > 0
        assert cert.measured_over_lower == pytest.approx(200 / cert.lower)
        assert cert.gap >= 1.0 - 1e-9

    def test_zero_lower_bound_gives_inf(self):
        q = line_query(2)
        schemas = schemas_for(q)
        data = {"e1": [], "e2": []}
        cert = certify(q, data, schemas, 4, 2, measured_io=1)
        assert cert.measured_over_lower == float("inf")
