"""Edge cases of the Section 6 dispatcher and minor uncovered paths."""

from repro import Device, Instance
from repro.core import CountingEmitter, line_join_auto
from repro.em import is_sorted
from repro.query import gens_all, gens_one, line_query
from repro.query.lines import line_cover

from conftest import make_random_data, run_and_compare


class TestDispatcherEdges:
    def test_l9_runs_with_open_optimality_label(self):
        q = line_query(9)
        schemas, data = make_random_data(q, 6, 3, seed=9)
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(device, schemas, data)
        label = line_join_auto(q, inst, CountingEmitter(), plan_limit=2)
        assert "optimality-open" in label or "best-branch" in label

    def test_l9_results_correct(self):
        q = line_query(9)
        schemas, data = make_random_data(q, 6, 3, seed=10)
        run_and_compare(
            q, schemas, data,
            lambda qq, ii, ee: line_join_auto(qq, ii, ee, plan_limit=2),
            M=8, B=2)

    def test_cover_detection_for_cover11(self):
        # Sizes forcing (1,1,0,1,0,1,1): middle five unbalanced with
        # big N3, N5 and tiny N4... per the paper this needs
        # N1·N7 > N2·N4·N6-style breakage; verify line_cover picks the
        # expected shape on a crafted vector.
        sizes = [2, 2, 100, 2, 100, 2, 2]
        cover = line_cover(sizes)
        assert cover[0] == 1 and cover[-1] == 1
        assert sum(cover) >= 4


class TestGensOneChoosers:
    def test_custom_choosers_change_branch(self):
        q = line_query(5)
        first = gens_one(q)
        alt = gens_one(q, star_chooser=lambda stars: len(stars) - 1,
                       leaf_chooser=lambda options: len(options) - 1)
        branches = gens_all(q)
        assert first in branches
        assert alt in branches

    def test_gens_one_is_deterministic(self):
        q = line_query(4)
        assert gens_one(q) == gens_one(q)


class TestSortHelpers:
    def test_is_sorted_on_segment(self, small_device):
        f = small_device.file_from_tuples_free(
            [(5,), (1,), (2,), (3,), (9,)])
        assert is_sorted(f.segment(1, 4), lambda t: t[0])
        assert not is_sorted(f, lambda t: t[0])


class TestCLINoReduce:
    def test_no_reduce_flag(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "a.csv").write_text("x,y\n1,2\n")
        (tmp_path / "b.csv").write_text("y,z\n2,3\n")
        rc = main(["run", "--query", "a(x,y), b(y,z)",
                   "--table", f"a={tmp_path}/a.csv",
                   "--table", f"b={tmp_path}/b.csv", "--no-reduce"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "io (reduce) : 0" in out
