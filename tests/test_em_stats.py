"""Unit tests for I/O counters, cache counters, and the memory gauge."""

import pytest

from repro.em import CacheStats, IOStats, MemoryBudgetExceeded, MemoryGauge


class TestIOStats:
    def test_starts_at_zero(self):
        s = IOStats()
        assert s.reads == 0 and s.writes == 0 and s.total == 0

    def test_total_sums_reads_and_writes(self):
        s = IOStats(reads=3, writes=5)
        assert s.total == 8

    def test_snapshot_is_independent(self):
        s = IOStats(reads=1)
        snap = s.snapshot()
        s.reads += 10
        assert snap.reads == 1 and s.reads == 11

    def test_delta_since(self):
        s = IOStats(reads=2, writes=3)
        snap = s.snapshot()
        s.reads += 5
        s.writes += 1
        d = s.delta_since(snap)
        assert d.reads == 5 and d.writes == 1

    def test_add(self):
        a = IOStats(reads=1, writes=2)
        b = IOStats(reads=10, writes=20)
        c = a + b
        assert c.reads == 11 and c.writes == 22

    def test_reset(self):
        s = IOStats(reads=7, writes=7)
        s.reset()
        assert s.total == 0

    def test_reset_zeroes_cache_section(self):
        s = IOStats()
        s.cache.hits = 3
        s.cache.misses = 2
        s.reset()
        assert s.cache.hits == 0 and s.cache.misses == 0

    def test_snapshot_copies_cache_counters(self):
        s = IOStats()
        s.cache.hits = 4
        s.cache.misses = 6
        snap = s.snapshot()
        s.cache.hits += 10
        assert snap.cache.hits == 4 and snap.cache.misses == 6
        assert snap.cache is not s.cache

    def test_delta_since_diffs_cache_counters(self):
        s = IOStats()
        s.cache.hits, s.cache.misses = 5, 5
        snap = s.snapshot()
        s.reads += 3
        s.cache.hits += 7
        s.cache.misses += 3
        s.cache.evictions += 2
        s.cache.writebacks += 1
        d = s.delta_since(snap)
        assert d.reads == 3
        assert (d.cache.hits, d.cache.misses) == (7, 3)
        assert (d.cache.evictions, d.cache.writebacks) == (2, 1)
        assert d.cache.hit_rate == 0.7

    def test_add_sums_cache_counters(self):
        a, b = IOStats(), IOStats()
        a.cache.hits, a.cache.misses = 1, 2
        b.cache.hits, b.cache.misses = 10, 20
        c = a + b
        assert (c.cache.hits, c.cache.misses) == (11, 22)

    def test_pooled_interval_measurement_reports_hit_rate(self):
        """Regression: pooled snapshot/delta used to drop the cache
        section, so any interval measured on a pooled device reported
        hits=0 and hit_rate=0.0."""
        from repro.em import Device, PoolConfig

        device = Device(M=16, B=4, buffer_pool=PoolConfig(frames=4))
        f = device.file_from_tuples_free([(i,) for i in range(16)])
        list(f.reader())                    # cold: all misses
        snap = device.stats.snapshot()
        list(f.reader())                    # warm: all hits
        d = device.stats.delta_since(snap)
        assert d.cache.hits == 4 and d.cache.misses == 0
        assert d.cache.hit_rate == 1.0
        assert d.reads == 0

    def test_suspend_freezes_counting(self):
        s = IOStats(reads=2)
        assert not s.suspended
        with s.suspend():
            assert s.suspended
            with s.suspend():       # re-entrant
                assert s.suspended
            assert s.suspended
        assert not s.suspended
        assert s.reads == 2


class TestCacheStats:
    def test_logical_reads_and_hit_rate(self):
        c = CacheStats(hits=6, misses=2)
        assert c.logical_reads == 8
        assert c.hit_rate == 0.75

    def test_hit_rate_of_idle_cache_is_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_as_dict_round_trip(self):
        c = CacheStats(hits=1, misses=3, evictions=2, writebacks=1)
        d = c.as_dict()
        assert d["hits"] == 1 and d["misses"] == 3
        assert d["logical_reads"] == 4 and d["hit_rate"] == 0.25

    def test_reset(self):
        c = CacheStats(hits=1, misses=1, evictions=1, writebacks=1)
        c.reset()
        assert c.as_dict()["logical_reads"] == 0


class TestMemoryGauge:
    def test_charge_and_release_track_peak(self):
        g = MemoryGauge(capacity=10)
        g.charge(4)
        g.charge(3)
        g.release(5)
        assert g.current == 2
        assert g.peak == 7

    def test_hold_context_manager(self):
        g = MemoryGauge(capacity=10)
        with g.hold(6):
            assert g.current == 6
        assert g.current == 0
        assert g.peak == 6

    def test_strict_mode_raises_beyond_slack(self):
        g = MemoryGauge(capacity=10, slack=2.0, strict=True)
        g.charge(20)  # exactly at the limit
        with pytest.raises(MemoryBudgetExceeded):
            g.charge(1)

    def test_non_strict_only_records(self):
        g = MemoryGauge(capacity=10, slack=1.0, strict=False)
        g.charge(1000)
        assert g.peak == 1000

    def test_negative_charge_rejected(self):
        g = MemoryGauge(capacity=10)
        with pytest.raises(ValueError):
            g.charge(-1)

    def test_over_release_rejected(self):
        g = MemoryGauge(capacity=10)
        g.charge(2)
        with pytest.raises(ValueError):
            g.release(3)

    def test_reset(self):
        g = MemoryGauge(capacity=10)
        g.charge(5)
        g.reset()
        assert g.current == 0 and g.peak == 0

    def test_limit_tracks_capacity_mutation(self):
        """Regression: mutating capacity/slack must not leave a stale
        limit behind (the old cached ``_limit`` did)."""
        g = MemoryGauge(capacity=10, slack=1.0, strict=True)
        g.capacity = 100
        g.charge(50)                  # within the recomputed limit
        assert g.current == 50
        with pytest.raises(MemoryBudgetExceeded):
            g.charge(51)

    def test_limit_tracks_slack_mutation(self):
        g = MemoryGauge(capacity=10, slack=1.0, strict=True)
        g.slack = 3.0
        g.charge(25)
        assert g.limit == 30.0
        g.slack = 1.0
        with pytest.raises(MemoryBudgetExceeded):
            g.charge(1)
