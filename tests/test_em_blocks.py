"""Block-granular cursor APIs: same pages, same order, fewer calls.

The tentpole invariant: every block operation charges **exactly** the
page I/Os its tuple-at-a-time equivalent charges, in the same global
order.  With a buffer pool attached the order is observable (it drives
LRU state), so these tests compare full traced event streams, not just
totals.
"""

from __future__ import annotations

import pytest

from repro import Device, Instance
from repro.em import PoolConfig, external_sort
from repro.obs.tracer import Tracer
from repro.query import star_query
from repro.workloads import star_worstcase_instance


def fill(device, n, name="f"):
    f = device.new_file(name)
    with f.writer() as w:
        for i in range(n):
            w.append((i,))
    return f


def traced_device(M=16, B=4, *, block_mode=True, pool=False):
    tracer = Tracer(capacity=1_000_000)
    kwargs = {}
    if pool:
        kwargs["buffer_pool"] = PoolConfig(frames=max(2, M // B),
                                           policy="lru")
    dev = Device(M=M, B=B, tracer=tracer, block_mode=block_mode,
                 **kwargs)
    return dev, tracer


def io_events(tracer):
    return [(e.kind, e.file, e.page) for e in tracer.events()
            if e.kind in ("read", "write", "hit", "miss", "evict",
                          "writeback")]


class TestReadBlockEdges:
    def test_empty_file_reads_nothing_and_charges_nothing(self,
                                                          small_device):
        f = small_device.new_file("empty")
        f.writer().close()
        r = f.reader()
        assert r.read_block(8) == []
        assert r.read_page_block() == []
        assert r.peek_page_block() == []
        assert list(f.scan_blocks()) == []
        assert small_device.stats.reads == 0

    def test_single_partial_page(self, small_device):
        f = fill(small_device, 3)  # B=4: one partial page
        small_device.stats.reset()
        r = f.reader()
        assert r.read_block(100) == [(0,), (1,), (2,)]
        assert small_device.stats.reads == 1
        assert r.exhausted
        assert r.read_block(1) == []

    def test_zero_and_negative_n(self, small_device):
        f = fill(small_device, 4)
        small_device.stats.reset()
        r = f.reader()
        assert r.read_block(0) == []
        assert r.read_block(-1) == []
        assert small_device.stats.reads == 0

    def test_multi_page_block_charges_each_page_once(self, small_device):
        f = fill(small_device, 16)  # 4 pages
        small_device.stats.reset()
        block = f.reader().read_block(16)
        assert block == [(i,) for i in range(16)]
        assert small_device.stats.reads == 4

    def test_buffered_page_not_recharged(self, small_device):
        f = fill(small_device, 8)
        small_device.stats.reset()
        r = f.reader()
        r.next()  # charges page 0
        assert small_device.stats.reads == 1
        # Block continuing inside page 0 charges only page 1.
        assert r.read_block(7) == [(i,) for i in range(1, 8)]
        assert small_device.stats.reads == 2

    def test_block_spanning_segment_boundary_stops_at_stop(
            self, small_device):
        f = fill(small_device, 16)
        seg = f.segment(2, 6)  # straddles pages 0 and 1, stops mid-page
        small_device.stats.reset()
        r = seg.reader()
        block = r.read_block(100)
        assert block == [(2,), (3,), (4,), (5,)]
        assert small_device.stats.reads == 2  # pages 0 and 1
        assert r.exhausted

    def test_page_block_clipped_by_segment(self, small_device):
        f = fill(small_device, 16)
        seg = f.segment(5, 7)  # inside page 1 only
        r = seg.reader()
        small_device.stats.reset()
        assert r.peek_page_block() == [(5,), (6,)]
        assert small_device.stats.reads == 1
        assert r.position == 5  # peek does not consume
        assert r.read_page_block() == [(5,), (6,)]
        assert small_device.stats.reads == 1  # same buffered page
        assert r.exhausted

    def test_scan_blocks_yields_page_aligned_blocks(self, small_device):
        f = fill(small_device, 10)  # B=4: 4 + 4 + 2
        blocks = list(f.scan_blocks())
        assert [len(b) for b in blocks] == [4, 4, 2]
        assert [t for b in blocks for t in b] == [(i,) for i in range(10)]

    def test_skip_then_block_charges_landing_page_only(self,
                                                       small_device):
        f = fill(small_device, 16)
        small_device.stats.reset()
        r = f.reader()
        r.skip_to(9)  # seek is free
        assert small_device.stats.reads == 0
        assert r.read_page_block() == [(9,), (10,), (11,)]
        assert small_device.stats.reads == 1


class TestWriterBlockEdges:
    def test_append_block_counts_equal_append_loop(self):
        for n in (0, 1, 3, 4, 5, 8, 11, 16):
            d1, d2 = Device(M=16, B=4), Device(M=16, B=4)
            ts = [(i,) for i in range(n)]
            f1 = d1.new_file("a")
            with f1.writer() as w:
                for t in ts:
                    w.append(t)
            f2 = d2.new_file("a")
            with f2.writer() as w:
                w.append_block(ts)
            assert d1.stats.writes == d2.stats.writes, n
            assert f1.peek_tuples() == f2.peek_tuples()

    def test_extend_list_takes_block_path_same_counters(self):
        d1, d2 = Device(M=16, B=4), Device(M=16, B=4)
        ts = [(i,) for i in range(13)]
        f1 = d1.new_file("a")
        with f1.writer() as w:
            w.extend(iter(ts))  # generator: tuple-at-a-time path
        f2 = d2.new_file("a")
        with f2.writer() as w:
            w.extend(ts)  # list: block fast path
        assert d1.stats.writes == d2.stats.writes == 4
        assert f1.peek_tuples() == f2.peek_tuples()

    def test_append_block_tops_up_partial_buffer(self, small_device):
        f = small_device.new_file("a")
        w = f.writer()
        w.append((0,))
        small_device.stats.reset()
        w.append_block([(i,) for i in range(1, 9)])  # 9 total: 2 pages
        assert small_device.stats.writes == 2
        w.close()
        assert small_device.stats.writes == 3  # final partial page
        assert f.peek_tuples() == [(i,) for i in range(9)]

    def test_mixed_append_and_block_interleave(self, small_device):
        f = small_device.new_file("a")
        with f.writer() as w:
            w.append((0,))
            w.append_block([(1,), (2,)])
            w.append((3,))  # fills page 0
            w.append_block([(4,), (5,), (6,), (7,), (8,)])
        assert f.peek_tuples() == [(i,) for i in range(9)]
        assert small_device.stats.writes == 3


class TestColumnarStorage:
    def test_int_columns_pack(self, small_device):
        f = small_device.new_file("ints")
        with f.writer() as w:
            w.append_block([(1, 2), (3, 4)])
        assert f.column_kinds == ("i64", "i64")

    def test_object_columns_stay_lists(self, small_device):
        f = small_device.new_file("objs")
        with f.writer() as w:
            w.append_block([(1, "a"), (2, "b")])
        assert f.column_kinds == ("i64", "obj")

    def test_mixed_arity_falls_back_ragged(self, small_device):
        f = small_device.new_file("ragged")
        with f.writer() as w:
            w.append((1, 2))
            w.append((1, 2, 3))
        assert f.column_kinds == ("ragged",)
        assert f.peek_tuples() == [(1, 2), (1, 2, 3)]

    def test_huge_ints_do_not_pack(self, small_device):
        f = small_device.new_file("big")
        with f.writer() as w:
            w.append_block([(2 ** 80,), (1,)])
        assert f.column_kinds == ("obj",)
        assert f.peek_tuples() == [(2 ** 80,), (1,)]

    def test_bools_do_not_pack_as_ints(self, small_device):
        f = small_device.new_file("bools")
        with f.writer() as w:
            w.append_block([(True,), (False,)])
        assert f.peek_tuples() == [(True,), (False,)]
        assert f.peek_tuples()[0][0] is True


class TestBlockScalarEquivalence:
    """Full traced event streams must match between the two modes."""

    def _sort_events(self, block_mode, *, pool):
        dev, tracer = traced_device(M=4, B=2, block_mode=block_mode,
                                    pool=pool)
        f = dev.new_file("src")
        with f.writer() as w:
            for i in range(13):
                w.append((i * 7919 % 13, i))
        out = external_sort(f, lambda t: t[0], name="sorted")
        return io_events(tracer), out.peek_tuples()

    @pytest.mark.parametrize("pool", [False, True])
    def test_external_sort_event_stream_identical(self, pool):
        ev_scalar, out_scalar = self._sort_events(False, pool=pool)
        ev_block, out_block = self._sort_events(True, pool=pool)
        assert out_block == out_scalar
        assert ev_block == ev_scalar

    def _star_events(self, block_mode):
        from repro.core.planner import acyclic_join_best
        from repro.core.emit import CountingEmitter

        dev, tracer = traced_device(M=4, B=2, block_mode=block_mode,
                                    pool=True)
        schemas, data = star_worstcase_instance([16, 16])
        inst = Instance.from_dicts(dev, schemas, data)
        emitter = CountingEmitter()
        acyclic_join_best(star_query(2), inst, emitter, limit=16)
        return io_events(tracer), emitter.count

    def test_star_query_event_stream_identical(self):
        ev_scalar, n_scalar = self._star_events(False)
        ev_block, n_block = self._star_events(True)
        assert n_block == n_scalar
        assert ev_block == ev_scalar

    def test_sort_empty_source_synthesizes_counted_run(self):
        from repro.obs import MetricsRegistry
        dev = Device(M=4, B=2, metrics=MetricsRegistry())
        f = dev.new_file("empty")
        f.writer().close()
        out = external_sort(f, lambda t: t[0], name="sorted")
        assert len(out) == 0
        # Regression: the run counter used to read 0 here even though
        # one (empty) run was synthesized and returned.
        assert dev.metrics.counter("sort.runs").value == 1
