"""Tests for per-phase I/O attribution."""

from repro import Device, Instance
from repro.core import CountingEmitter, acyclic_join
from repro.core.triangle import triangle_join
from repro.em import PhaseTracker
from repro.query import line_query, triangle_query


class TestPhaseTracker:
    def test_exclusive_attribution_when_nested(self, small_device):
        tracker = small_device.phases
        with tracker.phase("outer"):
            small_device.file_from_tuples([(i,) for i in range(8)])  # 2 w
            with tracker.phase("inner"):
                small_device.file_from_tuples([(i,) for i in range(16)])
        assert tracker.totals["inner"] == 4
        assert tracker.totals["outer"] == 2

    def test_report_includes_remainder(self, small_device):
        with small_device.phases.phase("a"):
            small_device.file_from_tuples([(1,)])
        small_device.file_from_tuples([(2,)])
        rep = small_device.phases.report()
        assert rep["a"] == 1
        assert rep["(unattributed)"] == 1
        assert sum(rep.values()) == small_device.stats.total

    def test_repeated_phases_accumulate(self, small_device):
        for _ in range(3):
            with small_device.phases.phase("w"):
                small_device.file_from_tuples([(1,)])
        assert small_device.phases.totals["w"] == 3

    def test_reset(self, small_device):
        with small_device.phases.phase("x"):
            small_device.file_from_tuples([(1,)])
        small_device.reset_stats()
        assert small_device.phases.totals == {}
        assert small_device.stats.total == 0


class TestFreeMaterializationAttribution:
    """Regression: ``file_from_tuples_free`` must suspend counting.

    The old implementation rewound ``stats.reads/writes`` after the
    writes happened; any I/O an inner phase attributed in between was
    erased from the device total but not from the phase, driving the
    enclosing phase's exclusive total negative.
    """

    def test_free_materialization_inside_phase_is_invisible(self,
                                                            small_device):
        with small_device.phases.phase("setup"):
            small_device.file_from_tuples_free([(i,) for i in range(20)])
        assert small_device.phases.totals["setup"] == 0
        assert small_device.stats.total == 0

    def test_charged_work_inside_free_generator_stays_consistent(self):
        device = Device(M=8, B=2)

        def gen():
            # Charged I/O attributed to an inner phase *during* the
            # free materialization — the case the rewind corrupted.
            with device.phases.phase("inner"):
                device.file_from_tuples([(i,) for i in range(8)])
            yield (0,)

        with device.phases.phase("outer"):
            device.file_from_tuples_free(gen())
        report = device.phases.report()
        assert all(v >= 0 for v in report.values()), report
        assert sum(report.values()) == device.stats.total
        # Suspension makes the whole materialization free, including
        # work its input generator performs.
        assert device.stats.total == 0

    def test_free_materialization_bypasses_the_pool(self):
        from repro.em import PoolConfig

        device = Device(M=8, B=2,
                        buffer_pool=PoolConfig(frames=4))
        device.file_from_tuples_free([(i,) for i in range(8)])
        device.flush_pool()
        assert device.stats.total == 0
        assert device.pool.resident_pages == 0


class TestInstrumentation:
    def test_acyclic_join_attributes_sorts_and_semijoins(self):
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(
            device,
            {"e1": ("v1", "v2"), "e2": ("v2", "v3"), "e3": ("v3", "v4")},
            {"e1": [(i, i % 3) for i in range(20)],
             "e2": [(i % 3, i % 4) for i in range(10)],
             "e3": [(i % 4, i) for i in range(20)]})
        acyclic_join(line_query(3), inst, CountingEmitter())
        rep = device.phases.report()
        assert rep.get("sort", 0) > 0
        assert sum(rep.values()) == device.stats.total

    def test_triangle_attributes_partitioning(self):
        rows = [(i, j) for i in range(6) for j in range(6)]
        device = Device(M=16, B=4)
        inst = Instance.from_dicts(
            device,
            {"e1": ("v1", "v2"), "e2": ("v1", "v3"), "e3": ("v2", "v3")},
            {"e1": rows, "e2": rows, "e3": rows})
        triangle_join(triangle_query(), inst, CountingEmitter())
        rep = device.phases.report()
        assert rep.get("partition", 0) > 0
