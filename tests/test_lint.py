"""Tests for emlint: rules, pragmas, baseline, reporters, CLI."""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.lint import (Baseline, BaselineEntry, LOCKS_SCHEMA_VERSION,
                        RULES, check_source, compact_lock_signatures,
                        compare_lock_signatures, lint_paths,
                        load_baseline, to_json, write_baseline)
from repro.lint.report import REPORT_SCHEMA_VERSION

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
FIXTURE_SRC = FIXTURES / "src"

#: code → the fixture file(s) that trigger it exactly once when
#: linted together.  The interprocedural rules (EM007/EM010/EM011)
#: need two files: the laundering helper plus the flagged caller.
BAD_FIXTURES = {
    "EM000": (FIXTURE_SRC / "repro/core/bad_em000.py",),
    "EM001": (FIXTURE_SRC / "repro/query/bad_em001.py",),
    "EM002": (FIXTURE_SRC / "repro/core/bad_em002.py",),
    "EM003": (FIXTURE_SRC / "repro/em/bad_em003.py",),
    "EM004": (FIXTURE_SRC / "repro/core/bad_em004.py",),
    "EM005": (FIXTURE_SRC / "repro/obs/bad_em005.py",),
    "EM006": (FIXTURE_SRC / "repro/core/bad_em006.py",),
    "EM007": (FIXTURE_SRC / "repro/core/bad_em007.py",
              FIXTURE_SRC / "repro/em/io_helpers.py"),
    "EM008": (FIXTURE_SRC / "repro/core/bad_em008.py",),
    "EM009": (FIXTURE_SRC / "repro/obs/bad_em009.py",),
    "EM010": (FIXTURE_SRC / "repro/core/bad_em010.py",
              FIXTURE_SRC / "repro/obs/clock_helper.py"),
    "EM011": (FIXTURE_SRC / "repro/core/bad_em011.py",
              FIXTURE_SRC / "repro/obs/host_dump.py"),
    "EM012": (FIXTURE_SRC / "repro/server/bad_em012.py",),
    "EM013": (FIXTURE_SRC / "repro/server/bad_em013.py",),
    "EM014": (FIXTURE_SRC / "repro/server/bad_em014.py",),
    "EM015": (FIXTURE_SRC / "repro/server/bad_em015.py",),
    "EM016": (FIXTURE_SRC / "repro/server/bad_em016.py",),
    "EM017": (FIXTURE_SRC / "repro/core/bad_em017.py",
              FIXTURE_SRC / "repro/em/cost_helpers.py"),
    "EM018": (FIXTURE_SRC / "repro/core/bad_em018.py",
              FIXTURE_SRC / "repro/em/cost_helpers.py"),
    "EM019": (FIXTURE_SRC / "repro/core/bad_em019.py",
              FIXTURE_SRC / "repro/em/cost_helpers.py"),
    "EM020": (FIXTURE_SRC / "repro/core/bad_em020.py",),
    "EM021": (FIXTURE_SRC / "repro/core/bad_em021.py",),
}


# ---------------------------------------------------------------- rules


class TestRuleFixtures:
    @pytest.mark.parametrize("code", sorted(BAD_FIXTURES))
    def test_each_bad_fixture_triggers_its_rule_exactly_once(self, code):
        result = lint_paths(list(BAD_FIXTURES[code]), root=FIXTURES)
        codes = [v.code for v in result.violations]
        assert codes == [code]

    def test_registry_covers_every_fixture_and_vice_versa(self):
        assert set(BAD_FIXTURES) == set(RULES)

    def test_clean_fixture_has_no_findings(self):
        result = lint_paths([FIXTURE_SRC / "repro/core/clean_ok.py"],
                            root=FIXTURES)
        assert result.clean
        assert not result.suppressed_by_pragma

    def test_violation_carries_scope_and_renders(self):
        result = lint_paths(BAD_FIXTURES["EM002"], root=FIXTURES)
        (v,) = result.violations
        assert v.scope == "slurp"
        assert "EM002" in v.render()
        assert v.path.endswith("bad_em002.py")


class TestRuleSemantics:
    """check_source unit tests for the subtle accept/reject edges."""

    def test_em002_inside_hold_is_compliant(self):
        src = ("def f(rel, device):\n"
               "    with device.memory.hold(len(rel)):\n"
               "        return list(rel.data.scan())\n")
        assert check_source(src, "src/repro/core/x.py") == []

    def test_em002_comprehension_over_scan_flagged(self):
        src = "def f(rel):\n    return [t for t in rel.data.scan()]\n"
        (v,) = check_source(src, "src/repro/core/x.py")
        assert v.code == "EM002"

    def test_em002_only_polices_core(self):
        src = "def f(rel):\n    return list(rel.data.scan())\n"
        assert check_source(src, "src/repro/workloads/x.py") == []

    def test_em001_exempts_em_layer_and_data_io(self):
        src = "fh = open('x')\n"
        assert check_source(src, "src/repro/em/x.py") == []
        assert check_source(src, "src/repro/data/io.py") == []
        assert check_source(src, "src/repro/core/x.py") != []

    def test_em001_pathlib_methods_and_import(self):
        src = "import pathlib\np = pathlib.Path('x')\nq = p.read_text()\n"
        codes = [v.code for v in check_source(src, "src/repro/core/x.py")]
        assert codes == ["EM001", "EM001"]

    def test_em003_relative_import_resolved(self):
        src = "from ..core import execute\n"
        (v,) = check_source(src, "src/repro/em/bad.py")
        assert v.code == "EM003"

    def test_em003_analysis_may_import_core(self):
        src = "from repro.core import execute\n"
        assert check_source(src, "src/repro/analysis/x.py") == []

    def test_em004_only_counted_layers(self):
        src = "import time\n"
        assert check_source(src, "src/repro/obs/x.py") == []
        assert [v.code for v in check_source(src, "src/repro/em/x.py")] \
            == ["EM004"]

    def test_em005_with_statement_is_compliant(self):
        src = ("def f(stats):\n"
               "    with stats.suspend():\n"
               "        pass\n")
        assert check_source(src, "src/repro/obs/x.py") == []

    def test_em005_assigned_call_is_compliant(self):
        # Returning/assigning the context manager is legitimate
        # (Device.span forwards profiler.span); only a *discarded*
        # bare call leaks state.
        src = "def f(d):\n    return d.span('x')\n"
        assert check_source(src, "src/repro/em/device.py") == []

    def test_em006_declared_and_used_is_compliant(self):
        src = ("PHASES = ('sort',)\n"
               "def f(d):\n"
               "    with d.phases.phase('sort'):\n"
               "        pass\n")
        assert check_source(src, "src/repro/core/x.py") == []

    def test_em006_stale_declaration_flagged(self):
        src = "PHASES = ('sort', 'merge')\n" \
              "def f(d):\n" \
              "    with d.phases.phase('sort'):\n" \
              "        pass\n"
        (v,) = check_source(src, "src/repro/core/x.py")
        assert v.code == "EM006"
        assert "merge" in v.message

    def test_em006_non_literal_phases_flagged(self):
        src = "PHASES = make_phases()\n"
        (v,) = check_source(src, "src/repro/core/x.py")
        assert v.code == "EM006"


# --------------------------------------------------------------- emrace


class TestEmrace:
    """The lock-discipline pass: acceptance edges and the drift gate
    (the per-rule rejection fixtures run with the others above)."""

    def test_holds_contract_accepted(self):
        result = lint_paths([FIXTURE_SRC / "repro/server/holds_ok.py"],
                            root=FIXTURES)
        assert result.clean

    def test_locks_document_schema_and_cycle(self):
        result = lint_paths([FIXTURE_SRC / "repro/server/bad_em014.py"],
                            root=FIXTURES)
        doc = result.locks
        assert set(doc) == {"schema_version", "roots", "locks",
                            "fields", "order", "functions", "summary"}
        assert doc["schema_version"] == LOCKS_SCHEMA_VERSION
        assert len(doc["order"]["cycles"]) == 1
        assert len(doc["locks"]) == 2

    def test_compact_signature_key_set(self):
        result = lint_paths([FIXTURE_SRC / "repro/server/holds_ok.py"],
                            root=FIXTURES)
        sig = compact_lock_signatures(result.locks)
        assert set(sig) == {"schema_version", "roots", "locks",
                            "fields", "edges"}
        (lid,) = sig["locks"]
        assert sig["locks"][lid]["kind"] == "lock"
        assert sig["fields"] == {
            "repro.server.holds_ok.Store.items":
                "repro.server.holds_ok.Store._lock"}

    def test_compare_same_tree_is_quiet(self):
        result = lint_paths([FIXTURE_SRC / "repro/server/holds_ok.py"],
                            root=FIXTURES)
        sig = compact_lock_signatures(result.locks)
        failures, notices = compare_lock_signatures(sig, result.locks)
        assert failures == [] and notices == []

    def test_compare_flags_cycle_and_new_edge_as_failures(self):
        result = lint_paths([FIXTURE_SRC / "repro/server/bad_em014.py"],
                            root=FIXTURES)
        committed = compact_lock_signatures(result.locks)
        committed["edges"] = []  # the committed world had no edges
        failures, _ = compare_lock_signatures(committed, result.locks)
        assert any("cycle" in f for f in failures)
        assert any("edge" in f for f in failures)

    def test_compare_kind_change_fails_addition_notices(self):
        result = lint_paths([FIXTURE_SRC / "repro/server/holds_ok.py"],
                            root=FIXTURES)
        committed = compact_lock_signatures(result.locks)
        (lid,) = committed["locks"]
        committed["locks"][lid]["coarse"] = True
        committed["fields"].pop("repro.server.holds_ok.Store.items")
        failures, notices = compare_lock_signatures(committed,
                                                    result.locks)
        assert any("kind/coarse" in f for f in failures)
        assert any("declared guarded by" in n for n in notices)


# -------------------------------------------------------------- pragmas


class TestPragmas:
    def test_same_line_pragma_suppresses(self):
        result = lint_paths([FIXTURE_SRC / "repro/core/pragma_ok.py"],
                            root=FIXTURES)
        assert result.clean
        assert [v.code for v in result.suppressed_by_pragma] == ["EM002"]

    def test_pragma_is_code_specific(self, tmp_path):
        f = tmp_path / "src" / "repro" / "core" / "x.py"
        f.parent.mkdir(parents=True)
        f.write_text("import time  # emlint: disable=EM001\n")
        result = lint_paths([f], root=tmp_path)
        assert [v.code for v in result.violations] == ["EM004"]

    def test_disable_all(self, tmp_path):
        f = tmp_path / "src" / "repro" / "core" / "x.py"
        f.parent.mkdir(parents=True)
        f.write_text("import time  # emlint: disable=all\n")
        result = lint_paths([f], root=tmp_path)
        assert result.clean
        assert len(result.suppressed_by_pragma) == 1


# ------------------------------------------------------------- baseline


class TestBaseline:
    def test_round_trip_write_then_clean(self, tmp_path):
        found = lint_paths([*BAD_FIXTURES["EM002"],
                            *BAD_FIXTURES["EM004"]], root=FIXTURES)
        assert len(found.violations) == 2
        b = Baseline.from_violations(found.violations)
        path = tmp_path / "baseline.json"
        write_baseline(b, path)
        again = lint_paths([*BAD_FIXTURES["EM002"],
                            *BAD_FIXTURES["EM004"]], root=FIXTURES,
                           baseline=load_baseline(path))
        assert again.clean
        assert len(again.suppressed_by_baseline) == 2
        assert again.stale_baseline == []

    def test_extra_finding_in_baselined_scope_resurfaces(self):
        found = lint_paths(BAD_FIXTURES["EM002"], root=FIXTURES)
        (v,) = found.violations
        b = Baseline(entries=[BaselineEntry(
            path=v.path, code=v.code, scope=v.scope, count=1,
            justification="test")])
        kept, suppressed, stale = b.apply([v, v])
        assert len(kept) == 1 and len(suppressed) == 1 and not stale

    def test_stale_entry_reported(self):
        b = Baseline(entries=[BaselineEntry(
            path="src/repro/core/gone.py", code="EM002",
            scope="f", count=1, justification="obsolete")])
        kept, suppressed, stale = b.apply([])
        assert kept == [] and suppressed == []
        assert stale[0]["path"] == "src/repro/core/gone.py"
        assert stale[0]["unused"] == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").entries == []

    def test_version_mismatch_rejected(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError):
            load_baseline(p)


# ------------------------------------------------------------ reporters


class TestReporters:
    def test_json_schema_key_set_is_stable(self):
        result = lint_paths(BAD_FIXTURES["EM002"], root=FIXTURES)
        doc = json.loads(to_json(result, baseline_path="b.json"))
        assert set(doc) == {"schema_version", "files_checked", "clean",
                            "violations", "suppressed", "stale_baseline",
                            "baseline_path", "rules"}
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        assert set(doc["suppressed"]) == {"pragma", "baseline"}
        (v,) = doc["violations"]
        assert set(v) == {"code", "path", "line", "col", "scope",
                          "message", "rule"}
        assert set(doc["rules"]) == set(RULES)

    def test_json_reports_clean_flag(self):
        result = lint_paths([FIXTURE_SRC / "repro/core/clean_ok.py"],
                            root=FIXTURES)
        doc = json.loads(to_json(result))
        assert doc["clean"] is True and doc["violations"] == []


# ------------------------------------------------------------------ CLI


class TestCli:
    def test_exit_1_on_known_bad_fixtures(self, capsys):
        rc = main(["lint", str(FIXTURE_SRC), "--root", str(FIXTURES),
                   "--no-baseline"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "EM003" in out and "violation" in out

    def test_write_baseline_then_clean_run(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        rc = main(["lint", str(FIXTURE_SRC), "--root", str(FIXTURES),
                   "--baseline", str(baseline), "--write-baseline"])
        assert rc == 0
        rc = main(["lint", str(FIXTURE_SRC), "--root", str(FIXTURES),
                   "--baseline", str(baseline)])
        assert rc == 0
        doc = json.loads(baseline.read_text())
        assert doc["version"] == 1 and len(doc["entries"]) >= 7

    def test_stale_baseline_fails_run(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        b = Baseline(entries=[BaselineEntry(
            path="src/repro/core/gone.py", code="EM002",
            scope="f", count=1, justification="obsolete")])
        write_baseline(b, baseline)
        rc = main(["lint",
                   str(FIXTURE_SRC / "repro/core/clean_ok.py"),
                   "--root", str(FIXTURES),
                   "--baseline", str(baseline)])
        assert rc == 1
        assert "stale" in capsys.readouterr().out

    def test_json_format(self, capsys):
        rc = main(["lint", str(FIXTURE_SRC / "repro/core/bad_em002.py"),
                   "--root", str(FIXTURES), "--no-baseline",
                   "--format", "json"])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is False

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out


# ----------------------------------------------------- hypothesis fuzz

_IDENT = st.from_regex(r"[a-z_][a-z0-9_]{0,8}", fullmatch=True)
_PHRASE = st.sampled_from([
    "import {m}\n",
    "from {m} import {n}\n",
    "from repro.core import {n}\n",
    "def {n}(x):\n    return {m}.{n}(x)\n",
    "{n} = open('{m}')\n",
    "{n} = list({m}.data.scan())\n",
    "with {m}.memory.hold(3):\n    {n} = list({m}.data.scan())\n",
    "{m}.suspend()\n",
    "with {m}.suspend():\n    pass\n",
    "PHASES = ('{n}',)\n",
    "with {m}.phases.phase('{n}'):\n    pass\n",
    "class {n}:\n    def {m}(self):\n        return 0\n",
])
_PATHS = st.sampled_from([
    "src/repro/core/fuzz.py", "src/repro/em/fuzz.py",
    "src/repro/obs/fuzz.py", "src/repro/query/fuzz.py",
    "elsewhere/fuzz.py",
])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(_PHRASE, _IDENT, _IDENT), max_size=6),
       _PATHS)
def test_check_source_never_crashes(chunks, path):
    """Any syntactically valid module yields violations, never raises."""
    src = "".join(t.format(m=m, n=n) for t, m, n in chunks)
    try:
        compile(src, "<fuzz>", "exec")
    except SyntaxError:
        pass  # check_source must map this to EM000, not raise
    violations = check_source(src, path)
    for v in violations:
        assert v.code in RULES
        assert isinstance(v.render(), str)
