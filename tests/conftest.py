"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import Device, Instance
from repro.core import AssignmentEmitter
from repro.internal import join_query
from repro.workloads import schemas_for


def make_random_data(query, sizes, domain, seed=0):
    """Deterministic random (schemas, data) for a query."""
    rng = random.Random(seed)
    schemas = schemas_for(query)
    data = {}
    for e, attrs in schemas.items():
        want = sizes if isinstance(sizes, int) else sizes[e]
        rows = set()
        guard = 0
        while len(rows) < want and guard < want * 100:
            rows.add(tuple(rng.randrange(domain) for _ in attrs))
            guard += 1
        data[e] = sorted(rows)
    return schemas, data


def run_and_compare(query, schemas, data, runner, *, M=16, B=4,
                    mem_slack=None):
    """Run an EM algorithm and assert exact agreement with the oracle.

    ``runner(query, instance, emitter)`` executes the algorithm; the
    emitted assignments must equal the in-memory hash-join oracle both
    as a set and in count (no duplicate emissions).  Returns the device
    for I/O inspection.
    """
    kwargs = {} if mem_slack is None else {"mem_slack": mem_slack}
    device = Device(M=M, B=B, **kwargs)
    instance = Instance.from_dicts(device, schemas, data)
    emitter = AssignmentEmitter(schemas)
    runner(query, instance, emitter)
    oracle = join_query(query, data, schemas)
    assert emitter.count == len(oracle), (
        f"emitted {emitter.count} results, oracle has {len(oracle)}")
    assert emitter.assignment_set() == oracle
    return device


@pytest.fixture
def small_device():
    """A small EM machine: M=16 tuples, B=4 tuples/page."""
    return Device(M=16, B=4)
