"""Tests for the Section 3 two-relation joins."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Device, Instance
from repro.analysis import two_relation_bound
from repro.core import nested_loop_join, sort_merge_join
from repro.query import line_query
from repro.workloads import cross_pairs, schemas_for

from conftest import make_random_data, run_and_compare


def two_way_runner(fn):
    def run(query, instance, emitter):
        e1, e2 = query.edge_names
        fn(instance[e1], instance[e2], emitter)
    return run


class TestNestedLoopJoin:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6))
    def test_correct_on_random(self, seed):
        q = line_query(2)
        schemas, data = make_random_data(q, 30, 6, seed)
        run_and_compare(q, schemas, data, two_way_runner(nested_loop_join))

    def test_cross_product_worst_case_io(self):
        # On the cross product |Q| = N1 N2; NLJ must stay within a
        # small constant of N1*N2/(MB) + linear.
        q = line_query(2)
        schemas = schemas_for(q)
        n = 96
        data = {"e1": [(i, 0) for i in range(n)],
                "e2": [(0, j) for j in range(n)]}
        device = run_and_compare(q, schemas, data,
                                 two_way_runner(nested_loop_join),
                                 M=16, B=4)
        bound = two_relation_bound(n, n, 16, 4)
        assert device.stats.total <= 3 * bound

    def test_outer_is_smaller_relation(self):
        # With N1 >> N2 the small side must be chunked, not rescanned.
        q = line_query(2)
        schemas = schemas_for(q)
        data = {"e1": [(i, i % 3) for i in range(200)],
                "e2": [(j, j) for j in range(8)]}
        device = run_and_compare(q, schemas, data,
                                 two_way_runner(nested_loop_join),
                                 M=16, B=4)
        # one outer chunk -> roughly one scan of each side
        assert device.stats.total <= 2 * (200 + 8) / 4 + 10

    def test_disjoint_schemas_cross_product(self, small_device):
        from repro.core import CountingEmitter
        from repro.query import JoinQuery
        q = JoinQuery(edges={"e1": frozenset({"a"}),
                             "e2": frozenset({"b"})})
        inst = Instance.from_dicts(small_device,
                                   {"e1": ("a",), "e2": ("b",)},
                                   {"e1": [(i,) for i in range(10)],
                                    "e2": [(j,) for j in range(10)]})
        em = CountingEmitter()
        nested_loop_join(inst["e1"], inst["e2"], em)
        assert em.count == 100


class TestSortMergeJoin:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6))
    def test_correct_on_random(self, seed):
        q = line_query(2)
        schemas, data = make_random_data(q, 30, 6, seed)
        run_and_compare(q, schemas, data, two_way_runner(sort_merge_join))

    def test_correct_with_heavy_heavy_value(self):
        # One value heavy on both sides (the NLJ fallback), others light.
        q = line_query(2)
        schemas = schemas_for(q)
        data = {"e1": [(i, 0) for i in range(40)]
                + [(100 + i, i % 3 + 1) for i in range(9)],
                "e2": [(0, j) for j in range(40)]
                + [(i % 3 + 1, 200 + i) for i in range(9)]}
        run_and_compare(q, schemas, data, two_way_runner(sort_merge_join),
                        M=8, B=2)

    def test_instance_optimal_on_sparse_matching(self):
        # A one-to-one matching has |Q| = N: the hybrid must cost about
        # sort(N), far below NLJ's N²/(MB).  N must be large relative
        # to M for the quadratic term to dominate the sort passes.
        q = line_query(2)
        schemas = schemas_for(q)
        n = 512
        data = {"e1": [(i, i) for i in range(n)],
                "e2": [(i, i) for i in range(n)]}
        dev_smj = run_and_compare(q, schemas, data,
                                  two_way_runner(sort_merge_join),
                                  M=8, B=4)
        dev_nlj = run_and_compare(q, schemas, data,
                                  two_way_runner(nested_loop_join),
                                  M=8, B=4)
        assert dev_smj.stats.total < dev_nlj.stats.total

    def test_no_common_heavy_values_costs_scans_only(self):
        # The observation Algorithm 1 relies on: without common heavy
        # values the hybrid costs Õ(N1/B + N2/B).
        q = line_query(2)
        schemas = schemas_for(q)
        n = 120
        # e1's heavy value 0 is absent from e2; matches are all light.
        data = {"e1": [(i, 0) for i in range(n)] + [(i, 1 + i % 4)
                                                    for i in range(12)],
                "e2": [(1 + j % 4, j) for j in range(12)]}
        device = run_and_compare(q, schemas, data,
                                 two_way_runner(sort_merge_join),
                                 M=16, B=4)
        linear = (n + 12 + 12) / 4
        assert device.stats.total <= 8 * linear  # sort passes + merge
