"""Tests for the query text syntax."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import line_query, star_query
from repro.query.parse import (QueryParseError, format_query,
                               parse_query, parse_schemas)


class TestParseQuery:
    def test_basic_line(self):
        q = parse_query("e1(v1, v2), e2(v2, v3), e3(v3, v4)")
        assert q.structure_key() == line_query(3).structure_key()
        assert q.sizes is None

    def test_bowtie_separator(self):
        q = parse_query("R(a,b) ⋈ S(b,c) ⋈ T(c,d)")
        assert set(q.edges) == {"R", "S", "T"}
        assert q.edges["S"] == frozenset({"b", "c"})

    def test_ascii_separator(self):
        q = parse_query("R(a,b) |x| S(b,c)")
        assert set(q.edges) == {"R", "S"}

    def test_sizes(self):
        q = parse_query("e1(v1,v2)[100], e2(v2,v3)[50]")
        assert q.size("e1") == 100 and q.size("e2") == 50

    def test_partial_sizes_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("e1(a,b)[10], e2(b,c)")

    @pytest.mark.parametrize("bad", [
        "", "   ", "e1", "e1()", "e1(a,a)", "e1(a,b) e2(b,c)",
        "e1(a,b),", "e1(a,b), e1(b,c)", "e1(a, 2b)", "e1(a,b)[x]",
    ])
    def test_bad_syntax_rejected(self, bad):
        with pytest.raises(QueryParseError):
            parse_query(bad)

    def test_single_relation(self):
        q = parse_query("solo(x, y, z)")
        assert q.edges["solo"] == frozenset({"x", "y", "z"})


class TestParseSchemas:
    def test_preserves_written_order(self):
        layouts = parse_schemas("e1(v2, v1), e2(v2, v3)")
        assert layouts["e1"] == ("v2", "v1")

    def test_matches_query_atoms(self):
        text = "fact(c,p,s), cust(c,n)"
        q = parse_query(text)
        layouts = parse_schemas(text)
        assert set(layouts) == set(q.edges)
        for e, attrs in layouts.items():
            assert frozenset(attrs) == q.edges[e]


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 7), st.booleans())
    def test_lines_round_trip(self, n, with_sizes):
        q = line_query(n, list(range(10, 10 + n)) if with_sizes else None)
        back = parse_query(format_query(q))
        assert back.structure_key() == q.structure_key()
        if with_sizes:
            assert dict(back.sizes) == dict(q.sizes)

    def test_star_round_trip(self):
        q = star_query(4)
        assert (parse_query(format_query(q)).structure_key()
                == q.structure_key())

    def test_end_to_end_with_planner(self):
        from repro import Device, Instance
        from repro.core import CountingEmitter, execute

        text = "e1(v1, v2), e2(v2, v3)"
        q = parse_query(text)
        layouts = parse_schemas(text)
        device = Device(M=8, B=2)
        inst = Instance.from_dicts(device, layouts, {
            "e1": [(i, i % 3) for i in range(9)],
            "e2": [(i % 3, i) for i in range(9)],
        })
        em = CountingEmitter()
        execute(q, inst, em)
        assert em.count == 27
