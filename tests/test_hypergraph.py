"""Unit tests for query hypergraphs and Berge-acyclicity (Section 1.3)."""

import pytest

from repro.query import (CyclicQueryError, JoinQuery, dumbbell_query,
                         is_berge_acyclic, line_query, lollipop_query,
                         require_berge_acyclic, star_query, triangle_query)


class TestBuilders:
    def test_line_query_structure(self):
        q = line_query(4)
        assert q.edges["e2"] == frozenset({"v2", "v3"})
        assert len(q) == 4
        assert q.attributes == frozenset(f"v{i}" for i in range(1, 6))

    def test_line_query_sizes(self):
        q = line_query(3, [10, 20, 30])
        assert q.size("e2") == 20

    def test_star_query_structure(self):
        q = star_query(3)
        assert q.edges["e0"] == frozenset({"v1", "v2", "v3"})
        assert q.edges["e2"] == frozenset({"v2", "u2"})

    def test_star_sizes_core_first(self):
        q = star_query(2, [5, 10, 20])
        assert q.size("e0") == 5 and q.size("e2") == 20

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            line_query(0)
        with pytest.raises(ValueError):
            star_query(0)
        with pytest.raises(ValueError):
            line_query(3, [1, 2])
        with pytest.raises(ValueError):
            lollipop_query(1)
        with pytest.raises(ValueError):
            dumbbell_query(2, 3)

    def test_sizes_for_unknown_edge_rejected(self):
        with pytest.raises(ValueError):
            JoinQuery(edges={"e1": frozenset({"a"})}, sizes={"e9": 3})


class TestAcyclicity:
    @pytest.mark.parametrize("q", [
        line_query(2), line_query(5), line_query(9), star_query(1),
        star_query(6), lollipop_query(2), lollipop_query(4),
        dumbbell_query(2, 4), dumbbell_query(3, 7),
    ])
    def test_paper_families_are_acyclic(self, q):
        assert is_berge_acyclic(q)

    def test_triangle_is_cyclic(self):
        assert not is_berge_acyclic(triangle_query())

    def test_two_shared_attributes_is_cyclic(self):
        q = JoinQuery(edges={"e1": frozenset({"a", "b"}),
                             "e2": frozenset({"a", "b"})})
        assert not is_berge_acyclic(q)

    def test_alpha_acyclic_but_berge_cyclic(self):
        # {abc, ab} is α-acyclic yet shares two attributes: Berge-cyclic.
        q = JoinQuery(edges={"e1": frozenset({"a", "b", "c"}),
                             "e2": frozenset({"a", "b"})})
        assert not is_berge_acyclic(q)

    def test_require_raises_with_guidance(self):
        with pytest.raises(CyclicQueryError):
            require_berge_acyclic(triangle_query())

    def test_disconnected_forest_is_acyclic(self):
        q = JoinQuery(edges={"e1": frozenset({"a", "b"}),
                             "e2": frozenset({"c", "d"})})
        assert is_berge_acyclic(q)


class TestStructureOps:
    def test_drop_edges_removes_sizes_too(self):
        q = line_query(3, [1, 2, 3])
        q2 = q.drop_edges(["e2"])
        assert set(q2.edges) == {"e1", "e3"}
        assert set(q2.sizes) == {"e1", "e3"}

    def test_drop_attributes(self):
        q = line_query(3)
        q2 = q.drop_attributes(["v2"])
        assert q2.edges["e1"] == frozenset({"v1"})
        assert q2.edges["e2"] == frozenset({"v3"})

    def test_structure_key_ignores_sizes(self):
        assert (line_query(3, [1, 2, 3]).structure_key()
                == line_query(3, [9, 9, 9]).structure_key())

    def test_occurrences(self):
        occ = line_query(3).occurrences()
        assert occ["v2"] == ["e1", "e2"]
        assert occ["v1"] == ["e1"]

    def test_connected_components_full_and_subset(self):
        q = line_query(4)
        assert len(q.connected_components()) == 1
        comps = q.connected_components(["e1", "e3", "e4"])
        assert frozenset({"e1"}) in comps
        assert frozenset({"e3", "e4"}) in comps

    def test_is_connected_after_attr_removal(self):
        q = line_query(3).drop_attributes(["v2"])
        assert not q.is_connected()

    def test_size_requires_sizes(self):
        with pytest.raises(ValueError):
            line_query(3).size("e1")

    def test_with_sizes(self):
        q = line_query(2).with_sizes({"e1": 4, "e2": 5})
        assert q.size("e1") == 4
