"""Stateful model-based testing of the EM file layer.

A hypothesis ``RuleBasedStateMachine`` drives a :class:`Device` through
arbitrary interleavings of file creation, appends, seals, sequential
reads and segment reads, checking against a plain-Python model:

* contents always match the model exactly;
* the I/O counter is monotone and consistent with page math
  (a sealed file of ``n`` tuples cost exactly ``ceil(n/B)`` writes);
* readers never return data from the wrong position.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, invariant,
                                 rule)

from repro.em import Device


class EMFileMachine(RuleBasedStateMachine):
    files = Bundle("files")

    def __init__(self):
        super().__init__()
        self.device = Device(M=8, B=4)
        self.model: dict[str, list[tuple]] = {}
        self.writers: dict[str, object] = {}
        self.sealed: set[str] = set()
        self.expected_writes = 0
        self.counter = 0

    @rule(target=files)
    def create_file(self):
        name = f"f{self.counter}"
        self.counter += 1
        f = self.device.new_file(name)
        self.model[name] = []
        self.writers[name] = f.writer()
        self._files = getattr(self, "_files", {})
        self._files[name] = f
        return name

    @rule(name=files, values=st.lists(st.integers(0, 50), min_size=0,
                                      max_size=10))
    def append(self, name, values):
        if name in self.sealed:
            return
        w = self.writers[name]
        for v in values:
            w.append((v,))
            self.model[name].append((v,))

    @rule(name=files)
    def seal(self, name):
        if name in self.sealed:
            return
        self.writers[name].close()
        self.sealed.add(name)
        n = len(self.model[name])
        self.expected_writes += -(-n // self.device.B) if n else 0

    @rule(name=files)
    def full_scan_matches_model(self, name):
        if name not in self.sealed:
            return
        f = self._files[name]
        before = self.device.stats.reads
        got = list(f.scan())
        assert got == self.model[name]
        n = len(self.model[name])
        assert self.device.stats.reads - before == -(-n // self.device.B)

    @rule(name=files, data=st.data())
    def segment_scan_matches_model(self, name, data):
        if name not in self.sealed:
            return
        f = self._files[name]
        n = len(self.model[name])
        start = data.draw(st.integers(0, n))
        stop = data.draw(st.integers(start, n))
        got = list(f.segment(start, stop).scan())
        assert got == self.model[name][start:stop]

    @rule(name=files, k=st.integers(1, 6))
    def chunked_read_matches_model(self, name, k):
        if name not in self.sealed:
            return
        f = self._files[name]
        reader = f.reader()
        out = []
        while not reader.exhausted:
            out.extend(reader.read_up_to(k))
        assert out == self.model[name]

    @invariant()
    def write_count_is_exact_for_sealed_files(self):
        # All sealed-file writes are accounted; in-flight buffers may
        # have flushed full pages already, so >= expected.
        assert self.device.stats.writes >= self.expected_writes

    @invariant()
    def io_counters_non_negative(self):
        assert self.device.stats.reads >= 0
        assert self.device.stats.writes >= 0


TestEMFileMachine = EMFileMachine.TestCase
TestEMFileMachine.settings = settings(max_examples=40,
                                      stateful_step_count=30,
                                      deadline=None)
