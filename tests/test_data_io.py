"""Tests for CSV loading and result export."""

import pytest

from repro import Device
from repro.core import CollectingEmitter, execute
from repro.data.io import dump_results_csv, instance_from_csv, load_csv
from repro.query.parse import parse_query


def write(tmp_path, name, text):
    p = tmp_path / name
    p.write_text(text)
    return p


class TestLoadCsv:
    def test_header_and_int_inference(self, tmp_path, small_device):
        p = write(tmp_path, "r.csv", "a,b\n1,2\n3,4\n")
        rel = load_csv(small_device, p, "e1")
        assert rel.schema.attributes == ("a", "b")
        assert sorted(rel.peek_tuples()) == [(1, 2), (3, 4)]

    def test_float_and_string_columns(self, tmp_path, small_device):
        p = write(tmp_path, "r.csv", "a,b,c\n1.5,xx,7\n2.0,yy,8\n")
        rel = load_csv(small_device, p, "e1")
        assert rel.peek_tuples()[0] == (1.5, "xx", 7)

    def test_mixed_int_column_becomes_float_or_str(self, tmp_path,
                                                   small_device):
        p = write(tmp_path, "r.csv", "a\n1\n2.5\n")
        rel = load_csv(small_device, p, "e1")
        assert rel.peek_tuples()[0] == (1.0,)

    def test_headerless_requires_attributes(self, tmp_path, small_device):
        p = write(tmp_path, "r.csv", "1,2\n3,4\n")
        with pytest.raises(ValueError):
            load_csv(small_device, p, "e1", header=False)
        rel = load_csv(small_device, p, "e1", header=False,
                       attributes=("x", "y"))
        assert len(rel) == 2

    def test_duplicate_rows_dropped(self, tmp_path, small_device):
        p = write(tmp_path, "r.csv", "a,b\n1,2\n1,2\n3,4\n")
        rel = load_csv(small_device, p, "e1")
        assert len(rel) == 2

    def test_ragged_row_rejected(self, tmp_path, small_device):
        p = write(tmp_path, "r.csv", "a,b\n1,2\n3\n")
        with pytest.raises(ValueError):
            load_csv(small_device, p, "e1")

    def test_empty_file_rejected(self, tmp_path, small_device):
        p = write(tmp_path, "r.csv", "")
        with pytest.raises(ValueError):
            load_csv(small_device, p, "e1")

    def test_tsv(self, tmp_path, small_device):
        p = write(tmp_path, "r.tsv", "a\tb\n1\t2\n")
        rel = load_csv(small_device, p, "e1", delimiter="\t")
        assert rel.peek_tuples()[0] == (1, 2)

    def test_loading_is_uncharged(self, tmp_path):
        device = Device(M=8, B=2)
        p = write(tmp_path, "r.csv", "a,b\n" + "\n".join(
            f"{i},{i}" for i in range(50)))
        load_csv(device, p, "e1")
        assert device.stats.total == 0


class TestEndToEnd:
    def test_csv_to_join_to_csv(self, tmp_path):
        device = Device(M=8, B=2)
        write(tmp_path, "follows.csv",
              "src,dst\n" + "\n".join(f"{i},{(i + 1) % 5}"
                                      for i in range(5)))
        write(tmp_path, "lives.csv",
              "dst,city\n" + "\n".join(f"{i},{100 + i}"
                                       for i in range(5)))
        inst = instance_from_csv(device, {
            "follows": tmp_path / "follows.csv",
            "lives": tmp_path / "lives.csv",
        })
        query = parse_query("follows(src, dst), lives(dst, city)")
        em = CollectingEmitter()
        execute(query, inst, em)
        assert em.count == 5

        out = tmp_path / "out.csv"
        n = dump_results_csv(em.results, inst.schemas(), out)
        assert n == 5
        lines = out.read_text().strip().splitlines()
        assert lines[0] == "city,dst,src"
        assert len(lines) == 6
