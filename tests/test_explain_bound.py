"""Tests for the witnessed Theorem 3 bound report."""

import pytest

from repro.analysis import explain_bound, gens_bound, lower_bound
from repro.query import line_query
from repro.workloads import (fig3_line3_instance, schemas_for,
                             unbalanced_l5_instance)


class TestExplainBound:
    def test_matches_gens_bound(self):
        schemas, data = fig3_line3_instance(16, 16)
        q = line_query(3)
        rep = explain_bound(q, data, schemas, 4, 2)
        assert rep.gens_bound == pytest.approx(
            gens_bound(q, data, schemas, 4, 2))
        assert rep.lower == pytest.approx(
            lower_bound(q, data, schemas, 4, 2))

    def test_witness_on_fig3_is_e1_e3(self):
        schemas, data = fig3_line3_instance(16, 16)
        q = line_query(3)
        rep = explain_bound(q, data, schemas, 4, 2)
        assert rep.best.worst_subset == frozenset({"e1", "e3"})
        assert rep.gap == pytest.approx(1.0)

    def test_unbalanced_l5_gap_exceeds_one(self):
        # The Section 6.3 phenomenon, visible in the bound pair: on an
        # unbalanced instance Algorithm 2's Theorem 3 budget strictly
        # exceeds the psi lower bound.
        schemas, data = unbalanced_l5_instance(1, 8, 2, 2, 8, 1)
        q = line_query(5)
        rep = explain_bound(q, data, schemas, 4, 2)
        assert rep.gap > 1.5
        assert rep.best.worst_subset  # a concrete witness exists

    def test_render_marks_best_branch(self):
        schemas, data = fig3_line3_instance(8, 8)
        q = line_query(3)
        text = explain_bound(q, data, schemas, 4, 2).render()
        assert "psi lower bound" in text
        assert " * branch" in text

    def test_branch_count_matches_gens(self):
        from repro.query import gens_all
        schemas, data = fig3_line3_instance(8, 8)
        q = line_query(3)
        rep = explain_bound(q, data, schemas, 4, 2)
        assert len(rep.branches) == len(gens_all(q))
