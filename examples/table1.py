#!/usr/bin/env python3
"""Regenerate the paper's Table 1 with measured checkmarks.

Prints one row per query class of Hu & Yi's Table 1: the
internal-memory bound (AGM), the external-memory bound, the paper's
optimality status — and, in the last column, this library's measured
I/O over the external bound on a small worst-case instance, the
empirical checkmark the paper itself could not print.

Run:  python examples/table1.py   (~30 s)
"""

import math

from repro import Device, Instance
from repro.core import (CountingEmitter, acyclic_join_best, line3_join,
                        nested_loop_join, triangle_join)
from repro.core.lw import lw_join, lw_query
from repro.query import line_query, star_query, triangle_query
from repro.workloads import (cross_product_line_instance,
                             equal_size_packing_instance,
                             fig3_line3_instance, star_worstcase_instance)

M, B = 8, 2


def measure(query, schemas, data, runner):
    device = Device(M=M, B=B)
    inst = Instance.from_dicts(device, schemas, data)
    runner(query, inst, CountingEmitter())
    return device.stats.total


def measure_best(query, schemas, data, limit=12):
    device = Device(M=M, B=B)
    inst = Instance.from_dicts(device, schemas, data)
    return acyclic_join_best(query, inst, limit=limit).io


def row_two_relations():
    n = 64
    schemas = {"e1": ("v1", "v2"), "e2": ("v2", "v3")}
    data = {"e1": [(i, 0) for i in range(n)],
            "e2": [(0, j) for j in range(n)]}

    def runner(q, inst, em):
        nested_loop_join(inst["e1"], inst["e2"], em)

    io = measure(line_query(2), schemas, data, runner)
    bound = n * n / (M * B) + 2 * n / B
    return ("Two relations", "N1·N2", "N1·N2/(MB)", "yes (trivial)",
            io / bound)


def row_triangle():
    k = 10
    rows = [(i, j) for i in range(k) for j in range(k)]
    schemas = {"e1": ("v1", "v2"), "e2": ("v1", "v3"),
               "e3": ("v2", "v3")}
    data = {e: rows for e in schemas}
    io = measure(triangle_query(), schemas, data, triangle_join)
    n = k * k
    bound = math.sqrt(n ** 3 / M) / B + 3 * n / B
    return ("Triangle C3", "√(N1N2N3)", "√(N1N2N3/M)/B",
            "on equal Ni's [7,12]", io / bound)


def row_lw():
    q = lw_query(4)
    k = 5
    schemas = {e: tuple(sorted(q.edges[e])) for e in q.edges}
    rows = [(a, b, c) for a in range(k) for b in range(k)
            for c in range(k)]
    data = {e: rows for e in schemas}
    io = measure(q, schemas, data, lw_join)
    n = k ** 3
    bound = (n / M) ** (4 / 3) * M / B + 4 * n / B
    return ("LW join LW4", "∏Ni^{1/(n-1)}", "∏(Ni/M)^{1/(n-1)}·M/B",
            "unknown [6]", io / bound)


def row_line3():
    n = 64
    schemas, data = fig3_line3_instance(n, n)
    io = measure(line_query(3), schemas, data, line3_join)
    bound = n * n / (M * B) + (2 * n + 1) / B
    return ("Line L3", "N1·N3", "N1·N3/(MB)", "yes (Thm 1)", io / bound)


def row_line5():
    z = [4, 1, 4, 1, 4, 1]
    schemas, data = cross_product_line_instance(z)
    sizes = [len(data[f"e{i}"]) for i in range(1, 6)]
    io = measure_best(line_query(5, sizes), schemas, data)
    bound = (sizes[0] * sizes[2] * sizes[4] / (M ** 2 * B)
             + sum(sizes) / B)
    return ("Line L5 (balanced)", "N1·N3·N5", "complex (Cor 2)",
            "yes (Thm 5)", io / bound)


def row_star():
    k, n = 3, 8
    schemas, data = star_worstcase_instance([n] * k)
    io = measure_best(star_query(k), schemas, data, limit=16)
    bound = n ** k / (M ** (k - 1) * B) + (1 + k * n) / B
    return ("Star T3", "∏Ni (petals)", "complex (Cor 1)",
            "yes (Thm 4)", io / bound)


def row_equal():
    q = line_query(5)
    n = 8
    schemas, data = equal_size_packing_instance(q, n)
    io = measure_best(q.with_sizes({e: len(t) for e, t in data.items()}),
                      schemas, data, limit=8)
    c = 3
    bound = (n / M) ** c * M / B + 5 * n / B
    return ("Acyclic, equal Ni", "N^c", "(N/M)^c · M/B", "yes (Thm 7)",
            io / bound)


def main() -> None:
    rows = [row_two_relations(), row_triangle(), row_lw(), row_line3(),
            row_line5(), row_star(), row_equal()]
    header = (f"{'Join query':<20} {'internal':<14} {'external':<22} "
              f"{'optimal?':<22} {'measured/bound':>14}")
    print(header)
    print("-" * len(header))
    for name, internal, external, opt, ratio in rows:
        print(f"{name:<20} {internal:<14} {external:<22} {opt:<22} "
              f"{ratio:>14.2f}")
    print(f"\n(M={M}, B={B}; each row measured on its worst-case "
          f"family — Table 1 of the paper, now with numbers.)")


if __name__ == "__main__":
    main()
