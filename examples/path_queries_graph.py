#!/usr/bin/env python3
"""Multi-hop path queries on a graph: line joins with skew.

"Friends of friends of friends" is a line join: each hop is a binary
relation over (person, person).  This example builds a synthetic
social graph with celebrity nodes (heavy values in the paper's sense —
more than ``M`` edges on one endpoint), runs 3-hop and 5-hop path
queries through the Section 6 dispatcher, and shows how the balanced /
unbalanced regime of the hop-table sizes picks the algorithm.

Run:  python examples/path_queries_graph.py
"""

import random

from repro import Device, Instance
from repro.core import CountingEmitter, line_join_auto
from repro.query import line_query
from repro.query.lines import classify_line


def hop_table(n_edges, n_people, celebrities, seed):
    """Random follower edges; celebrities attract 50% of them."""
    rng = random.Random(seed)
    edges = set()
    while len(edges) < n_edges:
        src = rng.randrange(n_people)
        dst = (rng.randrange(celebrities) if rng.random() < 0.5
               else rng.randrange(n_people))
        if src != dst:
            edges.add((src, dst))
    return sorted(edges)


def run_path_query(hops: int, sizes: list[int], M: int = 32,
                   B: int = 4) -> None:
    q = line_query(hops)
    schemas = {f"e{i}": (f"v{i}", f"v{i + 1}") for i in range(1, hops + 1)}
    data = {f"e{i}": hop_table(sizes[i - 1], 40, 3, seed=i)
            for i in range(1, hops + 1)}
    actual = [len(data[f"e{i}"]) for i in range(1, hops + 1)]
    regime = classify_line(actual).regime

    device = Device(M=M, B=B)
    instance = Instance.from_dicts(device, schemas, data)
    emitter = CountingEmitter()
    label = line_join_auto(q, instance, emitter)
    print(f"{hops}-hop paths  sizes={actual}  regime={regime}")
    print(f"  algorithm={label}  paths={emitter.count}  "
          f"io={device.stats.total}")


def main() -> None:
    print("== 3-hop friends-of-friends-of-friends ==")
    run_path_query(3, [200, 200, 200])

    print("\n== 5-hop, balanced hop tables ==")
    run_path_query(5, [150, 150, 150, 150, 150])

    print("\n== 5-hop, tiny middle hop (unbalanced: N1*N3*N5 < N2*N4) ==")
    # e.g. a sparse 'works_at' hop between two dense follower hops
    run_path_query(5, [120, 400, 4, 400, 120])

    print("\nThe dispatcher reads the size vector: balanced inputs run")
    print("Algorithm 2's best peel branch; the unbalanced middle flips")
    print("it to Algorithm 4 (materialize the middle 3-path first).")


if __name__ == "__main__":
    main()
