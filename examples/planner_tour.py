#!/usr/bin/env python3
"""A tour of the planner across the paper's query families.

Runs every named query family (two relations, lines, star, lollipop,
dumbbell, and a general acyclic shape) through :func:`repro.core.execute`
on random data, printing the detected shape, the chosen algorithm, the
I/O bill, and the optimality certificate (measured vs the ψ lower bound
and the Theorem 3 GenS bound).

Run:  python examples/planner_tour.py
"""

import random

from repro import Device, Instance
from repro.analysis import certify
from repro.core import CountingEmitter, execute
from repro.query import (JoinQuery, dumbbell_query, line_query,
                         lollipop_query, star_query)


def random_data(query, n, domain, seed):
    rng = random.Random(seed)
    schemas = {e: tuple(sorted(query.edges[e])) for e in query.edges}
    data = {}
    for e, attrs in schemas.items():
        want = min(n, domain ** len(attrs))  # cap at the domain capacity
        rows = set()
        while len(rows) < want:
            rows.add(tuple(rng.randrange(domain) for _ in attrs))
        data[e] = sorted(rows)
    return schemas, data


GENERAL = JoinQuery(edges={
    "e1": frozenset({"a", "b"}),
    "e2": frozenset({"b", "c", "d"}),
    "e3": frozenset({"d", "e", "f"}),
    "e4": frozenset({"c", "u4"}),
    "e5": frozenset({"e", "u5"}),
    "e6": frozenset({"f", "u6"}),
})

FAMILIES = [
    ("two relations", line_query(2), 60),
    ("line L3", line_query(3), 50),
    ("line L5", line_query(5), 30),
    ("star (3 petals)", star_query(3), 25),
    ("lollipop", lollipop_query(3), 18),
    ("dumbbell", dumbbell_query(3, 6), 12),
    ("general acyclic", GENERAL, 12),
]


def main() -> None:
    M, B = 16, 4
    header = (f"{'family':<18} {'shape':<16} {'algorithm':<36} "
              f"{'io':>6} {'res':>7} {'io/lower':>9} {'gap':>5}")
    print(header)
    print("-" * len(header))
    for name, query, n in FAMILIES:
        schemas, data = random_data(query, n, 6, seed=len(name))
        device = Device(M=M, B=B)
        instance = Instance.from_dicts(device, schemas, data)
        emitter = CountingEmitter()
        report = execute(query, instance, emitter, plan_limit=6)
        cert = certify(query, data, schemas, M, B, report.io)
        print(f"{name:<18} {report.shape:<16} {report.algorithm:<36} "
              f"{report.io:>6} {emitter.count:>7} "
              f"{cert.measured_over_lower:>9.2f} {cert.gap:>5.2f}")
    print("\nio/lower = measured I/O over the instance's psi lower "
          "bound;")
    print("gap = Theorem 3 bound over the lower bound (1.00 = the "
          "bounds meet).")


if __name__ == "__main__":
    main()
