#!/usr/bin/env python3
"""Star-schema warehouse: fact table core, dimension-petal join.

The classic OLAP star schema is exactly the paper's star join
(Section 5): a fact table ``sales(cust_id, prod_id, store_id)`` at the
core, and dimension tables hanging off each key.  This example builds a
synthetic warehouse, runs Algorithm 2 (best peel branch) against the
external-memory Yannakakis baseline across memory sizes, and shows the
emit-model gap of Section 1.2 on a workload people actually run.

Run:  python examples/star_schema_warehouse.py
"""

import random

from repro import Device, Instance
from repro.core import CountingEmitter, acyclic_join_best, yannakakis_em
from repro.query import JoinQuery


def build_warehouse(n_facts: int, n_dim: int, seed: int = 42):
    """A star schema with heavy-hitter customers (realistic skew)."""
    rng = random.Random(seed)
    schemas = {
        "sales": ("cust_id", "prod_id", "store_id"),
        "customers": ("cust_id", "cust_name"),
        "products": ("prod_id", "prod_name"),
        "stores": ("store_id", "store_city"),
    }
    n_keys = max(2, n_dim)
    facts = set()
    while len(facts) < n_facts:
        # 60% of sales concentrate on two hot customers.
        cust = rng.randrange(2) if rng.random() < 0.6 \
            else rng.randrange(n_keys)
        facts.add((cust, rng.randrange(n_keys), rng.randrange(n_keys)))
    data = {
        "sales": sorted(facts),
        "customers": [(i, 1000 + i) for i in range(n_keys)],
        "products": [(i, 2000 + i) for i in range(n_keys)],
        "stores": [(i, 3000 + i) for i in range(n_keys)],
    }
    query = JoinQuery(edges={
        "sales": frozenset({"cust_id", "prod_id", "store_id"}),
        "customers": frozenset({"cust_id", "cust_name"}),
        "products": frozenset({"prod_id", "prod_name"}),
        "stores": frozenset({"store_id", "store_city"}),
    }, sizes={e: len(t) for e, t in data.items()})
    return query, schemas, data


def main() -> None:
    query, schemas, data = build_warehouse(n_facts=300, n_dim=24)
    print("warehouse sizes:", {e: len(t) for e, t in data.items()})
    print(f"{'M':>4} {'B':>3} {'alg2 io':>8} {'yann io':>8} "
          f"{'gap':>6} {'results':>8}")
    for M in (16, 32, 64):
        B = 4
        device = Device(M=M, B=B)
        instance = Instance.from_dicts(device, schemas, data)
        best = acyclic_join_best(query, instance, limit=12)

        device2 = Device(M=M, B=B)
        instance2 = Instance.from_dicts(device2, schemas, data)
        counter = CountingEmitter()
        yannakakis_em(query, instance2, counter)
        assert counter.count == best.best.emitted
        gap = device2.stats.total / best.io
        print(f"{M:>4} {B:>3} {best.io:>8} {device2.stats.total:>8} "
              f"{gap:>6.2f} {best.best.emitted:>8}")
    print("\nThe baseline writes every intermediate and its output;")
    print("Algorithm 2 holds them in memory chunks — the Section 1.2")
    print("emit-model advantage.  On worst-case (cross-product-like)")
    print("inputs the gap grows to a factor of M; see")
    print("benchmarks/bench_yannakakis_gap.py for that sweep.")


if __name__ == "__main__":
    main()
