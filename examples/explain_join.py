#!/usr/bin/env python3
"""Explainability tour: trace the recursion, witness the bounds.

Runs Algorithm 2 on an unbalanced 5-relation line join with the
recursion tracer attached, then prints:

* the peel transcript (which relation, heavy/light split, depth);
* the per-phase I/O breakdown (sort vs semijoin vs the rest);
* the witnessed Theorem 3 bound report — including the > 1 gap between
  the GenS budget and the ψ lower bound that Section 6.3 proves for
  this regime (the reason Algorithm 4 exists).

Run:  python examples/explain_join.py
"""

from repro import Device, Instance
from repro.analysis import explain_bound
from repro.core import CountingEmitter, acyclic_join
from repro.core.trace import RecursionTrace
from repro.query import line_query
from repro.query.lines import is_balanced
from repro.workloads import unbalanced_l5_instance


def main() -> None:
    schemas, data = unbalanced_l5_instance(1, 12, 2, 2, 12, 1)
    sizes = [len(data[f"e{i}"]) for i in range(1, 6)]
    query = line_query(5, sizes)
    print(f"sizes    : {sizes}  (balanced: {is_balanced(sizes)})")

    device = Device(M=4, B=2)
    instance = Instance.from_dicts(device, schemas, data)
    emitter = CountingEmitter()
    trace = RecursionTrace()
    acyclic_join(query, instance, emitter, trace=trace)

    print(f"results  : {emitter.count}")
    print(f"io       : {device.stats.total}")
    print(f"phases   : {device.phases.report()}")
    print(f"max depth: {trace.max_depth()}   "
          f"actions: {trace.counts()}")
    print("\n-- recursion transcript (first 25 events) --")
    print(trace.render(limit=25))

    print("\n-- Theorem 3 bound report --")
    report = explain_bound(query, data, schemas, device.M, device.B)
    print(report.render())
    print("\nThe gap above 1.0 is Section 6.3's point: on unbalanced")
    print("L5 instances Algorithm 2's budget exceeds the psi lower")
    print("bound, and Algorithm 4 (line5_unbalanced_join) closes it.")


if __name__ == "__main__":
    main()
