#!/usr/bin/env python3
"""Quickstart: join three relations I/O-optimally in simulated external memory.

Builds the paper's 3-relation line join
``R1(v1,v2) ⋈ R2(v2,v3) ⋈ R3(v3,v4)``, runs it through the planner
(which picks Algorithm 1 for this shape), and prints the I/O bill next
to the Theorem 1 bound and the instance's ψ lower bound.

Run:  python examples/quickstart.py
"""

from repro import Device, Instance
from repro.analysis import certify, line3_bound
from repro.core import CollectingEmitter, execute
from repro.query import line_query
from repro.workloads import fig3_line3_instance


def main() -> None:
    # A machine with room for 64 tuples in memory, 8 tuples per page.
    device = Device(M=64, B=8)

    # The Figure 3 worst case: every R1 tuple reaches every R3 tuple
    # through a single bridge tuple in R2.
    n = 256
    schemas, data = fig3_line3_instance(n, n)
    query = line_query(3, [len(data[e]) for e in ("e1", "e2", "e3")])
    instance = Instance.from_dicts(device, schemas, data)

    emitter = CollectingEmitter()
    report = execute(query, instance, emitter, reduce_first=False)

    print(f"query shape       : {report.shape}")
    print(f"algorithm         : {report.algorithm}")
    print(f"join results      : {emitter.count}  (= N1*N3 = {n * n})")
    print(f"I/O (join)        : {report.io}  "
          f"({report.reads} reads + {report.writes} writes)")

    bound = line3_bound(n, n, device.M, device.B, n2=1)
    cert = certify(query, data, schemas, device.M, device.B, report.io)
    print(f"Theorem 1 bound   : {bound:.0f}  "
          f"(measured/bound = {report.io / bound:.2f})")
    print(f"psi lower bound   : {cert.lower:.0f}  "
          f"(measured/lower = {cert.measured_over_lower:.2f})")

    # A couple of emitted results, with all participating tuples —
    # the emit model never writes them to disk.
    for result in emitter.results[:3]:
        print("result:", {e: t for e, t in sorted(result.items())})


if __name__ == "__main__":
    main()
