"""I/O and memory accounting for the simulated external-memory machine.

The external-memory (EM) model of Aggarwal and Vitter has a main memory
holding ``M`` items and a disk accessed in blocks of ``B`` items; the cost
of an algorithm is the number of block transfers (I/Os).  The paper
reasons exclusively about this count, so the accounting here is the
ground truth every benchmark in this repository reports.

Two cost meters live in this module:

* :class:`IOStats` counts page reads and page writes.  A "page" is a
  block of ``B`` tuples; partial pages cost a full I/O, matching the
  model.
* :class:`MemoryGauge` tracks the number of tuples currently held
  resident by the running algorithm and the peak over the run.  The
  paper assumes a memory of ``c * M`` for a sufficiently large constant
  ``c`` (Section 1.1), so the gauge enforces ``current <= slack * M``
  rather than a hard ``M``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Iterator


class MemoryBudgetExceeded(RuntimeError):
    """Raised when an algorithm holds more than ``slack * M`` tuples."""


@dataclass
class CacheStats:
    """Buffer-pool counters (all zero while the pool is disabled).

    ``hits + misses`` equals the number of *logical* page reads — the
    count the pool-off configuration would have charged as physical
    reads.  ``writebacks`` counts dirty pages written back on eviction
    or flush; each written page is written back exactly once.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def logical_reads(self) -> int:
        """Logical page reads: what pool-off accounting would charge."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of logical reads served without an I/O."""
        return self.hits / self.logical_reads if self.logical_reads else 0.0

    def as_dict(self) -> dict[str, object]:
        """Counters plus derived rates, for reports and ``--json``."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "writebacks": self.writebacks,
                "logical_reads": self.logical_reads,
                "hit_rate": round(self.hit_rate, 4)}

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.writebacks = 0

    def copy(self) -> "CacheStats":
        """An independent copy (snapshots must not alias the live one)."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          evictions=self.evictions,
                          writebacks=self.writebacks)

    def delta_since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter-wise difference against an earlier snapshot."""
        return CacheStats(hits=self.hits - earlier.hits,
                          misses=self.misses - earlier.misses,
                          evictions=self.evictions - earlier.evictions,
                          writebacks=self.writebacks - earlier.writebacks)

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(hits=self.hits + other.hits,
                          misses=self.misses + other.misses,
                          evictions=self.evictions + other.evictions,
                          writebacks=self.writebacks + other.writebacks)


@dataclass
class IOStats:
    """Mutable counter of block transfers.

    Attributes
    ----------
    reads:
        Number of pages transferred from disk to memory.
    writes:
        Number of pages transferred from memory to disk.
    cache:
        Buffer-pool counters; all zero unless the device opts into a
        :class:`~repro.em.bufferpool.BufferPool`.

    While :meth:`suspend` is active the device charges nothing — used
    for free input materialization, where rewinding the counters
    afterwards (the old implementation) would corrupt the exclusive
    attribution of any open :class:`PhaseTracker` phase.
    """

    reads: int = 0
    writes: int = 0
    cache: CacheStats = field(default_factory=CacheStats, compare=False)
    _suspended: int = field(default=0, init=False, repr=False,
                            compare=False)

    @property
    def total(self) -> int:
        """Total block transfers, the cost measure of the EM model."""
        return self.reads + self.writes

    @property
    def suspended(self) -> bool:
        """True while counting is suspended (free materialization)."""
        return self._suspended > 0

    @contextlib.contextmanager
    def suspend(self) -> Iterator[None]:
        """Suspend all charging for the enclosed scope (re-entrant)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters.

        The cache section is deep-copied: a snapshot taken on a pooled
        device must not alias (and silently track) the live counters.
        """
        return IOStats(reads=self.reads, writes=self.writes,
                       cache=self.cache.copy())

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Return the I/Os incurred since ``earlier`` was snapshotted.

        Includes the cache counters, so pooled interval measurements
        report their true hit rate rather than a constant zero.
        """
        return IOStats(reads=self.reads - earlier.reads,
                       writes=self.writes - earlier.writes,
                       cache=self.cache.delta_since(earlier.cache))

    def reset(self) -> None:
        """Zero all counters, including the cache section."""
        self.reads = 0
        self.writes = 0
        self.cache.reset()

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(reads=self.reads + other.reads,
                       writes=self.writes + other.writes,
                       cache=self.cache + other.cache)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"IOStats(reads={self.reads}, writes={self.writes}, total={self.total})"


class PhaseTracker:
    """Attributes I/O to named phases ("sort", "semijoin", …).

    Phases nest; each phase's total counts only the I/O not claimed by
    an inner phase (exclusive attribution), so the per-phase totals plus
    the unattributed remainder always sum to the device total.  Library
    code tags its heavyweight operations; callers may add their own
    phases around application logic::

        with device.phases.phase("partition"):
            ...

    ``totals`` maps label → I/Os; :meth:`report` adds the remainder.
    """

    def __init__(self, stats: IOStats) -> None:
        self._stats = stats
        self.totals: dict[str, int] = {}
        self._stack: list[list[int]] = []
        # I/O total when the tracker was last reset: the remainder in
        # report() is measured from here, so a long-lived device (a
        # server session) can zero its phase view per query without
        # rewinding the monotone counters.
        self._origin: int = 0
        # Set by Device.attach_tracer; observes enter/exit, never counts.
        self._tracer: Any = None
        # Set by Device.attach_profiler; every phase opens a span.
        self._profiler: Any = None

    @contextlib.contextmanager
    def phase(self, label: str) -> Iterator[None]:
        entry = [self._stats.total, 0]     # [start, child I/O]
        self._stack.append(entry)
        if self._tracer is not None:
            self._tracer.on_phase_enter(label)
        span = (self._profiler.open(label, kind="phase")
                if self._profiler is not None else None)
        try:
            yield
        finally:
            if span is not None:
                self._profiler.close(span)
            self._stack.pop()
            delta = self._stats.total - entry[0]
            exclusive = delta - entry[1]
            self.totals[label] = self.totals.get(label, 0) + exclusive
            if self._stack:
                self._stack[-1][1] += delta
            if self._tracer is not None:
                self._tracer.on_phase_exit(label, exclusive)

    def report(self) -> dict[str, int]:
        """Per-phase I/O plus the unattributed remainder."""
        out = dict(sorted(self.totals.items()))
        out["(unattributed)"] = (self._stats.total - self._origin
                                 - sum(self.totals.values()))
        return out

    def reset(self) -> None:
        self.totals.clear()
        self._stack.clear()
        self._origin = self._stats.total


@dataclass
class MemoryGauge:
    """Tracks tuples held resident in (simulated) main memory.

    Algorithms wrap memory-resident structures in :meth:`hold` so that
    tests can assert the paper's memory budget is respected.  The gauge
    is advisory by default (``strict=False``) because constant factors
    differ between the abstract algorithms and a faithful executable
    rendering; benchmarks and tests flip ``strict`` on with a generous
    ``slack``.
    """

    capacity: int
    slack: float = 8.0
    strict: bool = False
    current: int = 0
    peak: int = 0
    # Set by Device.attach_tracer; observes peak growth, never counts.
    _tracer: Any = field(default=None, init=False, repr=False,
                         compare=False)

    @property
    def limit(self) -> float:
        """The enforced budget ``slack * capacity``.

        Recomputed on access so mutating ``capacity`` or ``slack`` after
        construction cannot leave a stale limit behind.
        """
        return self.slack * self.capacity

    def charge(self, n: int) -> None:
        """Record ``n`` additional resident tuples."""
        if n < 0:
            raise ValueError(f"cannot charge a negative amount: {n}")
        self.current += n
        if self.current > self.peak:
            self.peak = self.current
            if self._tracer is not None:
                self._tracer.on_mem_peak(self.peak)
        if self.strict and self.current > self.limit:
            raise MemoryBudgetExceeded(
                f"holding {self.current} tuples exceeds "
                f"slack*M = {self.limit:.0f} (M={self.capacity})")

    def release(self, n: int) -> None:
        """Record ``n`` resident tuples being dropped."""
        if n < 0:
            raise ValueError(f"cannot release a negative amount: {n}")
        self.current -= n
        if self.current < 0:
            raise ValueError("released more tuples than were held")

    @contextlib.contextmanager
    def hold(self, n: int) -> Iterator[None]:
        """Context manager charging ``n`` tuples for the enclosed scope."""
        self.charge(n)
        try:
            yield
        finally:
            self.release(n)

    def reset(self) -> None:
        """Zero the gauge (does not change capacity or slack)."""
        self.current = 0
        self.peak = 0
