"""An opt-in buffer pool between page access and the simulated disk.

The paper's cost model (Aggarwal–Vitter) charges one I/O per block
transfer and assumes nothing about caching, so by default every
:class:`~repro.em.device.Device` charges each page entry directly to
:class:`~repro.em.stats.IOStats` — re-reading a hot page costs a fresh
I/O.  Real buffer-managed executions pay less: a page still resident in
memory is served for free.  ``Device(M, B, buffer_pool=PoolConfig(...))``
interposes a :class:`BufferPool` so that gap can be *measured* per query
class (see ``benchmarks/bench_bufferpool_gap.py``) without disturbing
the paper-faithful default.

Semantics:

* a **read** of a resident page is a *hit* (no I/O); a miss charges one
  read and admits the page;
* a **write** (a flushed writer page) is admitted *dirty* and charged
  only when the page is evicted or the pool is flushed — each written
  page is written back exactly once, so with a final :meth:`flush` the
  write count equals the pool-off write count and all savings are read
  hits;
* **pinned** pages are never evicted (operators pin pages they are
  actively consuming); if every frame is pinned the access bypasses the
  pool (charged directly, not cached);
* :meth:`flush` writes back all dirty pages; call it (or
  ``device.flush_pool()``) at the end of a run so counts are
  deterministic and comparable.

Counters live in ``device.stats.cache`` (hits / misses / evictions /
write-backs) and satisfy ``hits + misses == logical page reads``, where
the logical count is exactly what the pool-off configuration charges.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Hashable, TYPE_CHECKING

from repro.em.policies import ReplacementPolicy, make_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.em.device import Device


class BufferPoolError(RuntimeError):
    """Raised on pin/unpin misuse."""


@dataclass(frozen=True)
class PoolConfig:
    """Configuration for an opt-in buffer pool.

    The frame budget is given either in ``tuples`` (a fraction of the
    device's ``M``, the paper-natural unit; rounded down to whole
    frames) or directly in page ``frames``.  With neither set, the
    budget defaults to ``M`` tuples.
    """

    tuples: int | None = None
    frames: int | None = None
    policy: str = "lru"

    def n_frames(self, M: int, B: int) -> int:
        """Resolve the frame budget in pages for a given machine."""
        if self.frames is not None:
            if self.frames < 1:
                raise ValueError(f"frames must be >= 1, got {self.frames}")
            return self.frames
        budget = self.tuples if self.tuples is not None else M
        if budget < 1:
            raise ValueError(f"tuples must be >= 1, got {budget}")
        return max(1, budget // B)


class _Frame:
    """One resident page: its dirtiness and pin count."""

    __slots__ = ("dirty", "pins")

    def __init__(self, dirty: bool) -> None:
        self.dirty = dirty
        self.pins = 0


class BufferPool:
    """A fixed budget of page frames with a pluggable eviction policy.

    Pages are keyed by ``(file, page_number)``; the pool never stores
    tuple data (the simulated disk already holds it) — it tracks
    residency so the device can charge hits nothing.
    """

    def __init__(self, device: "Device", config: PoolConfig) -> None:
        self.device = device
        self.config = config
        self.n_frames = config.n_frames(device.M, device.B)
        self.policy: ReplacementPolicy = make_policy(config.policy)
        self._frames: dict[tuple[Hashable, int], _Frame] = {}

    # -- introspection -------------------------------------------------

    @property
    def cache(self):
        """The device's cache counters (reset with ``reset_stats``)."""
        return self.device.stats.cache

    def contains(self, f: Hashable, page: int) -> bool:
        """Is the page currently resident?"""
        return (f, page) in self._frames

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    @property
    def resident_tuples(self) -> int:
        """Upper bound on memory held by the pool, in tuples."""
        return len(self._frames) * self.device.B

    def pin_count(self, f: Hashable, page: int) -> int:
        frame = self._frames.get((f, page))
        return 0 if frame is None else frame.pins

    # -- page access (called by Device.charge_read / charge_write) -----

    def read_page(self, f: Hashable, page: int) -> None:
        """Account one logical page read: a hit or a charged miss."""
        key = (f, page)
        frame = self._frames.get(key)
        if frame is not None:
            self.cache.hits += 1
            self.device._notify_cache("hit", f, page)
            self.policy.on_access(key)
            return
        self.cache.misses += 1
        self.device._notify_cache("miss", f, page)
        self.device._record_read(f, page)
        self._admit(key, dirty=False)

    def write_page(self, f: Hashable, page: int) -> None:
        """Account one logical page write, deferred until write-back."""
        key = (f, page)
        frame = self._frames.get(key)
        if frame is not None:
            frame.dirty = True
            self.policy.on_access(key)
            return
        if not self._admit(key, dirty=True):
            # Every frame pinned: write through, uncached.
            self.device._record_write(f, page)

    # -- pinning -------------------------------------------------------

    def pin(self, f: Hashable, page: int) -> None:
        """Fault the page in if needed and protect it from eviction."""
        key = (f, page)
        if key not in self._frames:
            self.read_page(f, page)
        frame = self._frames.get(key)
        if frame is None:
            raise BufferPoolError(
                f"cannot pin page {page} of {f!r}: every frame is pinned")
        frame.pins += 1

    def unpin(self, f: Hashable, page: int) -> None:
        frame = self._frames.get((f, page))
        if frame is None or frame.pins == 0:
            raise BufferPoolError(
                f"unpin of page {page} of {f!r} without a matching pin")
        frame.pins -= 1

    @contextlib.contextmanager
    def pinned(self, f: Hashable, page: int):
        """Context manager pinning one page for the enclosed scope."""
        self.pin(f, page)
        try:
            yield
        finally:
            self.unpin(f, page)

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        """Write back every dirty page (pages stay resident, clean)."""
        for key, frame in self._frames.items():
            if frame.dirty:
                self.device._record_write(key[0], key[1])
                self.cache.writebacks += 1
                self.device._notify_cache("writeback", key[0], key[1])
                frame.dirty = False

    def close(self) -> None:
        """Flush, then drop every frame (pins included)."""
        self.flush()
        self._frames.clear()
        self.policy.clear()

    def clear(self) -> None:
        """Drop every frame *without* write-back.

        Only for ``Device.reset_stats``: deferred writes would otherwise
        leak into the zeroed counters.
        """
        self._frames.clear()
        self.policy.clear()

    # -- internals -----------------------------------------------------

    def _admit(self, key: tuple[Hashable, int], dirty: bool) -> bool:
        """Make ``key`` resident, evicting if full.  False if impossible."""
        if len(self._frames) >= self.n_frames and not self._evict_one():
            return False
        self._frames[key] = _Frame(dirty)
        self.policy.on_insert(key)
        self.device.metrics.gauge("pool.resident_pages").set(
            len(self._frames))
        return True

    def _evict_one(self) -> bool:
        victim = self.policy.victim(
            lambda k: self._frames[k].pins == 0)
        if victim is None:
            return False
        frame = self._frames.pop(victim)
        self.cache.evictions += 1
        self.device._notify_cache("eviction", victim[0], victim[1])
        if frame.dirty:
            self.device._record_write(victim[0], victim[1])
            self.cache.writebacks += 1
            self.device._notify_cache("writeback", victim[0], victim[1])
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BufferPool(frames={self.n_frames}, "
                f"policy={self.config.policy!r}, "
                f"resident={len(self._frames)})")
