"""An opt-in buffer pool between page access and the simulated disk.

The paper's cost model (Aggarwal–Vitter) charges one I/O per block
transfer and assumes nothing about caching, so by default every
:class:`~repro.em.device.Device` charges each page entry directly to
:class:`~repro.em.stats.IOStats` — re-reading a hot page costs a fresh
I/O.  Real buffer-managed executions pay less: a page still resident in
memory is served for free.  ``Device(M, B, buffer_pool=PoolConfig(...))``
interposes a :class:`BufferPool` so that gap can be *measured* per query
class (see ``benchmarks/bench_bufferpool_gap.py``) without disturbing
the paper-faithful default.

Semantics:

* a **read** of a resident page is a *hit* (no I/O); a miss charges one
  read and admits the page;
* a **write** (a flushed writer page) is admitted *dirty* and charged
  only when the page is evicted or the pool is flushed — each written
  page is written back exactly once, so with a final :meth:`flush` the
  write count equals the pool-off write count and all savings are read
  hits;
* **pinned** pages are never evicted (operators pin pages they are
  actively consuming); if every frame is pinned the access bypasses the
  pool (charged directly, not cached);
* :meth:`flush` writes back all dirty pages; call it (or
  ``device.flush_pool()``) at the end of a run so counts are
  deterministic and comparable.

Counters live in ``device.stats.cache`` (hits / misses / evictions /
write-backs) and satisfy ``hits + misses == logical page reads``, where
the logical count is exactly what the pool-off configuration charges.

Cross-query sharing (``repro.server``)
--------------------------------------

A pool can also back *several* devices at once — the service's shared
pool, where hot relations are read once and hit from cache across
sessions.  Three extensions make that sound without disturbing the
single-device accounting above:

* every access may name the device doing the work (``via=``); hits,
  misses, evictions and write-backs are charged to *that* device's
  counters, so each session's :class:`~repro.em.stats.IOStats` stays
  byte-identical to what it alone caused (omitting ``via`` charges the
  pool's own device — the historical behavior);
* pins may name an ``owner`` (a session); :meth:`release_owner` drops
  exactly one owner's pins, and closing a session can therefore never
  leak pins that keep another session's frames unevictable.  An
  optional :attr:`PoolConfig.max_pin_share` caps the fraction of frames
  any one owner may pin (per-session fairness);
* dirty frames remember which device dirtied them, so
  ``flush(device=...)`` writes back only one session's deferred writes,
  charged to that session.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Hashable, TYPE_CHECKING

from repro.em.policies import ReplacementPolicy, make_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.em.device import Device


class BufferPoolError(RuntimeError):
    """Raised on pin/unpin misuse."""


@dataclass(frozen=True)
class PoolConfig:
    """Configuration for an opt-in buffer pool.

    The frame budget is given either in ``tuples`` (a fraction of the
    device's ``M``, the paper-natural unit; rounded down to whole
    frames) or directly in page ``frames``.  With neither set, the
    budget defaults to ``M`` tuples.  ``max_pin_share`` (0 < share <= 1)
    caps the fraction of frames a single pin owner may hold pinned —
    the fairness knob for cross-query pools; ``None`` means no cap.
    """

    tuples: int | None = None
    frames: int | None = None
    policy: str = "lru"
    max_pin_share: float | None = None

    def n_frames(self, M: int, B: int) -> int:
        """Resolve the frame budget in pages for a given machine."""
        if self.frames is not None:
            if self.frames < 1:
                raise ValueError(f"frames must be >= 1, got {self.frames}")
            return self.frames
        budget = self.tuples if self.tuples is not None else M
        if budget < 1:
            raise ValueError(f"tuples must be >= 1, got {budget}")
        return max(1, budget // B)

    def pin_cap(self, n_frames: int) -> int | None:
        """Max pinned frames per owner, or ``None`` when uncapped."""
        if self.max_pin_share is None:
            return None
        if not 0 < self.max_pin_share <= 1:
            raise ValueError(
                f"max_pin_share must be in (0, 1], got {self.max_pin_share}")
        return max(1, int(self.max_pin_share * n_frames))


class _Frame:
    """One resident page: dirtiness, pin count, and who dirtied it."""

    __slots__ = ("dirty", "pins", "dirtied_by")

    def __init__(self, dirty: bool, dirtied_by: "Device | None") -> None:
        self.dirty = dirty
        self.pins = 0
        self.dirtied_by = dirtied_by if dirty else None


class BufferPool:
    """A fixed budget of page frames with a pluggable eviction policy.

    Pages are keyed by ``(file, page_number)``; the pool never stores
    tuple data (the simulated disk already holds it) — it tracks
    residency so the device can charge hits nothing.
    """

    def __init__(self, device: "Device", config: PoolConfig) -> None:
        self.device = device
        self.config = config
        self.n_frames = config.n_frames(device.M, device.B)
        self._pin_cap = config.pin_cap(self.n_frames)
        self.policy: ReplacementPolicy = make_policy(config.policy)
        self._frames: dict[tuple[Hashable, int], _Frame] = {}
        # owner -> {key: pins held by that owner on that frame}
        self._owner_pins: dict[Hashable, dict[tuple[Hashable, int], int]] = {}

    # -- introspection -------------------------------------------------

    @property
    def cache(self):
        """The device's cache counters (reset with ``reset_stats``)."""
        return self.device.stats.cache

    def contains(self, f: Hashable, page: int) -> bool:
        """Is the page currently resident?"""
        return (f, page) in self._frames

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    @property
    def resident_tuples(self) -> int:
        """Upper bound on memory held by the pool, in tuples."""
        return len(self._frames) * self.device.B

    def pin_count(self, f: Hashable, page: int) -> int:
        frame = self._frames.get((f, page))
        return 0 if frame is None else frame.pins

    def owner_pins(self, owner: Hashable = None) -> int:
        """Total pins currently held by ``owner``."""
        return sum(self._owner_pins.get(owner, {}).values())

    def pin_accounting(self) -> dict[Hashable, dict[str, int]]:
        """Per-owner fairness view: pinned frames and total pins."""
        return {owner: {"frames": len(held), "pins": sum(held.values())}
                for owner, held in self._owner_pins.items() if held}

    # -- page access (called by Device.charge_read / charge_write) -----

    def read_page(self, f: Hashable, page: int, *,
                  via: "Device | None" = None) -> None:
        """Account one logical page read: a hit or a charged miss.

        ``via`` is the device doing the access (defaults to the pool's
        own); its counters receive the hit/miss and any physical read.
        """
        dev = self.device if via is None else via
        key = (f, page)
        frame = self._frames.get(key)
        if frame is not None:
            dev.stats.cache.hits += 1
            dev._notify_cache("hit", f, page)
            self.policy.on_access(key)
            return
        dev.stats.cache.misses += 1
        dev._notify_cache("miss", f, page)
        dev._record_read(f, page)
        self._admit(key, dirty=False, via=dev)

    def write_page(self, f: Hashable, page: int, *,
                   via: "Device | None" = None) -> None:
        """Account one logical page write, deferred until write-back."""
        dev = self.device if via is None else via
        key = (f, page)
        frame = self._frames.get(key)
        if frame is not None:
            frame.dirty = True
            frame.dirtied_by = dev
            self.policy.on_access(key)
            return
        if not self._admit(key, dirty=True, via=dev):
            # Every frame pinned: write through, uncached.
            dev._record_write(f, page)

    # -- pinning -------------------------------------------------------

    def pin(self, f: Hashable, page: int, *, via: "Device | None" = None,
            owner: Hashable = None) -> None:
        """Fault the page in if needed and protect it from eviction.

        Pins are attributed to ``owner`` (a session, or the anonymous
        ``None`` owner for classic single-device use) so they can be
        released wholesale with :meth:`release_owner` and audited with
        :meth:`pin_accounting`.
        """
        key = (f, page)
        held = self._owner_pins.get(owner, {})
        if (self._pin_cap is not None and key not in held
                and len(held) >= self._pin_cap):
            raise BufferPoolError(
                f"owner {owner!r} already pins {len(held)} frames; the "
                f"fairness cap is {self._pin_cap} of {self.n_frames} "
                f"(max_pin_share={self.config.max_pin_share})")
        if key not in self._frames:
            self.read_page(f, page, via=via)
        frame = self._frames.get(key)
        if frame is None:
            raise BufferPoolError(
                f"cannot pin page {page} of {f!r}: every frame is pinned")
        frame.pins += 1
        held = self._owner_pins.setdefault(owner, {})
        held[key] = held.get(key, 0) + 1

    def unpin(self, f: Hashable, page: int, *,
              owner: Hashable = None) -> None:
        key = (f, page)
        frame = self._frames.get(key)
        held = self._owner_pins.get(owner)
        if frame is None or not held or held.get(key, 0) == 0:
            raise BufferPoolError(
                f"unpin of page {page} of {f!r} without a matching pin"
                + (f" (owner {owner!r})" if owner is not None else ""))
        frame.pins -= 1
        if held[key] == 1:
            del held[key]
        else:
            held[key] -= 1
        if not held:
            del self._owner_pins[owner]

    def release_owner(self, owner: Hashable = None) -> int:
        """Drop every pin held by ``owner``; returns how many.

        This is the session-close path: a departing owner's pins must
        not keep frames unevictable for everyone else, and — the other
        direction of the same bug — closing one session must *not*
        disturb pins other sessions still hold.
        """
        held = self._owner_pins.pop(owner, None)
        if not held:
            return 0
        released = 0
        for key, count in held.items():
            frame = self._frames.get(key)
            if frame is not None:
                frame.pins -= count
            released += count
        return released

    @contextlib.contextmanager
    def pinned(self, f: Hashable, page: int, *,
               via: "Device | None" = None, owner: Hashable = None):
        """Context manager pinning one page for the enclosed scope."""
        self.pin(f, page, via=via, owner=owner)
        try:
            yield
        finally:
            self.unpin(f, page, owner=owner)

    # -- lifecycle -----------------------------------------------------

    def flush(self, device: "Device | None" = None) -> None:
        """Write back dirty pages (pages stay resident, clean).

        With ``device`` given, only pages *dirtied by* that device are
        written back, charged to it — so one session flushing its
        deferred writes cannot pay for (or expose) another's.  Without,
        every dirty page is written back, each charged to the device
        that dirtied it (the pool's own device when unrecorded).
        """
        for key, frame in self._frames.items():
            if not frame.dirty:
                continue
            if device is not None and frame.dirtied_by is not device:
                continue
            self._write_back(key, frame)

    def close(self) -> None:
        """Flush, then drop every frame and all pin accounting."""
        self.flush()
        self._frames.clear()
        self._owner_pins.clear()
        self.policy.clear()

    def clear(self) -> None:
        """Drop every frame *without* write-back.

        Only for ``Device.reset_stats``: deferred writes would otherwise
        leak into the zeroed counters.  Pin accounting is reset with the
        frames it described.
        """
        self._frames.clear()
        self._owner_pins.clear()
        self.policy.clear()

    def drop_matching(self, pred: Callable[[tuple[Hashable, int]], bool],
                      *, include_dirty: bool = False) -> int:
        """Forget resident frames whose key satisfies ``pred``.

        No write-back is performed (flush first if the deferred writes
        matter); dirty frames are skipped unless ``include_dirty``.
        Pinned frames are never dropped.  Used by session pool views to
        retire their private (temp-file) frames without touching pages
        shared across sessions.
        """
        dropped = 0
        for key in [k for k in self._frames if pred(k)]:
            frame = self._frames[key]
            if frame.pins or (frame.dirty and not include_dirty):
                continue
            del self._frames[key]
            self.policy.remove(key)
            dropped += 1
        if dropped:
            self.device.metrics.gauge("pool.resident_pages").set(
                len(self._frames))
        return dropped

    # -- internals -----------------------------------------------------

    def _write_back(self, key: tuple[Hashable, int], frame: _Frame) -> None:
        dev = frame.dirtied_by or self.device
        dev._record_write(key[0], key[1])
        dev.stats.cache.writebacks += 1
        dev._notify_cache("writeback", key[0], key[1])
        frame.dirty = False
        frame.dirtied_by = None

    def _admit(self, key: tuple[Hashable, int], dirty: bool,
               via: "Device | None" = None) -> bool:
        """Make ``key`` resident, evicting if full.  False if impossible."""
        dev = self.device if via is None else via
        if len(self._frames) >= self.n_frames and not self._evict_one(dev):
            return False
        self._frames[key] = _Frame(dirty, dev)
        self.policy.on_insert(key)
        self.device.metrics.gauge("pool.resident_pages").set(
            len(self._frames))
        return True

    def _evict_one(self, dev: "Device") -> bool:
        victim = self.policy.victim(
            lambda k: self._frames[k].pins == 0)
        if victim is None:
            return False
        frame = self._frames.pop(victim)
        dev.stats.cache.evictions += 1
        dev._notify_cache("eviction", victim[0], victim[1])
        if frame.dirty:
            self._write_back(victim, frame)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BufferPool(frames={self.n_frames}, "
                f"policy={self.config.policy!r}, "
                f"resident={len(self._frames)})")
