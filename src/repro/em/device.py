"""The simulated external-memory machine.

A :class:`Device` bundles the model parameters ``M`` (memory size, in
tuples) and ``B`` (block size, in tuples) with the global
:class:`~repro.em.stats.IOStats` counter and
:class:`~repro.em.stats.MemoryGauge`.  Every on-disk structure
(:class:`~repro.em.file.EMFile`) is created through a device so that all
I/O performed anywhere in an algorithm is charged to one place.

Typical use::

    dev = Device(M=1024, B=32)
    f = dev.new_file("R1")
    with f.writer() as w:
        for t in tuples:
            w.append(t)
    print(dev.stats.total)
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.em.bufferpool import BufferPool, PoolConfig
from repro.em.stats import IOStats, MemoryGauge, PhaseTracker
from repro.obs.metrics import NULL_METRICS
from repro.obs.spans import NULL_SPAN

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.em.file import EMFile


class Device:
    """A simulated disk plus its I/O and memory accounting.

    Parameters
    ----------
    M:
        Main-memory capacity in tuples.  The paper assumes a memory of
        ``c*M`` for a constant ``c``; see :class:`MemoryGauge`.
    B:
        Block (page) size in tuples.  Transferring one block costs one
        I/O regardless of how full it is.
    mem_slack:
        Multiple of ``M`` the memory gauge tolerates before (in strict
        mode) raising :class:`~repro.em.stats.MemoryBudgetExceeded`.
    strict_memory:
        When true, exceeding the slacked budget raises instead of only
        being recorded in ``memory.peak``.
    buffer_pool:
        ``None`` (the default) preserves the paper-faithful accounting:
        every page entry is a fresh I/O.  Pass a
        :class:`~repro.em.bufferpool.PoolConfig` to interpose a
        :class:`~repro.em.bufferpool.BufferPool` so hot pages hit in
        cache; counters appear in ``stats.cache``.
    tracer:
        An optional :class:`~repro.obs.tracer.Tracer` observing every
        charge (physical I/O, cache events, phases, memory peaks).
        Purely passive: with or without a tracer, every counter is
        byte-identical.
    profiler:
        An optional :class:`~repro.obs.spans.SpanProfiler`; spans
        opened through :meth:`span` (and by every
        :class:`~repro.em.stats.PhaseTracker` phase) snapshot the
        counters at entry/exit.  Passive like the tracer.
    metrics:
        An optional :class:`~repro.obs.metrics.MetricsRegistry`.
        Without one the device carries the shared
        :data:`~repro.obs.metrics.NULL_METRICS` sink, so instrumented
        code updates metrics unconditionally at near-zero cost.
    block_mode:
        When true (the default) the hot operators run their
        block-at-a-time implementations over the columnar cursor APIs
        of :mod:`repro.em.file`.  ``False`` selects the
        tuple-at-a-time reference paths.  Both modes charge identical
        I/O in identical order — the pinned baselines and the
        differential tests police it — so the flag only trades wall
        clock; it exists for the speedup measurement in
        ``benchmarks/bench_wallclock.py`` and as the documented cold
        path.
    """

    def __init__(self, M: int, B: int, *, mem_slack: float = 8.0,
                 strict_memory: bool = False,
                 buffer_pool: PoolConfig | None = None,
                 tracer=None, profiler=None, metrics=None,
                 block_mode: bool = True) -> None:
        if M < 1:
            raise ValueError(f"M must be >= 1, got {M}")
        if B < 1:
            raise ValueError(f"B must be >= 1, got {B}")
        if B > M:
            raise ValueError(f"block size B={B} cannot exceed memory M={M}")
        self.M = M
        self.B = B
        self.block_mode = block_mode
        self.stats = IOStats()
        self.memory = MemoryGauge(capacity=M, slack=mem_slack,
                                  strict=strict_memory)
        self.phases = PhaseTracker(self.stats)
        self.pool_config = buffer_pool
        self.pool = (None if buffer_pool is None
                     else BufferPool(self, buffer_pool))
        self._name_counter = itertools.count()
        self.tracer = None
        self.profiler = None
        self.metrics = NULL_METRICS
        if tracer is not None:
            self.attach_tracer(tracer)
        if profiler is not None:
            self.attach_profiler(profiler)
        if metrics is not None:
            self.attach_metrics(metrics)

    # -- observability -----------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Wire ``tracer`` into every accounting hook of this device."""
        self.tracer = tracer
        self.phases._tracer = tracer
        self.memory._tracer = tracer

    def detach_tracer(self) -> None:
        """Stop observing; counters are unaffected either way."""
        self.tracer = None
        self.phases._tracer = None
        self.memory._tracer = None

    def attach_profiler(self, profiler) -> None:
        """Wire ``profiler`` in: :meth:`span` records, phases emit spans."""
        self.profiler = profiler
        profiler.attach(self)
        self.phases._profiler = profiler

    def detach_profiler(self) -> None:
        """Stop profiling; counters are unaffected either way."""
        if self.profiler is not None:
            self.profiler.detach()
        self.profiler = None
        self.phases._profiler = None

    def attach_metrics(self, metrics) -> None:
        """Make ``metrics`` the registry instrumented code populates."""
        self.metrics = metrics

    def detach_metrics(self) -> None:
        """Swap back to the shared no-op metrics sink."""
        self.metrics = NULL_METRICS

    def attach_pool(self, pool) -> None:
        """Route this device's page charges through an external pool.

        ``pool`` must expose the charging surface of
        :class:`~repro.em.bufferpool.BufferPool` (``read_page`` /
        ``write_page`` / ``flush`` / ``clear``) — in practice a server
        session's view of a shared cross-query pool.  Replaces any
        constructor-owned pool; ``pool_config`` still describes only
        the latter.
        """
        self.pool = pool

    def detach_pool(self) -> None:
        """Charge directly again (the paper-faithful default)."""
        self.pool = None

    def span(self, name: str, kind: str = "operator", **attrs):
        """A profiled span, or the shared no-op when profiling is off.

        Instrumented code uses this unconditionally::

            with device.span("merge", fan_in=k):
                ...

        which costs one attribute check when no profiler is attached.
        """
        if self.profiler is None:
            return NULL_SPAN
        return self.profiler.span(name, kind, **attrs)

    @staticmethod
    def _file_label(f) -> str:
        """Display name for a file-like key (pool keys are Hashable)."""
        return getattr(f, "name", None) or str(f)

    # -- I/O charging (called by readers and writers) ----------------

    def charge_read(self, f: "EMFile", page: int) -> None:
        """Charge one logical page read, routed through the pool if any."""
        if self.stats.suspended:
            return
        if self.pool is not None:
            self.pool.read_page(f, page)
        else:
            self._record_read(f, page)

    def charge_write(self, f: "EMFile", page: int) -> None:
        """Charge one logical page write (deferred when pooled)."""
        if self.stats.suspended:
            return
        if self.pool is not None:
            self.pool.write_page(f, page)
        else:
            self._record_write(f, page)

    def _record_read(self, f, page: int) -> None:
        """Count one *physical* page read (the model's unit of cost).

        Every ``stats.reads`` increment in the codebase goes through
        here, so an attached tracer sees exactly the charged I/Os.
        """
        self.stats.reads += 1
        if self.tracer is not None:
            self.tracer.on_read(self._file_label(f), page)

    def _record_write(self, f, page: int) -> None:
        """Count one *physical* page write (see :meth:`_record_read`)."""
        self.stats.writes += 1
        if self.tracer is not None:
            self.tracer.on_write(self._file_label(f), page)

    def _notify_cache(self, kind: str, f, page: int) -> None:
        """Forward a pool event (hit/miss/eviction/writeback) if traced."""
        if self.tracer is not None:
            self.tracer.on_cache(kind, self._file_label(f), page)

    def flush_pool(self) -> None:
        """Write back deferred dirty pages; a no-op without a pool.

        Call at the end of a measured run so I/O totals are
        deterministic and comparable with the pool-off configuration.
        """
        if self.pool is not None:
            self.pool.flush()

    def new_file(self, name: str | None = None) -> "EMFile":
        """Create an empty on-disk file managed by this device."""
        from repro.em.file import EMFile

        if name is None:
            name = f"tmp{next(self._name_counter)}"
        return EMFile(self, name)

    # em-cost: N/B -- one write per page of the materialized tuples
    def file_from_tuples(self, tuples, name: str | None = None) -> "EMFile":
        """Materialize ``tuples`` on disk, charging the write I/Os."""
        f = self.new_file(name)
        with f.writer() as w:
            # em-loop-bound: N -- one iteration per materialized tuple
            for t in tuples:
                w.append(t)
        return f

    def file_from_tuples_free(self, tuples, name: str | None = None) -> "EMFile":
        """Materialize ``tuples`` on disk *without* charging I/Os.

        Used to set up benchmark inputs: the paper's model charges for
        the algorithm's work, not for the pre-existing input relations.
        Counting is *suspended* for the duration (not rewound after the
        fact): rewinding would erase I/O an open
        :class:`~repro.em.stats.PhaseTracker` phase already attributed,
        driving its exclusive total negative.
        """
        with self.stats.suspend():
            return self.file_from_tuples(tuples, name)

    def pages(self, n_tuples: int) -> int:
        """Number of pages occupied by ``n_tuples`` tuples."""
        return -(-n_tuples // self.B)

    def reset_stats(self) -> None:
        """Zero the I/O counters, phase totals, and the memory gauge.

        A buffer pool is emptied without write-back: its deferred
        writes belong to the history being discarded.
        """
        self.stats.reset()
        self.memory.reset()
        self.phases.reset()
        if self.pool is not None:
            self.pool.clear()
        if self.tracer is not None:
            self.tracer.reset()
        if self.profiler is not None:
            self.profiler.reset()
        self.metrics.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device(M={self.M}, B={self.B}, io={self.stats.total})"
