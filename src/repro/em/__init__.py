"""Simulated external-memory machine: device, files, loaders, sorting.

This subpackage is the substrate the paper's model (Aggarwal–Vitter
external memory, Section 1.1) runs on: a block device with exact I/O
accounting, page-buffered readers and writers, the skew-aware chunk
loaders of Section 2.3, and external merge sort.
"""

from repro.em.bufferpool import BufferPool, BufferPoolError, PoolConfig
from repro.em.device import Device
from repro.em.file import EMFile, FileSegment, SequentialReader, Writer
from repro.em.loaders import (Group, group_boundaries, load_chunks,
                              load_group_chunks, load_light_chunks,
                              scan_matching, split_heavy_light)
from repro.em.policies import (POLICIES, ClockPolicy, LRUPolicy,
                               MRUPolicy, ReplacementPolicy, make_policy)
from repro.em.sort import external_sort, is_sorted
from repro.em.stats import (CacheStats, IOStats, MemoryBudgetExceeded,
                            MemoryGauge, PhaseTracker)

__all__ = [
    "Device", "EMFile", "FileSegment", "SequentialReader", "Writer",
    "BufferPool", "BufferPoolError", "PoolConfig",
    "POLICIES", "ReplacementPolicy", "LRUPolicy", "ClockPolicy",
    "MRUPolicy", "make_policy",
    "Group", "group_boundaries", "load_chunks", "load_group_chunks",
    "load_light_chunks", "scan_matching", "split_heavy_light",
    "external_sort", "is_sorted",
    "CacheStats", "IOStats", "MemoryBudgetExceeded", "MemoryGauge",
    "PhaseTracker",
]
