"""The chunk-loading operations of Section 2.3 of the paper.

The paper defines skew relative to the memory size ``M``: a value ``a``
of attribute ``v`` is *heavy* in ``R(e)`` if at least ``M`` tuples of
``R(e)`` carry it, and *light* otherwise.  After sorting ``R(e)`` on
``v`` the file decomposes into maximal runs of equal ``v``-value
(groups), and the paper manipulates them with three operations, all
reproduced here with exact I/O accounting:

* ``load R(e)|_{v=a} into memory as M(e)`` — read the next ``M`` tuples
  of one (heavy) group: :func:`load_group_chunks`.
* ``load R(e) by v into memory as M(e)`` — read light tuples in value
  order until at least ``M`` are fetched, never splitting a group
  (yields at most ``2M`` tuples with at most ``M`` distinct values):
  :func:`load_light_chunks`.
* ``load R(e) into memory as M(e)`` — read the next ``M`` tuples of an
  unsorted file: :func:`load_chunks`.

:func:`group_boundaries` performs the single partitioning scan that
identifies groups (and hence heavy values) after a sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.em.file import FileSegment, Tuple

Key = Callable[[Tuple], Any]


@dataclass(frozen=True)
class Group:
    """A maximal run of tuples sharing one value on the sort attribute."""

    value: Any
    start: int
    stop: int

    @property
    def count(self) -> int:
        return self.stop - self.start

    def is_heavy(self, M: int) -> bool:
        """Heavy means at least ``M`` tuples carry this value (§2.3)."""
        return self.count >= M


# em-cost: N/B -- one sequential scan of the sorted segment
def group_boundaries(segment: FileSegment, key: Key) -> list[Group]:
    """Scan a sorted segment once and return its value groups in order.

    Costs one sequential read of the segment.  The returned boundary
    list is query-size metadata (one entry per distinct value) which the
    model lets us keep for free relative to the data pages; algorithms
    that cannot afford it only ever iterate it streamingly anyway.
    """
    groups: list[Group] = []
    reader = segment.reader()
    current_value: Any = None
    current_start = segment.start
    first = True
    if segment.device.block_mode:
        pos = segment.start
        append = groups.append
        # em-loop-bound: N/B -- one page block per iteration
        while not reader.exhausted:
            block = reader.read_page_block()
            keys = list(map(key, block))
            if first and keys:
                current_value, current_start, first = keys[0], pos, False
            if keys[0] == keys[-1] and keys[0] == current_value:
                pos += len(keys)  # whole page inside the current group
                continue
            for i, v in enumerate(keys):
                if v != current_value:
                    append(Group(current_value, current_start, pos + i))
                    current_value, current_start = v, pos + i
            pos += len(keys)
    else:
        # em-loop-bound: N -- one tuple per iteration
        while not reader.exhausted:
            pos = reader.position
            t = reader.next()
            v = key(t)
            if first:
                current_value, current_start, first = v, pos, False
            elif v != current_value:
                groups.append(Group(current_value, current_start, pos))
                current_value, current_start = v, pos
    if not first:
        groups.append(Group(current_value, current_start, segment.stop))
    return groups


def split_heavy_light(groups: list[Group], M: int) -> tuple[list[Group], list[Group]]:
    """Partition groups into (heavy, light) with respect to ``M``."""
    heavy = [g for g in groups if g.is_heavy(M)]
    light = [g for g in groups if not g.is_heavy(M)]
    return heavy, light


# em-cost: N/B -- each page of the segment is read exactly once
# em-yields: N/M
def load_chunks(segment: FileSegment, M: int) -> Iterator[list[Tuple]]:
    """Yield successive memory loads of up to ``M`` tuples.

    This is the paper's ``load R(e) into memory as M(e)`` for unsorted
    files (and for one heavy group when applied to its segment).
    """
    reader = segment.reader()
    block_mode = segment.device.block_mode
    # em-loop-bound: N/M -- one memory-load of tuples per iteration
    while not reader.exhausted:
        chunk = reader.read_block(M) if block_mode else reader.read_up_to(M)
        with segment.device.memory.hold(len(chunk)):
            yield chunk


# em-cost: N/B -- one pass over the group's pages (via load_chunks)
# em-yields: N/M
def load_group_chunks(segment: FileSegment, group: Group, M: int) -> Iterator[list[Tuple]]:
    """Yield ``M``-tuple loads of one group: ``load R(e)|_{v=a}``."""
    yield from load_chunks(segment.subsegment(group.start, group.stop), M)


# em-cost: amortized N/B -- the group spans read are disjoint and in
# file order, so together they touch each page of the segment at most
# once; per-group accounting would overcount shared boundary pages
# em-yields: N/M
def load_light_chunks(segment: FileSegment, light_groups: list[Group],
                      M: int) -> Iterator[list[Tuple]]:
    """Yield memory loads covering the light groups, in value order.

    Implements ``load R(e) by v into memory as M(e)``: tuples with the
    same value are loaded together, and loading stops as soon as at
    least ``M`` tuples are resident.  Because every group is light
    (< ``M`` tuples), each yielded chunk holds fewer than ``2M`` tuples
    and fewer than ``M`` distinct values — the properties the paper's
    analysis relies on.

    Heavy groups interleaved between the light ones in the underlying
    file are skipped with a free seek; their pages are not charged.
    """
    reader = segment.reader()
    block_mode = segment.device.block_mode
    chunk: list[Tuple] = []
    for g in light_groups:
        if g.count >= M:
            raise ValueError(
                f"group for value {g.value!r} has {g.count} >= M={M} tuples; "
                "light loader requires light groups only")
    if block_mode:
        # Batch contiguous groups into one span read per chunk: the
        # span's pages are charged ascending on entry, exactly the
        # sequence the per-group (and per-tuple) reads produce.  The
        # span ends with the first group that lifts the chunk to >= M
        # — the same group after which the scalar path yields.
        i, n = 0, len(light_groups)
        while i < n:
            g = light_groups[i]
            if reader.position < g.start:
                reader.skip_to(g.start)
            start = reader.position
            stop = g.stop
            while (stop - start + len(chunk) < M and i + 1 < n
                   and light_groups[i + 1].start == stop):
                i += 1
                stop = light_groups[i].stop
            chunk.extend(reader.read_block(stop - start))
            if len(chunk) >= M:
                with segment.device.memory.hold(len(chunk)):
                    yield chunk
                chunk = []
            i += 1
    else:
        for g in light_groups:
            if reader.position < g.start:
                reader.skip_to(g.start)
            while reader.position < g.stop:
                chunk.append(reader.next())
            if len(chunk) >= M:
                with segment.device.memory.hold(len(chunk)):
                    yield chunk
                chunk = []
    if chunk:
        with segment.device.memory.hold(len(chunk)):
            yield chunk


# em-cost: N/B -- one sequential scan of the segment
# em-yields: N
def scan_matching(segment: FileSegment, key: Key,
                  wanted: set) -> Iterator[Tuple]:
    """Stream the tuples of a segment whose key value is in ``wanted``.

    One sequential read of the segment; ``wanted`` is assumed to be
    memory-resident (the caller charges it).  This is the semijoin
    primitive ``R(e') ⋉ M_1`` used when peeling light chunks.
    """
    if segment.device.block_mode:
        for block in segment.scan_blocks():
            for t in block:
                if key(t) in wanted:
                    yield t
    else:
        for t in segment.scan():
            if key(t) in wanted:
                yield t
