"""Replacement policies for the buffer pool.

A policy owns the *ordering* question only: given the set of resident
page keys, which unpinned frame should be evicted next?  Residency,
dirtiness, pin counts, and all I/O accounting stay in
:class:`~repro.em.bufferpool.BufferPool`; the policy sees opaque
hashable keys and three events:

* :meth:`~ReplacementPolicy.on_insert` — the key became resident;
* :meth:`~ReplacementPolicy.on_access` — the key was hit while resident;
* :meth:`~ReplacementPolicy.victim` — choose (and forget) an evictable
  key, or return ``None`` when every candidate is pinned.

Three classic policies are provided:

* ``lru`` — evict the least recently used page.  The default: right for
  hot-set workloads (repeated probes into small relations).
* ``clock`` — the second-chance approximation of LRU: a reference bit
  per frame and a sweeping hand.  Cheaper bookkeeping, close to LRU.
* ``mru`` — evict the *most* recently used page.  The antidote to
  sequential flooding: on cyclic re-scans larger than the pool, LRU
  evicts every page right before its reuse, while MRU retains a stable
  prefix of the scan.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable

Key = Hashable
Evictable = Callable[[Key], bool]


class ReplacementPolicy:
    """Interface the buffer pool drives; see the module docstring."""

    def on_insert(self, key: Key) -> None:
        raise NotImplementedError

    def on_access(self, key: Key) -> None:
        raise NotImplementedError

    def victim(self, evictable: Evictable) -> Key | None:
        """Choose an evictable key, remove it from the policy, return it.

        Returns ``None`` when no tracked key satisfies ``evictable``
        (every frame is pinned).
        """
        raise NotImplementedError

    def remove(self, key: Key) -> None:
        """Forget ``key`` without an eviction decision (flush/clear)."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least recently used: evict the coldest page."""

    name = "lru"

    def __init__(self) -> None:
        self._order: OrderedDict[Key, None] = OrderedDict()

    def on_insert(self, key: Key) -> None:
        self._order[key] = None

    def on_access(self, key: Key) -> None:
        self._order.move_to_end(key)

    def victim(self, evictable: Evictable) -> Key | None:
        for key in self._order:  # oldest first
            if evictable(key):
                del self._order[key]
                return key
        return None

    def remove(self, key: Key) -> None:
        self._order.pop(key, None)

    def clear(self) -> None:
        self._order.clear()


class MRUPolicy(LRUPolicy):
    """Most recently used: evict the hottest page.

    Optimal for cyclic re-scans that do not fit in the pool (LRU's
    sequential-flooding pathology): the first ``frames`` pages of the
    scanned file stay resident and hit on every pass.
    """

    name = "mru"

    def victim(self, evictable: Evictable) -> Key | None:
        for key in reversed(self._order):  # newest first
            if evictable(key):
                del self._order[key]
                return key
        return None


class ClockPolicy(ReplacementPolicy):
    """Second-chance LRU approximation with a sweeping hand.

    Pages are admitted with their reference bit set; a hit re-sets it.
    The hand sweeps the ring clearing set bits and evicts the first
    unpinned page found with its bit already clear.
    """

    name = "clock"

    def __init__(self) -> None:
        self._ring: list[Key] = []
        self._ref: dict[Key, bool] = {}
        self._hand = 0

    def on_insert(self, key: Key) -> None:
        self._ring.append(key)
        self._ref[key] = True

    def on_access(self, key: Key) -> None:
        self._ref[key] = True

    def victim(self, evictable: Evictable) -> Key | None:
        if not self._ring:
            return None
        # Two full sweeps clear every reference bit; a third pass can
        # only fail if every page is pinned.
        for _ in range(3 * len(self._ring)):
            if self._hand >= len(self._ring):
                self._hand = 0
            key = self._ring[self._hand]
            if not evictable(key):
                self._hand += 1
            elif self._ref[key]:
                self._ref[key] = False
                self._hand += 1
            else:
                self._ring.pop(self._hand)
                del self._ref[key]
                return key
        return None

    def remove(self, key: Key) -> None:
        if key in self._ref:
            index = self._ring.index(key)
            self._ring.pop(index)
            if index < self._hand:
                self._hand -= 1
            del self._ref[key]

    def clear(self) -> None:
        self._ring.clear()
        self._ref.clear()
        self._hand = 0


POLICIES: dict[str, type[ReplacementPolicy]] = {
    LRUPolicy.name: LRUPolicy,
    ClockPolicy.name: ClockPolicy,
    MRUPolicy.name: MRUPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by registry name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"available: {', '.join(sorted(POLICIES))}") from None
    return cls()
