"""Columnar tuple storage backing :class:`~repro.em.file.EMFile`.

A :class:`ColumnStore` holds the tuples of one file column-major: one
typed buffer per attribute position instead of one Python tuple object
per row.  Integer columns are struct-packed into ``array('q')`` (8-byte
machine integers) when the file is sealed; everything else stays in a
plain list column.  Rows are materialized back into tuples only at the
block granularity readers ask for, with one C-level ``zip`` of column
slices per block instead of one Python-level indexing chain per tuple.

The store is a *physical layout* only: page structure (which rows share
a page, what a page entry costs) remains the business of the cursors in
:mod:`repro.em.file`, which charge the device exactly as the row-major
layout did.  Nothing in here touches :class:`~repro.em.stats.IOStats`.

Rows of unequal arity (rare, but legal for scratch files) switch the
store to a row-major fallback so nothing is ever rejected.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, List, Sequence, Union

Tuple = tuple

#: Column buffer: a packed int64 array or a plain object list.
Column = Union["array[int]", List[Any]]

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1


def _packable(values: Sequence[Any]) -> bool:
    """Can this column be struct-packed as int64?

    Only genuine ``int`` values qualify — ``bool`` (or any int
    subclass) would silently change the element's type when read back,
    so it keeps the column in object form.  The checks run as whole-
    column C passes (``map(type, ...)``, ``min``/``max``), not a
    per-value Python loop: sealing is on the write path of every run
    and merge file the sort produces.
    """
    if set(map(type, values)) != {int}:
        return False
    return _I64_MIN <= min(values) and max(values) <= _I64_MAX


class ColumnStore:
    """Column-major tuple storage with block (row-range) access."""

    __slots__ = ("_cols", "_n", "_width", "_ragged")

    def __init__(self) -> None:
        self._cols: list[Column] | None = None
        self._n = 0
        self._width: int | None = None
        self._ragged: list[Tuple] | None = None

    # -- writing -----------------------------------------------------

    def append_rows(self, rows: Sequence[Tuple]) -> None:
        """Bulk-append ``rows`` (the writer's page flush)."""
        if not rows:
            return
        if self._ragged is not None:
            self._ragged.extend(rows)
            self._n += len(rows)
            return
        if self._width is None:
            self._width = len(rows[0])
            self._cols = [[] for _ in range(self._width)]
        cols = self._cols
        assert cols is not None
        if set(map(len, rows)) != {self._width}:
            self._to_ragged()
            self.append_rows(rows)
            return
        # One C-level transpose per flush instead of a Python loop per
        # value; `zip(*rows)` yields exactly `width` columns because the
        # arity check above passed.
        for col, new in zip(cols, zip(*rows)):
            col.extend(new)
        self._n += len(rows)

    def _to_ragged(self) -> None:
        """Demote to row-major storage (mixed-arity rows)."""
        self._ragged = self.rows(0, self._n)
        self._cols = None
        self._width = None

    def seal(self) -> None:
        """Struct-pack integer columns; called when the file seals."""
        if self._cols is None:
            return
        for j, col in enumerate(self._cols):
            if isinstance(col, list) and col and _packable(col):
                self._cols[j] = array("q", col)

    # -- reading -----------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def row(self, i: int) -> Tuple:
        """Materialize one row as a tuple."""
        if self._ragged is not None:
            return self._ragged[i]
        assert self._cols is not None
        return tuple(col[i] for col in self._cols)

    def rows(self, start: int, stop: int) -> list[Tuple]:
        """Materialize rows ``[start, stop)`` as a list of tuples.

        One zip over column slices — the block-at-a-time materialization
        every cursor read goes through.
        """
        if start >= stop:
            return []
        if self._ragged is not None:
            return self._ragged[start:stop]
        if self._width == 0:
            return [()] * (stop - start)
        assert self._cols is not None
        return list(zip(*(col[start:stop] for col in self._cols)))

    def iter_rows(self, start: int, stop: int) -> Iterator[Tuple]:
        return iter(self.rows(start, stop))

    # -- introspection (tests, repr) ---------------------------------

    @property
    def column_kinds(self) -> tuple[str, ...]:
        """Per-column layout: ``"i64"`` packed or ``"obj"`` list.

        ``("ragged",)`` when the store fell back to row-major storage.
        """
        if self._ragged is not None:
            return ("ragged",)
        if self._cols is None:
            return ()
        return tuple("i64" if isinstance(c, array) else "obj"
                     for c in self._cols)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ColumnStore(n={self._n}, "
                f"kinds={list(self.column_kinds)})")
