"""External merge sort with exact I/O accounting.

The standard EM sort: form sorted runs of ``M`` tuples in memory, then
merge them with fan-in ``M/B - 1`` until a single run remains.  Total
cost is ``O((N/B) log_{M/B}(N/M))`` I/Os — the ``sort(N)`` bound the
paper's Õ-notation absorbs (Section 1.1).

Both phases are block-at-a-time when the device's ``block_mode`` is on
(the default): run formation reads each ``M``-chunk as one block, and
the tournament merge feeds the heap from materialized page blocks and
flushes the output a page block at a time.  The tuple-at-a-time
reference paths remain for ``block_mode=False``; both charge identical
I/Os *in the identical order* — the sequence of page accesses, not
just their count, is observable through the buffer pool.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.em.device import Device
from repro.em.file import EMFile, FileSegment, Tuple

Key = Callable[[Tuple], Any]


# em-cost: N/B * log(N/M) + N/B -- form runs in one pass, then
# log_{M/B}(N/M) merge levels each re-reading and re-writing the data
def external_sort(source: EMFile | FileSegment, key: Key,
                  name: str | None = None) -> EMFile:
    """Sort ``source`` by ``key`` into a new file on the same device.

    The sort is stable within the limits of the run-merge structure
    (run formation chunks the source in order and the tournament breaks
    ties by run index).
    """
    if isinstance(source, EMFile):
        source = source.whole()
    device = source.device

    with device.span("external_sort", n=len(source)):
        runs = _form_runs(source, key, name)
        merged = _merge_runs(device, runs, key, name)
    return merged


# em-cost: N/B -- each input tuple is read once and written into a run once
def _form_runs(segment: FileSegment, key: Key,
               name: str | None) -> list[EMFile]:
    """Phase 1: read ``M`` tuples at a time, sort in memory, write runs."""
    device = segment.device
    block_mode = device.block_mode
    run_lengths = device.metrics.histogram("sort.run_tuples")
    runs: list[EMFile] = []
    reader = segment.reader()
    i = 0
    with device.span("form_runs"):
        # em-loop-bound: N/M -- one memory-load chunk per iteration
        while not reader.exhausted:
            # Charge the gauge *before* reading: the chunk occupies
            # memory as it streams in, so a strict budget must police
            # the read itself, not just the sort that follows.
            n = min(device.M, reader.remaining())
            with device.memory.hold(n):
                chunk = (reader.read_block(n) if block_mode
                         else reader.read_up_to(n))
                chunk.sort(key=key)
                run = device.new_file(
                    None if name is None else f"{name}.run{i}")
                with run.writer() as w:
                    if block_mode:
                        w.append_block(chunk)
                    else:
                        # em-loop-bound: M -- the chunk fits in memory
                        for t in chunk:
                            w.append(t)
            run_lengths.observe(n)
            runs.append(run)
            i += 1
    if not runs:
        empty = device.new_file(name)
        empty.writer().close()
        runs.append(empty)
    # Count the runs actually returned: an empty source still yields
    # one (synthesized, empty) run, so ``sort.runs`` never reads 0 for
    # a sort that happened.
    device.metrics.counter("sort.runs").inc(len(runs))
    return runs


# em-cost: N/B * log(N/M) -- one full read-and-write pass per merge level
def _merge_runs(device: Device, runs: list[EMFile], key: Key,
                name: str | None) -> EMFile:
    """Phase 2: repeatedly merge with fan-in ``max(2, M//B - 1)``."""
    fan_in = max(2, device.M // device.B - 1)
    level = 0
    # em-loop-bound: log(N/M) -- fan-in M/B shrinks the run count
    # geometrically, so the level count is log_{M/B}(N/M)
    while len(runs) > 1:
        with device.span("merge_level", level=level, runs=len(runs),
                         fan_in=fan_in):
            next_runs: list[EMFile] = []
            # em-loop-bound: 1 -- the batches partition this level's
            # runs, so one level's merges together read and write each
            # tuple once; _merge_once is counted in whole-level units
            for j in range(0, len(runs), fan_in):
                batch = runs[j:j + fan_in]
                out_name = (None if name is None
                            else f"{name}.merge{level}.{j // fan_in}")
                next_runs.append(_merge_once(device, batch, key, out_name))
        device.metrics.counter("sort.merge_levels").inc()
        runs = next_runs
        level += 1
    result = runs[0]
    if name is not None:
        result.name = name
    return result


# em-cost: amortized N/B -- one pass over the batch: every page of the
# input runs is read once and every output page is written once
def _merge_once(device: Device, runs: list[EMFile], key: Key,
                name: str | None) -> EMFile:
    """Merge up to fan-in runs into one sorted file via a tournament."""
    if len(runs) == 1:
        return runs[0]
    out = device.new_file(name)
    B = device.B
    # Each open run holds one buffered page; the output holds one more.
    with device.memory.hold((len(runs) + 1) * B):
        with out.writer() as w:
            if device.block_mode:
                # Same tournament as the scalar path below — the heap
                # entries, tie-breaking counter, and pop → flush →
                # refill order must match exactly, because with a
                # buffer pool the *sequence* of page accesses (not just
                # their count) is observable.  Only the granularity
                # changes: each run feeds from a materialized page
                # block (charged when fetched, exactly when a
                # tuple-at-a-time reader would cross the boundary) and
                # the output flushes a full page block at the same
                # B-tuple boundaries the scalar writer flushes at.
                readers = [r.reader() for r in runs]
                bufs: list[list[Tuple]] = [[] for _ in runs]
                kbufs: list[list[Any]] = [[] for _ in runs]
                bpos = [0] * len(runs)
                counter = itertools.count()
                heappush, heappop = heapq.heappush, heapq.heappop
                heap: list[tuple[Any, int, int, Tuple]] = []
                for idx, rd in enumerate(readers):
                    if not rd.exhausted:
                        buf = rd.read_page_block()
                        bufs[idx] = buf
                        kbufs[idx] = list(map(key, buf))
                        bpos[idx] = 1
                        heappush(heap, (kbufs[idx][0], next(counter),
                                        idx, buf[0]))
                outbuf: list[Tuple] = []
                append_out = outbuf.append
                while heap:
                    _, _, idx, t = heappop(heap)
                    append_out(t)
                    if len(outbuf) == B:
                        w.append_block(outbuf)
                        outbuf.clear()
                    buf = bufs[idx]
                    i = bpos[idx]
                    if i < len(buf):
                        bpos[idx] = i + 1
                        heappush(heap, (kbufs[idx][i], next(counter),
                                        idx, buf[i]))
                    else:
                        rd = readers[idx]
                        if not rd.exhausted:
                            buf = rd.read_page_block()
                            bufs[idx] = buf
                            kb = list(map(key, buf))
                            kbufs[idx] = kb
                            bpos[idx] = 1
                            heappush(heap, (kb[0], next(counter),
                                            idx, buf[0]))
                if outbuf:
                    w.append_block(outbuf)
            else:
                readers = [r.reader() for r in runs]
                counter = itertools.count()
                heap: list[tuple[Any, int, int, Tuple]] = []
                for idx, rd in enumerate(readers):
                    if not rd.exhausted:
                        t = rd.next()
                        heapq.heappush(heap, (key(t), next(counter), idx, t))
                while heap:
                    _, _, idx, t = heapq.heappop(heap)
                    w.append(t)
                    rd = readers[idx]
                    if not rd.exhausted:
                        t2 = rd.next()
                        heapq.heappush(heap,
                                       (key(t2), next(counter), idx, t2))
    return out


def is_sorted(source: EMFile | FileSegment, key: Key) -> bool:  # em-effects: FREE_PEEK -- sortedness oracle for tests; never on a counted path
    """Check sortedness **without charging I/O** (test helper)."""
    tuples = source.peek_tuples()
    return all(key(tuples[i]) <= key(tuples[i + 1])
               for i in range(len(tuples) - 1))
