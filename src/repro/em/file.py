"""On-disk tuple files for the simulated external-memory machine.

An :class:`EMFile` is an append-only sequence of tuples laid out in
pages of ``B`` tuples.  Physically the tuples live in a columnar
:class:`~repro.em.pages.ColumnStore` (struct-packed ``array`` columns
for integers); logically nothing changes — all access goes through
cursors that charge the device's :class:`~repro.em.stats.IOStats`:

* :class:`Writer` buffers up to ``B`` tuples and charges one write per
  flushed page (including the final partial page).
* :class:`SequentialReader` charges one read each time it enters a page
  it has not yet buffered.  Re-scanning a file with a fresh reader
  charges again, exactly as re-reading from disk would.

A :class:`FileSegment` is a contiguous ``[start, stop)`` slice of a
file — e.g. ``R(e)|_{v=a}`` inside a file sorted on ``v`` — and reads
through the same page-granular accounting.

Block APIs
----------

Cursors also move whole blocks so operators can amortize the Python
interpreter over many tuples per call:

* :meth:`SequentialReader.read_block` — up to ``n`` tuples in one call;
* :meth:`SequentialReader.read_page_block` — the rest of the current
  page (never more than ``B`` tuples, so it needs no memory hold);
* :meth:`Writer.append_block` / :meth:`Writer.write_block` — bulk
  append, flushing full pages as they fill.

Every block call charges **exactly** the page I/Os the equivalent
tuple-at-a-time loop would, in the same order: a block read entering
pages ``p..q`` charges them ascending, just as ``next()`` would when
crossing each boundary, and a block append charges one write per page
at the same fill points ``append()`` flushes at.  Buffer-pool hit/miss
sequences and tracer event streams are therefore byte-identical — the
property the pinned baselines and the tracer-transparency tests
enforce.  Blocks larger than one page occupy real memory; callers
account for them with ``device.memory.hold`` exactly as they did for
tuple loops that materialized the same chunk.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence, TYPE_CHECKING

from repro.em.pages import ColumnStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.em.device import Device

Tuple = tuple
Key = Callable[[Tuple], Any]


class EMFile:
    """A sequence of tuples stored on the simulated disk.

    Files are created through :meth:`repro.em.device.Device.new_file`
    and populated through :meth:`writer`.  Once the writer is closed the
    file is sealed and read-only; sealing struct-packs the integer
    columns of the backing :class:`~repro.em.pages.ColumnStore`.
    """

    def __init__(self, device: "Device", name: str) -> None:
        self.device = device
        self.name = name
        self._store = ColumnStore()
        self._sealed = False

    # -- writing -----------------------------------------------------

    def writer(self) -> "Writer":
        """Return a page-buffered writer; usable as a context manager."""
        if self._sealed:
            raise RuntimeError(f"file {self.name!r} is sealed")
        return Writer(self)

    # -- metadata ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    @property
    def n_pages(self) -> int:
        """Pages occupied on disk."""
        return self.device.pages(len(self._store))

    @property
    def column_kinds(self) -> tuple[str, ...]:
        """Physical column layout (``"i64"`` packed / ``"obj"`` list)."""
        return self._store.column_kinds

    # -- reading -----------------------------------------------------

    def reader(self) -> "SequentialReader":
        """A sequential reader over the whole file."""
        return SequentialReader(self, 0, len(self._store))

    def segment(self, start: int, stop: int) -> "FileSegment":
        """The contiguous slice ``[start, stop)`` of this file."""
        if not (0 <= start <= stop <= len(self._store)):
            raise IndexError(f"segment [{start}, {stop}) out of range "
                             f"for file of length {len(self._store)}")
        return FileSegment(self, start, stop)

    def whole(self) -> "FileSegment":
        """The file viewed as a single segment."""
        return FileSegment(self, 0, len(self._store))

    # em-cost: amortized N/B -- one full sequential pass over the file
    # em-yields: N
    def scan(self) -> Iterator[Tuple]:
        """Iterate all tuples, charging sequential read I/Os."""
        return iter(self.reader())

    # em-cost: amortized N/B -- one full sequential pass over the file
    # em-yields: N/B
    def scan_blocks(self) -> Iterator[list[Tuple]]:
        """Iterate page-sized blocks, charging the same read I/Os."""
        return self.reader().blocks()

    def peek_tuples(self) -> Sequence[Tuple]:
        """Direct access to the stored tuples **without charging I/O**.

        For test oracles and result verification only; algorithms must
        never call this.
        """
        return self._store.rows(0, len(self._store))


class Writer:
    """Page-buffered appender for an :class:`EMFile`."""

    def __init__(self, f: EMFile) -> None:
        self._file = f
        self._buffer: list[Tuple] = []
        self._closed = False

    # em-cost: amortized 1/B -- the buffer flushes one page write per B appends
    def append(self, t: Tuple) -> None:
        """Append one tuple, flushing a page write when the buffer fills."""
        if self._closed:
            raise RuntimeError("writer is closed")
        self._buffer.append(t)
        if len(self._buffer) >= self._file.device.B:
            self._flush()

    # em-cost: amortized 1 -- one write per page filled; callers' loop
    # bounds count the appended pages in whole-file units
    def append_block(self, ts: Sequence[Tuple]) -> None:
        """Append a whole block of tuples.

        Charges one write per page filled, at exactly the fill points a
        loop of :meth:`append` would flush at — only the per-tuple
        Python overhead disappears.  Full pages bypass the staging
        buffer and land in the columnar store directly.
        """
        if self._closed:
            raise RuntimeError("writer is closed")
        f = self._file
        B = f.device.B
        buf = self._buffer
        i, n = 0, len(ts)
        if buf:
            take = min(B - len(buf), n)
            buf.extend(ts[:take])
            i = take
            if len(buf) >= B:
                self._flush()
        full = (n - i) // B
        if full:
            store = f._store
            base = len(store) // B
            stop = i + full * B
            store.append_rows(ts[i:stop] if (i or stop != n) else ts)
            charge = f.device.charge_write
            # em-loop-bound: 1 -- pages of one appended block; callers
            # account for them through their own loop bounds
            for page in range(base, base + full):
                charge(f, page)
            i = stop
        if i < n:
            buf.extend(ts[i:])

    #: Alias: a block write is a block append on an append-only file.
    write_block = append_block

    # em-cost: N/B -- one write per page of appended tuples
    def extend(self, ts) -> None:
        """Append each tuple of ``ts``.

        In-memory sequences take the :meth:`append_block` fast path;
        lazy iterables keep the tuple-at-a-time loop so any I/O their
        production charges stays interleaved exactly as before.
        """
        if isinstance(ts, (list, tuple)):
            self.append_block(ts)
            return
        # em-loop-bound: N -- at most one iteration per input tuple
        for t in ts:
            self.append(t)

    # em-cost: 1 -- writes at most the one buffered page
    def _flush(self) -> None:
        if self._buffer:
            f = self._file
            page = len(f._store) // f.device.B
            f._store.append_rows(self._buffer)
            self._buffer.clear()
            f.device.charge_write(f, page)

    def close(self) -> None:
        """Flush the final partial page and seal the file."""
        if not self._closed:
            self._flush()
            self._closed = True
            self._file._sealed = True
            self._file._store.seal()

    def __enter__(self) -> "Writer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SequentialReader:
    """Forward cursor over ``[start, stop)`` of a file.

    One read I/O is charged per distinct page entered.  The reader keeps
    a single page buffered, so interleaving several readers is exactly
    as expensive as it would be on a one-page-per-stream buffer pool —
    the configuration the model's merge arguments assume.
    """

    def __init__(self, f: EMFile, start: int, stop: int) -> None:
        self._file = f
        self._pos = start
        self._stop = stop
        self._buffered_page = -1
        # Materialized rows of the buffered page (tuple-at-a-time path).
        self._page_rows: list[Tuple] | None = None
        self._page_base = 0

    @property
    def position(self) -> int:
        """Absolute index of the next tuple to be returned."""
        return self._pos

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._stop

    def remaining(self) -> int:
        return self._stop - self._pos

    # em-cost: amortized 1/B -- charges only when the cursor enters a
    # page it has not buffered: one read per B sequential advances
    def _touch(self, index: int) -> None:
        page = index // self._file.device.B
        if page != self._buffered_page:
            self._file.device.charge_read(self._file, page)
            self._buffered_page = page
            self._page_rows = None

    def peek(self) -> Tuple:
        """Return the next tuple without consuming it."""
        if self.exhausted:
            raise StopIteration("reader exhausted")
        self._touch(self._pos)
        if self._page_rows is None:
            f = self._file
            B = f.device.B
            self._page_base = self._buffered_page * B
            self._page_rows = f._store.rows(
                self._page_base, min(self._page_base + B, len(f._store)))
        return self._page_rows[self._pos - self._page_base]

    def next(self) -> Tuple:
        """Return the next tuple and advance."""
        t = self.peek()
        self._pos += 1
        return t

    def read_up_to(self, n: int) -> list[Tuple]:
        """Read at most ``n`` further tuples (fewer at end of segment)."""
        out = []
        # em-loop-bound: M -- callers request at most a memory-load
        while len(out) < n and not self.exhausted:
            out.append(self.next())
        return out

    # em-cost: amortized M/B -- callers request at most a memory-load,
    # and each page of the block is charged exactly once
    def read_block(self, n: int) -> list[Tuple]:
        """Read at most ``n`` further tuples as one block.

        Charges each page entered exactly once, ascending — the same
        pages, in the same order, a :meth:`next` loop over the block
        would charge.  Blocks larger than ``B`` occupy more than the
        reader's one-page buffer; the caller holds that memory (the
        chunk loaders do).
        """
        if n <= 0 or self.exhausted:
            return []
        f = self._file
        device = f.device
        B = device.B
        stop = min(self._pos + n, self._stop)
        first = self._pos // B
        last = (stop - 1) // B
        page = first
        if self._buffered_page == first:
            page += 1
        # em-loop-bound: M/B -- pages spanned by one bounded block
        for p in range(page, last + 1):
            device.charge_read(f, p)
        if last != self._buffered_page:
            self._buffered_page = last
            self._page_rows = None
        block = f._store.rows(self._pos, stop)
        self._pos = stop
        return block

    # em-cost: amortized 1 -- reads at most the one current page
    def peek_page_block(self) -> list[Tuple]:
        """The rest of the current page **without consuming it**.

        Charges the page exactly as :meth:`peek` would (once, on first
        entry); callers consume a prefix with :meth:`skip_to`.  This is
        the block form of peek-bounded loops: fetch the page, decide in
        memory how far the bound lets you go, advance for free.
        """
        if self.exhausted:
            return []
        self._touch(self._pos)
        f = self._file
        B = f.device.B
        if self._page_rows is None:
            self._page_base = self._buffered_page * B
            self._page_rows = f._store.rows(
                self._page_base, min(self._page_base + B, len(f._store)))
        page_end = self._page_base + len(self._page_rows)
        return self._page_rows[self._pos - self._page_base:
                               min(page_end, self._stop) - self._page_base]

    # em-cost: amortized 1 -- reads at most the one current page
    def read_page_block(self) -> list[Tuple]:
        """Read from the cursor to the end of the current page.

        At most ``B`` tuples — the natural streaming unit that fits the
        reader's own one-page buffer, so no extra memory hold is
        needed.
        """
        if self.exhausted:
            return []
        B = self._file.device.B
        page_end = (self._pos // B + 1) * B
        return self.read_block(min(page_end, self._stop) - self._pos)

    # em-yields: N/B
    def blocks(self) -> Iterator[list[Tuple]]:
        """Iterate the remaining tuples one page block at a time."""
        # em-loop-bound: N/B -- one iteration per page of the segment
        while not self.exhausted:
            yield self.read_page_block()

    def skip_to(self, index: int) -> None:
        """Jump the cursor forward to absolute index ``index``.

        Seeking itself is free (disk arms move without transferring
        data); the page containing ``index`` is charged when next read.
        """
        if index < self._pos:
            raise ValueError("sequential reader cannot move backwards")
        self._pos = min(index, self._stop)

    # em-yields: N
    def __iter__(self) -> Iterator[Tuple]:
        # em-loop-bound: N -- one iteration per tuple of the segment
        while not self.exhausted:
            yield self.next()


class FileSegment:
    """A contiguous slice of an :class:`EMFile`.

    Segments arise when a file sorted on an attribute is partitioned by
    that attribute's values (``R(e)|_{v=a}``), and when sorted runs are
    handed to a merge.
    """

    def __init__(self, f: EMFile, start: int, stop: int) -> None:
        self.file = f
        self.start = start
        self.stop = stop

    @property
    def device(self) -> "Device":
        return self.file.device

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def n_pages(self) -> int:
        """Pages this segment's tuples span (including straddled ones)."""
        if len(self) == 0:
            return 0
        B = self.device.B
        return self.stop // B - self.start // B + (1 if self.stop % B else 0)

    def reader(self) -> SequentialReader:
        return SequentialReader(self.file, self.start, self.stop)

    # em-cost: amortized N/B -- one sequential pass over the segment
    # em-yields: N
    def scan(self) -> Iterator[Tuple]:
        return iter(self.reader())

    # em-cost: amortized N/B -- one sequential pass over the segment
    # em-yields: N/B
    def scan_blocks(self) -> Iterator[list[Tuple]]:
        """Page-sized blocks of the segment, same charges as a scan."""
        return self.reader().blocks()

    def subsegment(self, start: int, stop: int) -> "FileSegment":
        """Absolute-indexed sub-slice; must lie within this segment."""
        if not (self.start <= start <= stop <= self.stop):
            raise IndexError("subsegment out of range")
        return FileSegment(self.file, start, stop)

    def peek_tuples(self) -> Sequence[Tuple]:
        """Uncharged access for test oracles only."""
        return self.file._store.rows(self.start, self.stop)
