"""On-disk tuple files for the simulated external-memory machine.

An :class:`EMFile` is an append-only sequence of tuples laid out in
pages of ``B`` tuples.  All access goes through cursors that charge the
device's :class:`~repro.em.stats.IOStats`:

* :class:`Writer` buffers up to ``B`` tuples and charges one write per
  flushed page (including the final partial page).
* :class:`SequentialReader` charges one read each time it enters a page
  it has not yet buffered.  Re-scanning a file with a fresh reader
  charges again, exactly as re-reading from disk would.

A :class:`FileSegment` is a contiguous ``[start, stop)`` slice of a
file — e.g. ``R(e)|_{v=a}`` inside a file sorted on ``v`` — and reads
through the same page-granular accounting.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.em.device import Device

Tuple = tuple
Key = Callable[[Tuple], Any]


class EMFile:
    """A sequence of tuples stored on the simulated disk.

    Files are created through :meth:`repro.em.device.Device.new_file`
    and populated through :meth:`writer`.  Once the writer is closed the
    file is sealed and read-only.
    """

    def __init__(self, device: "Device", name: str) -> None:
        self.device = device
        self.name = name
        self._tuples: list[Tuple] = []
        self._sealed = False

    # -- writing -----------------------------------------------------

    def writer(self) -> "Writer":
        """Return a page-buffered writer; usable as a context manager."""
        if self._sealed:
            raise RuntimeError(f"file {self.name!r} is sealed")
        return Writer(self)

    # -- metadata ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._tuples)

    @property
    def n_pages(self) -> int:
        """Pages occupied on disk."""
        return self.device.pages(len(self._tuples))

    # -- reading -----------------------------------------------------

    def reader(self) -> "SequentialReader":
        """A sequential reader over the whole file."""
        return SequentialReader(self, 0, len(self._tuples))

    def segment(self, start: int, stop: int) -> "FileSegment":
        """The contiguous slice ``[start, stop)`` of this file."""
        if not (0 <= start <= stop <= len(self._tuples)):
            raise IndexError(f"segment [{start}, {stop}) out of range "
                             f"for file of length {len(self._tuples)}")
        return FileSegment(self, start, stop)

    def whole(self) -> "FileSegment":
        """The file viewed as a single segment."""
        return FileSegment(self, 0, len(self._tuples))

    def scan(self) -> Iterator[Tuple]:
        """Iterate all tuples, charging sequential read I/Os."""
        return iter(self.reader())

    def peek_tuples(self) -> Sequence[Tuple]:
        """Direct access to the stored tuples **without charging I/O**.

        For test oracles and result verification only; algorithms must
        never call this.
        """
        return self._tuples


class Writer:
    """Page-buffered appender for an :class:`EMFile`."""

    def __init__(self, f: EMFile) -> None:
        self._file = f
        self._buffer: list[Tuple] = []
        self._closed = False

    def append(self, t: Tuple) -> None:
        """Append one tuple, flushing a page write when the buffer fills."""
        if self._closed:
            raise RuntimeError("writer is closed")
        self._buffer.append(t)
        if len(self._buffer) >= self._file.device.B:
            self._flush()

    def extend(self, ts) -> None:
        """Append each tuple of ``ts``."""
        for t in ts:
            self.append(t)

    def _flush(self) -> None:
        if self._buffer:
            page = len(self._file._tuples) // self._file.device.B
            self._file._tuples.extend(self._buffer)
            self._buffer.clear()
            self._file.device.charge_write(self._file, page)

    def close(self) -> None:
        """Flush the final partial page and seal the file."""
        if not self._closed:
            self._flush()
            self._closed = True
            self._file._sealed = True

    def __enter__(self) -> "Writer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SequentialReader:
    """Forward cursor over ``[start, stop)`` of a file.

    One read I/O is charged per distinct page entered.  The reader keeps
    a single page buffered, so interleaving several readers is exactly
    as expensive as it would be on a one-page-per-stream buffer pool —
    the configuration the model's merge arguments assume.
    """

    def __init__(self, f: EMFile, start: int, stop: int) -> None:
        self._file = f
        self._pos = start
        self._stop = stop
        self._buffered_page = -1

    @property
    def position(self) -> int:
        """Absolute index of the next tuple to be returned."""
        return self._pos

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._stop

    def remaining(self) -> int:
        return self._stop - self._pos

    def _touch(self, index: int) -> None:
        page = index // self._file.device.B
        if page != self._buffered_page:
            self._file.device.charge_read(self._file, page)
            self._buffered_page = page

    def peek(self) -> Tuple:
        """Return the next tuple without consuming it."""
        if self.exhausted:
            raise StopIteration("reader exhausted")
        self._touch(self._pos)
        return self._file._tuples[self._pos]

    def next(self) -> Tuple:
        """Return the next tuple and advance."""
        t = self.peek()
        self._pos += 1
        return t

    def read_up_to(self, n: int) -> list[Tuple]:
        """Read at most ``n`` further tuples (fewer at end of segment)."""
        out = []
        while len(out) < n and not self.exhausted:
            out.append(self.next())
        return out

    def skip_to(self, index: int) -> None:
        """Jump the cursor forward to absolute index ``index``.

        Seeking itself is free (disk arms move without transferring
        data); the page containing ``index`` is charged when next read.
        """
        if index < self._pos:
            raise ValueError("sequential reader cannot move backwards")
        self._pos = min(index, self._stop)

    def __iter__(self) -> Iterator[Tuple]:
        while not self.exhausted:
            yield self.next()


class FileSegment:
    """A contiguous slice of an :class:`EMFile`.

    Segments arise when a file sorted on an attribute is partitioned by
    that attribute's values (``R(e)|_{v=a}``), and when sorted runs are
    handed to a merge.
    """

    def __init__(self, f: EMFile, start: int, stop: int) -> None:
        self.file = f
        self.start = start
        self.stop = stop

    @property
    def device(self) -> "Device":
        return self.file.device

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def n_pages(self) -> int:
        """Pages this segment's tuples span (including straddled ones)."""
        if len(self) == 0:
            return 0
        B = self.device.B
        return self.stop // B - self.start // B + (1 if self.stop % B else 0)

    def reader(self) -> SequentialReader:
        return SequentialReader(self.file, self.start, self.stop)

    def scan(self) -> Iterator[Tuple]:
        return iter(self.reader())

    def subsegment(self, start: int, stop: int) -> "FileSegment":
        """Absolute-indexed sub-slice; must lie within this segment."""
        if not (self.start <= start <= stop <= self.stop):
            raise IndexError("subsegment out of range")
        return FileSegment(self.file, start, stop)

    def peek_tuples(self) -> Sequence[Tuple]:
        """Uncharged access for test oracles only."""
        return self.file._tuples[self.start:self.stop]
