"""repro — worst-case I/O-optimal acyclic joins in simulated external memory.

A faithful, executable reproduction of Hu & Yi, *Towards a Worst-Case
I/O-Optimal Algorithm for Acyclic Joins* (PODS 2016): the paper's
Algorithms 1–6, the external-memory model they run in, the
internal-memory baselines they compare against, and the worst-case
instance constructions from every optimality proof.

Quickstart::

    from repro import Device, Instance, line_query
    from repro.core import CountingEmitter, acyclic_join_best

    q = line_query(3)
    dev = Device(M=64, B=8)
    inst = Instance.from_dicts(dev, {
        "e1": ("v1", "v2"), "e2": ("v2", "v3"), "e3": ("v3", "v4"),
    }, data)
    emitter = CountingEmitter()
    acyclic_join_best(q, inst, emitter)
    print(emitter.count, dev.stats.total)
"""

from repro.data import Instance, Relation, RelationSchema
from repro.em import Device, IOStats
from repro.obs import Tracer
from repro.query import (JoinQuery, dumbbell_query, is_berge_acyclic,
                         line_query, lollipop_query, star_query,
                         triangle_query, two_relation_query)

__version__ = "1.0.0"

__all__ = [
    "Device", "IOStats", "Tracer", "Instance", "Relation",
    "RelationSchema",
    "JoinQuery", "is_berge_acyclic", "line_query", "star_query",
    "lollipop_query", "dumbbell_query", "triangle_query",
    "two_relation_query", "__version__",
]
