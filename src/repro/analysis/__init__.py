"""Analysis: subjoin/partial-join sizes, Ψ/ψ, Table 1 bounds, certificates,
and empirical bound fitting (:mod:`repro.analysis.fitting`)."""

from repro.analysis.bounds import (agm_internal_bound, equal_size_bound,
                                   line3_bound, line4_bound,
                                   line5_unbalanced_bound,
                                   line7_cover11_bound,
                                   line_independent_bound,
                                   nested_loop_cascade_bound, star_bound,
                                   triangle_bound, two_relation_bound,
                                   worst_case_branch_bound, worst_case_psi,
                                   yannakakis_em_bound)
from repro.analysis.fitting import (FIT_CLASSES, BoundTerm, FitPoint,
                                    FitResult, fit_class, fit_loglog)
from repro.analysis.optimality import Certificate, certify
from repro.analysis.predict import (FITTED_VERSION, ExplainReport,
                                    Prediction, compare_fitted, explain,
                                    fitted_document, load_fitted,
                                    match_fit_class, predict,
                                    save_fitted)
from repro.analysis.subjoin import (BoundReport, BranchBound, all_subsets,
                                    dominant_subsets, explain_bound,
                                    gens_bound, lower_bound,
                                    partial_join_size, psi_partial,
                                    psi_subjoin, subjoin_size,
                                    theorem2_bound)

__all__ = [
    "subjoin_size", "partial_join_size", "psi_subjoin", "psi_partial",
    "all_subsets", "lower_bound", "theorem2_bound", "gens_bound",
    "dominant_subsets", "explain_bound", "BoundReport", "BranchBound",
    "two_relation_bound", "line3_bound", "line4_bound",
    "line_independent_bound", "line5_unbalanced_bound",
    "line7_cover11_bound", "star_bound", "equal_size_bound",
    "yannakakis_em_bound", "nested_loop_cascade_bound", "triangle_bound",
    "worst_case_psi", "worst_case_branch_bound",
    "agm_internal_bound",
    "Certificate", "certify",
    "BoundTerm", "FitPoint", "FitResult", "FIT_CLASSES", "fit_loglog",
    "fit_class",
    "Prediction", "ExplainReport", "FITTED_VERSION", "match_fit_class",
    "predict", "explain", "fitted_document", "save_fitted",
    "load_fitted", "compare_fitted",
]
