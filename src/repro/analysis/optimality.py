"""Optimality certificates: relating measured I/O to the paper's bounds.

A *certificate* compares three numbers for one run:

* ``lower`` — the instance's lower bound ``max_S ψ(R, S)``;
* ``upper`` — Theorem 3's bound ``min_{S∈GenS} max_S Ψ(R, S)``;
* ``measured`` — the I/O the algorithm actually performed.

Worst-case optimality in the paper means upper and lower meet on the
worst instance of each family; the constructions in
:mod:`repro.workloads.worstcase` realize those instances, and the
benchmarks assert ``measured / lower`` stays bounded across sweeps
(the Õ's log factor and constants are the allowed slack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.subjoin import gens_bound, lower_bound, theorem2_bound
from repro.query.hypergraph import JoinQuery

Table = list[tuple]
Schemas = Mapping[str, Sequence[str]]


@dataclass(frozen=True)
class Certificate:
    """Bound triple for one (query, instance, M, B) configuration."""

    lower: float
    gens_upper: float
    theorem2_upper: float
    measured: float

    @property
    def measured_over_lower(self) -> float:
        """The optimality ratio; Õ-bounded on worst-case families."""
        return self.measured / self.lower if self.lower > 0 else float("inf")

    @property
    def measured_over_gens(self) -> float:
        """How close the run is to its own Theorem 3 budget."""
        return (self.measured / self.gens_upper if self.gens_upper > 0
                else float("inf"))

    @property
    def gap(self) -> float:
        """``gens_upper / lower`` — 1.0 means the bounds meet exactly."""
        return (self.gens_upper / self.lower if self.lower > 0
                else float("inf"))


def certify(query: JoinQuery, data: Mapping[str, Table], schemas: Schemas,
            M: int, B: int, measured_io: float) -> Certificate:
    """Compute the certificate for one measured run."""
    return Certificate(
        lower=lower_bound(query, data, schemas, M, B),
        gens_upper=gens_bound(query, data, schemas, M, B),
        theorem2_upper=theorem2_bound(query, data, schemas, M, B),
        measured=float(measured_io),
    )
