"""Subjoins and partial joins (Section 1.4, Figure 1).

For a subset of relations ``S ⊆ E``:

* the **subjoin** is ``⋈_{e∈S} R(e)``, where relations without common
  attributes combine by cross product — its size factors over the
  connected components of ``S``;
* the **partial join** ``Q(R, S)`` is the projection of the full join
  ``Q(R)`` onto the attributes of ``S``.

For connected ``S`` on a fully reduced acyclic instance the two
coincide; for disconnected ``S`` the partial join can be strictly
smaller (Figure 1's ``(t1, t3)`` example).  The partial join yields the
*lower* bound ψ, the subjoin the algorithm's *upper* bound Ψ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.internal.hashjoin import join_query, project_assignments
from repro.query.hypergraph import JoinQuery

Table = list[tuple]
Schemas = Mapping[str, Sequence[str]]


def subjoin_size(query: JoinQuery, data: Mapping[str, Table],
                 schemas: Schemas, subset: Iterable[str]) -> int:
    """``|⋈_{e∈S} R(e)|`` — the product over connected components."""
    subset = sorted(set(subset))
    if not subset:
        return 1
    total = 1
    for component in query.connected_components(subset):
        sub_q = query.drop_edges([e for e in query.edges
                                  if e not in component])
        total *= len(join_query(sub_q, data, schemas))
    return total


def partial_join_size(query: JoinQuery, data: Mapping[str, Table],
                      schemas: Schemas, subset: Iterable[str]) -> int:
    """``|Q(R, S)|`` — the projection of the full join onto ``S``'s attrs."""
    subset = sorted(set(subset))
    if not subset:
        return 1
    full = join_query(query, data, schemas)
    attrs: set[str] = set()
    for e in subset:
        attrs |= query.edges[e]
    return len(project_assignments(full, attrs))


def psi_subjoin(query: JoinQuery, data: Mapping[str, Table],
                schemas: Schemas, subset: Iterable[str], M: int,
                B: int) -> float:
    """``Ψ(R, S) = |⋈_{e∈S} R(e)| / (M^{|S|-1} B)`` (Section 1.4).

    The minimum I/O cost of computing the subjoin: each block read
    brings ``B`` tuples that can combine with the ``O(M^{|S|-1})``
    partial combinations resident in memory.  ``Ψ(R, ∅) = 0``.
    """
    subset = sorted(set(subset))
    if not subset:
        return 0.0
    size = subjoin_size(query, data, schemas, subset)
    return size / (M ** (len(subset) - 1) * B)


def psi_partial(query: JoinQuery, data: Mapping[str, Table],
                schemas: Schemas, subset: Iterable[str], M: int,
                B: int) -> float:
    """``ψ(R, S) = |Q(R, S)| / (M^{|S|-1} B)`` — the lower-bound term."""
    subset = sorted(set(subset))
    if not subset:
        return 0.0
    size = partial_join_size(query, data, schemas, subset)
    return size / (M ** (len(subset) - 1) * B)


def all_subsets(query: JoinQuery) -> list[frozenset[str]]:
    """Every nonempty subset of the query's edges."""
    names = query.edge_names
    out = []
    for mask in range(1, 1 << len(names)):
        out.append(frozenset(names[i] for i in range(len(names))
                             if mask >> i & 1))
    return out


def lower_bound(query: JoinQuery, data: Mapping[str, Table],
                schemas: Schemas, M: int, B: int) -> float:
    """``max_S ψ(R, S)`` over all subsets — the paper's I/O lower bound.

    Any algorithm must compute every partial join at least implicitly
    (it is a projection of the output), so the largest ψ term bounds
    the worst-case I/O from below (Section 1.4).  The full join is
    computed once and projected per subset.
    """
    full = join_query(query, data, schemas)
    best = 0.0
    for s in all_subsets(query):
        attrs: set[str] = set()
        for e in s:
            attrs |= query.edges[e]
        size = len(project_assignments(full, attrs))
        best = max(best, size / (M ** (len(s) - 1) * B))
    return best


class _SubjoinCache:
    """Memoizes connected-component join sizes across many subsets.

    Both Theorem 2's and Theorem 3's bounds evaluate Ψ on exponentially
    many subsets whose connected components heavily overlap; caching
    per-component sizes makes those evaluations cheap.
    """

    def __init__(self, query: JoinQuery, data: Mapping[str, Table],
                 schemas: Schemas) -> None:
        self._query = query
        self._data = data
        self._schemas = schemas
        self._component_sizes: dict[frozenset[str], int] = {}

    def subjoin_size(self, subset) -> int:
        subset = frozenset(subset)
        if not subset:
            return 1
        total = 1
        for component in self._query.connected_components(subset):
            size = self._component_sizes.get(component)
            if size is None:
                sub_q = self._query.drop_edges(
                    [e for e in self._query.edges if e not in component])
                size = len(join_query(sub_q, self._data, self._schemas))
                self._component_sizes[component] = size
            total *= size
        return total

    def psi(self, subset, M: int, B: int) -> float:
        subset = frozenset(subset)
        if not subset:
            return 0.0
        return self.subjoin_size(subset) / (M ** (len(subset) - 1) * B)


def theorem2_bound(query: JoinQuery, data: Mapping[str, Table],
                   schemas: Schemas, M: int, B: int) -> float:
    """Theorem 2's upper bound: ``max_{S ⊆ E} Ψ(R, S)``."""
    cache = _SubjoinCache(query, data, schemas)
    return max((cache.psi(s, M, B) for s in all_subsets(query)),
               default=0.0)


def gens_bound(query: JoinQuery, data: Mapping[str, Table],
               schemas: Schemas, M: int, B: int) -> float:
    """Theorem 3's upper bound: ``min_{S∈GenS(Q)} max_{S∈S} Ψ(R, S)``."""
    from repro.query.gens import gens_all

    cache = _SubjoinCache(query, data, schemas)
    best = math.inf
    for collection in gens_all(query):
        worst = max((cache.psi(s, M, B) for s in collection if s),
                    default=0.0)
        best = min(best, worst)
    return 0.0 if best is math.inf else best


def explain_bound(query: JoinQuery, data: Mapping[str, Table],
                  schemas: Schemas, M: int, B: int) -> "BoundReport":
    """Theorem 3's bound with witnesses, branch by branch.

    The paper notes the general worst-case complexity "is a function …
    very complex" (Section 1.4); rather than a closed form, this
    returns the whole structure: per GenS branch, the dominating subset
    and its Ψ value, plus the overall min-max and the ψ lower bound —
    the report the optimality argument actually needs.
    """
    from repro.query.gens import gens_all

    cache = _SubjoinCache(query, data, schemas)
    branches = []
    for collection in sorted(gens_all(query),
                             key=lambda b: sorted(map(sorted, b))):
        worst_s: frozenset[str] = frozenset()
        worst = 0.0
        for s in collection:
            if not s:
                continue
            v = cache.psi(s, M, B)
            if v > worst:
                worst, worst_s = v, s
        branches.append(BranchBound(collection_size=len(collection),
                                    worst_subset=worst_s, bound=worst))
    best_index = min(range(len(branches)),
                     key=lambda i: branches[i].bound) if branches else -1
    return BoundReport(branches=tuple(branches), best_index=best_index,
                       lower=lower_bound(query, data, schemas, M, B))


@dataclass(frozen=True)
class BranchBound:
    """One GenS branch's dominating subjoin and cost."""

    collection_size: int
    worst_subset: frozenset[str]
    bound: float


@dataclass(frozen=True)
class BoundReport:
    """The Theorem 3 min-max with witnesses (see :func:`explain_bound`)."""

    branches: tuple[BranchBound, ...]
    best_index: int
    lower: float

    @property
    def best(self) -> BranchBound:
        return self.branches[self.best_index]

    @property
    def gens_bound(self) -> float:
        """``min_branch max_S Ψ`` — identical to :func:`gens_bound`."""
        return self.best.bound

    @property
    def gap(self) -> float:
        return (self.gens_bound / self.lower if self.lower > 0
                else float("inf"))

    def render(self) -> str:
        lines = [f"psi lower bound: {self.lower:.2f}",
                 f"gens bound     : {self.gens_bound:.2f} "
                 f"(gap {self.gap:.2f})"]
        for i, b in enumerate(self.branches):
            marker = "*" if i == self.best_index else " "
            subset = "+".join(sorted(b.worst_subset)) or "(empty)"
            lines.append(f" {marker} branch {i}: max Psi = {b.bound:.2f} "
                         f"at {subset} ({b.collection_size} subsets)")
        return "\n".join(lines)


def dominant_subsets(query: JoinQuery, data: Mapping[str, Table],
                     schemas: Schemas, M: int, B: int,
                     top: int = 5) -> list[tuple[frozenset[str], float]]:
    """The subsets with the largest ψ terms, for reports."""
    scored = [(s, psi_partial(query, data, schemas, s, M, B))
              for s in all_subsets(query)]
    scored.sort(key=lambda p: (-p[1], sorted(p[0])))
    return scored[:top]
