"""Predicted I/O from fitted constants: what ``repro explain`` reports.

:mod:`repro.analysis.fitting` makes Table 1's hidden constants
empirical; this module spends them.  Given a query, its actual relation
sizes, and a machine ``(M, B)``, it

* matches the query onto one of the **fitted classes** (two relations,
  ``L3``, star, triangle — the classes ``repro fit`` sweeps),
* evaluates that class's bound **terms** at the actual sizes, and
* scales by the fitted constant to predict total I/O, decomposed per
  phase with the sweep's measured phase shares.

The prediction is only as honest as its provenance, so the fitted
constants travel in a versioned document (``benchmarks/BENCH_fitted.json``,
written by ``repro fit --write-fitted`` and drift-checked in CI by
``--check-fitted``): each class records the constant, the log-log
slope, the machine it was fitted on, the per-point measured I/O (exact
integers — the drift anchor), and the phase decomposition.  ``repro
explain`` and the service's ``?explain=1`` then render predicted vs
measured I/O per phase with an accuracy ratio; a ratio drifting out of
``[0.5, 2]`` on a fitted class means the cost model lost touch with the
implementation — exactly the signal a cost-based planner needs before
it can be trusted to *choose* algorithms.

Predictions degrade explicitly, never silently: a query outside the
fitted classes (a 4-line, a lollipop, …) yields ``prediction: null``
with a reason, and a machine far from the fitted one is flagged in the
report (the constant is still applied — the bound carries the (M, B)
dependence — but the reader sees the extrapolation).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.query.hypergraph import JoinQuery
from repro.query.shapes import classify_shape, detect_line, detect_star

#: Format version of the fitted-constants document.
FITTED_VERSION = 1

#: Relative tolerance for fitted-constant drift (the per-point I/O
#: counts are integers and must match exactly; the derived floats get
#: this slack for cross-platform libm differences).
DRIFT_RTOL = 1e-6


@dataclass(frozen=True)
class Prediction:
    """One query's predicted I/O bill, decomposed."""

    fit_class: str                 #: fitted class the query matched
    bound_name: str
    constant: float                #: fitted hidden constant applied
    slope: float                   #: fitted log-log slope (context)
    bound: float                   #: closed-form bound at (sizes, M, B)
    io: float                      #: predicted total = constant * bound
    terms: dict[str, float] = field(default_factory=dict)
    phases: dict[str, float] = field(default_factory=dict)
    sizes: dict[str, int] = field(default_factory=dict)
    machine: dict[str, int] = field(default_factory=dict)
    fitted_machine: dict[str, int] = field(default_factory=dict)

    @property
    def extrapolated(self) -> bool:
        """True when the query's machine differs from the fitted one.

        The bound carries the (M, B) dependence, so the prediction is
        still evaluated — but the constant was fitted elsewhere and the
        reader should know.
        """
        return bool(self.fitted_machine) \
            and self.fitted_machine != self.machine

    def as_dict(self) -> dict:
        return {
            "class": self.fit_class,
            "bound": self.bound_name,
            "constant": round(self.constant, 4),
            "slope": round(self.slope, 4),
            "bound_value": round(self.bound, 3),
            "io": round(self.io, 1),
            "terms": {k: round(v, 3) for k, v in self.terms.items()},
            "phases": {k: round(v, 1) for k, v in self.phases.items()},
            "sizes": dict(self.sizes),
            "machine": dict(self.machine),
            "fitted_machine": dict(self.fitted_machine),
            "extrapolated": self.extrapolated,
        }


@dataclass(frozen=True)
class ExplainReport:
    """Predicted vs measured, per phase — or the reason there is none."""

    prediction: Prediction | None
    reason: str                    #: why prediction is None ("" if not)
    measured_io: int
    measured_phases: dict[str, int] = field(default_factory=dict)

    @property
    def accuracy(self) -> float | None:
        """measured / predicted total I/O (1.0 = the model is exact)."""
        if self.prediction is None or self.prediction.io <= 0:
            return None
        return self.measured_io / self.prediction.io

    def phase_rows(self) -> list[dict]:
        """One row per phase: predicted, measured, and their ratio."""
        predicted = self.prediction.phases if self.prediction else {}
        labels = sorted(set(predicted) | set(self.measured_phases))
        rows = []
        for label in labels:
            p = predicted.get(label)
            m = self.measured_phases.get(label, 0)
            ratio = (m / p) if p else None
            rows.append({"phase": label,
                         "predicted": None if p is None else round(p, 1),
                         "measured": m,
                         "ratio": None if ratio is None
                         else round(ratio, 3)})
        return rows

    def as_dict(self) -> dict:
        acc = self.accuracy
        return {
            "prediction": (None if self.prediction is None
                           else self.prediction.as_dict()),
            "reason": self.reason,
            "measured": {"io": self.measured_io,
                         "phases": dict(self.measured_phases)},
            "accuracy": None if acc is None else round(acc, 3),
            "per_phase": self.phase_rows(),
        }


# -- matching queries onto fitted classes ------------------------------


def _is_triangle(query: JoinQuery) -> bool:
    """Three binary edges pairwise sharing one attribute (``C3``)."""
    names = query.edge_names
    if len(names) != 3 or len(query.attributes) != 3:
        return False
    if any(len(query.edges[e]) != 2 for e in names):
        return False
    occ = {a: sum(1 for e in names if a in query.edges[e])
           for a in query.attributes}
    return all(c == 2 for c in occ.values())


def match_fit_class(query: JoinQuery,
                    sizes: Mapping[str, int], M: int, B: int,
                    ) -> tuple[str, dict[str, float]] | None:
    """Map a query onto a fitted class and evaluate its bound terms.

    Returns ``(class_name, {term: value})`` with the terms evaluated at
    the query's **actual** relation sizes, or ``None`` when no fitted
    class covers the query's shape.
    """
    shape = classify_shape(query)
    if shape == "two-relation":
        e1, e2 = query.edge_names
        n1, n2 = sizes[e1], sizes[e2]
        return "two_relations", {"N1N2/(MB)": n1 * n2 / (M * B),
                                 "(N1+N2)/B": (n1 + n2) / B}
    if shape == "line":
        chain = detect_line(query)
        if chain is not None and len(chain.edges) == 3:
            n1, n2, n3 = (sizes[e] for e in chain.edges)
            return "line3", {"N1N3/(MB)": n1 * n3 / (M * B),
                             "(N1+N2+N3)/B": (n1 + n2 + n3) / B}
        return None
    if shape == "star":
        star = detect_star(query)
        if star is None:
            return None
        core = sizes[star.core]
        petals = [sizes[e] for e in star.petals]
        k = len(petals)
        return "star", {
            "prodN/(M^(k-1)B)": math.prod(petals) / (M ** (k - 1) * B),
            "(core+sumN)/B": (core + sum(petals)) / B}
    if shape == "cyclic" and _is_triangle(query):
        n1, n2, n3 = (sizes[e] for e in query.edge_names)
        return "triangle", {
            "sqrt(N1N2N3/M)/B": math.sqrt(n1 * n2 * n3 / M) / B,
            "3N/B": (n1 + n2 + n3) / B}
    return None


def predict(query: JoinQuery, sizes: Mapping[str, int], M: int, B: int,
            fitted: Mapping) -> tuple[Prediction | None, str]:
    """Predict a query's I/O from a fitted-constants document.

    Returns ``(prediction, "")`` on a match, or ``(None, reason)`` when
    the query falls outside the fitted classes or the document lacks
    the matched class.
    """
    match = match_fit_class(query, sizes, M, B)
    if match is None:
        return None, (f"no fitted Table-1 class covers shape "
                      f"{classify_shape(query)!r} with "
                      f"{len(query.edges)} edges")
    name, terms = match
    cls = fitted.get("classes", {}).get(name)
    if cls is None:
        have = sorted(fitted.get("classes", {}))
        return None, (f"fitted document has no class {name!r} "
                      f"(has {have}); regenerate with "
                      f"'repro fit ... --write-fitted'")
    constant = float(cls["constant"])
    bound = sum(terms.values())
    total = constant * bound
    phases = {label: share * total
              for label, share in cls.get("phase_shares", {}).items()}
    return Prediction(
        fit_class=name, bound_name=cls.get("bound", ""),
        constant=constant, slope=float(cls.get("slope", 1.0)),
        bound=bound, io=total,
        terms={k: constant * v for k, v in terms.items()},
        phases=phases, sizes=dict(sizes),
        machine={"M": M, "B": B},
        fitted_machine=dict(cls.get("machine", {}))), ""


def explain(query: JoinQuery, sizes: Mapping[str, int], M: int, B: int,
            measured_io: int, measured_phases: Mapping[str, int],
            fitted: Mapping) -> ExplainReport:
    """The full predicted-vs-measured report for one executed query."""
    prediction, reason = predict(query, sizes, M, B, fitted)
    return ExplainReport(prediction=prediction, reason=reason,
                         measured_io=measured_io,
                         measured_phases=dict(measured_phases))


# -- the fitted-constants document -------------------------------------


def fitted_document(fits: Sequence, *, source: str = "repro fit") -> dict:
    """Bundle :class:`~repro.analysis.fitting.FitResult`s for persisting."""
    classes = {}
    for f in fits:
        classes[f.name] = {
            "bound": f.bound_name,
            "constant": round(f.constant, 6),
            "slope": round(f.slope, 6),
            "r2": round(f.r2, 6),
            "machine": {"M": f.points[0].M, "B": f.points[0].B},
            "points": [{"n": p.n, "io": p.io, "results": p.results}
                       for p in f.points],
            "phase_shares": {k: round(v, 6)
                             for k, v in f.phase_shares.items()},
        }
    return {"version": FITTED_VERSION,
            "meta": {"source": source, "classes": sorted(classes)},
            "classes": classes}


def save_fitted(path, fits: Sequence, *, source: str = "repro fit") -> dict:  # em-effects: HOST_ONLY -- persists the fitted-constants archive on the host after the measured sweeps
    """Write the fitted-constants document to ``path``; return it."""
    doc = fitted_document(fits, source=source)
    # host-side archive of fitted constants, not simulated-device I/O
    with open(path, "w", encoding="utf-8") as fh:  # emlint: disable=EM001
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


def load_fitted(path) -> dict:  # em-effects: HOST_ONLY -- reads the committed archive on the host; predictions themselves never touch the device
    """Load and version-check a fitted-constants document."""
    # host-side archive of fitted constants, not simulated-device I/O
    with open(path, encoding="utf-8") as fh:  # emlint: disable=EM001
        doc = json.load(fh)
    version = doc.get("version")
    if version != FITTED_VERSION:
        raise ValueError(
            f"fitted document {path} has version {version!r}, "
            f"this build reads {FITTED_VERSION}")
    if not isinstance(doc.get("classes"), dict):
        raise ValueError(f"fitted document {path} has no 'classes' map")
    return doc


def compare_fitted(committed: Mapping, live: Mapping) -> list[str]:
    """Drift lines between a committed and a just-measured document.

    Per-point I/O counts are integers on a deterministic simulated
    device and must match **exactly**; the derived constants/slopes get
    :data:`DRIFT_RTOL` for libm differences.  An empty list means no
    drift.
    """
    out: list[str] = []
    want = committed.get("classes", {})
    got = live.get("classes", {})
    for name in sorted(set(want) | set(got)):
        if name not in got:
            out.append(f"{name}: committed but not measured")
            continue
        if name not in want:
            out.append(f"{name}: measured but not committed")
            continue
        w, g = want[name], got[name]
        if w.get("points") != g.get("points"):
            out.append(f"{name}.points: pinned {w.get('points')!r}, "
                       f"measured {g.get('points')!r}")
        for key in ("constant", "slope"):
            a, b = float(w.get(key, 0)), float(g.get(key, 0))
            if abs(a - b) > DRIFT_RTOL * max(abs(a), abs(b), 1.0):
                out.append(f"{name}.{key}: pinned {a}, measured {b}")
        if w.get("machine") != g.get("machine"):
            out.append(f"{name}.machine: pinned {w.get('machine')!r}, "
                       f"measured {g.get('machine')!r}")
        if w.get("phase_shares") != g.get("phase_shares"):
            out.append(f"{name}.phase_shares: pinned "
                       f"{w.get('phase_shares')!r}, measured "
                       f"{g.get('phase_shares')!r}")
    return out
