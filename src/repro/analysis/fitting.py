"""Bound attribution: fit hidden constants, flag complexity regressions.

Table 1's bounds are Õ statements — ``N1·N2/(MB)`` up to a hidden
constant (and log factor).  This module makes the constant empirical:
it sweeps a query class over instance sizes, measures I/O on a fresh
simulated device per point, and fits

* the **constant** — the geometric mean of ``measured / bound`` over
  the sweep (the hidden constant of the Õ), and
* the **slope** of ``log(measured)`` against ``log(bound)`` by least
  squares — 1.0 means the implementation scales exactly as the bound
  predicts; a slope above ``1 + eps`` is flagged as a **complexity
  regression** (the implementation grows strictly faster than its
  bound, i.e. someone broke the algorithm, not just its constant).

Each bound is also decomposed into its summands (``N1·N2/(MB)`` vs the
linear ``(N1+N2)/B`` term) so the fit reports *which term dominates*
at the swept sizes — small sweeps often sit in the linear-term regime,
and a constant fitted there says nothing about the leading term.

This lives in ``analysis/`` (not ``obs/``) because the builders drive
``repro.core`` algorithms: obs/ must stay passive (emlint EM003), while
analysis/ sits above core/ and may orchestrate it.  Builder imports
stay lazy so importing :mod:`repro.analysis` stays cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence


@dataclass(frozen=True)
class BoundTerm:
    """One summand of a bound, evaluated at a sweep point."""

    name: str
    value: float


@dataclass(frozen=True)
class FitPoint:
    """One measured sweep point: instance size vs bound."""

    n: int            #: the size parameter handed to the builder
    M: int
    B: int
    io: int           #: measured block transfers (reads + writes)
    results: int      #: join results emitted
    bound: float      #: the closed-form bound at this point
    ratio: float      #: io / bound — the point's hidden constant
    terms: tuple[BoundTerm, ...]
    #: exclusive per-phase I/O of the point's run (PhaseTracker report,
    #: including the "(unattributed)" remainder) — what `repro explain`
    #: decomposes its prediction with.
    phases: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"n": self.n, "M": self.M, "B": self.B, "io": self.io,
                "results": self.results, "bound": round(self.bound, 3),
                "ratio": round(self.ratio, 4),
                "terms": {t.name: round(t.value, 3) for t in self.terms},
                "phases": dict(self.phases)}


@dataclass(frozen=True)
class FitResult:
    """A fitted sweep: constant, slope, and per-term attribution."""

    name: str
    bound_name: str
    points: tuple[FitPoint, ...]
    constant: float       #: geometric mean of io/bound
    slope: float          #: log-log least-squares slope
    intercept: float      #: log-log intercept (log of the constant fit)
    r2: float             #: goodness of the log-log fit
    eps: float            #: regression tolerance used
    term_shares: dict[str, float] = field(default_factory=dict)
    dominant_term: str = ""
    #: mean fraction of measured I/O spent in each phase over the sweep
    #: — the empirical decomposition `repro explain` scales to predict
    #: per-phase I/O at a query's actual (n, M, B).
    phase_shares: dict[str, float] = field(default_factory=dict)

    @property
    def regression(self) -> bool:
        """True when measured I/O grows strictly faster than the bound."""
        return self.slope > 1.0 + self.eps

    def as_dict(self) -> dict:
        return {
            "class": self.name,
            "bound": self.bound_name,
            "points": [p.as_dict() for p in self.points],
            "constant": round(self.constant, 4),
            "slope": round(self.slope, 4),
            "intercept": round(self.intercept, 4),
            "r2": round(self.r2, 4),
            "eps": self.eps,
            "regression": self.regression,
            "term_shares": {k: round(v, 4)
                            for k, v in self.term_shares.items()},
            "dominant_term": self.dominant_term,
            "phase_shares": {k: round(v, 6)
                             for k, v in self.phase_shares.items()},
        }


def fit_loglog(xs: Sequence[float],
               ys: Sequence[float]) -> tuple[float, float, float]:
    """Least-squares fit of ``log y = slope·log x + intercept``.

    Returns ``(slope, intercept, r2)``.  Needs at least two points with
    distinct positive ``x`` (a single size tells you nothing about
    scaling).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError(
            f"need >= 2 (x, y) pairs to fit, got {len(xs)}/{len(ys)}")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log-log fit needs strictly positive values")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    sxx = sum((v - mx) ** 2 for v in lx)
    if sxx == 0:
        raise ValueError(
            "all sweep points have the same bound value; vary the "
            "instance size to fit a slope")
    sxy = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    slope = sxy / sxx
    intercept = my - slope * mx
    ss_res = sum((b - (slope * a + intercept)) ** 2
                 for a, b in zip(lx, ly))
    ss_tot = sum((b - my) ** 2 for b in ly)
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return slope, intercept, r2


@dataclass(frozen=True)
class FitClass:
    """A sweepable query class tied to its Table-1 bound.

    ``build(n)`` returns ``(query, schemas, data, runner)`` — the same
    deterministic constructions the benchmarks use; ``bound_terms(n,
    M, B)`` evaluates each summand of the class's bound at that point.
    """

    name: str
    bound_name: str
    default_M: int
    default_B: int
    default_points: tuple[int, ...]
    size_label: str
    build: Callable
    bound_terms: Callable


def _build_two_relations(n):
    from repro.core import nested_loop_join
    from repro.query import line_query
    from repro.workloads import schemas_for

    q = line_query(2)
    data = {"e1": [(i, 0) for i in range(n)],
            "e2": [(0, j) for j in range(n)]}

    def runner(query, instance, emitter):
        nested_loop_join(instance["e1"], instance["e2"], emitter)

    return q, schemas_for(q), data, runner


def _terms_two_relations(n, M, B):
    return (BoundTerm("N1N2/(MB)", n * n / (M * B)),
            BoundTerm("(N1+N2)/B", 2 * n / B))


def _build_line3(n):
    from repro.core import line3_join
    from repro.query import line_query
    from repro.workloads import fig3_line3_instance

    schemas, data = fig3_line3_instance(n, n)
    return line_query(3), schemas, data, line3_join


def _terms_line3(n, M, B):
    return (BoundTerm("N1N3/(MB)", n * n / (M * B)),
            BoundTerm("(N1+N2+N3)/B", (2 * n + 1) / B))


def _build_triangle(k):
    from repro.core.triangle import triangle_join
    from repro.query import triangle_query

    rows = [(i, j) for i in range(k) for j in range(k)]
    schemas = {"e1": ("v1", "v2"), "e2": ("v1", "v3"),
               "e3": ("v2", "v3")}
    return (triangle_query(), schemas,
            {"e1": rows, "e2": rows, "e3": rows}, triangle_join)


def _terms_triangle(k, M, B):
    n = k * k
    return (BoundTerm("sqrt(N^3/M)/B", math.sqrt(n ** 3 / M) / B),
            BoundTerm("3N/B", 3 * n / B))


def _build_star(n):
    from repro.core import acyclic_join_best
    from repro.query import star_query
    from repro.workloads import star_worstcase_instance

    # Three petals: a 2-petal "star" is structurally a 3-line (the core
    # sits mid-path) and both the shape classifier and the planner
    # treat it as one, so the smallest genuinely star-shaped sweep —
    # the one `repro explain` maps k>=3 star queries onto — needs k=3.
    schemas, data = star_worstcase_instance([n, n, n])

    def runner(query, instance, emitter):
        acyclic_join_best(query, instance, emitter, limit=16)

    return star_query(3), schemas, data, runner


def _terms_star(n, M, B):
    # star_bound(core, [n, n, n], M, B), worst-case core of size 1.
    return (BoundTerm("prodN/(M^(k-1)B)", n ** 3 / (M ** 2 * B)),
            BoundTerm("(core+sumN)/B", (1 + 3 * n) / B))


#: Fit-ready query classes: name -> sweep recipe + bound decomposition.
FIT_CLASSES: dict[str, FitClass] = {
    "two_relations": FitClass(
        "two_relations", "two_relation_bound", 16, 4, (64, 128, 256),
        "N1=N2", _build_two_relations, _terms_two_relations),
    "line3": FitClass(
        "line3", "line3_bound", 8, 2, (32, 64, 128),
        "N1=N3", _build_line3, _terms_line3),
    "triangle": FitClass(
        "triangle", "triangle_bound", 32, 4, (8, 12, 16),
        "k (N=k^2)", _build_triangle, _terms_triangle),
    "star": FitClass(
        "star", "star_bound", 8, 2, (12, 24, 48),
        "petal N", _build_star, _terms_star),
}


def planner_runner(query, instance, emitter):
    """Run a sweep point the way the engine would: the full planner
    path (reducer + dispatched algorithm), or ``triangle_join`` for the
    cyclic triangle the acyclic planner refuses.

    Constants fitted over this runner predict what ``repro explain``
    and the service actually measure; the per-class runners in
    :data:`FIT_CLASSES` stay algorithm-level (the complexity-regression
    gate on the paper's algorithms themselves).
    """
    from repro.core.planner import execute
    from repro.query.shapes import classify_shape

    if classify_shape(query) == "cyclic":
        from repro.core.triangle import triangle_join
        triangle_join(query, instance, emitter)
    else:
        execute(query, instance, emitter)


def measure_point(cls: FitClass, n: int, M: int, B: int, *,
                  profiler=None, metrics=None,
                  planner: bool = False) -> FitPoint:
    """Run one sweep point on a fresh device and pair it with its bound.

    With a profiler attached the whole point runs inside a
    ``fit:<class>`` algorithm span (and the profiler's tuple counter
    sees every emitted result via :class:`ProfiledEmitter`); counters
    are byte-identical either way.  ``planner=True`` swaps the class's
    algorithm-level runner for :func:`planner_runner`.
    """
    from repro.core import CountingEmitter
    from repro.data.instance import Instance
    from repro.em.device import Device
    from repro.obs.spans import ProfiledEmitter

    query, schemas, data, runner = cls.build(n)
    if planner:
        runner = planner_runner
    device = Device(M=M, B=B, profiler=profiler, metrics=metrics)
    instance = Instance.from_dicts(device, schemas, data)
    emitter = CountingEmitter()
    sink = ProfiledEmitter(emitter, profiler) if profiler else emitter
    with device.span(f"fit:{cls.name}", kind="algorithm", n=n, M=M, B=B):
        runner(query, instance, sink)
    device.flush_pool()
    terms = tuple(cls.bound_terms(n, M, B))
    bound = sum(t.value for t in terms)
    io = device.stats.total
    phases = device.phases.report()
    if profiler is not None:
        profiler.detach()
    return FitPoint(n=n, M=M, B=B, io=io, results=emitter.count,
                    bound=bound, ratio=io / bound, terms=terms,
                    phases=phases)


def fit_class(name: str, *, M: int | None = None, B: int | None = None,
              points: Sequence[int] | None = None, eps: float = 0.25,
              profiler=None, metrics=None,
              planner: bool = False) -> FitResult:
    """Sweep one registered class and fit its constant and slope.

    ``eps`` is the regression tolerance: the result's ``regression``
    flag is set when the fitted log-log slope exceeds ``1 + eps``.
    ``planner=True`` sweeps the engine's real execution path (reducer
    included) instead of the bare algorithm — the constants the fitted
    document persists for ``repro explain``.
    """
    try:
        cls = FIT_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown fit class {name!r}; available: "
            f"{', '.join(sorted(FIT_CLASSES))}") from None
    M = cls.default_M if M is None else M
    B = cls.default_B if B is None else B
    sizes = tuple(points) if points is not None else cls.default_points
    if len(sizes) < 2:
        raise ValueError(f"need >= 2 sweep points, got {list(sizes)}")
    measured = tuple(measure_point(cls, n, M, B, profiler=profiler,
                                   metrics=metrics, planner=planner)
                     for n in sizes)
    slope, intercept, r2 = fit_loglog([p.bound for p in measured],
                                      [p.io for p in measured])
    constant = math.exp(
        sum(math.log(p.ratio) for p in measured) / len(measured))
    shares: dict[str, float] = {}
    for p in measured:
        for t in p.terms:
            shares[t.name] = shares.get(t.name, 0.0) + t.value / p.bound
    shares = {k: v / len(measured) for k, v in shares.items()}
    dominant = max(shares, key=shares.get) if shares else ""
    phase_shares: dict[str, float] = {}
    for p in measured:
        if p.io <= 0:
            continue
        for label, cost in p.phases.items():
            phase_shares[label] = (phase_shares.get(label, 0.0)
                                   + cost / p.io)
    phase_shares = {k: v / len(measured)
                    for k, v in phase_shares.items() if v > 0}
    return FitResult(name=name, bound_name=cls.bound_name,
                     points=measured, constant=constant, slope=slope,
                     intercept=intercept, r2=r2, eps=eps,
                     term_shares=shares, dominant_term=dominant,
                     phase_shares=phase_shares)
