"""Closed-form I/O bounds: the external-memory column of Table 1.

Each function returns the paper's worst-case bound (up to the hidden
log factor and constants of the Õ notation) as a function of relation
sizes and the model parameters ``M``, ``B``.  Benchmarks report
``measured I/O / bound``; across a sweep this ratio staying bounded is
the reproduction's "shape" check.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.query.covers import cover_number
from repro.query.hypergraph import JoinQuery
from repro.query.lines import line_bound


def two_relation_bound(n1: int, n2: int, M: int, B: int) -> float:
    """Table 1 row "Two relations": ``N1·N2/(MB)`` (+ linear terms)."""
    return n1 * n2 / (M * B) + (n1 + n2) / B


def line3_bound(n1: int, n3: int, M: int, B: int, *,
                n2: int = 0) -> float:
    """Theorem 1: ``Õ(N1·N3/(MB))`` with the hidden linear term."""
    return n1 * n3 / (M * B) + (n1 + n2 + n3) / B


def line4_bound(sizes: Sequence[int], M: int, B: int) -> float:
    """Table 1 row ``L4``: ``min(N1·N3·N4, N1·N2·N4)/(M²B)``.

    The two terms correspond to the two peeling strategies of
    Section 4.2; the "smart" algorithm attains the minimum.
    """
    n1, n2, n3, n4 = sizes
    main = min(n1 * n3 * n4, n1 * n2 * n4) / (M ** 2 * B)
    pairs = max(n1 * n4, n1 * n3, n2 * n4) / (M * B)
    return main + pairs + sum(sizes) / B


def line_independent_bound(sizes: Sequence[int], M: int, B: int, *,
                           allow_adjacent_pair: int | None = None) -> float:
    """Corollary 2 / Theorem 6: max over independent edge subsets.

    ``max_S ∏_{e∈S} N(e) / (M^{|S|-1} B)`` over subsets with no two
    consecutive edges (optionally allowing the pair ``e_k, e_{k+1}``
    for Theorem 6's even case), plus the linear term.
    """
    return (line_bound(sizes, M, B,
                       allow_adjacent_pair=allow_adjacent_pair)
            + sum(sizes) / B)


def line5_unbalanced_bound(sizes: Sequence[int], M: int, B: int) -> float:
    """Section 6.3's unbalanced ``L5`` lower bound.

    When ``N1·N3·N5 < N2·N4`` the Theorem 5 construction is infeasible
    and the bound drops to
    ``Õ(N1·N3·N5/(M²B) + N2/B + N4/B + (pair terms))``.
    """
    n1, n2, n3, n4, n5 = sizes
    pairs = max(n1 * n3, n1 * n4, n1 * n5, n2 * n4, n2 * n5,
                n3 * n5) / (M * B)
    return (n1 * n3 * n5 / (M ** 2 * B) + n2 / B + n4 / B + pairs
            + sum(sizes) / B)


def line7_cover11_bound(sizes: Sequence[int], M: int, B: int) -> float:
    """Section 6.3's ``L7`` bound for optimal cover ``(1,1,0,1,0,1,1)``.

    ``Õ(N1·N3·N5·N7/(M³B) + N1·N7·(N2 + N4 + N6)/(M²B) + linear)`` —
    the reduction pays ``N1/M · N7/M`` times the middle Algorithm 4.
    """
    n1, n2, n3, n4, n5, n6, n7 = sizes
    mid = line5_unbalanced_bound(sizes[1:6], M, B)
    return (n1 / M) * (n7 / M) * mid + sum(sizes) / B


def triangle_bound(n1: int, n2: int, n3: int, M: int, B: int) -> float:
    """Table 1 row ``C3``: ``√(N1·N2·N3/M)/B`` plus the linear term.

    For equal sizes this is the classic ``N^{3/2}/(√M·B)`` of [7, 12],
    the cyclic point of comparison the paper's Table 1 cites.
    """
    return math.sqrt(n1 * n2 * n3 / M) / B + (n1 + n2 + n3) / B


def star_bound(core_size: int, petal_sizes: Sequence[int], M: int,
               B: int) -> float:
    """Corollary 1's first term: ``∏ N_i / (M^{n-1} B)`` for the petals.

    The second term of (5) is instance-dependent (``max ψ``); use
    :func:`repro.analysis.subjoin.lower_bound` for it.
    """
    n = len(petal_sizes)
    return (math.prod(petal_sizes) / (M ** (n - 1) * B)
            + (core_size + sum(petal_sizes)) / B)


def equal_size_bound(query: JoinQuery, N: int, M: int, B: int) -> float:
    """Theorem 7: ``(N/M)^c · M/B`` with ``c`` the min edge cover number."""
    c = cover_number(query)
    return (N / M) ** c * M / B + len(query.edges) * N / B


def yannakakis_em_bound(output_size: int, input_total: int, M: int,
                        B: int) -> float:
    """The pairwise baseline: ``Õ(|Q(R)|/B)`` plus linear terms.

    In the emit model this is up to a factor ``M`` worse than optimal
    (Section 1.2): the optimal algorithms pay ``|Q(R)|/(M^{k}B)``-style
    terms instead.
    """
    return output_size / B + input_total / B


def nested_loop_cascade_bound(sizes: Sequence[int], M: int,
                              B: int) -> float:
    """The naive ``n``-deep nested loop: ``∏ N_i / (M^{n-1} B)``.

    The strawman Section 3 improves on for ``L3`` (where it pays
    ``N1·N2·N3/(M²B)`` versus Algorithm 1's ``N1·N3/(MB)``).
    """
    n = len(sizes)
    return math.prod(sizes) / (M ** (n - 1) * B) + sum(sizes) / B


def worst_case_psi(query: JoinQuery, subset: Iterable[str], M: int,
                   B: int) -> float:
    """``max_R Ψ(R, S)``: the worst-case subjoin cost from sizes alone.

    The worst-case size of the subjoin on ``S`` is the product, over
    ``S``'s connected components, of each component's AGM bound (the
    cross product couples disconnected components).  This is the
    quantity the paper compares branch collections with ("in terms of
    the worst case", Section 4.2's ``S1..S4`` discussion).
    """
    from repro.query.covers import agm_bound as _agm

    chosen = sorted(set(subset))
    if not chosen:
        return 0.0
    size = 1.0
    for component in query.connected_components(chosen):
        sub_q = query.drop_edges([e for e in query.edges
                                  if e not in component])
        size *= _agm(sub_q)
    return size / (M ** (len(chosen) - 1) * B)


def worst_case_branch_bound(query: JoinQuery,
                            collection: Iterable[Iterable[str]],
                            M: int, B: int) -> float:
    """``max_{S ∈ collection} max_R Ψ(R, S)`` for one GenS branch."""
    return max((worst_case_psi(query, s, M, B) for s in collection if s),
               default=0.0)


def agm_internal_bound(query: JoinQuery) -> float:
    """Table 1's internal-memory column: the AGM bound itself."""
    from repro.query.covers import agm_bound

    return agm_bound(query)
