"""Observability for the simulated EM machine: tracing and baselines.

The paper's sole cost measure is the number of block transfers
(Aggarwal–Vitter; see PAPERS.md), so the one metric worth tracing is
where those transfers come from.  This subpackage provides:

* :class:`TraceEvent` — one structured record per device event
  (physical read/write, cache hit/miss/eviction/write-back, phase
  enter/exit, memory-peak growth);
* :class:`Tracer` — an opt-in, ring-buffered event sink with exact
  per-file and per-phase rollups, a sampling knob, and JSONL export;
* :class:`SpanProfiler` — hierarchical spans (algorithm → phase →
  operator) snapshotting the device counters at entry/exit, with
  Chrome-trace/Perfetto and Prometheus exporters
  (:mod:`~repro.obs.export`);
* :class:`MetricsRegistry` — named counters/gauges/histograms the
  instrumented code populates for free when metrics are off
  (:data:`NULL_METRICS`);
* :mod:`~repro.obs.baseline` — pinned benchmark baselines
  (``BENCH_table1.json``) and the drift comparator CI runs.

Attach a tracer with ``Device(M, B, tracer=Tracer())`` or
``device.attach_tracer(t)``; the same goes for ``profiler=`` and
``metrics=``.  With nothing attached (the default) every counter stays
byte-identical to the bare accounting — observers watch charges, they
never make them.
"""

from repro.obs.baseline import (compare_baselines, load_baseline,
                                write_baseline)
from repro.obs.events import (CACHE_KINDS, EVENT_KINDS, IO_KINDS,
                              TraceEvent)
from repro.obs.export import (make_metrics_handler, metrics_payload,
                              start_metrics_server, to_chrome_trace,
                              to_prometheus, write_chrome_trace)
from repro.obs.metrics import (DEFAULT_BUCKETS, NULL_METRICS, Counter,
                               Gauge, Histogram, MetricsRegistry,
                               NullMetrics)
from repro.obs.rollup import IOBreakdown, Rollups, UNATTRIBUTED
from repro.obs.spans import (NULL_SPAN, SPAN_KINDS, ProfiledEmitter,
                             Span, SpanProfiler)
from repro.obs.tracer import Tracer

__all__ = [
    "TraceEvent", "EVENT_KINDS", "IO_KINDS", "CACHE_KINDS",
    "Tracer", "Rollups", "IOBreakdown", "UNATTRIBUTED",
    "write_baseline", "load_baseline", "compare_baselines",
    "Span", "SpanProfiler", "ProfiledEmitter", "NULL_SPAN", "SPAN_KINDS",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullMetrics",
    "NULL_METRICS", "DEFAULT_BUCKETS",
    "to_chrome_trace", "write_chrome_trace", "to_prometheus",
    "metrics_payload", "make_metrics_handler", "start_metrics_server",
]
