"""Exporters: Chrome trace-event (Perfetto) JSON and Prometheus text.

Both formats are deliberately boring: the Chrome trace-event flavor is
the JSON array-of-events form ``chrome://tracing`` and
https://ui.perfetto.dev load directly, and the Prometheus flavor is
the line-oriented text exposition format, so standard tooling consumes
profiles of the simulated machine with no adapters.
"""

from __future__ import annotations

import json
import re

from repro.obs.metrics import Gauge, Histogram

#: pid/tid the single-threaded simulation reports in trace events.
TRACE_PID = 1
TRACE_TID = 1

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def chrome_trace_events(profiler) -> list[dict]:
    """The profiler's span tree as Chrome trace-event dicts.

    One complete-duration (``"ph": "X"``) event per recorded span,
    timestamped in microseconds relative to the profiler's origin —
    the fields (``name``, ``cat``, ``ph``, ``ts``, ``dur``, ``pid``,
    ``tid``, ``args``) are exactly what the Perfetto / Chrome trace
    viewers expect.
    """
    events = []
    for span in profiler.iter_spans():
        if not span.closed:
            continue
        args = {"io_reads": span.reads, "io_writes": span.writes,
                "io_total": span.io, "io_exclusive": span.exclusive_io,
                "tuples": span.tuples,
                "mem_peak_exit": span.mem_peak1}
        cache = span.cache_delta()
        if any(cache.values()):
            args["cache"] = cache
        if span.attrs:
            args.update({f"attr_{k}": v for k, v in span.attrs.items()})
        events.append({
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "ts": round((span.t0 - profiler.origin) * 1e6, 3),
            "dur": round(span.wall_s * 1e6, 3),
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": args,
        })
    return events


def to_chrome_trace(profiler) -> dict:
    """The full trace document (``traceEvents`` envelope)."""
    return {
        "traceEvents": chrome_trace_events(profiler),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro span profiler",
            "span_count": profiler.span_count,
            "dropped_spans": profiler.dropped,
        },
    }


def write_chrome_trace(path, profiler) -> int:  # em-effects: HOST_ONLY -- profile export writes to the host filesystem after the measured run
    """Write the Perfetto-loadable JSON; return the event count."""
    doc = to_chrome_trace(profiler)
    # host-side trace export, not simulated-device I/O
    with open(path, "w", encoding="utf-8") as fh:  # emlint: disable=EM001
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return len(doc["traceEvents"])


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a dotted instrument name into a Prometheus metric name."""
    return f"{prefix}_{_NAME_RE.sub('_', name)}"


def to_prometheus(registry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters become ``counter`` samples, gauges a ``gauge`` plus a
    ``_max`` companion, histograms the standard cumulative
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` triple.
    """
    lines: list[str] = []
    for inst in sorted(registry.instruments(), key=lambda i: i.name):
        name = prometheus_name(inst.name)
        if isinstance(inst, Histogram):
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(inst.buckets, inst.counts):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_le(bound)}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {inst.count}')
            lines.append(f"{name}_sum {_num(inst.sum)}")
            lines.append(f"{name}_count {inst.count}")
        elif isinstance(inst, Gauge):
            lines.append(f"# TYPE {name} gauge")
            d = inst.as_dict()
            lines.append(f"{name} {_num(d['value'])}")
            lines.append(f"{name}_max {_num(d['max'])}")
        else:
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_num(inst.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_payload(source) -> bytes:
    """The ``/metrics`` response body for a registry (or a provider).

    ``source`` may be a registry, a zero-arg callable returning one
    (so gauges can be refreshed at scrape time), or a ready exposition
    string.
    """
    value = source() if callable(source) else source
    text = value if isinstance(value, str) else to_prometheus(value)
    return text.encode("utf-8")


def make_metrics_handler(source):  # em-thread-root: http
    """A request handler class serving ``source`` at ``GET /metrics``."""
    from http.server import BaseHTTPRequestHandler

    class MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path.split("?")[0] != "/metrics":
                self.send_error(404, "only /metrics lives here")
                return
            body = metrics_payload(source)
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # noqa: A002 - API name
            pass  # scrapes should not spam the console

    return MetricsHandler


def start_metrics_server(source, host: str = "127.0.0.1",  # em-effects: HOST_ONLY -- serves host HTTP, outside any measured run
                         port: int = 0):
    """Expose the text exposition over HTTP in a daemon thread.

    Returns the live ``HTTPServer`` (``server_port`` tells you the
    bound port when ``port=0``); call ``shutdown()`` to stop it.
    """
    import threading
    from http.server import ThreadingHTTPServer

    server = ThreadingHTTPServer((host, port), make_metrics_handler(source))
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-metrics", daemon=True)
    thread.start()
    return server


def _le(bound: float) -> str:
    return str(int(bound)) if float(bound).is_integer() else repr(bound)


def _num(v: float) -> str:
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return str(v)
