"""Hierarchical spans: who spent the I/O, over what wall time.

A :class:`SpanProfiler` attached to a
:class:`~repro.em.device.Device` records a tree of **spans**
(algorithm → phase → operator).  Each span snapshots the device's
:class:`~repro.em.stats.IOStats` (reads, writes, and the cache
counters), the :class:`~repro.em.stats.MemoryGauge` peak, the wall
clock, and the profiler's tuples-produced counter at entry and exit,
so its *deltas* say exactly what that region of the run cost.  Like
the tracer, the profiler is strictly read-only: it observes counters,
it never charges them, so profiled and unprofiled runs have
byte-identical I/O statistics.

Spans come from three places:

* algorithms and operators call ``device.span(name, kind)`` — a
  context manager that is a shared no-op (:data:`NULL_SPAN`) when no
  profiler is attached, so instrumented code costs nearly nothing
  when profiling is off;
* every :class:`~repro.em.stats.PhaseTracker` phase opens a
  ``kind="phase"`` span automatically, which is what nests operator
  spans under the algorithm phases they run in;
* :class:`ProfiledEmitter` wraps an emitter so emitted results tick
  the profiler's tuple counter, giving every span its tuples-produced
  delta.

Attribution mirrors :class:`~repro.em.stats.PhaseTracker`: a span's
``io`` delta includes its children; ``exclusive_io`` subtracts them,
so summing ``exclusive_io`` over the whole tree plus the profiler's
unattributed remainder reconstructs ``stats.total`` exactly
(``tests/test_spans.py`` pins this).
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Callable, Iterator


class Span:
    """One profiled region with entry/exit snapshots."""

    __slots__ = ("name", "kind", "attrs", "children", "depth", "dropped",
                 "t0", "t1", "reads0", "writes0", "reads1", "writes1",
                 "cache0", "cache1", "mem_peak0", "mem_peak1",
                 "tuples0", "tuples1", "_profiler")

    def __init__(self, profiler: "SpanProfiler", name: str, kind: str,
                 attrs: dict | None, depth: int) -> None:
        self.name = name
        self.kind = kind
        self.attrs = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.depth = depth
        self.dropped = False
        self.t1 = None
        self._profiler = profiler

    # -- in-flight annotation (also provided by NULL_SPAN) -------------

    def set(self, key: str, value: Any) -> None:
        """Attach one key/value annotation to this span."""
        self.attrs[key] = value

    def add_tuples(self, n: int = 1) -> None:
        """Report ``n`` results produced inside this span."""
        self._profiler.add_tuples(n)

    # -- derived deltas (valid after close) ----------------------------

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    @property
    def wall_s(self) -> float:
        return (self.t1 or self.t0) - self.t0

    @property
    def reads(self) -> int:
        return self.reads1 - self.reads0

    @property
    def writes(self) -> int:
        return self.writes1 - self.writes0

    @property
    def io(self) -> int:
        """Block transfers inside this span, children included."""
        return self.reads + self.writes

    @property
    def exclusive_io(self) -> int:
        """This span's I/O not claimed by a recorded child span."""
        return self.io - sum(c.io for c in self.children)

    @property
    def tuples(self) -> int:
        """Results produced (via :class:`ProfiledEmitter`) in scope."""
        return self.tuples1 - self.tuples0

    def cache_delta(self) -> dict:
        return {k: self.cache1[k] - self.cache0[k] for k in self.cache0}

    def as_dict(self) -> dict:
        """JSON-ready subtree rooted at this span."""
        out = {
            "name": self.name,
            "kind": self.kind,
            "wall_ms": round(self.wall_s * 1e3, 3),
            "io": {"reads": self.reads, "writes": self.writes,
                   "total": self.io, "exclusive": self.exclusive_io},
            "cache": self.cache_delta(),
            "tuples": self.tuples,
            "mem_peak": {"enter": self.mem_peak0, "exit": self.mem_peak1},
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"io={self.io}" if self.closed else "open"
        return f"Span({self.name!r}, kind={self.kind!r}, {state})"


class _NullSpan:
    """The shared span handed out when no profiler is attached."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def add_tuples(self, n: int = 1) -> None:
        pass


#: Reusable, re-entrant no-op span (``device.span`` returns it when
#: profiling is off).
NULL_SPAN = _NullSpan()

#: Span kinds, outermost first — purely descriptive, not enforced.
SPAN_KINDS = ("algorithm", "phase", "operator")


class SpanProfiler:
    """The opt-in span sink a device snapshots its counters into.

    ``capacity`` bounds the number of *recorded* spans: once reached,
    further spans still open and close (keeping nesting well-formed and
    the counters untouched) but are not stored; ``dropped`` counts
    them, so a truncated profile is never mistaken for a complete one.
    """

    def __init__(self, capacity: int = 65536,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._device = None
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.tuples_produced = 0
        self.span_count = 0
        self.dropped = 0
        self.origin = clock()

    # -- wiring (called by Device.attach_profiler) ---------------------

    def attach(self, device) -> None:
        self._device = device

    def detach(self) -> None:
        self._device = None

    def add_tuples(self, n: int = 1) -> None:
        self.tuples_produced += n

    # -- span lifecycle ------------------------------------------------

    def open(self, name: str, kind: str = "operator",
             attrs: dict | None = None) -> Span:
        """Open a span nested under the innermost open one."""
        device = self._device
        if device is None:
            raise RuntimeError(
                "SpanProfiler is not attached to a device; pass it to "
                "Device(profiler=...) or call device.attach_profiler")
        parent = self._stack[-1] if self._stack else None
        span = Span(self, name, kind, attrs, depth=len(self._stack))
        stats = device.stats
        span.reads0 = stats.reads
        span.writes0 = stats.writes
        span.cache0 = _cache_dict(stats.cache)
        span.mem_peak0 = device.memory.peak
        span.tuples0 = self.tuples_produced
        span.t0 = self._clock()
        if (self.span_count >= self.capacity
                or (parent is not None and parent.dropped)):
            span.dropped = True
            self.dropped += 1
        else:
            self.span_count += 1
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
        self._stack.append(span)
        return span

    def close(self, span: Span) -> None:
        """Close ``span``; it must be the innermost open one."""
        if not self._stack or self._stack[-1] is not span:
            open_name = self._stack[-1].name if self._stack else None
            raise RuntimeError(
                f"span {span.name!r} is not the innermost open span "
                f"(innermost is {open_name!r})")
        self._stack.pop()
        device = self._device
        stats = device.stats
        span.t1 = self._clock()
        span.reads1 = stats.reads
        span.writes1 = stats.writes
        span.cache1 = _cache_dict(stats.cache)
        span.mem_peak1 = device.memory.peak
        span.tuples1 = self.tuples_produced

    @contextlib.contextmanager
    def span(self, name: str, kind: str = "operator", **attrs):
        """Context-managed :meth:`open`/:meth:`close` pair."""
        s = self.open(name, kind, attrs or None)
        try:
            yield s
        finally:
            self.close(s)

    # -- inspection ----------------------------------------------------

    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first, parents before children."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    @property
    def attributed_io(self) -> int:
        """I/O covered by the recorded root spans."""
        return sum(s.io for s in self.roots if s.closed)

    def summary(self) -> dict:
        """The whole span tree plus reconciliation totals, JSON-ready.

        ``unattributed_io`` is the device I/O charged outside every
        recorded root span; recorded exclusive I/O plus it always
        equals ``stats.total``.
        """
        total = self._device.stats.total if self._device else 0
        return {
            "spans": [s.as_dict() for s in self.roots if s.closed],
            "span_count": self.span_count,
            "dropped": self.dropped,
            "tuples_produced": self.tuples_produced,
            "total_io": total,
            "attributed_io": self.attributed_io,
            "unattributed_io": total - self.attributed_io,
        }

    def reset(self) -> None:
        """Drop all spans and zero the counters (keeps the knobs)."""
        if self._stack:
            raise RuntimeError(
                f"cannot reset with {len(self._stack)} span(s) open "
                f"(innermost {self._stack[-1].name!r})")
        self.roots.clear()
        self.tuples_produced = 0
        self.span_count = 0
        self.dropped = 0
        self.origin = self._clock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SpanProfiler(spans={self.span_count}, "
                f"dropped={self.dropped}, open={len(self._stack)})")


def _cache_dict(cache) -> dict:
    return {"hits": cache.hits, "misses": cache.misses,
            "evictions": cache.evictions, "writebacks": cache.writebacks}


class ProfiledEmitter:
    """Emitter wrapper ticking the profiler's tuple counter per emit.

    Everything else (``count``, ``results``, ``checksum``, …) is
    delegated to the wrapped emitter, so it is a drop-in replacement
    anywhere an :class:`~repro.core.emit.Emitter` is expected.
    """

    def __init__(self, inner, profiler: SpanProfiler) -> None:
        self._inner = inner
        self._profiler = profiler

    def emit(self, result) -> None:
        self._profiler.add_tuples(1)
        self._inner.emit(result)

    def emit_block(self, results) -> None:
        """Tick once per result, then delegate the whole block.

        Defined explicitly (not via ``__getattr__``) so block emits
        cannot bypass the tuple counter by reaching the inner emitter's
        ``emit_block`` directly.
        """
        results = results if isinstance(results, list) else list(results)
        self._profiler.add_tuples(len(results))
        inner_bulk = getattr(self._inner, "emit_block", None)
        if inner_bulk is not None:
            inner_bulk(results)
        else:
            emit = self._inner.emit
            for r in results:
                emit(r)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)
