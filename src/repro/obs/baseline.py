"""Pinned benchmark baselines and the drift comparator.

The repository's reason to exist is a set of exact I/O counts; a silent
change to any of them is a regression in the reproduction itself.  A
*baseline file* (``benchmarks/BENCH_table1.json``) pins, per query
class, the counters a fixed deterministic instance must produce:
physical reads and writes (pool off and pool on), result count, cache
counters, the per-phase breakdown, and the memory peak.  CI re-measures
and calls :func:`compare_baselines`; any integer drift fails the build.

Regenerate intentionally with::

    PYTHONPATH=src python benchmarks/generate_report.py --write-baseline
"""

from __future__ import annotations

import json

#: Bumped when the baseline layout changes incompatibly.
SCHEMA_VERSION = 1

#: Tolerance for float fields (e.g. ``hit_rate``); integers must match
#: exactly.
FLOAT_TOLERANCE = 1e-9


def write_baseline(path, classes: dict, *, meta: dict | None = None) -> dict:  # em-effects: HOST_ONLY -- baseline files live on the host filesystem, outside the simulated device
    """Write ``classes`` (query class -> measured counters) to ``path``.

    Returns the full document, including the schema envelope.
    """
    doc = {"schema_version": SCHEMA_VERSION,
           "meta": dict(meta or {}),
           "classes": classes}
    # host-side baseline file, not simulated-device I/O
    with open(path, "w", encoding="utf-8") as fh:  # emlint: disable=EM001
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def load_baseline(path) -> dict:  # em-effects: HOST_ONLY -- baseline files live on the host filesystem, outside the simulated device
    """Load a baseline document, validating the schema envelope."""
    # host-side baseline file, not simulated-device I/O
    with open(path, "r", encoding="utf-8") as fh:  # emlint: disable=EM001
        doc = json.load(fh)
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema_version={version!r}, "
            f"expected {SCHEMA_VERSION} — regenerate it")
    if "classes" not in doc:
        raise ValueError(f"baseline {path} has no 'classes' section")
    return doc


def compare_baselines(committed: dict, fresh: dict) -> list[str]:
    """Diff two baseline documents; return human-readable drift lines.

    An empty list means no drift.  Classes present on only one side,
    differing integers anywhere in a class's counter tree, and floats
    beyond :data:`FLOAT_TOLERANCE` all count as drift.
    """
    drift: list[str] = []
    old = committed.get("classes", {})
    new = fresh.get("classes", {})
    for name in sorted(set(old) - set(new)):
        drift.append(f"{name}: in committed baseline but not re-measured")
    for name in sorted(set(new) - set(old)):
        drift.append(f"{name}: measured but missing from the committed "
                     f"baseline (add it with --write-baseline)")
    for name in sorted(set(old) & set(new)):
        _diff_tree(name, old[name], new[name], drift)
    return drift


def _diff_tree(prefix: str, old, new, drift: list[str]) -> None:
    """Recursively compare counter trees, appending drift lines."""
    if isinstance(old, dict) and isinstance(new, dict):
        for key in sorted(set(old) - set(new)):
            drift.append(f"{prefix}.{key}: missing from fresh run")
        for key in sorted(set(new) - set(old)):
            drift.append(f"{prefix}.{key}: not in committed baseline")
        for key in sorted(set(old) & set(new)):
            _diff_tree(f"{prefix}.{key}", old[key], new[key], drift)
        return
    if isinstance(old, float) or isinstance(new, float):
        if abs(float(old) - float(new)) > FLOAT_TOLERANCE:
            drift.append(f"{prefix}: {old} -> {new}")
        return
    if old != new:
        drift.append(f"{prefix}: {old} -> {new}")
