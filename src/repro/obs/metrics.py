"""Counters, gauges, and histograms the algorithms populate for free.

A :class:`MetricsRegistry` is a flat namespace of named instruments
(``sort.run_tuples``, ``pool.resident_pages``, ``gens.branch_size``,
…).  Call sites never check whether metrics are enabled: a device
without a registry carries the shared :data:`NULL_METRICS` sink, whose
instruments swallow every update in a couple of attribute lookups, so
instrumented code paths cost nearly nothing when observability is off
(the tier-1 seed-count tests pin that the I/O counters are byte
identical either way — metrics, like the tracer and spans, never
charge).

Histogram buckets are fixed at construction, so two histograms of the
same name merge associatively (a hypothesis property test in
``tests/test_spans.py`` pins this) — the property that makes per-shard
metric aggregation sound.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

#: Power-of-two upper bounds covering 1 tuple .. 1 Mi tuples; the last
#: (overflow) bucket is implicit (+inf).
DEFAULT_BUCKETS: tuple[float, ...] = tuple(2 ** k for k in range(21))


class Counter:
    """A monotone count (events, tuples, passes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n

    def as_dict(self) -> dict[str, int]:
        return {"value": self.value}


class Gauge:
    """A spot value plus the extremes it reached (pool residency, …)."""

    __slots__ = ("name", "value", "max", "min", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max = float("-inf")
        self.min = float("inf")
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    def as_dict(self) -> dict[str, float]:
        if not self.updates:
            return {"value": 0, "max": 0, "min": 0, "updates": 0}
        return {"value": self.value, "max": self.max, "min": self.min,
                "updates": self.updates}


class Histogram:
    """Fixed-bucket distribution (run lengths, group sizes, …).

    ``buckets`` are increasing upper bounds; an observation lands in
    the first bucket whose bound is ``>= value`` (one implicit overflow
    bucket catches the rest).  Because the boundaries are fixed,
    :meth:`merge` is associative and commutative.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"buckets must be non-empty and increasing: {bounds}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two histograms with identical boundaries."""
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.name} vs {other.name}")
        out = Histogram(self.name, self.buckets)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.count = self.count + other.count
        out.sum = self.sum + other.sum
        return out

    def as_dict(self) -> dict[str, object]:
        # Only non-empty buckets, keyed by upper bound (stringified so
        # the dict is JSON-ready); "+inf" is the overflow bucket.
        labels = [_fmt_bound(b) for b in self.buckets] + ["+inf"]
        return {"count": self.count, "sum": self.sum,
                "mean": round(self.mean, 4),
                "buckets": {label: c for label, c in
                            zip(labels, self.counts) if c}}


def _fmt_bound(b: float) -> str:
    return str(int(b)) if float(b).is_integer() else repr(b)


class MetricsRegistry:
    """A live namespace of instruments, created lazily by name."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, buckets)
        return h

    def instruments(self) -> Iterable[Counter | Gauge | Histogram]:
        yield from self._counters.values()
        yield from self._gauges.values()
        yield from self._histograms.values()

    def as_dict(self) -> dict[str, object]:
        """All instruments, JSON-ready, sorted by name."""
        return {
            "counters": {k: v.as_dict() for k, v in
                         sorted(self._counters.items())},
            "gauges": {k: v.as_dict() for k, v in
                       sorted(self._gauges.items())},
            "histograms": {k: v.as_dict() for k, v in
                           sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = ""

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every lookup returns the shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def as_dict(self) -> dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass


#: The default sink every device carries when metrics are off.
NULL_METRICS = NullMetrics()
