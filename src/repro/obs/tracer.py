"""The opt-in event sink the device charges nothing into.

A :class:`Tracer` observes every accounting action of a
:class:`~repro.em.device.Device` it is attached to and stores a
(ring-buffered, optionally sampled) stream of
:class:`~repro.obs.events.TraceEvent` records plus *exact*
:class:`~repro.obs.rollup.Rollups`.  Attachment is strictly one-way:
the tracer never mutates a counter, so traced and untraced runs have
byte-identical I/O statistics (asserted by
``tests/test_obs.py::TestTracerTransparency``).

Storage knobs:

* ``capacity`` bounds the ring buffer; once full, the oldest stored
  events are overwritten (rollups are unaffected).
* ``sample_every=k`` stores every k-th I/O, cache, and memory event
  (phase markers are always stored — there are few of them and the
  per-phase rollups are reconstructed from charges, not from them).
"""

from __future__ import annotations

import collections
import json

from repro.obs.events import TraceEvent
from repro.obs.rollup import Rollups


class Tracer:
    """Ring-buffered trace of device events with exact rollups."""

    def __init__(self, capacity: int = 65536,
                 sample_every: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}")
        self.capacity = capacity
        self.sample_every = sample_every
        self.rollups = Rollups()
        self._buffer: collections.deque[TraceEvent] = collections.deque(
            maxlen=capacity)
        self._seen = 0          # every event, stored or not
        self._stored = 0        # events that entered the buffer
        self._sampled_out = 0   # events skipped by the sampling knob
        self._phase_stack: list[str] = []

    # -- device-facing hooks (called by Device / BufferPool / gauges) --

    def on_read(self, file: str, page: int) -> None:
        """One physical page read was charged."""
        phase = self._phase_stack[-1] if self._phase_stack else None
        self.rollups.record_io("read", file, tuple(self._phase_stack))
        self._store(TraceEvent(self._seen, "read", file=file, page=page,
                               phase=phase), sampled=True)

    def on_write(self, file: str, page: int) -> None:
        """One physical page write was charged."""
        phase = self._phase_stack[-1] if self._phase_stack else None
        self.rollups.record_io("write", file, tuple(self._phase_stack))
        self._store(TraceEvent(self._seen, "write", file=file, page=page,
                               phase=phase), sampled=True)

    def on_cache(self, kind: str, file: str, page: int) -> None:
        """A buffer-pool hit / miss / eviction / write-back."""
        phase = self._phase_stack[-1] if self._phase_stack else None
        self.rollups.record_cache(kind)
        self._store(TraceEvent(self._seen, kind, file=file, page=page,
                               phase=phase), sampled=True)

    def on_phase_enter(self, label: str) -> None:
        self._phase_stack.append(label)
        self._store(TraceEvent(self._seen, "phase_enter", phase=label),
                    sampled=False)

    def on_phase_exit(self, label: str, exclusive_io: int) -> None:
        if self._phase_stack and self._phase_stack[-1] == label:
            self._phase_stack.pop()
        self._store(TraceEvent(self._seen, "phase_exit", phase=label,
                               value=exclusive_io), sampled=False)

    def on_mem_peak(self, peak: int) -> None:
        """The memory gauge reached a new peak (in tuples)."""
        self.rollups.record_mem_peak(peak)
        self._store(TraceEvent(self._seen, "mem_peak", value=peak),
                    sampled=True)

    # -- inspection and export ----------------------------------------

    def events(self) -> list[TraceEvent]:
        """The currently buffered events, oldest first."""
        return list(self._buffer)

    @property
    def seen(self) -> int:
        """Total events observed (including sampled-out ones)."""
        return self._seen

    def summary(self) -> dict:
        """Exact rollups plus buffer bookkeeping, JSON-ready."""
        out = {"events": {"seen": self._seen,
                          "stored": len(self._buffer),
                          "sampled_out": self._sampled_out,
                          "overwritten": self._stored - len(self._buffer),
                          "capacity": self.capacity,
                          "sample_every": self.sample_every}}
        out.update(self.rollups.as_dict())
        return out

    def export_jsonl(self, path) -> int:  # em-effects: HOST_ONLY -- trace export writes to the host filesystem after the measured run
        """Write the buffered events as JSON Lines; return the count."""
        events = self.events()
        # host-side JSONL export, not simulated-device I/O
        with open(path, "w", encoding="utf-8") as fh:  # emlint: disable=EM001
            for e in events:
                fh.write(json.dumps(e.as_dict(), sort_keys=False))
                fh.write("\n")
        return len(events)

    def reset(self) -> None:
        """Drop all events and zero the rollups (keeps the knobs)."""
        self._buffer.clear()
        self._seen = self._stored = self._sampled_out = 0
        self._phase_stack.clear()
        self.rollups.reset()

    # -- internals -----------------------------------------------------

    def _store(self, event: TraceEvent, *, sampled: bool) -> None:
        self._seen += 1
        if sampled and (self._seen - 1) % self.sample_every:
            self._sampled_out += 1
            return
        self._buffer.append(event)
        self._stored += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Tracer(seen={self._seen}, stored={len(self._buffer)}, "
                f"capacity={self.capacity}, "
                f"sample_every={self.sample_every})")
