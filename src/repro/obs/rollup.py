"""Exact per-file and per-phase aggregation of trace events.

Rollups are updated on *every* event the tracer sees — they are never
sampled — so the per-phase read/write totals always sum to the device's
``stats.total`` regardless of the ring buffer's capacity or the
sampling rate.  Only the stored event stream is lossy.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Phase label for I/O charged outside any open phase.  Matches the
#: remainder key of :meth:`repro.em.stats.PhaseTracker.report`.
UNATTRIBUTED = "(unattributed)"

#: Singular event kind -> the plural counter key ``CacheStats`` uses.
_CACHE_KEY = {"hit": "hits", "miss": "misses", "eviction": "evictions",
              "writeback": "writebacks"}


@dataclass
class IOBreakdown:
    """Read/write counts for one file or one phase."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def as_dict(self) -> dict:
        return {"reads": self.reads, "writes": self.writes,
                "total": self.total}


class Rollups:
    """Running aggregates over the event stream."""

    def __init__(self) -> None:
        self.io = IOBreakdown()
        self.per_file: dict[str, IOBreakdown] = {}
        self.per_phase: dict[str, IOBreakdown] = {}
        self.cache: dict[str, int] = {k: 0 for k in
                                      ("hits", "misses", "evictions",
                                       "writebacks")}
        self.mem_peak = 0

    def record_io(self, kind: str, file: str, phase: str | None) -> None:
        """Fold one physical read/write into every aggregate."""
        by_file = self.per_file.setdefault(file, IOBreakdown())
        by_phase = self.per_phase.setdefault(
            phase if phase is not None else UNATTRIBUTED, IOBreakdown())
        if kind == "read":
            self.io.reads += 1
            by_file.reads += 1
            by_phase.reads += 1
        else:
            self.io.writes += 1
            by_file.writes += 1
            by_phase.writes += 1

    def record_cache(self, kind: str) -> None:
        # Event kinds are singular; keep the plural keys CacheStats uses.
        self.cache[_CACHE_KEY[kind]] += 1

    def record_mem_peak(self, peak: int) -> None:
        if peak > self.mem_peak:
            self.mem_peak = peak

    def as_dict(self) -> dict:
        """The summary sections (phases and files sorted by name)."""
        return {
            "io": self.io.as_dict(),
            "per_phase": {k: v.as_dict() for k, v in
                          sorted(self.per_phase.items())},
            "per_file": {k: v.as_dict() for k, v in
                         sorted(self.per_file.items())},
            "cache": dict(self.cache),
            "memory": {"peak": self.mem_peak},
        }

    def reset(self) -> None:
        self.io = IOBreakdown()
        self.per_file.clear()
        self.per_phase.clear()
        self.cache = {k: 0 for k in self.cache}
        self.mem_peak = 0
