"""Exact per-file and per-phase aggregation of trace events.

Rollups are updated on *every* event the tracer sees — they are never
sampled — so the per-phase read/write totals always sum to the device's
``stats.total`` regardless of the ring buffer's capacity or the
sampling rate.  Only the stored event stream is lossy.

Phases nest, so there are two attribution views (see docs/model.md):

* ``per_phase`` is **exclusive** — a charge counts only toward the
  innermost open phase, so the per-phase totals (plus
  :data:`UNATTRIBUTED`) sum exactly to the device total;
* ``per_phase_inclusive`` charges every *distinct* label on the open
  phase stack, so an outer phase's row answers "how much I/O happened
  while this phase was open, children included".  Inclusive rows
  overlap and do **not** sum to the total.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Phase label for I/O charged outside any open phase.  Matches the
#: remainder key of :meth:`repro.em.stats.PhaseTracker.report`.
UNATTRIBUTED = "(unattributed)"

#: Singular event kind -> the plural counter key ``CacheStats`` uses.
_CACHE_KEY = {"hit": "hits", "miss": "misses", "eviction": "evictions",
              "writeback": "writebacks"}


@dataclass
class IOBreakdown:
    """Read/write counts for one file or one phase."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def as_dict(self) -> dict:
        return {"reads": self.reads, "writes": self.writes,
                "total": self.total}


class Rollups:
    """Running aggregates over the event stream."""

    def __init__(self) -> None:
        self.io = IOBreakdown()
        self.per_file: dict[str, IOBreakdown] = {}
        self.per_phase: dict[str, IOBreakdown] = {}
        self.per_phase_inclusive: dict[str, IOBreakdown] = {}
        self.cache: dict[str, int] = {k: 0 for k in
                                      ("hits", "misses", "evictions",
                                       "writebacks")}
        self.mem_peak = 0

    def record_io(self, kind: str, file: str,
                  phases: tuple[str, ...]) -> None:
        """Fold one physical read/write into every aggregate.

        ``phases`` is the open phase stack, outermost first; empty
        means the charge is outside every phase.  The innermost label
        gets the exclusive charge; every distinct label on the stack
        gets an inclusive one (a label open twice through recursion is
        charged once, not twice).
        """
        is_read = kind == "read"
        by_file = self.per_file.setdefault(file, IOBreakdown())
        by_phase = self.per_phase.setdefault(
            phases[-1] if phases else UNATTRIBUTED, IOBreakdown())
        targets = [self.io, by_file, by_phase]
        for label in (set(phases) if phases else (UNATTRIBUTED,)):
            targets.append(self.per_phase_inclusive.setdefault(
                label, IOBreakdown()))
        for t in targets:
            if is_read:
                t.reads += 1
            else:
                t.writes += 1

    def record_cache(self, kind: str) -> None:
        # Event kinds are singular; keep the plural keys CacheStats uses.
        self.cache[_CACHE_KEY[kind]] += 1

    def record_mem_peak(self, peak: int) -> None:
        if peak > self.mem_peak:
            self.mem_peak = peak

    def as_dict(self) -> dict:
        """The summary sections (phases and files sorted by name)."""
        return {
            "io": self.io.as_dict(),
            "per_phase": {k: v.as_dict() for k, v in
                          sorted(self.per_phase.items())},
            "per_phase_inclusive": {k: v.as_dict() for k, v in
                                    sorted(
                                        self.per_phase_inclusive.items())},
            "per_file": {k: v.as_dict() for k, v in
                         sorted(self.per_file.items())},
            "cache": dict(self.cache),
            "memory": {"peak": self.mem_peak},
        }

    def reset(self) -> None:
        self.io = IOBreakdown()
        self.per_file.clear()
        self.per_phase.clear()
        self.per_phase_inclusive.clear()
        self.cache = {k: 0 for k in self.cache}
        self.mem_peak = 0
