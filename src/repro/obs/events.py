"""Structured trace events emitted by the simulated device.

Every event is cheap metadata — a kind, the file/page it touched, the
phase it was attributed to — never tuple contents, so tracing full
benchmark runs stays inexpensive even before sampling kicks in.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Physical block transfers — the paper's cost measure.
IO_KINDS = frozenset({"read", "write"})

#: Buffer-pool lifecycle (only seen on pooled devices).
CACHE_KINDS = frozenset({"hit", "miss", "eviction", "writeback"})

#: Phase attribution markers from :class:`~repro.em.stats.PhaseTracker`.
PHASE_KINDS = frozenset({"phase_enter", "phase_exit"})

#: Memory-gauge peak growth.
MEM_KINDS = frozenset({"mem_peak"})

EVENT_KINDS = IO_KINDS | CACHE_KINDS | PHASE_KINDS | MEM_KINDS


@dataclass(frozen=True)
class TraceEvent:
    """One device event.

    Attributes
    ----------
    seq:
        Monotone sequence number across *all* events the tracer saw
        (sampled-out events still advance it, so gaps in an exported
        trace reveal the sampling rate).
    kind:
        One of :data:`EVENT_KINDS`.
    file:
        File name for I/O and cache events.
    page:
        Page number within ``file`` for I/O and cache events.
    phase:
        Innermost open phase at emission time (I/O and cache events),
        or the phase's own label (``phase_enter`` / ``phase_exit``).
    value:
        ``phase_exit``: the phase's exclusive I/O; ``mem_peak``: the
        new peak in tuples.
    """

    seq: int
    kind: str
    file: str | None = None
    page: int | None = None
    phase: str | None = None
    value: int | None = None

    def as_dict(self) -> dict:
        """Compact dict for JSONL export (``None`` fields omitted)."""
        out = {"seq": self.seq, "kind": self.kind}
        if self.file is not None:
            out["file"] = self.file
        if self.page is not None:
            out["page"] = self.page
        if self.phase is not None:
            out["phase"] = self.phase
        if self.value is not None:
            out["value"] = self.value
        return out
