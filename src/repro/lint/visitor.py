"""The shared AST pass behind every ``emlint`` rule.

One :class:`ast.NodeVisitor` walk per file collects the facts the
rules need — imports (with relative-import resolution), call sites,
the lexical ``with``-statement stack, phase-name literals, and the
module-level ``PHASES`` declaration — and hands them to the
predicates in :mod:`repro.lint.rules`, emitting :class:`Violation`
records.  Pragma comments (``# emlint: disable=EM001`` or
``disable=all`` on the offending line) suppress individual findings;
a committed :class:`~repro.lint.baseline.Baseline` suppresses
accepted pre-existing ones.

The checker is deliberately stdlib-only and side-effect free: it
never imports the code it inspects.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.lint import rules
from repro.lint.baseline import Baseline
from repro.lint.registry import RULES

_PRAGMA_RE = re.compile(r"#\s*emlint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One rule finding, addressable by (path, code, scope)."""

    code: str
    path: str
    line: int
    col: int
    message: str
    scope: str

    @property
    def key(self) -> tuple[str, str, str]:
        """The baseline-matching key (line numbers are too brittle)."""
        return (self.path, self.code, self.scope)

    def as_dict(self) -> dict[str, object]:
        return {"code": self.code, "path": self.path, "line": self.line,
                "col": self.col, "scope": self.scope,
                "message": self.message,
                "rule": RULES[self.code].name}

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.code} "
                f"[{RULES[self.code].name}] {self.message}")


@dataclass
class LintResult:
    """Everything one lint run found, pre- and post-suppression."""

    violations: list[Violation] = field(default_factory=list)
    suppressed_by_pragma: list[Violation] = field(default_factory=list)
    suppressed_by_baseline: list[Violation] = field(default_factory=list)
    stale_baseline: list[dict[str, object]] = field(default_factory=list)
    files_checked: int = 0
    #: The inferred effect-signature table (see
    #: :func:`repro.lint.effects.signature_table`); ``None`` only for
    #: results built outside :func:`lint_paths`.
    signatures: dict[str, object] | None = None
    #: The emrace lock-graph document (see
    #: :func:`repro.lint.locks.evaluate_locks`); ``None`` only for
    #: results built outside :func:`lint_paths`.
    locks: dict[str, object] | None = None
    #: The emcost symbolic cost table (see
    #: :func:`repro.lint.costs.evaluate_costs`); ``None`` only for
    #: results built outside :func:`lint_paths`.
    costs: dict[str, object] | None = None

    @property
    def clean(self) -> bool:
        return not self.violations


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _package_parts(path: str) -> tuple[str, ...] | None:
    """The path components under the ``repro`` package, or ``None``.

    ``src/repro/core/acyclic.py`` → ``("core", "acyclic.py")``; files
    not under a ``repro`` directory return ``None`` and are checked
    with no layer scoping.
    """
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return parts[i + 1:]
    return None


def _layer(pkg_parts: tuple[str, ...] | None) -> str:
    """Top-level directory under ``repro/`` ("" for repro/*.py)."""
    if pkg_parts is None or len(pkg_parts) < 2:
        return ""
    return pkg_parts[0]


def _pragmas(source: str) -> dict[int, frozenset[str]]:
    """Map line number → codes disabled on that line."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_RE.search(line)
        if m:
            codes = frozenset(
                c.strip().upper() for c in m.group(1).split(",")
                if c.strip())
            out[lineno] = codes
    return out


class _Checker(ast.NodeVisitor):
    """One walk over a module, recording violations as it goes."""

    def __init__(self, path: str, module_package: str,
                 layer: str, pkg_relfile: str) -> None:
        self.path = path
        self.module_package = module_package
        self.layer = layer
        self.pkg_relfile = pkg_relfile
        self.violations: list[Violation] = []
        self._scope: list[str] = []
        #: Depth of enclosing ``with device.memory.hold(...)`` blocks.
        self._hold_depth = 0
        self._phase_literals: list[tuple[str, int, int]] = []
        self._declared_phases: tuple[str, ...] | None = None
        self._phases_decl_loc: tuple[int, int] = (0, 0)

    # -- bookkeeping --------------------------------------------------

    @property
    def scope(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    def _add(self, code: str, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            code=code, path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message, scope=self.scope))

    def _add_finding(self, finding: rules.Finding | None,
                     node: ast.AST) -> None:
        if finding is not None:
            self._add(finding[0], node, finding[1])

    # -- scopes -------------------------------------------------------

    def _visit_scoped(self, node: ast.AST, name: str) -> None:
        self._scope.append(name)
        try:
            self.generic_visit(node)
        finally:
            self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node, node.name)

    # -- EM001 / EM003 / EM004: imports -------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_import(alias.name, node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = self._absolute_module(node)
        if module is not None:
            self._check_import(module, node)
        self.generic_visit(node)

    def _absolute_module(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        base = self.module_package.split(".") if self.module_package else []
        up = node.level - 1
        if up > len(base):
            return node.module
        parts = base[:len(base) - up] if up else base
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else node.module

    def _check_import(self, module: str, node: ast.AST) -> None:
        self._add_finding(
            rules.em004_import(module, self.layer), node)
        self._add_finding(
            rules.em001_import(module, self.layer, self.pkg_relfile),
            node)
        self._add_finding(
            rules.em003_import(module, self.layer), node)

    # -- EM005: bare context-manager calls ----------------------------

    def visit_Expr(self, node: ast.Expr) -> None:
        self._add_finding(rules.em005_statement(node), node)
        self.generic_visit(node)

    # -- EM002: materialization of scans ------------------------------

    def visit_With(self, node: ast.With) -> None:
        holds = any(rules.is_hold(item.context_expr)
                    for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if holds:
            self._hold_depth += 1
        try:
            for stmt in node.body:
                self.visit(stmt)
        finally:
            if holds:
                self._hold_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        in_hold = bool(self._hold_depth)
        self._add_finding(
            rules.em002_call(node, self.layer, in_hold), node)
        self._add_finding(
            rules.em001_call(node, self.layer, self.pkg_relfile), node)
        # EM006: collect phase-name literals for the finish() pass.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "phase" and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            self._phase_literals.append(
                (node.args[0].value, node.lineno, node.col_offset))
        self.generic_visit(node)

    def _comprehension(self, node: ast.ListComp | ast.SetComp
                       | ast.DictComp) -> None:
        self._add_finding(
            rules.em002_comprehension(node, self.layer,
                                      bool(self._hold_depth)), node)
        self.generic_visit(node)

    visit_ListComp = _comprehension
    visit_SetComp = _comprehension
    visit_DictComp = _comprehension

    # -- EM006: PHASES declaration ------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if (not self._scope and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "PHASES"):
            self._record_phases(node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (not self._scope and isinstance(node.target, ast.Name)
                and node.target.id == "PHASES"
                and node.value is not None):
            self._record_phases(node.value, node)
        self.generic_visit(node)

    def _record_phases(self, value: ast.expr, node: ast.AST) -> None:
        names: list[str] = []
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for elt in value.elts:
                if (isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)):
                    names.append(elt.value)
                else:
                    self._add("EM006", elt,
                              "PHASES entries must be string "
                              "literals so the checker can "
                              "cross-check them")
                    return
            self._declared_phases = tuple(names)
            self._phases_decl_loc = (getattr(node, "lineno", 0),
                                     getattr(node, "col_offset", 0))
        else:
            self._add("EM006", node,
                      "PHASES must be a literal tuple/list of "
                      "phase-name strings")

    def finish(self) -> None:
        """Cross-check phase literals against the PHASES declaration."""
        for code, message, line, col in rules.em006_cross_check(
                self.layer, self._declared_phases,
                self._phases_decl_loc, self._phase_literals):
            self.violations.append(Violation(
                code=code, path=self.path, line=line, col=col,
                message=message, scope="<module>"))


def _parse(source: str, path: str) -> ast.Module | Violation:
    """Parse a module, or return the EM000 violation."""
    try:
        return ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 0) or 0
        return Violation(code="EM000", path=path, line=line, col=0,
                         message=f"cannot parse: {exc.msg}"
                         if isinstance(exc, SyntaxError)
                         else f"cannot parse: {exc}",
                         scope="<module>")


def _intra_check(tree: ast.Module, path: str) -> list[Violation]:
    """The single intraprocedural pass over one parsed module."""
    pkg = _package_parts(path)
    layer = _layer(pkg)
    pkg_relfile = "/".join(pkg) if pkg else path
    mod_parts = ["repro"] + list(pkg[:-1]) if pkg is not None else []
    checker = _Checker(path=path, module_package=".".join(mod_parts),
                       layer=layer, pkg_relfile=pkg_relfile)
    checker.visit(tree)
    checker.finish()
    return checker.violations


def check_source(source: str, path: str) -> list[Violation]:
    """Lint one module's source; ``path`` scopes the rules by layer.

    This is the *intraprocedural* pass only (EM000–EM006): the
    interprocedural effect rules (EM007–EM011) need the whole program
    and run in :func:`lint_paths`.  Pragma suppression is not applied
    here — callers that need it use :func:`lint_paths` or apply
    :func:`_pragmas` themselves.
    """
    tree = _parse(source, path)
    if isinstance(tree, Violation):
        return [tree]
    return sorted(_intra_check(tree, path),
                  key=lambda v: (v.line, v.col, v.code))


def _iter_py_files(paths: Sequence[Path]) -> Iterator[Path]:
    for p in paths:
        if p.is_dir():
            yield from sorted(
                f for f in p.rglob("*.py")
                if "__pycache__" not in f.parts)
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: Iterable[str | Path], *, root: str | Path = ".",
               baseline: Baseline | None = None) -> LintResult:
    """Lint every ``.py`` file under ``paths`` and aggregate results.

    ``root`` anchors the repo-relative paths used in reports and
    baseline keys.  ``baseline`` suppresses accepted pre-existing
    violations; entries that no longer match anything are reported as
    stale (fix the baseline, it documents reality).
    """
    from repro.lint import costs, effects, locks, threads
    from repro.lint.callgraph import build_program

    rootp = Path(root)
    result = LintResult()
    kept: list[Violation] = []
    per_file: dict[str, list[Violation]] = {}
    pragmas_by_file: dict[str, dict[int, frozenset[str]]] = {}
    modules: list[tuple[str, str, ast.AST, tuple[str, ...] | None]] = []
    for f in _iter_py_files([Path(p) for p in paths]):
        rel = _relpath(f, rootp)
        source = f.read_text(encoding="utf-8")
        result.files_checked += 1
        pragmas_by_file[rel] = _pragmas(source)
        tree = _parse(source, rel)
        if isinstance(tree, Violation):
            per_file[rel] = [tree]
            continue
        per_file[rel] = _intra_check(tree, rel)
        modules.append((rel, source, tree, _package_parts(rel)))
    # Second pass: the whole-program effect rules (EM007–EM011).
    program = build_program(modules)
    for finding in effects.evaluate(program):
        per_file.setdefault(finding.path, []).append(Violation(
            code=finding.code, path=finding.path, line=finding.line,
            col=0, message=finding.message, scope=finding.scope))
    result.signatures = effects.signature_table(program)
    # Third pass: thread-root inference + lock discipline (emrace,
    # EM012–EM016).
    analysis = threads.infer_threads(
        program, {rel: source for rel, source, _t, _p in modules})
    lock_findings, locks_doc = locks.evaluate_locks(
        program, modules, analysis)
    for lf in lock_findings:
        per_file.setdefault(lf.path, []).append(Violation(
            code=lf.code, path=lf.path, line=lf.line, col=0,
            message=lf.message, scope=lf.scope))
    result.locks = locks_doc
    # Fourth pass: symbolic I/O-cost certification (emcost,
    # EM017–EM021).
    cost_findings, costs_doc = costs.evaluate_costs(program, modules)
    for cf in cost_findings:
        per_file.setdefault(cf.path, []).append(Violation(
            code=cf.code, path=cf.path, line=cf.line, col=0,
            message=cf.message, scope=cf.scope))
    result.costs = costs_doc
    for rel in sorted(per_file):
        pragmas = pragmas_by_file.get(rel, {})
        for v in sorted(per_file[rel],
                        key=lambda v: (v.line, v.col, v.code)):
            disabled = pragmas.get(v.line, frozenset())
            if v.code in disabled or "ALL" in disabled:
                result.suppressed_by_pragma.append(v)
            else:
                kept.append(v)
    if baseline is not None:
        kept, suppressed, stale = baseline.apply(kept)
        result.suppressed_by_baseline = suppressed
        result.stale_baseline = stale
    result.violations = kept
    return result
