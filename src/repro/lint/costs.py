"""*emcost* — static symbolic I/O-cost certification (EM017–EM021).

The fourth whole-program pass.  Where emflow asks *which* effects a
function has and emrace asks *under which locks*, emcost asks *how
much charged I/O* a call chain can perform, as a symbolic bound in
the paper's own vocabulary (:mod:`repro.lint.symbolic`): every
``Device.charge_read``/``charge_write`` site costs one block
transfer, costs flow up call chains (reverse-topologically over
SCCs), and loop nests multiply their bodies by a bound.  The result
is a per-function symbolic upper bound that is checked against
``# em-cost:`` declarations on the algorithm entry points — the
static half of the Table-1 contract whose dynamic half is the fitted
slope gate.

Annotation grammar (all comments, attached to the construct's first
line or to a comment-only line directly above it):

``# em-cost: [amortized] <expr> -- justification``
    Declares a function's per-call I/O bound.  Plain declarations are
    *checked*: the derived bound must equal the declared one up to
    ``Õ`` (EM018 if the body exceeds it, EM020 if the declaration is
    stale).  ``amortized`` declarations are *trusted* summaries for
    functions whose per-call cost is data-dependent (cursor
    primitives, recursive algorithms); the body derivation is skipped
    and the justification must carry the amortization argument.

``# em-loop-bound: <expr> [-- reason]``
    Bounds a ``for``/``while`` iteration count the analysis cannot
    see.  ``em-loop-bound: 1`` with a reason is the amortization
    idiom: the body's costs are written in whole-input units.

``# em-yields: <expr>``
    On a generator: how many items one full iteration produces.
    Loops over a call whose every resolved target declares yields use
    that as the trip count (the call's own cost is charged once).

``# em-charges: <expr> -- reason``
    Overrides every call contribution on one line — the escape hatch
    for context-dependent call costs (e.g. a merge join known to
    never hit the heavy-heavy fallback at this site).

Soundness posture: like emflow, the pass is conservative where it can
afford to be (unknown loops default to an ``N`` trip count; unknown
calls cost zero only when they cannot reach a charge site, which
EM021 enforces globally) and precise where union resolution would
drown the tree in phantom costs — calls to ambiguous container-like
method names (``append``, ``next``, …) only contribute when the
receiver's type is locally evident (``w = f.writer()``; ``with
seg.reader() as r``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence, Union

from repro.lint.callgraph import (Program, _canonical, linted_mro,
                                  module_name_for, tarjan_scc)
from repro.lint.symbolic import (ONE, TOP, ZERO, Cost, CostSyntaxError,
                                 cost_of, parse_cost)

COSTS_SCHEMA_VERSION = 1

#: Layers where an unbounded data-dependent loop over costly work is
#: a finding (EM019); host layers pay no annotation tax.
POLICED_LAYERS = frozenset({"core", "em"})

#: Module prefixes whose public module-level functions are *roots*:
#: algorithm entry points that must declare a cost (EM017).
ROOT_MODULE_PREFIXES = ("repro.core.",)
ROOT_MODULES = frozenset({"repro.em.sort", "repro.em.loaders"})

#: Layers whose costed functions appear in the ``--costs`` table (the
#: planner feed); host layers would only add churn.
TABLE_LAYERS = frozenset({"core", "em", "data", "server"})

#: Method names so common on builtin containers that union
#: resolution would attribute phantom I/O to every list in the tree;
#: they only resolve through a locally-typed receiver.
AMBIGUOUS_METHODS = frozenset({
    "append", "extend", "add", "close", "next", "peek", "emit",
    "update", "pop", "clear", "sort", "remove", "insert", "get",
    "items", "keys", "values", "flush", "put", "join", "split",
    "strip", "write", "read", "count", "index", "copy", "open",
    "discard", "send", "release", "acquire", "wait", "notify",
    "notify_all", "start", "run", "stop", "submit", "result",
    "setdefault", "popitem",
})

#: The two charged Device primitives; a call to either (directly or
#: through a local alias) is one block transfer.
CHARGE_METHODS = frozenset({"charge_read", "charge_write"})

#: Local type inference: the return class of well-known factory
#: methods, so ambiguous method calls on their results resolve
#: precisely regardless of the receiver expression's type.
RETURN_TYPES: Mapping[str, str] = {
    "writer": "repro.em.file.Writer",
    "reader": "repro.em.file.SequentialReader",
    "segment": "repro.em.file.FileSegment",
    "whole": "repro.em.file.FileSegment",
    "subsegment": "repro.em.file.FileSegment",
    "new_file": "repro.em.file.EMFile",
    "file_from_tuples": "repro.em.file.EMFile",
    "file_from_tuples_free": "repro.em.file.EMFile",
    "sort_by": "repro.data.relation.Relation",
    "restrict": "repro.data.relation.Relation",
    "rewrite": "repro.data.relation.Relation",
    "from_tuples": "repro.data.relation.Relation",
}

PLACEHOLDER_JUSTIFICATION = "TODO: justify"

_COST_RE = re.compile(r"#\s*em-cost:\s*(.+?)\s*$")
_LOOP_RE = re.compile(r"#\s*em-loop-bound:\s*(.+?)\s*$")
_YIELDS_RE = re.compile(r"#\s*em-yields:\s*(.+?)\s*$")
_CHARGES_RE = re.compile(r"#\s*em-charges:\s*(.+?)\s*$")


@dataclass(frozen=True)
class CostFinding:
    """One emcost finding, shaped like the other passes' findings."""

    code: str
    path: str
    line: int
    message: str
    scope: str


# --------------------------------------------------- annotations


@dataclass
class _Ann:
    kind: str  # "cost" | "loop" | "yields" | "charges"
    expr: str
    justification: str
    amortized: bool
    line: int
    consumed: bool = False


def _split_payload(payload: str) -> tuple[str, str]:
    expr, sep, just = payload.partition("--")
    return expr.strip(), just.strip() if sep else ""


def _comments(source: str) -> list[tuple[int, str, bool]]:
    """``(line, text, standalone)`` for each real comment.

    Tokenizing (rather than regex-scanning raw lines) is what keeps
    annotation syntax quoted in docstrings from being parsed as live
    annotations.  A file that fails to tokenize has no comments here;
    it already fails the lint parse elsewhere."""
    out: list[tuple[int, str, bool]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                row, col = tok.start
                standalone = not tok.line[:col].strip()
                out.append((row, tok.string, standalone))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        pass
    return out


class _ModuleAnns:
    """All emcost annotations in one module, by line, with orphan
    tracking (every annotation must attach to a construct).

    Comments are extracted with :mod:`tokenize`, not a line regex,
    so grammar *mentions* inside docstrings (this module's own, the
    rule registry's rationales) never register as annotations."""

    def __init__(self, source: str) -> None:
        self.by_line: dict[int, _Ann] = {}
        self.comment_only: set[int] = set()
        for lineno, text, standalone in _comments(source):
            if standalone:
                self.comment_only.add(lineno)
            for kind, rx in (("cost", _COST_RE), ("loop", _LOOP_RE),
                             ("yields", _YIELDS_RE),
                             ("charges", _CHARGES_RE)):
                m = rx.search(text)
                if m is None:
                    continue
                payload = m.group(1)
                amortized = False
                if kind == "cost" and payload.startswith("amortized"):
                    amortized = True
                    payload = payload[len("amortized"):].strip()
                expr, just = _split_payload(payload)
                self.by_line[lineno] = _Ann(
                    kind=kind, expr=expr, justification=just,
                    amortized=amortized, line=lineno)
                break

    def _candidates(self, line: int) -> Iterable[int]:
        """The construct's own line, then the run of comment-only
        lines directly above it (wrapped justifications span lines)."""
        yield line
        cand = line - 1
        while cand in self.comment_only:
            yield cand
            cand -= 1

    def attach(self, line: int, kind: str) -> _Ann | None:
        """The annotation governing a construct at ``line``: same
        line, or within the comment block directly above."""
        for cand in self._candidates(line):
            ann = self.by_line.get(cand)
            if ann is not None and ann.kind == kind and not ann.consumed:
                ann.consumed = True
                return ann
        return None

    def peek(self, line: int, kind: str) -> _Ann | None:
        for cand in self._candidates(line):
            ann = self.by_line.get(cand)
            if ann is not None and ann.kind == kind:
                return ann
        return None

    def orphans(self) -> list[_Ann]:
        return [a for a in self.by_line.values() if not a.consumed]


# --------------------------------------------------- body structure


@dataclass
class _CallSite:
    line: int
    targets: tuple[str, ...]


@dataclass
class _ChargeSite:
    line: int


@dataclass
class _FixedCost:
    line: int
    cost: Cost


@dataclass
class _Loop:
    line: int
    bound: Cost | None  # None = unannotated and unrecognized
    body: list["_Item"] = field(default_factory=list)


_Item = Union[_CallSite, _ChargeSite, _FixedCost, _Loop]


@dataclass
class _Func:
    qualname: str
    name: str
    cls: str | None
    module: str
    path: str
    line: int
    layer: str
    scope: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    anns: _ModuleAnns
    decl: _Ann | None = None
    decl_cost: Cost | None = None
    yields: Cost | None = None
    body: list[_Item] = field(default_factory=list)
    #: A call in this function's body names a ``repro.*`` target that
    #: is not part of the linted program (partial lint), so the
    #: derived cost is an under-approximation: EM018/EM019/EM020
    #: verification findings are suppressed for this function and its
    #: (undeclared) callers.  Whole-tree lints never set this.
    incomplete: bool = False

    @property
    def declared(self) -> bool:
        return self.decl is not None and self.decl_cost is not None

    @property
    def amortized(self) -> bool:
        return self.decl is not None and self.decl.amortized


def _iter_defs(tree: ast.Module) -> Iterable[
        tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, stmt
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    yield stmt.name, sub


# --------------------------------------------------- collection


class _Collector:
    """Builds one function's cost structure (items + loop tree)."""

    def __init__(self, program: Program, fn: _Func,
                 yields_by_qn: Mapping[str, Cost],
                 findings: list[CostFinding]) -> None:
        self.program = program
        self.fn = fn
        self.yields_by_qn = yields_by_qn
        self.findings = findings
        self.env: dict[str, str] = {}
        self.charge_aliases: set[str] = set()
        self.overridden_lines: set[int] = set()

    # -- entry --------------------------------------------------------

    def collect(self) -> None:
        self.fn.body = self._block(self.fn.node.body)

    # -- helpers ------------------------------------------------------

    def _finding(self, code: str, line: int, message: str) -> None:
        self.findings.append(CostFinding(
            code=code, path=self.fn.path, line=line,
            message=message, scope=self.fn.scope))

    def _parse(self, ann: _Ann, what: str) -> Cost:
        try:
            return parse_cost(ann.expr)
        except CostSyntaxError as exc:
            self._finding("EM020", ann.line,
                          f"bad {what} expression: {exc}")
            return TOP

    # -- statement walk -----------------------------------------------

    def _block(self, stmts: Sequence[ast.stmt]) -> list[_Item]:
        items: list[_Item] = []
        for stmt in stmts:
            items.extend(self._stmt(stmt))
        return items

    def _stmt(self, stmt: ast.stmt) -> list[_Item]:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt)
        if isinstance(stmt, ast.While):
            return self._while(stmt)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs fold into the enclosing function (the call
            # graph does the same); counted once at the def site.
            return self._block(stmt.body)
        if isinstance(stmt, ast.ClassDef):
            return self._block(stmt.body)
        if isinstance(stmt, ast.If):
            items = self._expr(stmt.test)
            items += self._block(stmt.body)
            items += self._block(stmt.orelse)
            return items
        if isinstance(stmt, ast.With) or isinstance(stmt,
                                                    ast.AsyncWith):
            items = []
            for item in stmt.items:
                items.extend(self._expr(item.context_expr))
                if isinstance(item.optional_vars, ast.Name):
                    self._bind(item.optional_vars.id,
                               item.context_expr)
            items += self._block(stmt.body)
            return items
        if isinstance(stmt, ast.Try):
            items = self._block(stmt.body)
            for handler in stmt.handlers:
                items += self._block(handler.body)
            items += self._block(stmt.orelse)
            items += self._block(stmt.finalbody)
            return items
        if isinstance(stmt, ast.Assign):
            items = self._expr(stmt.value)
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0],
                                                     ast.Name):
                self._bind(stmt.targets[0].id, stmt.value)
            return items
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return []
            items = self._expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self._bind(stmt.target.id, stmt.value)
            return items
        if isinstance(stmt, ast.AugAssign):
            return self._expr(stmt.value)
        if isinstance(stmt, (ast.Return, ast.Expr)):
            return self._expr(stmt.value) if stmt.value else []
        if isinstance(stmt, ast.Raise):
            items = self._expr(stmt.exc) if stmt.exc else []
            if stmt.cause:
                items += self._expr(stmt.cause)
            return items
        if isinstance(stmt, ast.Assert):
            items = self._expr(stmt.test)
            if stmt.msg:
                items += self._expr(stmt.msg)
            return items
        if isinstance(stmt, ast.Match):
            items = self._expr(stmt.subject)
            for case in stmt.cases:
                items += self._block(case.body)
            return items
        return []

    # -- loops --------------------------------------------------------

    def _for(self, stmt: ast.For | ast.AsyncFor) -> list[_Item]:
        items = self._expr(stmt.iter)
        ann = self.fn.anns.attach(stmt.lineno, "loop")
        if ann is not None:
            bound: Cost | None = self._parse(ann, "em-loop-bound")
        else:
            bound = self._iter_bound(stmt.iter)
        loop = _Loop(line=stmt.lineno, bound=bound)
        loop.body = self._block(stmt.body)
        items.append(loop)
        items += self._block(stmt.orelse)
        return items

    def _while(self, stmt: ast.While) -> list[_Item]:
        items = self._expr(stmt.test)
        ann = self.fn.anns.attach(stmt.lineno, "loop")
        bound = (self._parse(ann, "em-loop-bound")
                 if ann is not None else None)
        loop = _Loop(line=stmt.lineno, bound=bound)
        loop.body = self._block(stmt.body)
        # The test runs once per iteration: fold it into the body.
        loop.body += self._expr(stmt.test)
        items.append(loop)
        items += self._block(stmt.orelse)
        return items

    def _iter_bound(self, it: ast.expr) -> Cost | None:
        """Recognize trip counts the analysis can see on its own."""
        if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id in ("enumerate", "sorted", "reversed",
                                   "list", "tuple", "set")
                and it.args):
            return self._iter_bound(it.args[0])
        if isinstance(it, (ast.Constant, ast.Tuple, ast.List, ast.Set,
                           ast.Dict)):
            return ONE
        if isinstance(it, ast.Call):
            targets = self._call_targets(it)
            if targets:
                bounds = [self.yields_by_qn.get(t) for t in targets]
                if all(b is not None for b in bounds):
                    out = ZERO
                    for b in bounds:
                        assert b is not None
                        out = out.add(b)
                    return out
        return None

    # -- expressions --------------------------------------------------

    def _expr(self, e: ast.expr) -> list[_Item]:
        items: list[_Item] = []
        self._walk_expr(e, items)
        return items

    def _walk_expr(self, e: ast.expr, items: list[_Item]) -> None:
        if isinstance(e, ast.Call):
            self._call(e, items)
            return
        if isinstance(e, (ast.ListComp, ast.SetComp, ast.DictComp,
                          ast.GeneratorExp)):
            self._comprehension(e, items)
            return
        if isinstance(e, ast.Lambda):
            self._walk_expr(e.body, items)
            return
        if isinstance(e, ast.NamedExpr):
            self._walk_expr(e.value, items)
            if isinstance(e.target, ast.Name):
                self._bind(e.target.id, e.value)
            return
        for child in ast.iter_child_nodes(e):
            if isinstance(child, ast.expr):
                self._walk_expr(child, items)

    def _comprehension(self, e: ast.ListComp | ast.SetComp
                       | ast.DictComp | ast.GeneratorExp,
                       items: list[_Item]) -> None:
        inner: list[_Item] = []
        if isinstance(e, ast.DictComp):
            self._walk_expr(e.key, inner)
            self._walk_expr(e.value, inner)
        else:
            self._walk_expr(e.elt, inner)
        ann = self.fn.anns.attach(e.lineno, "loop")
        for i, gen in enumerate(reversed(e.generators)):
            outermost = i == len(e.generators) - 1
            items_gen = self._expr(gen.iter)
            if outermost and ann is not None:
                bound: Cost | None = self._parse(ann, "em-loop-bound")
            else:
                bound = self._iter_bound(gen.iter)
            loop = _Loop(line=e.lineno, bound=bound, body=inner)
            for cond in gen.ifs:
                loop.body += self._expr(cond)
            inner = items_gen + [loop]
        items.extend(inner)

    # -- calls --------------------------------------------------------

    def _call(self, call: ast.Call, items: list[_Item]) -> None:
        override = self.fn.anns.peek(call.lineno, "charges")
        if override is not None:
            override.consumed = True
            if call.lineno not in self.overridden_lines:
                self.overridden_lines.add(call.lineno)
                items.append(_FixedCost(
                    line=call.lineno,
                    cost=self._parse(override, "em-charges")))
            self._visit_args(call, items)
            return
        func = call.func
        if isinstance(func, ast.Attribute) and \
                func.attr in CHARGE_METHODS:
            items.append(_ChargeSite(line=call.lineno))
            self._visit_args(call, items)
            return
        if isinstance(func, ast.Name) and \
                func.id in self.charge_aliases:
            items.append(_ChargeSite(line=call.lineno))
            self._visit_args(call, items)
            return
        targets = self._call_targets(call)
        if targets:
            items.append(_CallSite(line=call.lineno, targets=targets))
        if isinstance(func, ast.Attribute):
            self._walk_expr(func.value, items)
        self._visit_args(call, items)

    def _visit_args(self, call: ast.Call, items: list[_Item]) -> None:
        for arg in call.args:
            self._walk_expr(arg, items)
        for kw in call.keywords:
            self._walk_expr(kw.value, items)

    def _call_targets(self, call: ast.Call) -> tuple[str, ...]:
        prog = self.program
        func = call.func
        if isinstance(func, ast.Name):
            qn = prog.module_funcs.get((self.fn.module, func.id))
            if qn is not None:
                return (qn,)
            target = prog.imports.get(self.fn.module, {}).get(func.id)
            if target is not None:
                return self._from_dotted(target)
            return ()
        if isinstance(func, ast.Attribute):
            attr = func.attr
            value = func.value
            # self.m() / cls.m(): the enclosing class's MRO.
            if isinstance(value, ast.Name) and value.id in ("self",
                                                           "cls"):
                if self.fn.cls is not None:
                    qn = self._method_on(
                        f"{self.fn.module}.{self.fn.cls}", attr)
                    return (qn,) if qn else ()
                return ()
            rtype = self._type_of(value)
            if rtype is not None:
                qn = self._method_on(rtype, attr)
                return (qn,) if qn else ()
            # module-alias attribute: ``sortmod.external_sort(...)``
            if isinstance(value, ast.Name):
                target = prog.imports.get(self.fn.module,
                                          {}).get(value.id)
                if target is not None and target in prog.modules:
                    return self._from_dotted(f"{target}.{attr}")
                if (target is not None
                        and target.startswith("repro.")):
                    # Aliased repro module not in the linted set.
                    self.fn.incomplete = True
                    return ()
            if attr in AMBIGUOUS_METHODS:
                return ()
            return tuple(prog.methods.get(attr, ()))
        return ()

    def _from_dotted(self, target: str) -> tuple[str, ...]:
        prog = self.program
        resolved = _canonical(prog, target)
        if resolved in prog.nodes:
            return (resolved,)
        if resolved in prog.classes:
            if "__init__" in prog.classes[resolved]:
                return (f"{resolved}.__init__",)
            return ()
        if resolved.startswith("repro."):
            # A repro-internal target outside the linted program:
            # partial lint.  The derived cost would silently drop this
            # call, so verification findings must not fire here.
            self.fn.incomplete = True
        return ()

    def _method_on(self, clskey: str, attr: str) -> str | None:
        prog = self.program
        if attr in prog.classes.get(clskey, ()):
            return f"{clskey}.{attr}"
        for base in linted_mro(prog, clskey):
            if attr in prog.classes.get(base, ()):
                return f"{base}.{attr}"
        return None

    # -- local type inference -----------------------------------------

    def _bind(self, name: str, value: ast.expr) -> None:
        if self._is_charge_ref(value):
            self.charge_aliases.add(name)
            self.env.pop(name, None)
            return
        t = self._type_of(value)
        if t is not None:
            self.env[name] = t
        else:
            self.env.pop(name, None)
        self.charge_aliases.discard(name)

    def _is_charge_ref(self, e: ast.expr) -> bool:
        return (isinstance(e, ast.Attribute)
                and e.attr in CHARGE_METHODS)

    def _type_of(self, e: ast.expr) -> str | None:
        if isinstance(e, ast.Name):
            return self.env.get(e.id)
        if isinstance(e, ast.Call):
            f = e.func
            if isinstance(f, ast.Attribute) and f.attr in RETURN_TYPES:
                key = RETURN_TYPES[f.attr]
                if key in self.program.classes:
                    return key
                # The factory's class is outside the linted program:
                # method calls on the value cannot be costed.
                self.fn.incomplete = True
                return None
            if isinstance(f, ast.Name):
                qn = self.program.imports.get(self.fn.module,
                                              {}).get(f.id)
                if qn is not None:
                    resolved = _canonical(self.program, qn)
                    if resolved in self.program.classes:
                        return resolved
                local = f"{self.fn.module}.{f.id}"
                if local in self.program.classes:
                    return local
        return None


# --------------------------------------------------- propagation


class _Evaluator:
    """Reverse-topological cost propagation + rule evaluation."""

    def __init__(self, program: Program,
                 funcs: dict[str, _Func]) -> None:
        self.program = program
        self.funcs = funcs
        self.summaries: dict[str, Cost] = {}
        self.findings: list[CostFinding] = []

    def run(self) -> None:
        undeclared_edges = {
            qn: sorted({t for t in _call_targets_of(f.body)
                        if t in self.funcs
                        and not self.funcs[t].declared})
            for qn, f in self.funcs.items()}
        for scc in tarjan_scc(sorted(self.funcs), undeclared_edges):
            cyclic = len(scc) > 1 or any(
                qn in undeclared_edges.get(qn, ()) for qn in scc)
            # Incompleteness flows caller-ward along undeclared edges
            # (declared callees contribute their trusted declaration,
            # so their gaps stay their own).  Callee SCCs are already
            # settled when their callers' SCC is reached.
            for qn in scc:
                f = self.funcs[qn]
                if not f.incomplete and any(
                        self.funcs[t].incomplete
                        for t in undeclared_edges.get(qn, ())
                        if t in self.funcs):
                    f.incomplete = True
            if cyclic and any(self.funcs[qn].incomplete for qn in scc):
                for qn in scc:
                    self.funcs[qn].incomplete = True
            for qn in sorted(scc):
                self._evaluate(qn, flag_loops=not cyclic)
            if cyclic:
                members = sorted(
                    (qn for qn in scc
                     if not self.funcs[qn].declared
                     and not self.funcs[qn].incomplete
                     and not self.summaries[qn].is_zero),
                    key=lambda qn: (self.funcs[qn].path,
                                    self.funcs[qn].line))
                policed = [qn for qn in members
                           if self.funcs[qn].layer in POLICED_LAYERS]
                if policed:
                    f = self.funcs[policed[0]]
                    self._finding(
                        "EM019", f,
                        f"recursive cycle through {f.scope} performs "
                        f"charged I/O with no '# em-cost: amortized' "
                        f"declaration on any member; the derived "
                        f"bound ignores the recursion")

    def summary(self, qn: str) -> Cost:
        f = self.funcs.get(qn)
        if f is not None and f.declared:
            assert f.decl_cost is not None
            return f.decl_cost
        return self.summaries.get(qn, ZERO)

    def _finding(self, code: str, f: _Func, message: str,
                 line: int | None = None) -> None:
        self.findings.append(CostFinding(
            code=code, path=f.path, line=line or f.line,
            message=message, scope=f.scope))

    def _evaluate(self, qn: str, *, flag_loops: bool) -> None:
        f = self.funcs[qn]
        if f.amortized and f.decl_cost is not None:
            # Trusted summary: the declaration *is* the bound.
            self.summaries[qn] = f.decl_cost
            return
        derived = self._items_cost(f, f.body, flag_loops=flag_loops)
        self.summaries[qn] = derived
        if f.incomplete:
            # Partial lint: the derivation under-approximates, so
            # neither EM018 nor the stale-declaration check is sound.
            return
        if f.declared and not f.amortized:
            assert f.decl_cost is not None
            excess = derived.excess_over(f.decl_cost)
            if excess:
                terms = " + ".join(t.render() for t in excess)
                self._finding(
                    "EM018", f,
                    f"derived I/O cost {derived.render()} exceeds "
                    f"the declared bound {f.decl_cost.render()} "
                    f"(excess: {terms}); fix the rescan or justify "
                    f"a larger bound")
            elif not f.decl_cost.le(derived):
                self._finding(
                    "EM020", f,
                    f"declared bound {f.decl_cost.render()} is "
                    f"asymptotically larger than the derived cost "
                    f"{derived.render()}; tighten the declaration "
                    f"(or mark it amortized with a justification)")

    def _items_cost(self, f: _Func, items: Sequence[_Item], *,
                    flag_loops: bool) -> Cost:
        total = ZERO
        for it in items:
            if isinstance(it, _ChargeSite):
                total = total.add(ONE)
            elif isinstance(it, _FixedCost):
                total = total.add(it.cost)
            elif isinstance(it, _CallSite):
                for t in it.targets:
                    total = total.add(self.summary(t))
            else:
                inner = self._items_cost(f, it.body,
                                         flag_loops=flag_loops)
                if inner.is_zero:
                    continue
                bound = it.bound
                if bound is None:
                    if (flag_loops and not f.incomplete
                            and f.layer in POLICED_LAYERS):
                        self._finding(
                            "EM019", f,
                            f"data-dependent loop performs charged "
                            f"I/O ({inner.render()} per iteration) "
                            f"with no visible trip count; add an "
                            f"'# em-loop-bound: <expr>' annotation",
                            line=it.line)
                    bound = cost_of("N")
                total = total.add(bound.mul(inner))
        return total


def _call_targets_of(items: Sequence[_Item]) -> set[str]:
    out: set[str] = set()
    for it in items:
        if isinstance(it, _CallSite):
            out.update(it.targets)
        elif isinstance(it, _Loop):
            out |= _call_targets_of(it.body)
    return out


def _has_charge(items: Sequence[_Item]) -> bool:
    return any(isinstance(it, _ChargeSite)
               or (isinstance(it, _Loop) and _has_charge(it.body))
               for it in items)


def _is_root(f: _Func) -> bool:
    return (f.cls is None and not f.name.startswith("_")
            and (f.module.startswith(ROOT_MODULE_PREFIXES)
                 or f.module in ROOT_MODULES))


# --------------------------------------------------- driver


def evaluate_costs(
        program: Program,
        modules: Sequence[tuple[str, str, ast.AST,
                                tuple[str, ...] | None]],
) -> tuple[list[CostFinding], dict[str, Any]]:
    """Run the emcost pass: findings (EM017–EM021) + cost table."""
    findings: list[CostFinding] = []
    funcs: dict[str, _Func] = {}
    anns_by_module: list[tuple[str, _ModuleAnns]] = []

    # Pass A: discover functions, attach declarations and yields.
    for path, source, tree, pkg_parts in modules:
        if not isinstance(tree, ast.Module):
            continue
        anns = _ModuleAnns(source)
        anns_by_module.append((path, anns))
        module = module_name_for(path, pkg_parts)
        layer = (pkg_parts[0] if pkg_parts is not None
                 and len(pkg_parts) >= 2 else "")
        for clsname, node in _iter_defs(tree):
            scope = (f"{clsname}.{node.name}" if clsname
                     else node.name)
            qualname = f"{module}.{scope}"
            f = _Func(
                qualname=qualname, name=node.name, cls=clsname,
                module=module, path=path, line=node.lineno,
                layer=layer, scope=scope, node=node, anns=anns)
            decl = anns.attach(node.lineno, "cost")
            if decl is not None:
                f.decl = decl
                try:
                    f.decl_cost = parse_cost(decl.expr)
                except CostSyntaxError as exc:
                    findings.append(CostFinding(
                        code="EM020", path=path, line=decl.line,
                        message=f"bad em-cost expression: {exc}",
                        scope=scope))
                if decl.amortized and (
                        not decl.justification
                        or decl.justification.startswith(
                            PLACEHOLDER_JUSTIFICATION)):
                    findings.append(CostFinding(
                        code="EM020", path=path, line=decl.line,
                        message="amortized em-cost declarations are "
                                "trusted, not derived; carry the "
                                "amortization argument after '--'",
                        scope=scope))
                elif decl.justification.startswith(
                        PLACEHOLDER_JUSTIFICATION):
                    findings.append(CostFinding(
                        code="EM020", path=path, line=decl.line,
                        message="placeholder justification on an "
                                "em-cost declaration; say why the "
                                "bound holds",
                        scope=scope))
            y = anns.attach(node.lineno, "yields")
            if y is not None:
                try:
                    f.yields = parse_cost(y.expr)
                except CostSyntaxError as exc:
                    findings.append(CostFinding(
                        code="EM020", path=path, line=y.line,
                        message=f"bad em-yields expression: {exc}",
                        scope=scope))
            funcs[qualname] = f

    yields_by_qn = {qn: f.yields for qn, f in funcs.items()
                    if f.yields is not None}

    # Pass B: collect bodies (loop trees, call sites, charge sites).
    for qn, f in funcs.items():
        _Collector(program, f, yields_by_qn, findings).collect()

    # Orphaned annotations: documentation rot, like EM016.
    for path, anns in anns_by_module:
        for ann in anns.orphans():
            kind = "loop-bound" if ann.kind == "loop" else ann.kind
            findings.append(CostFinding(
                code="EM020", path=path, line=ann.line,
                message=f"orphaned 'em-{kind}' annotation: no "
                        f"matching construct on this or the next "
                        f"line",
                scope="<module>"))

    # Pass C: propagate costs reverse-topologically; EM018–EM020.
    ev = _Evaluator(program, funcs)
    ev.findings = findings
    ev.run()

    # EM017: costly roots must declare.
    undeclared_roots: set[str] = set()
    for qn, f in sorted(funcs.items()):
        if (_is_root(f) and not f.declared
                and not ev.summaries.get(qn, ZERO).is_zero):
            undeclared_roots.add(qn)
            findings.append(CostFinding(
                code="EM017", path=f.path, line=f.line,
                message=f"algorithm entry point with derived I/O "
                        f"cost {ev.summaries[qn].render()} has no "
                        f"'# em-cost:' declaration",
                scope=f.scope))

    # EM021: every charge site must be reachable from a declared
    # root, or the I/O it performs is unattributed in the cost table.
    covered: set[str] = set()
    frontier = [qn for qn, f in funcs.items() if f.declared]
    covered.update(frontier)
    while frontier:
        nxt: list[str] = []
        for qn in frontier:
            for t in _call_targets_of(funcs[qn].body):
                if t in funcs and t not in covered:
                    covered.add(t)
                    nxt.append(t)
        frontier = nxt
    for qn, f in sorted(funcs.items()):
        if (qn not in covered and qn not in undeclared_roots
                and _has_charge(f.body)):
            findings.append(CostFinding(
                code="EM021", path=f.path, line=f.line,
                message="charge site not reachable from any "
                        "cost-declared function; this I/O is "
                        "invisible to the symbolic cost table "
                        "(declare a cost on it or on a caller)",
                scope=f.scope))

    table = _cost_table(funcs, ev)
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings, table


def _cost_table(funcs: dict[str, _Func],
                ev: _Evaluator) -> dict[str, Any]:
    functions: dict[str, Any] = {}
    costed = 0
    declared = 0
    for qn in sorted(funcs):
        f = funcs[qn]
        cost = ev.summary(qn)
        if f.layer not in TABLE_LAYERS:
            continue
        if cost.is_zero and not f.declared:
            continue
        costed += 1
        entry: dict[str, Any] = {
            "path": f.path,
            "line": f.line,
            "layer": f.layer,
            "cost": cost.render(),
            "declared": (f.decl_cost.render()
                         if f.declared and f.decl_cost is not None
                         else None),
            "amortized": f.amortized,
        }
        if f.decl is not None and f.decl.justification:
            entry["justification"] = f.decl.justification
        if f.yields is not None:
            entry["yields"] = f.yields.render()
        if f.declared:
            declared += 1
        functions[qn] = entry
    return {
        "schema_version": COSTS_SCHEMA_VERSION,
        "functions": functions,
        "summary": {
            "functions": len(funcs),
            "costed": costed,
            "declared": declared,
        },
    }


# --------------------------------------------------- drift gate


def compact_cost_signatures(table: dict[str, Any]) -> dict[str, Any]:
    """The committed ``costs-baseline.json``: per function, the
    derived bound and the declaration — the pair the gate compares.
    Paths and line numbers churn with every refactor; dropped."""
    return {
        "schema_version": table["schema_version"],
        "costs": {
            qn: {"cost": entry["cost"],
                 "declared": entry["declared"]}
            for qn, entry in table["functions"].items()
        },
    }


def compare_cost_signatures(
        committed: dict[str, Any],
        table: dict[str, Any]) -> tuple[list[str], list[str]]:
    """Diff a committed costs baseline against a fresh table.

    Mirrors the effects gate: a *failure* is a function whose derived
    symbolic bound moved while its ``# em-cost:`` declaration stayed
    put — an undocumented asymptotic change.  Additions, removals,
    and declaration-accompanied changes are notices (regenerate the
    baseline to re-pin)."""
    current = compact_cost_signatures(table)
    failures: list[str] = []
    notices: list[str] = []
    if committed.get("schema_version") != current["schema_version"]:
        notices.append(
            f"schema version moved "
            f"{committed.get('schema_version')!r} -> "
            f"{current['schema_version']!r}; regenerate the baseline")
    old = committed.get("costs", {})
    new = current["costs"]
    for qn in sorted(old.keys() - new.keys()):
        notices.append(f"{qn}: removed (was {old[qn].get('cost')})")
    for qn in sorted(new.keys() - old.keys()):
        notices.append(f"{qn}: added with cost {new[qn]['cost']}")
    for qn in sorted(old.keys() & new.keys()):
        was, now = old[qn], new[qn]
        if was.get("cost") == now["cost"]:
            continue
        change = f"cost changed {was.get('cost')} -> {now['cost']}"
        if was.get("declared") == now["declared"]:
            failures.append(
                f"{qn}: {change} without a matching '# em-cost:' "
                f"declaration update; re-derive the bound and "
                f"regenerate costs-baseline.json")
        else:
            notices.append(f"{qn}: {change} (declaration updated "
                           f"too; regenerate the baseline to re-pin)")
    return failures, notices
