"""Project-wide call graph over the per-module emlint ASTs.

The intraprocedural pass in :mod:`repro.lint.visitor` sees one module
at a time; this module builds the *whole-program* structure the effect
rules (EM007–EM011, :mod:`repro.lint.effects`) need: every function
and method in the linted tree as a :class:`FunctionNode`, the resolved
call edges between them, and the strongly connected components in
reverse topological order so a fixpoint over recursion cycles is one
linear sweep.

Resolution is deliberately conservative.  A call is resolved when the
target is provable from lexical facts alone — a module-level name
defined or imported in the same module (relative imports resolved with
the same package arithmetic as the visitor), ``self.method`` inside a
class body, or an attribute name that matches methods in the linted
tree (union over *all* classes declaring it, since emlint never
infers receiver types).  Everything else lands in one of two buckets:

* a **whitelist** of stdlib/builtin callables known not to touch the
  effect lattice (``len``, ``json.dumps``, ``dict.items``, …), or
* the **unknown-callee lattice top**: the call is recorded in
  :attr:`FunctionNode.unknown_calls` and the function's signature is
  marked ``UNKNOWN``.  Unknown propagates to callers like any other
  effect but never fires a rule — the analysis reports what it cannot
  prove instead of guessing.

Like the visitor, this is stdlib-only and never imports the code it
inspects.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.lint import rules

#: Effect-declaration pragma: ``# em-effects: HOST_ONLY -- reason``.
EFFECTS_PRAGMA_RE = re.compile(
    r"#\s*em-effects:\s*([A-Za-z0-9_,\s]+?)\s*(?:--\s*(.*?))?\s*$")

#: ``os.*`` entry points that are raw I/O (mirrors EM001's call rule).
RAW_IO_DOTTED = frozenset({"os.read", "os.write", "os.open"})

#: Top-level modules whose calls never touch the effect lattice.
#: ``os`` is here because only ``os.read/write/open`` (matched above)
#: move bytes; ``os.path.join`` and friends are pure string work.
PURE_MODULES = frozenset({
    "abc", "argparse", "ast", "bisect", "collections", "contextlib",
    "copy", "csv", "dataclasses", "enum", "functools", "heapq",
    "inspect", "itertools", "json", "math", "networkx", "numpy",
    "operator", "os", "re", "statistics", "string", "sys", "textwrap",
    "threading", "types", "typing",
    # Constructing paths is pure string work; the methods that move
    # bytes (read_text & friends) are caught as RAW_IO_METHODS at the
    # call site regardless of how the receiver was built.
    "pathlib",
})

#: Builtin callables (called by bare name) with no lattice effect.
#: ``open`` is intentionally absent — it is a PHYS_IO intrinsic.
PURE_BUILTINS = frozenset({
    "abs", "all", "any", "bool", "bytes", "callable", "chr", "dict",
    "divmod", "enumerate", "filter", "float", "format", "frozenset",
    "getattr", "hasattr", "hash", "hex", "id", "int", "isinstance",
    "issubclass", "iter", "len", "list", "map", "max", "min", "next",
    "object", "ord", "pow", "print", "range", "repr", "reversed",
    "round", "set", "setattr", "sorted", "str", "sum", "super",
    "tuple", "type", "vars", "zip",
    # typing/dataclass helpers that appear in call position
    "cast", "field", "dataclass", "ValueError", "TypeError",
    "KeyError", "RuntimeError", "NotImplementedError", "StopIteration",
    "Exception", "AssertionError", "IndexError",
})

#: Attribute names (on unresolvable receivers) that are container /
#: string / stdlib-object methods with no lattice effect.  Anything
#: not listed here resolves through the project method index or falls
#: to UNKNOWN.
PURE_METHODS = frozenset({
    "add", "append", "as_posix", "capitalize", "clear", "copy",
    "count", "discard", "endswith", "extend", "format", "get",
    "group", "groups", "index", "insert", "intersection", "isdigit",
    "isidentifier", "items", "join", "keys", "lower", "lstrip",
    "match", "mkdir", "most_common", "partition", "pop", "popleft",
    "popitem", "remove", "replace", "rstrip", "search", "setdefault",
    "sort", "split", "splitlines", "startswith", "strip", "sub",
    "title", "union", "update", "upper", "values", "with_suffix",
})

#: Methods provided by *external* base classes that never touch the
#: effect lattice.  Keyed by resolved dotted base name: a linted class
#: whose (transitive) bases include one of these resolves the listed
#: ``self.<method>`` calls as pure instead of UNKNOWN.
#: ``ast.NodeVisitor.visit`` dispatches back into the subclass's
#: ``visit_*`` methods, but every linted visitor lives in the
#: host-side ``lint`` layer — already a propagation barrier — so
#: treating the dispatcher itself as inert loses nothing.
PURE_BASE_METHODS: dict[str, frozenset[str]] = {
    "ast.NodeVisitor": frozenset({"visit", "generic_visit"}),
}

#: A raw, unresolved call site: (kind, data, line).  ``kind`` is
#: "name" (bare-name call), "dotted" (full Name-rooted attribute
#: chain, e.g. ``self.device.charge_read``), "super" (a
#: ``super().method(...)`` call, data is the method name) or "attr"
#: (attribute on a non-name expression; only the attribute name
#: survives).
RawCall = tuple[str, str, int]

#: A ``threading.Thread(target=...)`` site: (kind, target text, line),
#: same kinds as :data:`RawCall` ("name"/"dotted"/"attr") plus
#: "opaque" for a lambda or computed target.
ThreadTarget = tuple[str, str, int]


@dataclass
class FunctionNode:
    """One function or method in the linted tree."""

    qualname: str  #: e.g. ``repro.core.acyclic.clone_instance``
    module: str  #: dotted module, e.g. ``repro.core.acyclic``
    local_name: str  #: ``func`` or ``Class.method``
    path: str  #: repo-relative file path
    line: int
    layer: str  #: top-level dir under ``repro/`` ("" otherwise)
    pkg_relfile: str  #: path relative to the ``repro`` package
    cls: str | None = None  #: enclosing class local name, if a method
    #: Effects declared via ``# em-effects:`` on the ``def`` line.
    declared: frozenset[str] = frozenset()
    justification: str = ""
    #: Declaration tokens that are not valid effect names (EM011).
    bad_declared: tuple[str, ...] = ()
    raw_calls: list[RawCall] = field(default_factory=list)
    #: ``threading.Thread(target=...)`` sites in this function's body
    #: (nested defs fold in, so a thread spawning a closure records
    #: the enclosing function).
    thread_targets: list[ThreadTarget] = field(default_factory=list)
    #: Effects evident in this function's own body.
    intrinsic: set[str] = field(default_factory=set)
    # Filled in by link():
    edges: list[str] = field(default_factory=list)  #: callee qualnames
    unknown_calls: list[str] = field(default_factory=list)
    # Filled in by the effects fixpoint:
    inherited: set[str] = field(default_factory=set)

    @property
    def total(self) -> set[str]:
        """The inferred signature: own effects plus inherited ones."""
        return self.intrinsic | self.inherited


@dataclass
class Program:
    """The linked whole-program view handed to the effect rules."""

    #: qualname → node, every function/method in the linted tree.
    nodes: dict[str, FunctionNode] = field(default_factory=dict)
    #: bare method name → qualnames of every method so named.
    methods: dict[str, list[str]] = field(default_factory=dict)
    #: (module, top-level def name) → qualname.
    module_funcs: dict[tuple[str, str], str] = field(default_factory=dict)
    #: ``module.Class`` → method names declared on it.
    classes: dict[str, set[str]] = field(default_factory=dict)
    #: ``module.Class`` → resolved base-class keys, in declaration
    #: order.  Linted bases are canonical class keys; external bases
    #: keep their resolved dotted name (``ast.NodeVisitor``) so the
    #: :data:`PURE_BASE_METHODS` whitelist can match them.
    bases: dict[str, list[str]] = field(default_factory=dict)
    #: Whether class-hierarchy-aware resolution is active.
    hierarchy: bool = True
    #: module → local import alias → absolute dotted target.
    imports: dict[str, dict[str, str]] = field(default_factory=dict)
    #: dotted names of every linted module.
    modules: set[str] = field(default_factory=set)


def parse_effect_declarations(
        source: str) -> dict[int, tuple[frozenset[str], str, tuple[str, ...]]]:
    """Map line → (declared effects, justification, invalid tokens)."""
    out: dict[int, tuple[frozenset[str], str, tuple[str, ...]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = EFFECTS_PRAGMA_RE.search(line)
        if m is None:
            continue
        tokens = [t.strip().upper() for t in m.group(1).split(",")
                  if t.strip()]
        good = frozenset(t for t in tokens if t in EFFECT_NAMES)
        bad = tuple(t for t in tokens if t not in EFFECT_NAMES)
        out[lineno] = (good, (m.group(2) or "").strip(), bad)
    return out


#: The declarable effect lattice (UNKNOWN is inferred, never declared).
EFFECT_NAMES = frozenset(
    {"PHYS_IO", "MATERIALIZES", "NONDET", "FREE_PEEK", "HOST_ONLY"})

#: The lattice top: a call the resolver cannot prove anything about.
UNKNOWN = "UNKNOWN"


class _Collector(ast.NodeVisitor):
    """One walk over a module, recording functions and raw call sites."""

    def __init__(self, module: str, path: str, layer: str,
                 pkg_relfile: str,
                 decls: dict[int, tuple[frozenset[str], str,
                                        tuple[str, ...]]]) -> None:
        self.module = module
        self.path = path
        self.layer = layer
        self.pkg_relfile = pkg_relfile
        self.decls = decls
        self.imports: dict[str, str] = {}
        self.functions: list[FunctionNode] = []
        self.classes: dict[str, set[str]] = {}
        self.base_refs: dict[str, list[str]] = {}  #: cls → raw base refs
        self._cls: str | None = None
        self._node: FunctionNode | None = None
        self._hold_depth = 0

    # -- imports ------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.imports[alias.asname] = alias.name
            else:
                top = alias.name.split(".")[0]
                self.imports[top] = top
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._absolute_module(node)
        for alias in node.names:
            if alias.name == "*":
                continue
            target = f"{base}.{alias.name}" if base else alias.name
            self.imports[alias.asname or alias.name] = target
        self.generic_visit(node)

    def _absolute_module(self, node: ast.ImportFrom) -> str | None:
        """Same package arithmetic as the visitor's relative resolver."""
        if node.level == 0:
            return node.module
        pkg = self.module.rsplit(".", 1)[0] if "." in self.module else ""
        base = pkg.split(".") if pkg else []
        up = node.level - 1
        if up > len(base):
            return node.module
        parts = base[:len(base) - up] if up else base
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else node.module

    # -- definitions --------------------------------------------------

    def _def(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._node is not None:
            # Nested def/closure: fold its body into the enclosing
            # function's signature.
            self.generic_visit(node)
            return
        local = f"{self._cls}.{node.name}" if self._cls else node.name
        declared, justification, bad = self.decls.get(
            node.lineno, (frozenset(), "", ()))
        fn = FunctionNode(
            qualname=f"{self.module}.{local}", module=self.module,
            local_name=local, path=self.path, line=node.lineno,
            layer=self.layer, pkg_relfile=self.pkg_relfile,
            cls=self._cls, declared=declared,
            justification=justification, bad_declared=bad)
        self.functions.append(fn)
        if self._cls is not None:
            self.classes.setdefault(self._cls, set()).add(node.name)
        self._node = fn
        hold, self._hold_depth = self._hold_depth, 0
        try:
            self.generic_visit(node)
        finally:
            self._node = None
            self._hold_depth = hold

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._def(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._node is not None or self._cls is not None:
            self.generic_visit(node)  # nested class: fold / flatten
            return
        self._cls = node.name
        self.classes.setdefault(node.name, set())
        refs = self.base_refs.setdefault(node.name, [])
        for base in node.bases:
            if isinstance(base, ast.Name):
                refs.append(base.id)
            elif isinstance(base, ast.Attribute):
                dotted = rules.dotted_name(base)
                if dotted is not None:
                    refs.append(dotted)
            # else: a subscripted generic or computed base — opaque.
        try:
            self.generic_visit(node)
        finally:
            self._cls = None

    # -- call sites and intrinsic effects -----------------------------

    def visit_With(self, node: ast.With) -> None:
        holds = any(rules.is_hold(item.context_expr)
                    for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if holds:
            self._hold_depth += 1
        try:
            for stmt in node.body:
                self.visit(stmt)
        finally:
            if holds:
                self._hold_depth -= 1

    def _materializes(self, node: ast.Call) -> bool:
        for arg in node.args:
            if rules.is_scan_call(arg):
                return True
            if isinstance(arg, ast.GeneratorExp) and any(
                    rules.is_scan_call(g.iter) for g in arg.generators):
                return True
        return False

    def _is_thread_ctor(self, func: ast.expr) -> bool:
        """Does this call expression construct ``threading.Thread``?"""
        if isinstance(func, ast.Name):
            return self.imports.get(func.id) == "threading.Thread"
        if isinstance(func, ast.Attribute) and func.attr == "Thread":
            dotted = rules.dotted_name(func)
            if dotted is None:
                return False
            base = dotted.rsplit(".", 1)[0]
            return self.imports.get(base) == "threading"
        return False

    def _record_thread_target(self, fn: FunctionNode,
                              node: ast.Call) -> None:
        target: ast.expr | None = None
        for kw in node.keywords:
            if kw.arg == "target":
                target = kw.value
                break
        if target is None:
            fn.thread_targets.append(("opaque", "", node.lineno))
        elif isinstance(target, ast.Name):
            fn.thread_targets.append(("name", target.id, node.lineno))
        elif isinstance(target, ast.Attribute):
            dotted = rules.dotted_name(target)
            if dotted is not None:
                fn.thread_targets.append(("dotted", dotted, node.lineno))
            else:
                fn.thread_targets.append(
                    ("attr", target.attr, node.lineno))
        else:
            fn.thread_targets.append(("opaque", "", node.lineno))

    def visit_Call(self, node: ast.Call) -> None:
        fn = self._node
        if fn is None:
            self.generic_visit(node)
            return
        func = node.func
        if self._is_thread_ctor(func):
            self._record_thread_target(fn, node)
        if isinstance(func, ast.Name):
            if func.id == "open":
                fn.intrinsic.add("PHYS_IO")
            else:
                if (func.id in rules.MATERIALIZERS
                        and not self._hold_depth
                        and self._materializes(node)):
                    fn.intrinsic.add("MATERIALIZES")
                fn.raw_calls.append(("name", func.id, node.lineno))
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in rules.RAW_IO_METHODS:
                fn.intrinsic.add("PHYS_IO")
            elif attr == "peek_tuples":
                fn.intrinsic.add("FREE_PEEK")
            elif (isinstance(func.value, ast.Call)
                  and isinstance(func.value.func, ast.Name)
                  and func.value.func.id == "super"):
                fn.raw_calls.append(("super", attr, node.lineno))
            else:
                dotted = rules.dotted_name(func)
                if dotted is not None:
                    fn.raw_calls.append(("dotted", dotted, node.lineno))
                else:
                    fn.raw_calls.append(("attr", attr, node.lineno))
        # else: calling the result of an expression — opaque, but the
        # inner expression is itself visited below.
        self.generic_visit(node)

    def _comprehension(self, node: ast.ListComp | ast.SetComp
                       | ast.DictComp) -> None:
        if self._node is not None and not self._hold_depth and any(
                rules.is_scan_call(g.iter) for g in node.generators):
            self._node.intrinsic.add("MATERIALIZES")
        self.generic_visit(node)

    visit_ListComp = _comprehension
    visit_SetComp = _comprehension
    visit_DictComp = _comprehension


def module_name_for(path: str, pkg_parts: tuple[str, ...] | None) -> str:
    """Dotted module name for a linted file (unique fallback outside
    the ``repro`` package)."""
    if pkg_parts is None:
        return path.replace("/", ".").removesuffix(".py")
    parts = ["repro"] + list(pkg_parts)
    last = parts.pop()
    stem = last.removesuffix(".py")
    if stem != "__init__":
        parts.append(stem)
    return ".".join(parts)


def build_program(
        modules: Iterable[tuple[str, str, ast.AST,
                                tuple[str, ...] | None]],
        *, class_hierarchy: bool = True) -> Program:
    """Collect and link a whole program.

    ``modules`` yields ``(rel_path, source, tree, pkg_parts)`` for
    every successfully parsed file (``pkg_parts`` as produced by the
    visitor's path scoping).  ``class_hierarchy=False`` disables the
    inheritance-aware resolution of ``self.m`` / ``cls`` / ``super()``
    calls (the pre-hierarchy behavior, kept for measuring how much of
    the UNKNOWN set the hierarchy pass removes).
    """
    program = Program(hierarchy=class_hierarchy)
    collectors: list[_Collector] = []
    raw_bases: list[tuple[str, str, list[str]]] = []  # (module, cls, refs)
    for path, source, tree, pkg_parts in modules:
        module = module_name_for(path, pkg_parts)
        layer = (pkg_parts[0]
                 if pkg_parts is not None and len(pkg_parts) >= 2 else "")
        pkg_relfile = "/".join(pkg_parts) if pkg_parts else path
        coll = _Collector(module, path, layer, pkg_relfile,
                          parse_effect_declarations(source))
        coll.visit(tree)
        collectors.append(coll)
        program.modules.add(module)
        program.imports[module] = coll.imports
        for cls, meths in coll.classes.items():
            program.classes[f"{module}.{cls}"] = meths
        for cls, refs in coll.base_refs.items():
            raw_bases.append((module, cls, refs))
        for fn in coll.functions:
            program.nodes[fn.qualname] = fn
            if fn.cls is None:
                program.module_funcs[(module, fn.local_name)] = fn.qualname
            else:
                meth = fn.local_name.split(".", 1)[1]
                program.methods.setdefault(meth, []).append(fn.qualname)
    # Bases resolve after every module is collected: a base class may
    # live in a module that has not been visited yet.
    for module, cls, refs in raw_bases:
        program.bases[f"{module}.{cls}"] = [
            _resolve_base(program, module, ref) for ref in refs]
    _link(program)
    return program


def _resolve_base(program: Program, module: str, ref: str) -> str:
    """A class-statement base ref → canonical class key or external
    dotted name."""
    if f"{module}.{ref}" in program.classes:
        return f"{module}.{ref}"
    parts = ref.split(".")
    target = program.imports.get(module, {}).get(parts[0])
    if target is not None:
        return _canonical(program, ".".join([target] + parts[1:]))
    return ref  # a builtin (Exception) or something opaque


def linted_mro(program: Program, clskey: str) -> list[str]:
    """Base classes of ``clskey`` reachable through the linted tree,
    breadth-first (approximates Python's MRO well enough for method
    lookup), including external dotted names at the fringe."""
    order: list[str] = []
    seen: set[str] = {clskey}
    frontier = [clskey]
    while frontier:
        nxt: list[str] = []
        for cls in frontier:
            for base in program.bases.get(cls, []):
                if base not in seen:
                    seen.add(base)
                    order.append(base)
                    nxt.append(base)
        frontier = nxt
    return order


def _link(program: Program) -> None:
    """Resolve every raw call site into edges, intrinsics, or UNKNOWN."""
    for fn in program.nodes.values():
        for kind, data, _line in fn.raw_calls:
            if kind == "name":
                _resolve_name(program, fn, data)
            elif kind == "dotted":
                _resolve_dotted(program, fn, data)
            elif kind == "super":
                _resolve_super(program, fn, data)
            else:
                _resolve_attr(program, fn, data)


def _class_edge(program: Program, fn: FunctionNode, clskey: str) -> None:
    """Calling a class constructs it: edge to ``__init__`` if linted."""
    init = f"{clskey}.__init__"
    if init in program.nodes:
        fn.edges.append(init)


def _canonical(program: Program, target: str) -> str:
    """Follow package re-export chains to the defining module.

    ``from repro.core import execute`` binds ``repro.core.execute``,
    but the function lives at ``repro.core.planner.execute`` — the
    package ``__init__``'s own import map (already collected) gives
    the next hop.  Bounded by a seen-set so aliasing cycles stop.
    """
    seen: set[str] = set()
    while target not in seen:
        seen.add(target)
        if target in program.nodes or target in program.classes:
            return target
        mod, _, name = target.rpartition(".")
        nxt = program.imports.get(mod, {}).get(name) if mod else None
        if nxt is None:
            return target
        target = nxt
    return target


def _resolve_imported(program: Program, fn: FunctionNode,
                      target: str, display: str) -> None:
    """Resolve a call whose base name came from an import."""
    target = _canonical(program, target)
    top = target.split(".")[0]
    if top in rules.NONDETERMINISTIC_MODULES:
        fn.intrinsic.add("NONDET")
    elif target in RAW_IO_DOTTED or top == "shutil":
        fn.intrinsic.add("PHYS_IO")
    elif target in program.nodes:
        fn.edges.append(target)
    elif target in program.classes:
        _class_edge(program, fn, target)
    elif top in PURE_MODULES:
        pass
    elif target in program.modules:
        pass  # calling a module object: not a thing; treat as inert
    else:
        # An import the program does not contain (third-party, or a
        # repro module outside the linted set): the lattice top.
        fn.unknown_calls.append(display)
        fn.intrinsic.add(UNKNOWN)


def _resolve_name(program: Program, fn: FunctionNode, name: str) -> None:
    qn = program.module_funcs.get((fn.module, name))
    if qn is not None:
        fn.edges.append(qn)
        return
    clskey = f"{fn.module}.{name}"
    if clskey in program.classes:
        _class_edge(program, fn, clskey)
        return
    if name == "cls" and fn.cls is not None and program.hierarchy:
        # A classmethod constructing its own class (alternate
        # constructor idiom): edge to __init__, own class first, then
        # up the hierarchy.
        own = f"{fn.module}.{fn.cls}.__init__"
        if own in program.nodes:
            fn.edges.append(own)
            return
        _hierarchy_method(program, fn, "__init__")
        return  # no linted __init__ anywhere in the MRO: inert
    target = program.imports.get(fn.module, {}).get(name)
    if target is not None:
        _resolve_imported(program, fn, target, name)
        return
    if name in PURE_BUILTINS:
        return
    # A local variable, parameter, or anything else in call position.
    fn.unknown_calls.append(name)
    fn.intrinsic.add(UNKNOWN)


def _resolve_dotted(program: Program, fn: FunctionNode,
                    dotted: str) -> None:
    parts = dotted.split(".")
    if parts[0] in ("self", "cls") and fn.cls is not None:
        if len(parts) == 2:
            meths = program.classes.get(f"{fn.module}.{fn.cls}", set())
            if parts[1] in meths:
                fn.edges.append(f"{fn.module}.{fn.cls}.{parts[1]}")
                return
            if (program.hierarchy
                    and _hierarchy_method(program, fn, parts[1])):
                return
        _resolve_attr(program, fn, parts[-1], display=dotted)
        return
    target = program.imports.get(fn.module, {}).get(parts[0])
    if target is not None:
        full = ".".join([target] + parts[1:])
        _resolve_imported(program, fn, full, dotted)
        return
    _resolve_attr(program, fn, parts[-1], display=dotted)


def _hierarchy_method(program: Program, fn: FunctionNode,
                      meth: str) -> bool:
    """Look ``meth`` up along the linted MRO of ``fn``'s class.

    Returns True when the call is accounted for: an edge to the first
    linted ancestor declaring the method, or a hit in the
    :data:`PURE_BASE_METHODS` whitelist for an external base.  False
    means the hierarchy knows nothing and the caller should fall back
    to the flat method-index resolution.
    """
    for anc in linted_mro(program, f"{fn.module}.{fn.cls}"):
        if meth in program.classes.get(anc, ()):  # linted ancestor
            qn = f"{anc}.{meth}"
            if qn in program.nodes:
                fn.edges.append(qn)
                return True
        if meth in PURE_BASE_METHODS.get(anc, ()):
            return True
    return False


def _resolve_super(program: Program, fn: FunctionNode,
                   meth: str) -> None:
    """``super().meth(...)``: the target is *strictly above* the
    defining class, so own-class methods never shadow it."""
    if (fn.cls is not None and program.hierarchy
            and _hierarchy_method(program, fn, meth)):
        return
    _resolve_attr(program, fn, meth, display=f"super().{meth}")


def _resolve_attr(program: Program, fn: FunctionNode, attr: str,
                  display: str | None = None) -> None:
    """An attribute call on an unresolvable receiver: union over every
    linted method of that name, else whitelist, else UNKNOWN."""
    targets = program.methods.get(attr)
    if targets:
        fn.edges.extend(targets)
        return
    if attr in PURE_METHODS:
        return
    fn.unknown_calls.append(display or f".{attr}")
    fn.intrinsic.add(UNKNOWN)


def strongly_connected(program: Program) -> list[list[str]]:
    """Tarjan's SCC over the program call graph, emitting components
    in reverse topological order (callees before callers)."""
    return tarjan_scc(
        program.nodes,
        {qn: program.nodes[qn].edges for qn in program.nodes})


def tarjan_scc(nodes: Iterable[str],
               edge_map: dict[str, list[str]]) -> list[list[str]]:
    """Tarjan's SCC, iterative, over an arbitrary string graph.

    Emits components in reverse topological order (successors before
    predecessors), which makes a fixpoint over the condensation one
    linear sweep.  Edges to nodes outside ``nodes`` are ignored.
    """
    node_list = list(nodes)
    node_set = set(node_list)
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    for root in node_list:
        if root in index:
            continue
        # Each frame: (node, iterator position over its edges).
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, ei = work.pop()
            if ei == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            edges = edge_map.get(node, [])
            advanced = False
            while ei < len(edges):
                tgt = edges[ei]
                ei += 1
                if tgt not in node_set:
                    continue
                if tgt not in index:
                    work.append((node, ei))
                    work.append((tgt, 0))
                    advanced = True
                    break
                if tgt in on_stack:
                    low[node] = min(low[node], index[tgt])
            if advanced:
                continue
            if low[node] == index[node]:
                comp: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs
