"""Thread-root inference for the ``emrace`` pass.

The lock-discipline rules (EM012–EM016, :mod:`repro.lint.locks`) only
matter for state that more than one thread can reach.  This module
answers the reachability half of that question: it infers the
program's **thread roots** and propagates a MAY-RUN-ON-THREADS set
over the whole-program call graph built by
:mod:`repro.lint.callgraph`.

Roots:

* ``main`` — the implicit root; every function may run on the main
  thread (CLI entry points, tests, library use);
* ``http`` — handler entry points: methods named ``do_*`` or
  ``handle*`` on classes whose (transitive) bases resolve to
  ``http.server.BaseHTTPRequestHandler`` /
  ``socketserver.BaseRequestHandler``, plus any
  ``Thread(target=server.serve_forever)`` site (the accept loop that
  spawns those handler threads);
* ``thread:<name>`` — one root per distinct
  ``threading.Thread(target=...)`` target.  Targets that resolve to a
  linted function or method enter there; closures and lambdas fold
  into the function that spawned them (the collector already folds
  nested defs), so the spawner itself is the entry — a sound
  over-approximation.

A function can also *declare* itself a root with
``# em-thread-root: <root>`` on its ``def`` line.  This covers the
one shape the collector folds away: a handler class defined *inside*
a factory function (``obs/export.py::make_metrics_handler``), whose
``do_GET`` body is attributed to the factory.

Propagation is a breadth-first sweep per root over the
over-approximating union call graph — exactly the right direction for
MAY-run-on: a spurious edge can only add threads, never hide one.

Like the rest of the lint package this is stdlib-only and never
imports the code it inspects.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.lint.callgraph import Program

#: ``# em-thread-root: <root>`` on a ``def`` line.
THREAD_ROOT_RE = re.compile(r"#\s*em-thread-root:\s*([A-Za-z0-9_.:-]+)")

#: The implicit root every function belongs to.
ROOT_MAIN = "main"

#: The root shared by all server-spawned request handler threads.
ROOT_HTTP = "http"

#: External bases whose subclasses' ``do_*``/``handle*`` methods run
#: on server-spawned threads (matched against resolved base names).
HANDLER_BASES = frozenset({
    "http.server.BaseHTTPRequestHandler",
    "socketserver.BaseRequestHandler",
    "socketserver.StreamRequestHandler",
})


@dataclass
class ThreadAnalysis:
    """The inferred thread structure of one linted program."""

    #: root name → sorted entry qualnames (``main`` maps to ``[]``:
    #: its entry set is "every function" by definition).
    roots: dict[str, list[str]] = field(default_factory=dict)
    #: qualname → every root the function MAY run on (always
    #: includes ``main``).
    may_run: dict[str, frozenset[str]] = field(default_factory=dict)

    def threads_of(self, qualname: str) -> frozenset[str]:
        return self.may_run.get(qualname, frozenset({ROOT_MAIN}))

    def multi_threaded(self, qualname: str) -> bool:
        """May this function run on more than one thread root?"""
        return len(self.threads_of(qualname)) > 1


def parse_thread_root_declarations(source: str) -> dict[int, str]:
    """Map line number → declared root name."""
    out: dict[int, str] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = THREAD_ROOT_RE.search(line)
        if m is not None:
            out[lineno] = m.group(1)
    return out


def _is_handler_class(program: Program, clskey: str) -> bool:
    """Does ``clskey`` (transitively) extend a request-handler base?"""
    from repro.lint.callgraph import linted_mro

    for base in [clskey] + linted_mro(program, clskey):
        if base in HANDLER_BASES:
            return True
    return False


def _resolve_target(program: Program, spawner_qn: str, kind: str,
                    text: str) -> tuple[str | None, list[str]]:
    """One ``Thread(target=...)`` site → (root name, entry qualnames).

    Returns ``(None, [])`` for serve-forever targets (they activate
    the ``http`` root instead of one of their own).
    """
    spawner = program.nodes[spawner_qn]
    last = text.rsplit(".", 1)[-1] if text else ""
    if last == "serve_forever":
        return None, []
    if kind == "name":
        qn = program.module_funcs.get((spawner.module, text))
        if qn is not None:
            return f"thread:{text}", [qn]
        target = program.imports.get(spawner.module, {}).get(text)
        if target is not None and target in program.nodes:
            return f"thread:{text}", [target]
        # A nested def, lambda-bound name, or local: the collector
        # folded its body into the spawner, so the spawner is the
        # entry.
        return f"thread:{spawner.local_name}", [spawner_qn]
    if kind in ("dotted", "attr") and last:
        targets = program.methods.get(last, [])
        if targets:
            return f"thread:{last}", list(targets)
    # Opaque (lambda / computed): the spawner's folded body runs.
    return f"thread:{spawner.local_name}", [spawner_qn]


def infer_threads(program: Program,
                  sources: dict[str, str] | None = None) -> ThreadAnalysis:
    """Infer thread roots and propagate MAY-RUN-ON-THREADS sets.

    ``sources`` maps repo-relative path → file source, used only for
    the ``# em-thread-root:`` declarations; omitting it disables that
    escape hatch (the inferred roots still stand).
    """
    entries: dict[str, set[str]] = {}
    http_active = False

    # 1. threading.Thread(target=...) sites.
    for qn, fn in program.nodes.items():
        for kind, text, _line in fn.thread_targets:
            if kind == "opaque" and not text:
                root, qns = (f"thread:{fn.local_name}", [qn])
            else:
                root, qns = _resolve_target(program, qn, kind, text)
            if root is None:
                http_active = True
                continue
            entries.setdefault(root, set()).update(qns)

    # 2. Request-handler classes: do_* / handle* methods enter on the
    # server's per-request threads.
    for clskey, meths in program.classes.items():
        if not _is_handler_class(program, clskey):
            continue
        for meth in meths:
            if meth.startswith("do_") or meth.startswith("handle"):
                qn = f"{clskey}.{meth}"
                if qn in program.nodes:
                    entries.setdefault(ROOT_HTTP, set()).add(qn)
                    http_active = True

    # 3. Explicit declarations.
    if sources:
        decls_by_path: dict[str, dict[int, str]] = {
            path: parse_thread_root_declarations(src)
            for path, src in sources.items()}
        for qn, fn in program.nodes.items():
            root = decls_by_path.get(fn.path, {}).get(fn.line)
            if root is not None:
                entries.setdefault(root, set()).add(qn)
                if root == ROOT_HTTP:
                    http_active = True

    if http_active:
        entries.setdefault(ROOT_HTTP, set())

    # 4. Propagate: per root, BFS over the union call graph.
    may_run: dict[str, set[str]] = {
        qn: {ROOT_MAIN} for qn in program.nodes}
    for root, roots_entries in entries.items():
        frontier = [qn for qn in roots_entries if qn in program.nodes]
        seen = set(frontier)
        while frontier:
            qn = frontier.pop()
            may_run[qn].add(root)
            for callee in program.nodes[qn].edges:
                if callee in program.nodes and callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)

    analysis = ThreadAnalysis()
    analysis.roots = {ROOT_MAIN: []}
    for root in sorted(entries):
        analysis.roots[root] = sorted(entries[root])
    analysis.may_run = {
        qn: frozenset(roots) for qn, roots in may_run.items()}
    return analysis


def class_threads(program: Program, analysis: ThreadAnalysis,
                  clskey: str) -> frozenset[str]:
    """Every root any method of ``clskey`` may run on — the shared-
    state criterion: a class whose methods span ≥2 roots holds state
    visible to concurrent threads."""
    roots: set[str] = set()
    for meth in program.classes.get(clskey, ()):
        roots |= analysis.threads_of(f"{clskey}.{meth}")
    return frozenset(roots)
