"""Reporters: human-readable text and a stable JSON document.

The JSON schema is versioned (:data:`REPORT_SCHEMA_VERSION`) and
covered by a test that pins the exact key set — CI scrapes the
report, so the shape is an interface, not an implementation detail.
"""

from __future__ import annotations

import json

from repro.lint.registry import RULES
from repro.lint.visitor import LintResult

REPORT_SCHEMA_VERSION = 1


def to_json(result: LintResult, *, baseline_path: str | None = None
            ) -> str:
    """Serialize a lint run as one stable JSON document."""
    payload: dict[str, object] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "clean": result.clean,
        "violations": [v.as_dict() for v in result.violations],
        "suppressed": {
            "pragma": len(result.suppressed_by_pragma),
            "baseline": len(result.suppressed_by_baseline),
        },
        "stale_baseline": result.stale_baseline,
        "baseline_path": baseline_path,
        "rules": {code: {"name": r.name, "summary": r.summary}
                  for code, r in sorted(RULES.items())},
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def to_human(result: LintResult, *, baseline_path: str | None = None
             ) -> str:
    """Render a lint run the way a compiler would: one line per finding."""
    lines: list[str] = []
    for v in result.violations:
        lines.append(v.render())
    if result.stale_baseline:
        lines.append("")
        lines.append("stale baseline entries (prune them from "
                     f"{baseline_path or 'the baseline'}):")
        for e in result.stale_baseline:
            lines.append(f"  {e['path']}: {e['code']} in {e['scope']} "
                         f"({e['unused']} unused)")
    lines.append("")
    n = len(result.violations)
    suppressed = (len(result.suppressed_by_pragma)
                  + len(result.suppressed_by_baseline))
    verdict = "clean" if result.clean else f"{n} violation(s)"
    lines.append(f"emlint: {result.files_checked} file(s) checked, "
                 f"{verdict}, {suppressed} suppressed "
                 f"({len(result.suppressed_by_pragma)} pragma, "
                 f"{len(result.suppressed_by_baseline)} baseline)")
    return "\n".join(lines)
