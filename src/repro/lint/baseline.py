"""The suppression baseline: accepted violations, explicit and counted.

A baseline makes pre-existing accepted exceptions *visible*: each
entry names the file, rule code, enclosing scope, how many findings
it covers, and why it is justified.  ``repro lint --write-baseline``
generates entries (with a TODO justification to fill in); a clean
tree keeps the committed ``lint-baseline.json`` empty so the
zero-violation state is load-bearing.

Keys are ``(path, code, scope)`` rather than line numbers: unrelated
edits move lines constantly, but a violation migrating to a different
function is a different violation and should resurface.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.lint.visitor import Violation

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"

#: The justification ``--write-baseline`` stamps on generated
#: entries.  It is a to-do, not an answer: every ``--check-*`` gate
#: treats a committed entry still carrying it as a failure.
PLACEHOLDER_JUSTIFICATION = "TODO: justify"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted exception: where, what, how many, and why."""

    path: str
    code: str
    scope: str
    count: int
    justification: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.path, self.code, self.scope)

    def as_dict(self) -> dict[str, object]:
        return {"path": self.path, "code": self.code,
                "scope": self.scope, "count": self.count,
                "justification": self.justification}


@dataclass
class Baseline:
    """A set of accepted violations keyed by (path, code, scope)."""

    entries: list[BaselineEntry] = field(default_factory=list)

    def apply(self, violations: "list[Violation]") -> tuple[
            "list[Violation]", "list[Violation]", list[dict[str, object]]]:
        """Split findings into (kept, suppressed) and report stale entries.

        Each entry absorbs up to ``count`` matching findings; findings
        beyond the budget are kept (a *new* violation in an already-
        baselined scope must not hide behind the old one).  Entries
        matching nothing are returned as stale dictionaries so reports
        can demand the baseline be pruned.
        """
        budget: dict[tuple[str, str, str], int] = {}
        for e in self.entries:
            budget[e.key] = budget.get(e.key, 0) + e.count
        used: dict[tuple[str, str, str], int] = {}
        kept: "list[Violation]" = []
        suppressed: "list[Violation]" = []
        for v in violations:
            if used.get(v.key, 0) < budget.get(v.key, 0):
                used[v.key] = used.get(v.key, 0) + 1
                suppressed.append(v)
            else:
                kept.append(v)
        stale = [dict(e.as_dict(), unused=budget[e.key] - used.get(e.key, 0))
                 for e in self.entries
                 if used.get(e.key, 0) < budget[e.key]]
        return kept, suppressed, stale

    def placeholder_entries(self) -> list[BaselineEntry]:
        """Entries whose justification was never filled in."""
        return [e for e in self.entries
                if e.justification.strip().startswith(
                    PLACEHOLDER_JUSTIFICATION)]

    @classmethod
    def from_violations(cls, violations: "list[Violation]", *,
                        justification: str = PLACEHOLDER_JUSTIFICATION
                        ) -> "Baseline":
        """Build a baseline accepting exactly the given findings."""
        counts: dict[tuple[str, str, str], int] = {}
        for v in violations:
            counts[v.key] = counts.get(v.key, 0) + 1
        entries = [BaselineEntry(path=path, code=code, scope=scope,
                                 count=n, justification=justification)
                   for (path, code, scope), n in sorted(counts.items())]
        return cls(entries=entries)

    def as_dict(self) -> dict[str, object]:
        return {"version": BASELINE_VERSION,
                "entries": [e.as_dict() for e in self.entries]}


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return Baseline()
    data = json.loads(p.read_text(encoding="utf-8"))
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{p}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})")
    entries: list[BaselineEntry] = []
    for raw in data.get("entries", []):
        entries.append(BaselineEntry(
            path=str(raw["path"]), code=str(raw["code"]),
            scope=str(raw.get("scope", "<module>")),
            count=int(raw.get("count", 1)),
            justification=str(raw.get("justification", ""))))
    return Baseline(entries=entries)


def write_baseline(baseline: Baseline, path: str | Path) -> None:
    """Write a baseline file (sorted, one canonical formatting)."""
    p = Path(path)
    p.write_text(json.dumps(baseline.as_dict(), indent=2,
                            sort_keys=False) + "\n", encoding="utf-8")
