"""Lock-discipline analysis: the ``emrace`` pass (EM012–EM016).

The service layer is a concurrent system: seven locks guard catalog,
admission, pool, session, flight-recorder, and service state, and any
unguarded mutation can silently break the byte-identical counter
guarantees the pinned baselines depend on.  This module checks the
concurrency model the same way :mod:`repro.lint.effects` checks the
cost model — statically, whole-program, with declarations as the
audit trail and an empty committed baseline as the bar.

Annotation grammar (all line comments):

``# em-guarded-by: <lock-attr> [-- reason]``
    On a field's assignment (or class-body annotation) line: every
    write to the field outside ``__init__`` must happen with that
    lock held.  ``<lock-attr>`` is resolved relative to the owning
    class — a bare name (``_lock``) or an attribute chain through
    typed fields (``shared.lock``).  The literal ``none`` opts a
    field out and *requires* a justification.

``# em-holds: <lock-attr>[, <lock-attr>] [-- reason]``
    On a method's ``def`` line: callers must already hold the named
    locks.  The method's own writes are checked against the declared
    set, and every call site is checked to actually hold it (EM012).

``# em-lock: coarse -- reason``
    On a lock-creation line: the lock is *sanctioned* to be held
    across blocking work (admission waits, device charges), exempting
    it from EM015.  Undeclared locks are strict.

``# em-thread-root: <root>``
    On a ``def`` line: declares a thread entry point the inference in
    :mod:`repro.lint.threads` cannot see (consumed there; policed for
    drift here).

Rules:

* **EM012** — a write to a guarded field without the guard lock held
  (lexically via ``with``, or contractually via ``em-holds``), or a
  call into an ``em-holds`` method without the required lock.
* **EM013** — a monitor class (owns a lock, methods reachable from
  ≥2 thread roots) mutates a field outside ``__init__`` with no
  ``em-guarded-by`` declaration: the annotation is forced.
* **EM014** — a cycle in the acquires-while-holding lock-order
  graph (potential deadlock), including single-lock re-acquisition
  of a non-reentrant ``threading.Lock``.
* **EM015** — blocking work (``Condition.wait``, device charges,
  file/socket I/O, sleeps, ``serve_forever``) reachable while a
  strict (non-``coarse``) lock is held.
* **EM016** — declaration drift: guard/holds annotations naming lock
  attributes that do not exist, ``none`` escapes without a reason,
  unknown ``em-lock`` flags, and annotation comments attached to no
  construct.

Resolution here is deliberately *precise*, unlike the union call
graph the effect pass uses: a flat union over every method named
``close`` would manufacture lock-order cycles that cannot happen.
Types flow from parameter/return annotations (string forms
included), constructor assignments, and container value types; a
call that cannot be typed contributes nothing.  That is sound for
EM014/EM015 (missing edges, never false ones) and keeps EM012
honest because guarded writes are always lexically attributable.

Like the rest of the lint package this is stdlib-only and never
imports the code it inspects.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.lint import rules
from repro.lint.callgraph import (Program, _canonical, linted_mro,
                                  module_name_for, tarjan_scc)
from repro.lint.threads import (ROOT_MAIN, THREAD_ROOT_RE, ThreadAnalysis,
                                class_threads)

#: Version of the ``--locks`` lock-graph JSON document.
LOCKS_SCHEMA_VERSION = 1

GUARDED_BY_RE = re.compile(
    r"#\s*em-guarded-by:\s*([A-Za-z0-9_.]+)\s*(?:--\s*(.*?))?\s*$")
HOLDS_RE = re.compile(
    r"#\s*em-holds:\s*([A-Za-z0-9_.,\s]+?)\s*(?:--\s*(.*?))?\s*$")
LOCK_FLAG_RE = re.compile(
    r"#\s*em-lock:\s*([A-Za-z-]+)\s*(?:--\s*(.*?))?\s*$")

#: Constructors that create a lock attribute, → lock kind.
LOCK_CTORS = {"threading.Lock": "lock", "threading.RLock": "rlock",
              "threading.Condition": "condition"}

#: Valid ``# em-lock:`` flags.
LOCK_FLAGS = frozenset({"coarse"})

#: Container methods that mutate their receiver (a call
#: ``self.field.append(...)`` is a write to ``field``).
MUTATORS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "setdefault",
    "sort", "update",
})

#: Socket methods that block the calling thread.
BLOCKING_SOCKET = frozenset({"accept", "connect", "recv", "sendall"})

#: Device charge entry points — the simulated I/O that EM015 treats
#: as blocking work (a charge is a block transfer; holding a strict
#: lock across one serializes every thread behind simulated disk).
CHARGE_METHODS = frozenset({"charge_read", "charge_write"})

#: A lock's identity: (owning class key, attribute name).
LockId = tuple[str, str]

#: A resolved type: ``("cls", clskey)`` | ``("lock", LockId)`` |
#: ``("dict", TypeInfo)`` | ``("list", TypeInfo)`` | ``None``.
#: An *unresolved* reference uses ``("name", (text, module))`` in the
#: first slot instead; both are spelled ``tuple[str, Any] | None``
#: because mypy's strict mode has no recursive tuple aliases.

_DICT_NAMES = frozenset({"dict", "Dict", "defaultdict", "OrderedDict",
                         "Counter", "Mapping", "MutableMapping"})
_SEQ_NAMES = frozenset({"list", "List", "set", "Set", "frozenset",
                        "FrozenSet", "deque", "Sequence", "Iterable",
                        "Iterator", "Collection"})


@dataclass(frozen=True)
class LockFinding:
    """One emrace finding, later wrapped as a Violation."""

    code: str
    path: str
    line: int
    message: str
    scope: str


@dataclass
class LockInfo:
    """One lock attribute found in the tree."""

    lid: LockId
    kind: str  #: "lock" | "rlock" | "condition"
    path: str
    line: int
    coarse: bool = False
    justification: str = ""


@dataclass
class GuardDecl:
    """One ``# em-guarded-by:`` declaration on a field."""

    text: str
    justification: str
    line: int
    #: Resolved lock id; ``None`` for the ``none`` escape or an
    #: unresolvable text (the latter is an EM016 finding).
    lid: LockId | None = None


@dataclass
class ClassScan:
    """Per-class facts from the annotation/type scan."""

    key: str
    module: str
    path: str
    line: int
    locks: dict[str, LockInfo] = field(default_factory=dict)
    attr_refs: dict[str, Any] = field(default_factory=dict)
    guards: dict[str, GuardDecl] = field(default_factory=dict)
    init_lines: dict[str, int] = field(default_factory=dict)


@dataclass
class FnFacts:
    """Per-function lexical facts for the discipline rules."""

    qn: str
    #: (attr, line, held lock ids, written inside ``__init__``).
    writes: list[tuple[str, int, tuple[LockId, ...], bool]] = field(
        default_factory=list)
    #: (callee qualname, line, held lock ids) — *precisely* resolved.
    calls: list[tuple[str, int, tuple[LockId, ...]]] = field(
        default_factory=list)
    #: (kind, line, held, exempt lock) — intrinsic blocking sites.
    blockers: list[tuple[str, int, tuple[LockId, ...],
                         LockId | None]] = field(default_factory=list)
    #: (outer lock, inner lock, line) — lexical acquisition nesting.
    nests: list[tuple[LockId, LockId, int]] = field(default_factory=list)
    #: Locks this function's body acquires via ``with``.
    acquired: set[LockId] = field(default_factory=set)
    #: Blocking kinds evident at this function's own sites.
    block_kinds: set[str] = field(default_factory=set)


def _comment_lines(source: str) -> dict[int, str]:
    """Line number → comment text, from real COMMENT tokens only.

    The annotation grammar is documented in docstrings (this module's
    included), so a plain per-line regex would see declarations inside
    string literals; tokenizing restricts matching to actual comments.

    A declaration on a *standalone* comment line anchors to the next
    code line below it (skipping further comment lines), so long
    justifications need not fight the line-length limit:

    .. code-block:: python

        # em-lock: coarse -- held across waits by design: queries
        # within one session run serially.
        self._lock = threading.Lock()
    """
    out: dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out[tok.start[0]] = tok.string
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return {}  # unparseable source is EM000's problem
    lines = source.splitlines()

    def pure_comment(lineno: int) -> bool:
        text = (lines[lineno - 1] if 0 < lineno <= len(lines) else "")
        return text.strip().startswith("#")

    decl_res = (GUARDED_BY_RE, HOLDS_RE, LOCK_FLAG_RE, THREAD_ROOT_RE)
    for lineno in sorted(out):
        if not pure_comment(lineno):
            continue
        if not any(p.search(out[lineno]) for p in decl_res):
            continue
        target = lineno + 1
        while target <= len(lines) and pure_comment(target):
            target += 1
        if (target > len(lines) or not lines[target - 1].strip()
                or target in out):
            continue  # nothing to anchor to: EM016 flags the leftover
        out[target] = out.pop(lineno)
    return out


def _parse_line_decls(comments: dict[int, str],
                      pattern: re.Pattern[str]) -> dict[int, tuple[str, str]]:
    """Map line number → (declaration text, justification)."""
    out: dict[int, tuple[str, str]] = {}
    for lineno, line in comments.items():
        m = pattern.search(line)
        if m is not None:
            out[lineno] = (m.group(1).strip(), (m.group(2) or "").strip())
    return out


def _ann_ref(expr: ast.expr, module: str) -> tuple[str, Any] | None:
    """An annotation expression → unresolved type reference."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        try:
            inner = ast.parse(expr.value, mode="eval").body
        except SyntaxError:
            return None
        return _ann_ref(inner, module)
    if isinstance(expr, ast.Name):
        return ("name", (expr.id, module))
    if isinstance(expr, ast.Attribute):
        dotted = rules.dotted_name(expr)
        return ("name", (dotted, module)) if dotted else None
    if isinstance(expr, ast.Subscript):
        base = expr.value
        base_name = (base.id if isinstance(base, ast.Name)
                     else base.attr if isinstance(base, ast.Attribute)
                     else None)
        args = (list(expr.slice.elts)
                if isinstance(expr.slice, ast.Tuple) else [expr.slice])
        if base_name in _DICT_NAMES and len(args) == 2:
            return ("dict", _ann_ref(args[1], module))
        if base_name in _SEQ_NAMES and args:
            return ("list", _ann_ref(args[0], module))
        if base_name == "Optional" and args:
            return _ann_ref(args[0], module)
        return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        left = _ann_ref(expr.left, module)
        return left if left is not None else _ann_ref(expr.right, module)
    return None


def _param_refs(node: ast.FunctionDef | ast.AsyncFunctionDef,
                module: str) -> dict[str, Any]:
    """Parameter name → unresolved type ref, from annotations."""
    out: dict[str, Any] = {}
    args = node.args
    for a in (list(args.posonlyargs) + list(args.args)
              + list(args.kwonlyargs)):
        if a.annotation is not None:
            ref = _ann_ref(a.annotation, module)
            if ref is not None:
                out[a.arg] = ref
    return out


def _self_attr(expr: ast.expr) -> str | None:
    """``self.X`` (or ``self.X[...]``) → ``X``, else ``None``."""
    if isinstance(expr, ast.Subscript):
        return _self_attr(expr.value)
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"):
        return expr.attr
    return None


class _Emrace:
    """The whole-program lock-discipline analysis (driver object)."""

    def __init__(self, program: Program,
                 analysis: ThreadAnalysis) -> None:
        self.program = program
        self.analysis = analysis
        self.class_scans: dict[str, ClassScan] = {}
        self.locks: dict[LockId, LockInfo] = {}
        #: (qn, module, path, clskey-or-None, def node).
        self.defs: list[tuple[str, str, str, str | None,
                              ast.FunctionDef | ast.AsyncFunctionDef]] = []
        self.param_refs: dict[str, dict[str, Any]] = {}
        self.return_refs: dict[str, Any] = {}
        #: qn → (texts, justification, line) from ``# em-holds:``.
        self.holds_raw: dict[str, tuple[list[str], str, int]] = {}
        self.holds: dict[str, frozenset[LockId]] = {}
        self.fn_facts: dict[str, FnFacts] = {}
        self.acquires: dict[str, frozenset[LockId]] = {}
        self.blocks: dict[str, frozenset[str]] = {}
        #: (path, line, message) for malformed ``em-lock`` flags.
        self.bad_flags: list[tuple[str, int, str]] = []
        #: Declaration comment lines seen / consumed, for leftovers.
        self.decl_lines: dict[str, dict[int, str]] = {}
        self.consumed: set[tuple[str, int]] = set()
        self._attr_cache: dict[tuple[str, str], Any] = {}
        self._findings: list[LockFinding] = []

    # ---------------------------------------------- phase 1: scan --

    def scan_module(self, path: str, source: str, tree: ast.AST,
                    pkg_parts: tuple[str, ...] | None) -> None:
        module = module_name_for(path, pkg_parts)
        comments = _comment_lines(source)
        guard_decls = _parse_line_decls(comments, GUARDED_BY_RE)
        holds_decls = _parse_line_decls(comments, HOLDS_RE)
        flag_decls = _parse_line_decls(comments, LOCK_FLAG_RE)
        lines = self.decl_lines.setdefault(path, {})
        for ln in guard_decls:
            lines[ln] = "em-guarded-by"
        for ln in holds_decls:
            lines[ln] = "em-holds"
        for ln in flag_decls:
            lines[ln] = "em-lock"
        for ln, line in comments.items():
            if THREAD_ROOT_RE.search(line) is not None:
                lines[ln] = "em-thread-root"
        if not isinstance(tree, ast.Module):
            return
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_def(f"{module}.{node.name}", module, path,
                                   None, node, holds_decls)
            elif isinstance(node, ast.ClassDef):
                self._scan_class(module, path, node, guard_decls,
                                 holds_decls, flag_decls)

    def _register_def(self, qn: str, module: str, path: str,
                      clskey: str | None,
                      node: ast.FunctionDef | ast.AsyncFunctionDef,
                      holds_decls: dict[int, tuple[str, str]]) -> None:
        self.defs.append((qn, module, path, clskey, node))
        self.param_refs[qn] = _param_refs(node, module)
        if node.returns is not None:
            ref = _ann_ref(node.returns, module)
            if ref is not None:
                self.return_refs[qn] = ref
        decl = holds_decls.get(node.lineno)
        if decl is not None:
            texts = [t.strip() for t in decl[0].split(",") if t.strip()]
            self.holds_raw[qn] = (texts, decl[1], node.lineno)
            self.consumed.add((path, node.lineno))

    def _scan_class(self, module: str, path: str, node: ast.ClassDef,
                    guard_decls: dict[int, tuple[str, str]],
                    holds_decls: dict[int, tuple[str, str]],
                    flag_decls: dict[int, tuple[str, str]]) -> None:
        clskey = f"{module}.{node.name}"
        cs = ClassScan(key=clskey, module=module, path=path,
                       line=node.lineno)
        self.class_scans[clskey] = cs
        for sub in node.body:
            if (isinstance(sub, ast.AnnAssign)
                    and isinstance(sub.target, ast.Name)):
                ref = _ann_ref(sub.annotation, module)
                if ref is not None:
                    cs.attr_refs.setdefault(sub.target.id, ref)
                g = guard_decls.get(sub.lineno)
                if g is not None:
                    cs.guards.setdefault(
                        sub.target.id,
                        GuardDecl(g[0], g[1], sub.lineno))
                    self.consumed.add((path, sub.lineno))
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_def(f"{clskey}.{sub.name}", module, path,
                                   clskey, sub, holds_decls)
                self._scan_method_attrs(cs, module, path, sub,
                                        guard_decls, flag_decls)

    def _scan_method_attrs(
            self, cs: ClassScan, module: str, path: str,
            meth: ast.FunctionDef | ast.AsyncFunctionDef,
            guard_decls: dict[int, tuple[str, str]],
            flag_decls: dict[int, tuple[str, str]]) -> None:
        in_init = meth.name == "__init__"
        params = self.param_refs.get(f"{cs.key}.{meth.name}", {})
        for st in ast.walk(meth):
            if isinstance(st, ast.Assign):
                for tgt in st.targets:
                    targets = (tgt.elts if isinstance(
                        tgt, (ast.Tuple, ast.List)) else [tgt])
                    for t in targets:
                        if (isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"):
                            self._attr_assign(
                                cs, module, path, t.attr, st.value,
                                st.lineno, in_init, params,
                                guard_decls, flag_decls)
            elif (isinstance(st, ast.AnnAssign)
                  and isinstance(st.target, ast.Attribute)
                  and isinstance(st.target.value, ast.Name)
                  and st.target.value.id == "self"):
                ref = _ann_ref(st.annotation, module)
                if ref is not None:
                    cs.attr_refs.setdefault(st.target.attr, ref)
                self._attr_assign(cs, module, path, st.target.attr,
                                  st.value, st.lineno, in_init, params,
                                  guard_decls, flag_decls)

    def _attr_assign(self, cs: ClassScan, module: str, path: str,
                     attr: str, value: ast.expr | None, lineno: int,
                     in_init: bool, params: dict[str, Any],
                     guard_decls: dict[int, tuple[str, str]],
                     flag_decls: dict[int, tuple[str, str]]) -> None:
        if in_init:
            cs.init_lines.setdefault(attr, lineno)
        kind = self._lock_ctor_kind(module, value)
        if kind is not None and attr not in cs.locks:
            info = LockInfo(lid=(cs.key, attr), kind=kind, path=path,
                            line=lineno)
            flag = flag_decls.get(lineno)
            if flag is not None:
                self.consumed.add((path, lineno))
                if flag[0] in LOCK_FLAGS:
                    info.coarse = True
                    info.justification = flag[1]
                else:
                    self.bad_flags.append((
                        path, lineno,
                        f"unknown em-lock flag {flag[0]!r} on "
                        f"{cs.key}.{attr} (valid: "
                        f"{', '.join(sorted(LOCK_FLAGS))})"))
            cs.locks[attr] = info
        elif value is not None and attr not in cs.attr_refs:
            ref = self._value_ref(module, value, params)
            if ref is not None:
                cs.attr_refs[attr] = ref
        g = guard_decls.get(lineno)
        if g is not None:
            cs.guards.setdefault(attr, GuardDecl(g[0], g[1], lineno))
            self.consumed.add((path, lineno))

    def _lock_ctor_kind(self, module: str,
                        value: ast.expr | None) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        target = self._ctor_target(module, value.func)
        return LOCK_CTORS.get(target) if target is not None else None

    def _ctor_target(self, module: str, func: ast.expr) -> str | None:
        """A call's function expression → imported dotted target."""
        if isinstance(func, ast.Name):
            return self.program.imports.get(module, {}).get(func.id)
        dotted = rules.dotted_name(func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        t = self.program.imports.get(module, {}).get(parts[0])
        return ".".join([t] + parts[1:]) if t is not None else None

    def _value_ref(self, module: str, value: ast.expr,
                   params: dict[str, Any]) -> tuple[str, Any] | None:
        """A constructor-assignment value → unresolved type ref."""
        if isinstance(value, ast.Call):
            if isinstance(value.func, ast.Name):
                return ("name", (value.func.id, module))
            dotted = rules.dotted_name(value.func)
            return ("name", (dotted, module)) if dotted else None
        if isinstance(value, ast.Name):
            ref = params.get(value.id)
            return ref if ref is not None else None
        if isinstance(value, ast.IfExp):
            body = self._value_ref(module, value.body, params)
            if body is not None:
                return body
            return self._value_ref(module, value.orelse, params)
        return None

    # -------------------------------------- phase 2: type resolution --

    def resolve(self) -> None:
        """Register locks, resolve guard/holds declarations."""
        for cs in self.class_scans.values():
            for info in cs.locks.values():
                self.locks[info.lid] = info
        for p, line, msg in self.bad_flags:
            self._add("EM016", p, line, msg, "em-lock")
        for cs in self.class_scans.values():
            for attr, gd in cs.guards.items():
                if gd.text == "none":
                    if not gd.justification:
                        self._add(
                            "EM016", cs.path, gd.line,
                            f"field {cs.key.rsplit('.', 1)[-1]}.{attr} "
                            "opts out with `em-guarded-by: none` but "
                            "gives no justification; append `-- why` "
                            "so the escape stays an audit record",
                            f"{cs.key}.{attr}")
                    continue
                gd.lid = self.resolve_guard(cs.key, gd.text)
                if gd.lid is None:
                    self._add(
                        "EM016", cs.path, gd.line,
                        f"`em-guarded-by: {gd.text}` on {cs.key}."
                        f"{attr} names no lock attribute reachable "
                        "from the class (drifted declaration?); name "
                        "a threading.Lock/RLock/Condition attribute "
                        "or use `none -- why`",
                        f"{cs.key}.{attr}")
        for qn, (texts, _just, line) in self.holds_raw.items():
            node = self.program.nodes.get(qn)
            if node is None:
                continue
            if node.cls is None:
                self._add(
                    "EM016", node.path, line,
                    f"`em-holds:` on module-level function "
                    f"{node.local_name}; holds contracts are resolved "
                    "against the owning class, annotate a method",
                    node.local_name)
                continue
            clskey = f"{node.module}.{node.cls}"
            lids: set[LockId] = set()
            for text in texts:
                lid = self.resolve_guard(clskey, text)
                if lid is None:
                    self._add(
                        "EM016", node.path, line,
                        f"`em-holds: {text}` on {node.local_name} "
                        "names no lock attribute reachable from "
                        f"{node.cls} (drifted declaration?)",
                        node.local_name)
                else:
                    lids.add(lid)
            self.holds[qn] = frozenset(lids)

    def resolve_ref(self, ref: Any) -> tuple[str, Any] | None:
        if ref is None:
            return None
        tag = ref[0]
        if tag == "dict":
            return ("dict", self.resolve_ref(ref[1]))
        if tag == "list":
            return ("list", self.resolve_ref(ref[1]))
        text, module = ref[1]
        ck = self._class_for(module, text)
        return ("cls", ck) if ck is not None else None

    def _class_for(self, module: str, text: str) -> str | None:
        if f"{module}.{text}" in self.program.classes:
            return f"{module}.{text}"
        parts = text.split(".")
        t = self.program.imports.get(module, {}).get(parts[0])
        if t is not None:
            full = _canonical(self.program, ".".join([t] + parts[1:]))
            if full in self.program.classes:
                return full
        return None

    def attr_type(self, clskey: str, attr: str) -> tuple[str, Any] | None:
        key = (clskey, attr)
        if key in self._attr_cache:
            out: tuple[str, Any] | None = self._attr_cache[key]
            return out
        self._attr_cache[key] = None  # cycle guard
        resolved: tuple[str, Any] | None = None
        for ck in [clskey] + linted_mro(self.program, clskey):
            cs = self.class_scans.get(ck)
            if cs is None:
                continue
            if attr in cs.locks:
                resolved = ("lock", cs.locks[attr].lid)
                break
            ref = cs.attr_refs.get(attr)
            if ref is not None:
                resolved = self.resolve_ref(ref)
                break
        self._attr_cache[key] = resolved
        return resolved

    def return_type(self, qn: str) -> tuple[str, Any] | None:
        return self.resolve_ref(self.return_refs.get(qn))

    def method_qn(self, clskey: str, meth: str) -> str | None:
        for ck in [clskey] + linted_mro(self.program, clskey):
            qn = f"{ck}.{meth}"
            if qn in self.program.nodes:
                return qn
        return None

    def resolve_guard(self, clskey: str, text: str) -> LockId | None:
        """``_lock`` / ``shared.lock`` relative to ``clskey`` → lock id."""
        parts = text.split(".")
        cur: tuple[str, Any] | None = ("cls", clskey)
        for i, p in enumerate(parts):
            if cur is None or cur[0] != "cls":
                return None
            t = self.attr_type(cur[1], p)
            if i == len(parts) - 1:
                if t is not None and t[0] == "lock":
                    lid: LockId = t[1]
                    return lid
                return None
            cur = t
        return None

    def guard_for(self, clskey: str, attr: str) -> GuardDecl | None:
        for ck in [clskey] + linted_mro(self.program, clskey):
            cs = self.class_scans.get(ck)
            if cs is not None and attr in cs.guards:
                return cs.guards[attr]
        return None

    # ------------------------------------ phase 3: function lexing --

    def run_functions(self) -> None:
        for qn, module, path, clskey, node in self.defs:
            if qn not in self.program.nodes:
                continue
            scanner = _FnScanner(self, qn, module, clskey,
                                 node.name == "__init__")
            for a in (list(node.args.posonlyargs) + list(node.args.args)
                      + list(node.args.kwonlyargs)):
                ref = self.param_refs.get(qn, {}).get(a.arg)
                t = self.resolve_ref(ref)
                if t is not None:
                    scanner.env[a.arg] = t
            if clskey is not None:
                scanner.env["self"] = ("cls", clskey)
            for stmt in node.body:
                scanner.visit(stmt)
            self.fn_facts[qn] = scanner.facts

    # --------------------------------------- phase 4: fixpoints --

    def fixpoints(self) -> None:
        edge_map: dict[str, list[str]] = {
            qn: sorted({c for (c, _l, _h) in facts.calls})
            for qn, facts in self.fn_facts.items()}
        for comp in tarjan_scc(list(self.fn_facts), edge_map):
            members = set(comp)
            acq: set[LockId] = set()
            blk: set[str] = set()
            for qn in comp:
                facts = self.fn_facts[qn]
                acq |= facts.acquired
                blk |= facts.block_kinds
                node = self.program.nodes.get(qn)
                if node is not None and "PHYS_IO" in node.intrinsic:
                    blk.add("io")
                for callee in edge_map.get(qn, []):
                    if callee not in members:
                        acq |= self.acquires.get(callee, frozenset())
                        blk |= self.blocks.get(callee, frozenset())
            for qn in comp:
                self.acquires[qn] = frozenset(acq)
                self.blocks[qn] = frozenset(blk)

    # -------------------------------------------- phase 5: rules --

    def _add(self, code: str, path: str, line: int, message: str,
             scope: str) -> None:
        self._findings.append(LockFinding(
            code=code, path=path, line=line, message=message,
            scope=scope))

    def _lock_name(self, lid: LockId) -> str:
        return f"{lid[0].rsplit('.', 1)[-1]}.{lid[1]}"

    def check(self) -> list[LockFinding]:
        self._check_leftover_decls()
        self._check_undeclared_fields()
        self._check_guarded_writes()
        self._check_lock_order()
        self._check_blocking()
        return sorted(self._findings,
                      key=lambda f: (f.path, f.line, f.code, f.scope))

    def _check_leftover_decls(self) -> None:
        # em-thread-root is consumed by the thread inference, which
        # matches def lines; the same criterion polices drift here.
        def_lines: set[tuple[str, int]] = {
            (node.path, node.line)
            for node in self.program.nodes.values()}
        for path, lines in sorted(self.decl_lines.items()):
            for line, tag in sorted(lines.items()):
                if (path, line) in self.consumed:
                    continue
                if (tag == "em-thread-root"
                        and (path, line) in def_lines):
                    continue
                self._add(
                    "EM016", path, line,
                    f"`# {tag}:` comment is attached to no construct "
                    "the analysis recognizes (guards go on field "
                    "assignment lines, holds/thread-root on `def` "
                    "lines, em-lock on lock-creation lines)",
                    f"{tag}@{line}")

    def _check_undeclared_fields(self) -> None:
        """EM013: monitor classes must declare their mutable fields."""
        writes_by_class: dict[str, dict[str, int]] = {}
        for qn, facts in self.fn_facts.items():
            node = self.program.nodes[qn]
            if node.cls is None:
                continue
            clskey = f"{node.module}.{node.cls}"
            for attr, line, _held, in_init in facts.writes:
                if in_init:
                    continue
                per = writes_by_class.setdefault(clskey, {})
                per[attr] = min(per.get(attr, line), line)
        for clskey in sorted(writes_by_class):
            cs = self.class_scans.get(clskey)
            if cs is None or not cs.locks:
                continue
            threads = class_threads(self.program, self.analysis, clskey)
            if len(threads) < 2:
                continue
            for attr, line in sorted(writes_by_class[clskey].items()):
                if attr in cs.locks:
                    continue
                if self.guard_for(clskey, attr) is not None:
                    continue
                anchor = cs.init_lines.get(attr, line)
                self._add(
                    "EM013", cs.path, anchor,
                    f"{cs.key.rsplit('.', 1)[-1]}.{attr} is mutated "
                    "outside __init__ in a class whose methods run on "
                    f"threads {{{', '.join(sorted(threads))}}}; "
                    "declare `# em-guarded-by: <lock-attr>` on its "
                    "assignment (or `none -- why` to opt out)",
                    f"{clskey}.{attr}")

    def _check_guarded_writes(self) -> None:
        """EM012: guarded fields are written with the guard held, and
        ``em-holds`` callees are called with the contract satisfied."""
        for qn in sorted(self.fn_facts):
            facts = self.fn_facts[qn]
            node = self.program.nodes[qn]
            own_holds = self.holds.get(qn, frozenset())
            clskey = (f"{node.module}.{node.cls}"
                      if node.cls is not None else None)
            if clskey is not None:
                for attr, line, held, in_init in facts.writes:
                    if in_init:
                        continue
                    gd = self.guard_for(clskey, attr)
                    if gd is None or gd.lid is None:
                        continue
                    if gd.lid in held or gd.lid in own_holds:
                        continue
                    self._add(
                        "EM012", node.path, line,
                        f"write to {node.cls}.{attr} (guarded by "
                        f"{self._lock_name(gd.lid)}) without the lock "
                        "held; wrap the write in `with self."
                        f"{gd.text}:` or declare `# em-holds: "
                        f"{gd.text}` on the enclosing method",
                        f"{node.local_name}:{attr}")
            for callee, line, held in facts.calls:
                req = self.holds.get(callee, frozenset())
                for lid in sorted(req):
                    if lid in held or lid in own_holds:
                        continue
                    cnode = self.program.nodes[callee]
                    self._add(
                        "EM012", node.path, line,
                        f"call to {cnode.local_name} requires "
                        f"{self._lock_name(lid)} held (its em-holds "
                        "contract) but no path here holds it",
                        f"{node.local_name}->{cnode.local_name}")

    def _lock_edges(self) -> dict[tuple[LockId, LockId],
                                  tuple[str, int, str]]:
        edges: dict[tuple[LockId, LockId], tuple[str, int, str]] = {}
        for qn in sorted(self.fn_facts):
            facts = self.fn_facts[qn]
            node = self.program.nodes[qn]
            for outer, inner, line in facts.nests:
                edges.setdefault((outer, inner),
                                 (node.path, line, node.local_name))
            for callee, line, held in facts.calls:
                for lid in held:
                    for acq in sorted(
                            self.acquires.get(callee, frozenset())):
                        if acq == lid and self.locks[lid].kind != "lock":
                            continue  # re-entrant: RLock / Condition
                        edges.setdefault(
                            (lid, acq),
                            (node.path, line, node.local_name))
        return edges

    def _check_lock_order(self) -> None:
        """EM014: the acquires-while-holding graph must be acyclic."""
        edges = self._lock_edges()
        for (a, b), (path, line, scope) in sorted(edges.items()):
            if a == b:  # non-reentrant re-acquisition: self-deadlock
                self._add(
                    "EM014", path, line,
                    f"{self._lock_name(a)} is acquired while already "
                    "held and threading.Lock is not reentrant: this "
                    "deadlocks the first time the path executes",
                    scope)
        adj: dict[str, list[str]] = {}
        names: dict[str, LockId] = {}
        for (a, b) in edges:
            if a == b:
                continue
            sa, sb = f"{a[0]}.{a[1]}", f"{b[0]}.{b[1]}"
            names[sa], names[sb] = a, b
            adj.setdefault(sa, []).append(sb)
            adj.setdefault(sb, [])
        for comp in tarjan_scc(list(adj), adj):
            if len(comp) < 2:
                continue
            cycle = sorted(comp)
            witness = None
            for (a, b), w in sorted(edges.items()):
                if (f"{a[0]}.{a[1]}" in comp
                        and f"{b[0]}.{b[1]}" in comp and a != b):
                    witness = w
                    break
            path, line, scope = witness if witness else ("", 0, "")
            pretty = " -> ".join(
                self._lock_name(names[s]) for s in cycle)
            self._add(
                "EM014", path, line,
                f"lock-order cycle {{{pretty}}}: two threads taking "
                "these locks in opposite orders deadlock; pick one "
                "global order and restructure the off-order acquisition",
                "::".join(cycle))

    def _check_blocking(self) -> None:
        """EM015: no blocking work under a strict (non-coarse) lock."""
        for qn in sorted(self.fn_facts):
            facts = self.fn_facts[qn]
            node = self.program.nodes[qn]
            for kind, line, held, exempt in facts.blockers:
                strict = [lid for lid in held
                          if not self.locks[lid].coarse and lid != exempt]
                if strict:
                    locks = ", ".join(
                        self._lock_name(lid) for lid in strict)
                    self._add(
                        "EM015", node.path, line,
                        f"blocking {kind} while holding {locks}; "
                        "move the blocking work outside the critical "
                        "section or declare the lock `# em-lock: "
                        "coarse -- why` if holding it across blocking "
                        "work is the design",
                        f"{node.local_name}:{kind}")
            for callee, line, held in facts.calls:
                kinds = self.blocks.get(callee, frozenset())
                if not kinds:
                    continue
                strict = [lid for lid in held
                          if not self.locks[lid].coarse]
                if not strict:
                    continue
                cnode = self.program.nodes[callee]
                locks = ", ".join(self._lock_name(lid) for lid in strict)
                self._add(
                    "EM015", node.path, line,
                    f"call to {cnode.local_name} may block "
                    f"({', '.join(sorted(kinds))}) while holding "
                    f"{locks}; move it outside the critical section "
                    "or declare the lock `# em-lock: coarse -- why`",
                    f"{node.local_name}->{cnode.local_name}")

    # ------------------------------------------ phase 6: document --

    def document(self) -> dict[str, object]:
        fields: dict[str, object] = {}
        guards_by_lock: dict[LockId, list[str]] = {
            lid: [] for lid in self.locks}
        for clskey in sorted(self.class_scans):
            cs = self.class_scans[clskey]
            for attr in sorted(cs.guards):
                gd = cs.guards[attr]
                fid = f"{clskey}.{attr}"
                entry: dict[str, object] = {
                    "guard": (f"{gd.lid[0]}.{gd.lid[1]}"
                              if gd.lid is not None else "none")}
                if gd.justification:
                    entry["justification"] = gd.justification
                fields[fid] = entry
                if gd.lid is not None:
                    guards_by_lock.setdefault(gd.lid, []).append(fid)
        locks_doc: dict[str, object] = {}
        for lid in sorted(self.locks):
            info = self.locks[lid]
            lentry: dict[str, object] = {
                "kind": info.kind, "coarse": info.coarse,
                "path": info.path, "line": info.line,
                "guards": sorted(guards_by_lock.get(lid, []))}
            if info.justification:
                lentry["justification"] = info.justification
            locks_doc[f"{lid[0]}.{lid[1]}"] = lentry
        edges = self._lock_edges()
        edges_doc = [
            {"from": f"{a[0]}.{a[1]}", "to": f"{b[0]}.{b[1]}",
             "witness": f"{w[0]}:{w[1]} ({w[2]})"}
            for (a, b), w in sorted(edges.items()) if a != b]
        adj: dict[str, list[str]] = {}
        for (a, b) in edges:
            if a != b:
                adj.setdefault(f"{a[0]}.{a[1]}", []).append(
                    f"{b[0]}.{b[1]}")
                adj.setdefault(f"{b[0]}.{b[1]}", [])
        cycles = [sorted(comp) for comp in tarjan_scc(list(adj), adj)
                  if len(comp) > 1]
        cycles += [[f"{a[0]}.{a[1]}"] for (a, b) in sorted(edges)
                   if a == b]
        functions: dict[str, object] = {}
        for qn in sorted(self.fn_facts):
            threads = self.analysis.threads_of(qn)
            acq = self.acquires.get(qn, frozenset())
            holds = self.holds.get(qn, frozenset())
            blocks = self.blocks.get(qn, frozenset())
            if (threads == frozenset({ROOT_MAIN}) and not acq
                    and not holds and not blocks):
                continue
            functions[qn] = {
                "threads": sorted(threads),
                "acquires": sorted(f"{c}.{a}" for c, a in acq),
                "holds": sorted(f"{c}.{a}" for c, a in holds),
                "blocks": sorted(blocks),
            }
        return {
            "schema_version": LOCKS_SCHEMA_VERSION,
            "roots": {r: list(e) for r, e in self.analysis.roots.items()},
            "locks": locks_doc,
            "fields": fields,
            "order": {"edges": edges_doc, "cycles": sorted(cycles)},
            "functions": functions,
            "summary": {
                "locks": len(self.locks),
                "guarded_fields": len(fields),
                "order_edges": len(edges_doc),
                "cycles": len(cycles),
                "thread_roots": len(self.analysis.roots),
                "functions": len(functions),
            },
        }


class _FnScanner(ast.NodeVisitor):
    """The lexical pass over one function body.

    Tracks a typed local environment and the stack of locks held via
    ``with`` at each point, recording writes, precisely-resolved
    calls, blocking sites, and lock-nesting events.  Nested ``def``s
    and lambdas keep the enclosing attribution (matching the call
    graph's folding) but reset the held stack: a closure runs when
    called, not under the locks of its definition site.
    """

    def __init__(self, ctx: _Emrace, qn: str, module: str,
                 clskey: str | None, in_init: bool) -> None:
        self.ctx = ctx
        self.qn = qn
        self.module = module
        self.clskey = clskey
        self.in_init = in_init
        self.env: dict[str, tuple[str, Any]] = {}
        self.held: list[LockId] = []
        self.facts = FnFacts(qn=qn)

    # -- environment / types ------------------------------------------

    def _expr_type(self, expr: ast.expr) -> tuple[str, Any] | None:
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(expr.value)
            if base is not None and base[0] == "cls":
                return self.ctx.attr_type(base[1], expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            base = self._expr_type(expr.value)
            if base is not None and base[0] in ("dict", "list"):
                inner: tuple[str, Any] | None = base[1]
                return inner
            return None
        if isinstance(expr, ast.Call):
            f = expr.func
            if isinstance(f, ast.Attribute) and f.attr in ("get", "pop"):
                recv = self._expr_type(f.value)
                if recv is not None and recv[0] == "dict":
                    value_t: tuple[str, Any] | None = recv[1]
                    return value_t
            ck = self._ctor_class(f)
            if ck is not None:
                return ("cls", ck)
            callee = self._callee(f)
            if callee is not None:
                return self.ctx.return_type(callee)
            return None
        if isinstance(expr, ast.IfExp):
            t = self._expr_type(expr.body)
            return t if t is not None else self._expr_type(expr.orelse)
        if isinstance(expr, ast.Await):
            return self._expr_type(expr.value)
        return None

    def _ctor_class(self, func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            return self.ctx._class_for(self.module, func.id)
        dotted = rules.dotted_name(func)
        if dotted is not None and not dotted.startswith("self."):
            return self.ctx._class_for(self.module, dotted)
        return None

    def _callee(self, func: ast.expr) -> str | None:
        program = self.ctx.program
        if isinstance(func, ast.Name):
            qn = program.module_funcs.get((self.module, func.id))
            if qn is not None:
                return qn
            ck = self.ctx._class_for(self.module, func.id)
            if ck is not None:
                init = f"{ck}.__init__"
                return init if init in program.nodes else None
            return None
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Call)
                    and isinstance(func.value.func, ast.Name)
                    and func.value.func.id == "super"):
                return None
            recv = self._expr_type(func.value)
            if recv is not None and recv[0] == "cls":
                return self.ctx.method_qn(recv[1], func.attr)
            ck = self._ctor_class(func)
            if ck is not None:
                init = f"{ck}.__init__"
                return init if init in program.nodes else None
            dotted = rules.dotted_name(func)
            if dotted is not None and "." in dotted:
                parts = dotted.split(".")
                t = program.imports.get(self.module, {}).get(parts[0])
                if t is not None:
                    full = _canonical(
                        program, ".".join([t] + parts[1:]))
                    if full in program.nodes:
                        return full
            return None
        return None

    # -- nested definitions: keep attribution, reset held stack -------

    def _nested(self, node: ast.AST) -> None:
        saved, self.held = self.held, []
        try:
            self.generic_visit(node)
        finally:
            self.held = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._nested(node)

    # -- lock acquisition ---------------------------------------------

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: list[LockId] = []
        for item in node.items:
            self.visit(item.context_expr)
            t = self._expr_type(item.context_expr)
            if t is not None and t[0] == "lock":
                lid: LockId = t[1]
                for outer in self.held:
                    if outer != lid or self.ctx.locks[lid].kind == "lock":
                        self.facts.nests.append(
                            (outer, lid, node.lineno))
                self.facts.acquired.add(lid)
                self.held.append(lid)
                acquired.append(lid)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    # -- writes --------------------------------------------------------

    def _record_write(self, attr: str, line: int) -> None:
        if self.clskey is None:
            return
        self.facts.writes.append(
            (attr, line, tuple(self.held), self.in_init))

    def _write_target(self, tgt: ast.expr, line: int) -> None:
        if isinstance(tgt, (ast.Tuple, ast.List)):
            for elt in tgt.elts:
                self._write_target(elt, line)
            return
        if isinstance(tgt, ast.Starred):
            self._write_target(tgt.value, line)
            return
        attr = _self_attr(tgt)
        if attr is not None:
            self._record_write(attr, line)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for tgt in node.targets:
            self.visit(tgt)
            self._write_target(tgt, node.lineno)
        if len(node.targets) == 1 and isinstance(node.targets[0],
                                                 ast.Name):
            t = self._expr_type(node.value)
            if t is not None:
                self.env[node.targets[0].id] = t
            else:
                self.env.pop(node.targets[0].id, None)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        self.visit(node.target)
        self._write_target(node.target, node.lineno)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
            self._write_target(node.target, node.lineno)
        if isinstance(node.target, ast.Name):
            t = self.ctx.resolve_ref(
                _ann_ref(node.annotation, self.module))
            if t is not None:
                self.env[node.target.id] = t

    def visit_Delete(self, node: ast.Delete) -> None:
        for tgt in node.targets:
            self.visit(tgt)
            self._write_target(tgt, node.lineno)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        elem: tuple[str, Any] | None = None
        it = node.iter
        if (isinstance(it, ast.Call)
                and isinstance(it.func, ast.Attribute)):
            recv = self._expr_type(it.func.value)
            if recv is not None and recv[0] == "dict":
                if it.func.attr == "values":
                    elem = recv[1]
                elif (it.func.attr == "items"
                      and isinstance(node.target, ast.Tuple)
                      and len(node.target.elts) == 2
                      and isinstance(node.target.elts[1], ast.Name)
                      and recv[1] is not None):
                    self.env[node.target.elts[1].id] = recv[1]
        else:
            t = self._expr_type(it)
            if t is not None and t[0] == "list":
                elem = t[1]
        if elem is not None and isinstance(node.target, ast.Name):
            self.env[node.target.id] = elem
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    # -- calls ---------------------------------------------------------

    def _blocking(self, func: ast.expr) -> tuple[str | None,
                                                 LockId | None]:
        if isinstance(func, ast.Name):
            return ("io", None) if func.id == "open" else (None, None)
        if not isinstance(func, ast.Attribute):
            return None, None
        attr = func.attr
        if attr == "wait":
            recv = self._expr_type(func.value)
            if (recv is not None and recv[0] == "lock"
                    and self.ctx.locks[recv[1]].kind == "condition"):
                lid: LockId = recv[1]
                return "wait", lid
            return None, None
        if attr in CHARGE_METHODS:
            return "charge", None
        if attr == "serve_forever":
            return "serve", None
        if attr in rules.RAW_IO_METHODS or attr in BLOCKING_SOCKET:
            return "io", None
        if attr == "sleep":
            dotted = rules.dotted_name(func)
            if dotted is not None:
                base = dotted.split(".")[0]
                imp = self.ctx.program.imports.get(self.module, {})
                if imp.get(base) == "time":
                    return "sleep", None
        return None, None

    def visit_Call(self, node: ast.Call) -> None:
        held = tuple(self.held)
        kind, exempt = self._blocking(node.func)
        if kind is not None:
            self.facts.blockers.append(
                (kind, node.lineno, held, exempt))
            self.facts.block_kinds.add(kind)
        callee = self._callee(node.func)
        if callee is not None:
            self.facts.calls.append((callee, node.lineno, held))
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr in MUTATORS
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"):
            self._record_write(func.value.attr, node.lineno)
        self.generic_visit(node)


# ------------------------------------------------------- public API --


def evaluate_locks(
        program: Program,
        modules: Iterable[tuple[str, str, ast.AST,
                                tuple[str, ...] | None]],
        analysis: ThreadAnalysis,
) -> tuple[list[LockFinding], dict[str, object]]:
    """Run the emrace pass: findings plus the lock-graph document."""
    emrace = _Emrace(program, analysis)
    for path, source, tree, pkg_parts in modules:
        emrace.scan_module(path, source, tree, pkg_parts)
    emrace.resolve()
    emrace.run_functions()
    emrace.fixpoints()
    findings = emrace.check()
    return findings, emrace.document()


def compact_lock_signatures(doc: dict[str, Any]) -> dict[str, Any]:
    """Strip a lock-graph document to the drift-gate essentials.

    The committed ``locks-baseline.json`` pins the lock inventory
    (kind, coarseness, guarded fields), the field→guard map, the
    lock-order edges, and the thread-root names — the concurrency
    contract.  Paths, lines and per-function tables churn with every
    refactor and are dropped.
    """
    locks = doc.get("locks", {})
    return {
        "schema_version": doc["schema_version"],
        "roots": sorted(doc.get("roots", {})),
        "locks": {
            lid: {"kind": e["kind"], "coarse": e["coarse"],
                  "guards": list(e["guards"])}
            for lid, e in locks.items()},
        "fields": {fid: e["guard"]
                   for fid, e in doc.get("fields", {}).items()},
        "edges": [f"{e['from']} -> {e['to']}"
                  for e in doc.get("order", {}).get("edges", [])],
    }


def compare_lock_signatures(
        committed: dict[str, Any],
        doc: dict[str, Any]) -> tuple[list[str], list[str]]:
    """Diff a committed locks baseline against a fresh document.

    Returns ``(failures, notices)``.  Failures are the changes the
    gate exists to catch: an existing field's guard moved, an
    existing lock changed kind or coarseness, a *new* edge appeared
    in the lock-order graph, or the graph has cycles.  Additions,
    removals, and root-set changes are notices — visible in the log
    and re-pinned by regenerating the baseline.
    """
    current = compact_lock_signatures(doc)
    failures: list[str] = []
    notices: list[str] = []
    if committed.get("schema_version") != current["schema_version"]:
        notices.append(
            f"schema version moved "
            f"{committed.get('schema_version')!r} -> "
            f"{current['schema_version']!r}; regenerate the baseline")
    for cyc in doc.get("order", {}).get("cycles", []):
        failures.append(
            f"lock-order cycle {{{' -> '.join(cyc)}}}: the graph "
            "must stay acyclic")
    old_locks = committed.get("locks", {})
    new_locks = current["locks"]
    for lid in sorted(old_locks.keys() - new_locks.keys()):
        notices.append(f"lock {lid}: removed")
    for lid in sorted(new_locks.keys() - old_locks.keys()):
        notices.append(f"lock {lid}: added ({new_locks[lid]['kind']})")
    for lid in sorted(old_locks.keys() & new_locks.keys()):
        was, now = old_locks[lid], new_locks[lid]
        if (was.get("kind") != now["kind"]
                or was.get("coarse") != now["coarse"]):
            failures.append(
                f"lock {lid}: kind/coarse changed "
                f"{was.get('kind')}/{was.get('coarse')} -> "
                f"{now['kind']}/{now['coarse']} — a strictness change "
                "is a concurrency-contract change; update the "
                "annotation story and regenerate locks-baseline.json")
        elif sorted(was.get("guards", [])) != sorted(now["guards"]):
            notices.append(f"lock {lid}: guarded fields changed "
                           f"{was.get('guards', [])} -> "
                           f"{now['guards']}")
    old_fields = committed.get("fields", {})
    new_fields = current["fields"]
    for fid in sorted(old_fields.keys() - new_fields.keys()):
        notices.append(f"field {fid}: declaration removed")
    for fid in sorted(new_fields.keys() - old_fields.keys()):
        notices.append(
            f"field {fid}: declared guarded by {new_fields[fid]}")
    for fid in sorted(old_fields.keys() & new_fields.keys()):
        if old_fields[fid] != new_fields[fid]:
            failures.append(
                f"field {fid}: guard moved {old_fields[fid]} -> "
                f"{new_fields[fid]} without a baseline regeneration")
    old_edges = set(committed.get("edges", []))
    new_edges = set(current["edges"])
    for e in sorted(old_edges - new_edges):
        notices.append(f"order edge removed: {e}")
    for e in sorted(new_edges - old_edges):
        failures.append(
            f"new lock-order edge {e}: a new acquires-while-holding "
            "pair extends the global lock order; confirm it keeps "
            "the graph acyclic and regenerate locks-baseline.json")
    if sorted(committed.get("roots", [])) != current["roots"]:
        notices.append(
            f"thread roots changed {sorted(committed.get('roots', []))}"
            f" -> {current['roots']}")
    return failures, notices
