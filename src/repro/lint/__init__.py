"""``emlint`` — the EM-model discipline checker.

Every number this reproduction reports (Table 1 rows, fitted
constants, the pinned ``BENCH_table1.json`` baseline) is only
meaningful if all data movement in the algorithm layer flows through
the charged :class:`~repro.em.device.Device` / EMFile API and all
in-memory state is policed by the
:class:`~repro.em.stats.MemoryGauge`.  This package enforces that
contract mechanically: a self-contained AST pass (stdlib only) with a
rule registry, per-rule codes, ``# emlint: disable=EM0xx`` pragma
support, a committed suppression baseline, JSON and human reporters,
and a ``repro lint`` CLI subcommand that exits non-zero on
violations.

Rules (see :data:`~repro.lint.registry.RULES` for the full text):

=======  ============================================================
EM001    no raw OS I/O outside ``em/`` and ``data/io.py``
EM002    no unbounded materialization of EM scans in ``core/``,
         ``query/``, or ``analysis/`` outside a
         ``MemoryGauge``-charged region
EM003    layering: ``em`` ↛ ``core``/``query``, ``core`` ↛
         ``internal``, ``obs`` ↛ ``core``
EM004    no wall-clock or randomness in counted paths (``core/``,
         ``em/``)
EM005    ``suspend()`` / ``span()`` / ``phase()`` must be ``with``
         statements, never discarded bare calls
EM006    ``core/`` modules passing phase-name literals must declare
         them in a module-level ``PHASES`` tuple
EM007    no *transitive* raw OS I/O through any call chain
         (interprocedural EM001)
EM008    no ``peek_tuples()`` reachable from ``core/`` algorithm
         code
EM009    ``obs/`` record paths must be effect-free on device
         counters
EM010    no wall-clock/randomness *reachable* from a counted path
         (interprocedural EM004)
EM011    ``# em-effects:`` declarations must name real effects,
         match the inferred reality, and never be called from
         counted paths when ``HOST_ONLY``
EM012    writes to ``# em-guarded-by:`` fields must hold the guard
EM013    multi-threaded monitor classes must declare every shared
         field they mutate
EM014    the global lock-order graph must stay acyclic
EM015    no blocking work (waits, charges, raw I/O, sleeps) while
         holding a strict (non-``coarse``) lock
EM016    lock/guard/holds declarations must name real locks and
         attach to real constructs
EM017    algorithm entry points with charge-reachable I/O must
         carry an ``# em-cost:`` declaration
EM018    the derived symbolic I/O cost must not exceed the
         declared bound (catches accidental quadratic rescans)
EM019    data-dependent loops performing charged I/O need an
         ``# em-loop-bound:`` annotation
EM020    cost declarations must parse, match the derived reality,
         and justify trusted ``amortized`` summaries
EM021    every Device charge site must be reachable from a
         cost-declared function
=======  ============================================================

EM007–EM011 run on a second, whole-program pass
(:mod:`repro.lint.callgraph` + :mod:`repro.lint.effects`) that
builds a project-wide call graph and infers per-function effect
signatures by fixpoint over SCCs; ``repro lint --effects`` dumps
the full signature table as versioned JSON.  EM012–EM016 are the
third pass, *emrace* (:mod:`repro.lint.threads` +
:mod:`repro.lint.locks`): thread roots are inferred and propagated
over the same call graph, lock facts flow through a precise typed
resolution, and ``repro lint --locks`` dumps the lock-graph
document the ``--check-locks`` drift gate pins.  EM017–EM021 are
the fourth pass, *emcost* (:mod:`repro.lint.symbolic` +
:mod:`repro.lint.costs`): every charge site is mapped through loop
nests and call chains to a per-function symbolic I/O bound in the
paper's own vocabulary (``N``, ``M``, ``B``, ``OUT``, ``log``),
checked against ``# em-cost:`` declarations on the algorithm entry
points; ``repro lint --costs`` dumps the table the
``--check-costs`` drift gate pins (and the future planner
consumes).
"""

from repro.lint.baseline import (Baseline, BaselineEntry, load_baseline,
                                 write_baseline)
from repro.lint.callgraph import (EFFECT_NAMES, UNKNOWN, FunctionNode,
                                  Program, build_program)
from repro.lint.costs import (COSTS_SCHEMA_VERSION, CostFinding,
                              compact_cost_signatures,
                              compare_cost_signatures, evaluate_costs)
from repro.lint.effects import (EFFECTS_SCHEMA_VERSION, EffectFinding,
                                compact_effect_signatures,
                                compare_effect_signatures, evaluate,
                                signature_table)
from repro.lint.locks import (LOCKS_SCHEMA_VERSION, LockFinding,
                              compact_lock_signatures,
                              compare_lock_signatures, evaluate_locks)
from repro.lint.registry import RULES, Rule
from repro.lint.symbolic import (Cost, CostSyntaxError, Term,
                                 evaluate_cost, parse_cost)
from repro.lint.threads import ThreadAnalysis, infer_threads
from repro.lint.report import REPORT_SCHEMA_VERSION, to_human, to_json
from repro.lint.visitor import (LintResult, Violation, check_source,
                                lint_paths)

__all__ = [
    "RULES", "Rule",
    "Violation", "LintResult", "check_source", "lint_paths",
    "Baseline", "BaselineEntry", "load_baseline", "write_baseline",
    "to_human", "to_json", "REPORT_SCHEMA_VERSION",
    "EFFECT_NAMES", "UNKNOWN", "FunctionNode", "Program",
    "build_program", "EffectFinding", "evaluate", "signature_table",
    "compact_effect_signatures", "compare_effect_signatures",
    "EFFECTS_SCHEMA_VERSION",
    "ThreadAnalysis", "infer_threads", "LockFinding", "evaluate_locks",
    "compact_lock_signatures", "compare_lock_signatures",
    "LOCKS_SCHEMA_VERSION",
    "Cost", "Term", "parse_cost", "evaluate_cost", "CostSyntaxError",
    "CostFinding", "evaluate_costs", "compact_cost_signatures",
    "compare_cost_signatures", "COSTS_SCHEMA_VERSION",
]
