"""``emlint`` — the EM-model discipline checker.

Every number this reproduction reports (Table 1 rows, fitted
constants, the pinned ``BENCH_table1.json`` baseline) is only
meaningful if all data movement in the algorithm layer flows through
the charged :class:`~repro.em.device.Device` / EMFile API and all
in-memory state is policed by the
:class:`~repro.em.stats.MemoryGauge`.  This package enforces that
contract mechanically: a self-contained AST pass (stdlib only) with a
rule registry, per-rule codes, ``# emlint: disable=EM0xx`` pragma
support, a committed suppression baseline, JSON and human reporters,
and a ``repro lint`` CLI subcommand that exits non-zero on
violations.

Rules (see :data:`~repro.lint.registry.RULES` for the full text):

=======  ============================================================
EM001    no raw OS I/O outside ``em/`` and ``data/io.py``
EM002    no unbounded materialization of EM scans in ``core/``
         outside a ``MemoryGauge``-charged region
EM003    layering: ``em`` ↛ ``core``/``query``, ``core`` ↛
         ``internal``, ``obs`` ↛ ``core``
EM004    no wall-clock or randomness in counted paths (``core/``,
         ``em/``)
EM005    ``suspend()`` / ``span()`` / ``phase()`` must be ``with``
         statements, never discarded bare calls
EM006    ``core/`` modules passing phase-name literals must declare
         them in a module-level ``PHASES`` tuple
=======  ============================================================
"""

from repro.lint.baseline import (Baseline, BaselineEntry, load_baseline,
                                 write_baseline)
from repro.lint.registry import RULES, Rule
from repro.lint.report import REPORT_SCHEMA_VERSION, to_human, to_json
from repro.lint.visitor import (LintResult, Violation, check_source,
                                lint_paths)

__all__ = [
    "RULES", "Rule",
    "Violation", "LintResult", "check_source", "lint_paths",
    "Baseline", "BaselineEntry", "load_baseline", "write_baseline",
    "to_human", "to_json", "REPORT_SCHEMA_VERSION",
]
