"""The rule registry: one entry per ``EM0xx`` code.

Rules are data, not classes: the actual detection logic lives in one
shared AST pass (:mod:`repro.lint.visitor`) because most rules need
the same facts (imports, call sites, the ``with``-statement stack).
The registry ties each code to its human description and rationale so
reporters, docs, and ``repro lint --list-rules`` never drift from the
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One lint rule: its code, scope, and the model fact it protects."""

    code: str
    name: str
    summary: str
    #: Which layers (top-level directories under ``repro/``) the rule
    #: examines; empty means every linted file.
    layers: tuple[str, ...]
    #: Why violating the rule invalidates the I/O model.
    rationale: str


RULES: dict[str, Rule] = {}


def _register(rule: Rule) -> Rule:
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return rule


_register(Rule(
    code="EM000",
    name="parse-error",
    summary="file could not be parsed as Python",
    layers=(),
    rationale="A file the checker cannot parse is a file whose I/O "
              "discipline cannot be verified.",
))

_register(Rule(
    code="EM001",
    name="raw-os-io",
    summary="raw OS I/O (open, os.read/write, pathlib, shutil) outside "
            "em/ and data/io.py",
    layers=(),
    rationale="Any byte that moves without passing through the charged "
              "Device/EMFile API is invisible to IOStats, so the "
              "reported block-transfer counts no longer measure the "
              "algorithm the paper reasons about.  Host-side report "
              "writing is allowed via an explicit pragma.",
))

_register(Rule(
    code="EM002",
    name="unbounded-materialization",
    summary="list/sorted/set/dict/tuple over an EM scan in core/, "
            "query/, or analysis/ outside a MemoryGauge-charged "
            "region",
    layers=("core", "query", "analysis"),
    rationale="Materializing a scan pulls a disk-resident file into "
              "memory without charging the MemoryGauge, so the "
              "paper's M-bounded memory budget is silently violated "
              "while the peak-memory reports claim otherwise.",
))

_register(Rule(
    code="EM003",
    name="layering",
    summary="em/ must not import core/ or query/; core/ must not "
            "import internal/; obs/ must not import core/",
    layers=("em", "core", "obs"),
    rationale="em/ is the machine (algorithms sit above it); "
              "internal/ holds uncharged in-memory baselines whose "
              "use inside core/ would bypass the accounting; obs/ is "
              "passive observation and must never drive the "
              "algorithms it watches.",
))

_register(Rule(
    code="EM004",
    name="nondeterminism",
    summary="wall-clock or randomness (time, random, datetime) in "
            "counted paths (core/, em/)",
    layers=("core", "em"),
    rationale="The pinned baseline gate asserts byte-identical I/O "
              "counters across runs; any time- or randomness-derived "
              "control flow in a counted path makes the counters "
              "nondeterministic and the gate meaningless.",
))

_register(Rule(
    code="EM005",
    name="bare-context-call",
    summary="suspend()/span()/phase() called as a bare statement "
            "instead of a with statement",
    layers=(),
    rationale="These return context managers whose __exit__ "
              "reconciles counter state (resume counting, close the "
              "span, attribute the phase).  A discarded bare call "
              "leaks that state: counting stays on, spans never "
              "close, phase I/O is attributed to the wrong label.",
))

_register(Rule(
    code="EM006",
    name="undeclared-phase",
    summary="core/ module passes a phase-name literal not declared "
            "in its module-level PHASES tuple",
    layers=("core",),
    rationale="Phase names are the join key between the per-phase "
              "I/O report and the pinned baseline.  Declaring them "
              "in one greppable PHASES constant per module keeps the "
              "set auditable and catches typos that would silently "
              "split a phase's attribution.",
))

_register(Rule(
    code="EM007",
    name="transitive-raw-io",
    summary="a counted-layer function reaches open/os.* through its "
            "call chain (interprocedural EM001)",
    layers=(),
    rationale="A helper that wraps open() two calls deep launders "
              "raw OS I/O past the intraprocedural EM001: the bytes "
              "still move without being charged to the Device.  The "
              "effect fixpoint makes the ban transitive, so the only "
              "sanctioned escape is an explicit `# em-effects: "
              "HOST_ONLY` declaration on the host-side entry point.",
))

_register(Rule(
    code="EM008",
    name="peek-from-core",
    summary="peek_tuples() reachable from core/ algorithm code",
    layers=("core",),
    rationale="peek_tuples() reads tuples without charging a single "
              "block transfer — it exists for free metadata (run "
              "formation in em/sort.py, test oracles).  An algorithm "
              "that reaches it gets input bytes for free and its "
              "measured I/O no longer bounds the paper's cost.  "
              "Sanctioned uses carry `# em-effects: FREE_PEEK -- "
              "why` as a permanent audit record.",
))

_register(Rule(
    code="EM009",
    name="observer-purity",
    summary="obs/ record paths must be effect-free on device "
            "counters (no PHYS_IO / MATERIALIZES)",
    layers=("obs",),
    rationale="The tracer/profiler promise byte-identical counters "
              "when enabled (baseline-checked).  An observer that "
              "transitively opens files or materializes scans would "
              "perturb the very counts it reports; host-side export "
              "writers are declared HOST_ONLY, which also bars them "
              "from counted paths (EM011).",
))

_register(Rule(
    code="EM010",
    name="transitive-nondeterminism",
    summary="wall-clock or randomness reachable from a counted path "
            "(interprocedural EM004)",
    layers=("core", "em"),
    rationale="EM004 catches `import time` in core/ and em/, but a "
              "helper in an unpoliced layer can smuggle the same "
              "nondeterminism in through a call.  The byte-identical "
              "baseline gate needs the whole call graph under a "
              "counted path to be deterministic, not just its top "
              "frame.",
))

_register(Rule(
    code="EM011",
    name="effect-declaration",
    summary="em-effects declaration errors: unknown effect names, "
            "drifted declarations, counted paths calling HOST_ONLY "
            "functions",
    layers=(),
    rationale="Declarations are audit records, so they must stay "
              "true: a declared effect the fixpoint no longer infers "
              "is documentation rot, and a core/ or em/ function "
              "calling into HOST_ONLY reporting would put uncounted "
              "host work under the algorithms the paper measures.",
))

_register(Rule(
    code="EM012",
    name="unguarded-write",
    summary="write to an em-guarded-by field without the guard lock "
            "held, or a call into an em-holds method without its "
            "required lock",
    layers=(),
    rationale="A guarded field is shared across thread roots; one "
              "unguarded mutation is a data race that can corrupt "
              "IOStats counters or pool metadata and silently break "
              "the byte-identical baseline guarantees the service "
              "layer pins in CI.",
))

_register(Rule(
    code="EM013",
    name="undeclared-shared-field",
    summary="a monitor class mutates a field outside __init__ with "
            "no em-guarded-by declaration",
    layers=(),
    rationale="Classes owning a lock and reachable from multiple "
              "thread roots hold shared state by construction; every "
              "mutable field must carry an explicit guard (or a "
              "justified `none` escape) so the race analysis — and "
              "the next reader — knows the synchronization story.",
))

_register(Rule(
    code="EM014",
    name="lock-order-cycle",
    summary="cycle in the acquires-while-holding lock-order graph, "
            "or re-acquisition of a non-reentrant Lock",
    layers=(),
    rationale="Two threads taking the same pair of locks in opposite "
              "orders deadlock under load — precisely the regime the "
              "admission controller and shared pool exist for.  The "
              "lock-order graph must stay acyclic, checked statically "
              "and pinned in locks-baseline.json.",
))

_register(Rule(
    code="EM015",
    name="blocking-under-lock",
    summary="blocking work (Condition.wait, device charges, "
            "file/socket I/O, sleeps) reachable while holding a "
            "strict lock",
    layers=(),
    rationale="Holding a lock across blocking work serializes every "
              "thread behind one waiter's I/O or wait, collapsing "
              "service throughput.  Locks designed to be held across "
              "blocking work (per-session serialization, charge "
              "routing) declare `# em-lock: coarse -- why`.",
))

_register(Rule(
    code="EM016",
    name="lock-declaration-drift",
    summary="emrace annotation errors: guards naming nonexistent "
            "lock attributes, unjustified `none` escapes, unknown "
            "em-lock flags, orphaned annotation comments",
    layers=(),
    rationale="The guarded-by/holds annotations are the concurrency "
              "contract's audit trail; a declaration naming a lock "
              "that no longer exists is documentation rot that makes "
              "every other emrace guarantee unverifiable.",
))

_register(Rule(
    code="EM017",
    name="undeclared-cost-root",
    summary="algorithm entry point with charge-reachable I/O but no "
            "`# em-cost:` declaration",
    layers=("core", "em"),
    rationale="The per-function symbolic cost table is the static "
              "half of the Table-1 contract (the fitted slope gate "
              "is the dynamic half); an entry point without a "
              "declared bound contributes I/O the table cannot "
              "certify.",
))

_register(Rule(
    code="EM018",
    name="cost-bound-exceeded",
    summary="derived symbolic I/O cost asymptotically exceeds the "
            "declared `# em-cost:` bound",
    layers=(),
    rationale="An accidental nested rescan turns O(N/B) into "
              "O(N²/B) without changing a single test result at "
              "small sizes; comparing the derived bound against the "
              "declared one catches the quadratic blow-up at lint "
              "time instead of after a full benchmark sweep.",
))

_register(Rule(
    code="EM019",
    name="unbounded-costly-loop",
    summary="data-dependent loop (or recursive cycle) performing "
            "charged I/O with no `# em-loop-bound:` annotation",
    layers=("core", "em"),
    rationale="A loop the analysis cannot bound defaults to N "
              "iterations, which poisons every enclosing bound; the "
              "annotation both fixes the trip count and records the "
              "amortization argument the paper's proofs rely on.",
))

_register(Rule(
    code="EM020",
    name="cost-declaration-drift",
    summary="emcost annotation errors: unparseable expressions, "
            "stale over-declared bounds, trusted `amortized` "
            "summaries without a justification, orphaned "
            "annotations",
    layers=(),
    rationale="Cost declarations feed the planner's cost model and "
              "the drift gate; a declaration that no longer matches "
              "the derived reality is worse than none because it "
              "certifies a bound nobody checked.",
))

_register(Rule(
    code="EM021",
    name="unattributed-charge-site",
    summary="Device charge site not reachable from any "
            "cost-declared function",
    layers=(),
    rationale="I/O that no declared root reaches is invisible to "
              "the symbolic cost table: the block transfers happen "
              "and are counted dynamically, but no static bound "
              "accounts for them, so the certified expressions "
              "silently under-approximate.",
))
