"""The rule registry: one entry per ``EM0xx`` code.

Rules are data, not classes: the actual detection logic lives in one
shared AST pass (:mod:`repro.lint.visitor`) because most rules need
the same facts (imports, call sites, the ``with``-statement stack).
The registry ties each code to its human description and rationale so
reporters, docs, and ``repro lint --list-rules`` never drift from the
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One lint rule: its code, scope, and the model fact it protects."""

    code: str
    name: str
    summary: str
    #: Which layers (top-level directories under ``repro/``) the rule
    #: examines; empty means every linted file.
    layers: tuple[str, ...]
    #: Why violating the rule invalidates the I/O model.
    rationale: str


RULES: dict[str, Rule] = {}


def _register(rule: Rule) -> Rule:
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return rule


_register(Rule(
    code="EM000",
    name="parse-error",
    summary="file could not be parsed as Python",
    layers=(),
    rationale="A file the checker cannot parse is a file whose I/O "
              "discipline cannot be verified.",
))

_register(Rule(
    code="EM001",
    name="raw-os-io",
    summary="raw OS I/O (open, os.read/write, pathlib, shutil) outside "
            "em/ and data/io.py",
    layers=(),
    rationale="Any byte that moves without passing through the charged "
              "Device/EMFile API is invisible to IOStats, so the "
              "reported block-transfer counts no longer measure the "
              "algorithm the paper reasons about.  Host-side report "
              "writing is allowed via an explicit pragma.",
))

_register(Rule(
    code="EM002",
    name="unbounded-materialization",
    summary="list/sorted/set/dict/tuple over an EM scan in core/ "
            "outside a MemoryGauge-charged region",
    layers=("core",),
    rationale="Materializing a scan pulls a disk-resident file into "
              "memory without charging the MemoryGauge, so the "
              "paper's M-bounded memory budget is silently violated "
              "while the peak-memory reports claim otherwise.",
))

_register(Rule(
    code="EM003",
    name="layering",
    summary="em/ must not import core/ or query/; core/ must not "
            "import internal/; obs/ must not import core/",
    layers=("em", "core", "obs"),
    rationale="em/ is the machine (algorithms sit above it); "
              "internal/ holds uncharged in-memory baselines whose "
              "use inside core/ would bypass the accounting; obs/ is "
              "passive observation and must never drive the "
              "algorithms it watches.",
))

_register(Rule(
    code="EM004",
    name="nondeterminism",
    summary="wall-clock or randomness (time, random, datetime) in "
            "counted paths (core/, em/)",
    layers=("core", "em"),
    rationale="The pinned baseline gate asserts byte-identical I/O "
              "counters across runs; any time- or randomness-derived "
              "control flow in a counted path makes the counters "
              "nondeterministic and the gate meaningless.",
))

_register(Rule(
    code="EM005",
    name="bare-context-call",
    summary="suspend()/span()/phase() called as a bare statement "
            "instead of a with statement",
    layers=(),
    rationale="These return context managers whose __exit__ "
              "reconciles counter state (resume counting, close the "
              "span, attribute the phase).  A discarded bare call "
              "leaks that state: counting stays on, spans never "
              "close, phase I/O is attributed to the wrong label.",
))

_register(Rule(
    code="EM006",
    name="undeclared-phase",
    summary="core/ module passes a phase-name literal not declared "
            "in its module-level PHASES tuple",
    layers=("core",),
    rationale="Phase names are the join key between the per-phase "
              "I/O report and the pinned baseline.  Declaring them "
              "in one greppable PHASES constant per module keeps the "
              "set auditable and catches typos that would silently "
              "split a phase's attribution.",
))
