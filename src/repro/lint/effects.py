"""Interprocedural effect inference: the ``emflow`` pass.

Given the linked :class:`~repro.lint.callgraph.Program`, this module
infers a per-function *effect signature* — which of

========= =========================================================
PHYS_IO   touches the real filesystem (``open``, ``os.read``, …)
MATERIAL… ``MATERIALIZES``: pulls an EM scan into memory outside a
          ``MemoryGauge``-charged region
NONDET    draws on wall-clock or randomness (``time``, ``random``,
          ``datetime``)
FREE_PEEK reads tuples via ``peek_tuples()``, the uncharged
          metadata escape hatch
HOST_ONLY declared-only: host-side reporting; never on a counted
          path (also acts as a propagation barrier)
UNKNOWN   inferred-only lattice top: contains a call the resolver
          could not prove anything about
========= =========================================================

a function *transitively* has, by propagating intrinsic effects up
the call graph.  Propagation is a single monotone sweep over the
SCCs in reverse topological order (callees first); inside an SCC the
members share one effect set, which is exactly the fixpoint of the
recursive system — so recursion converges in one pass, no iteration
needed.

Declarations (``# em-effects: EFFECT, … -- justification`` on the
``def`` line) *absorb*: a declared effect is suppressed at the
declaring function and not propagated to callers — the declaration
is the audit record.  ``HOST_ONLY`` is a full barrier: nothing
propagates out of a host-only function, and the effect rules skip
it, but EM011 polices counted-layer callers so host-only code cannot
leak back under the algorithms.  The ``lint/`` layer itself is a
baked-in barrier (the checker reads the sources it checks).
Declarations that stop matching the inferred reality ("drift") fail
the build via EM011, same as a stale baseline entry.

The rules built on the signatures:

* **EM007** — transitive raw I/O: an EM001-policed function
  *inherits* PHYS_IO through its call chain (intrinsic raw I/O is
  EM001's job; this closes the helper-laundering hole).
* **EM008** — ``peek_tuples()`` reachable from ``core/`` algorithm
  code (peeking is free metadata, sanctioned only where declared).
* **EM009** — observer purity: ``obs/`` record paths must be
  effect-free on device counters (no PHYS_IO / MATERIALIZES).
* **EM010** — transitive nondeterminism: NONDET inherited on a
  counted path (intrinsic imports are EM004's job).
* **EM011** — declaration discipline: unknown effect names, drifted
  declarations, and counted-layer calls into HOST_ONLY functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.lint import rules
from repro.lint.callgraph import (EFFECT_NAMES, UNKNOWN, FunctionNode,
                                  Program, strongly_connected)

#: Version of the ``--effects`` signature-table JSON document.
EFFECTS_SCHEMA_VERSION = 1

#: Effects an ``obs/`` function must not have (EM009): anything that
#: moves counted bytes or memory.
OBSERVER_FORBIDDEN = frozenset({"PHYS_IO", "MATERIALIZES"})

#: Layers EM008 (peek from algorithm code) polices.
EM008_LAYERS = frozenset({"core"})

#: Layers EM010 (transitive nondeterminism) polices — same counted
#: paths as the intraprocedural EM004.
EM010_LAYERS = rules.EM004_LAYERS


@dataclass(frozen=True)
class EffectFinding:
    """One interprocedural finding, later wrapped as a Violation."""

    code: str
    path: str
    line: int
    message: str
    scope: str


def _is_barrier(fn: FunctionNode) -> bool:
    """Does nothing propagate out of this function?"""
    return "HOST_ONLY" in fn.declared or fn.layer == "lint"


def _contribution(fn: FunctionNode) -> set[str]:
    """What a call to ``fn`` contributes to the caller's signature."""
    if _is_barrier(fn):
        return set()
    return fn.total - fn.declared


def propagate(program: Program) -> None:
    """Fill :attr:`FunctionNode.inherited` for every node.

    One sweep over the SCC condensation in reverse topological order;
    within an SCC all members share the union of external
    contributions plus the SCC's own intrinsic effects (minus each
    member's declared absorptions) — the least fixpoint of the
    mutually recursive system.
    """
    for comp in strongly_connected(program):
        members = set(comp)
        cyclic = len(comp) > 1 or any(
            qn in program.nodes[qn].edges for qn in comp)
        external: set[str] = set()
        internal: set[str] = set()
        for qn in comp:
            fn = program.nodes[qn]
            internal |= fn.intrinsic - fn.declared
            for callee in fn.edges:
                if callee not in members and callee in program.nodes:
                    external |= _contribution(program.nodes[callee])
        for qn in comp:
            fn = program.nodes[qn]
            fn.inherited = set(external)
            if cyclic:
                # Recursion: every member sees the whole cycle's
                # (non-absorbed) effects.
                fn.inherited |= internal
            # A function's own intrinsics are never "inherited" —
            # EM001/EM002/EM004 own the intrinsic reports.
            fn.inherited -= fn.intrinsic


def _witness(program: Program, fn: FunctionNode, effect: str) -> str:
    """Name one callee whose contribution carries ``effect``."""
    for callee in fn.edges:
        node = program.nodes.get(callee)
        if node is not None and effect in _contribution(node):
            return f" (via {node.local_name} at {node.path}:{node.line})"
    return " (via its call graph)"


def evaluate(program: Program) -> list[EffectFinding]:
    """Run EM007–EM011 over the propagated signatures."""
    propagate(program)
    findings: list[EffectFinding] = []

    def add(code: str, fn: FunctionNode, message: str) -> None:
        findings.append(EffectFinding(
            code=code, path=fn.path, line=fn.line,
            message=message, scope=fn.local_name))

    ordered = sorted(program.nodes.values(),
                     key=lambda f: (f.path, f.line))
    for fn in ordered:
        host_only = "HOST_ONLY" in fn.declared
        # EM011: declaration discipline first — bad names and drift.
        for tok in fn.bad_declared:
            add("EM011", fn,
                f"unknown effect {tok!r} in em-effects declaration "
                f"(valid: {', '.join(sorted(EFFECT_NAMES))})")
        for eff in sorted(fn.declared - {"HOST_ONLY"}):
            if eff not in fn.total:
                add("EM011", fn,
                    f"declared effect {eff} is no longer inferred for "
                    f"{fn.local_name} — the declaration drifted; "
                    "delete it so the audit record matches reality")
        if fn.layer in EM010_LAYERS and not host_only:
            for callee in fn.edges:
                node = program.nodes.get(callee)
                if node is not None and "HOST_ONLY" in node.declared:
                    add("EM011", fn,
                        f"counted path {fn.layer}/ calls HOST_ONLY "
                        f"function {node.local_name} "
                        f"({node.path}:{node.line}); host-side "
                        "reporting must stay above the algorithms")
        if host_only:
            continue  # declared host-side: exempt from effect rules
        # EM007: inherited raw I/O in EM001-policed files.
        if (not rules.raw_io_exempt(fn.layer, fn.pkg_relfile)
                and "PHYS_IO" in fn.inherited
                and "PHYS_IO" not in fn.declared):
            add("EM007", fn,
                f"{fn.local_name} reaches raw OS I/O through its "
                f"call chain{_witness(program, fn, 'PHYS_IO')}; "
                "route bytes through the charged Device/EMFile API "
                "or declare the function `# em-effects: HOST_ONLY`")
        # EM008: peek_tuples reachable from core/ algorithm code.
        if (fn.layer in EM008_LAYERS and "FREE_PEEK" in fn.total
                and "FREE_PEEK" not in fn.declared):
            how = ("calls" if "FREE_PEEK" in fn.intrinsic
                   else "reaches")
            add("EM008", fn,
                f"{fn.local_name} {how} peek_tuples(), the uncharged "
                "metadata escape hatch, from core/ algorithm code"
                + ("" if "FREE_PEEK" in fn.intrinsic
                   else _witness(program, fn, "FREE_PEEK"))
                + "; read tuples via the charged scan()/reader() API "
                "or declare `# em-effects: FREE_PEEK -- why`")
        # EM009: observer purity.
        if fn.layer == "obs":
            bad = sorted((fn.total & OBSERVER_FORBIDDEN) - fn.declared)
            if bad:
                add("EM009", fn,
                    f"obs/ function {fn.local_name} has device-"
                    f"visible effects {', '.join(bad)}; observation "
                    "must never move counted bytes — export paths "
                    "need `# em-effects: HOST_ONLY`")
        # EM010: transitive nondeterminism on counted paths.
        if (fn.layer in EM010_LAYERS and "NONDET" in fn.inherited
                and "NONDET" not in fn.declared):
            add("EM010", fn,
                f"{fn.local_name} reaches wall-clock or randomness "
                f"through its call chain"
                f"{_witness(program, fn, 'NONDET')}; counted paths "
                "must stay deterministic for the byte-identical "
                "baseline gate")
    return findings


def signature_table(program: Program) -> dict[str, object]:
    """The full inferred-signature table as a JSON-ready document."""
    functions: dict[str, object] = {}
    effect_counts: dict[str, int] = {
        name: 0 for name in sorted(EFFECT_NAMES | {UNKNOWN})}
    unknown_functions = 0
    for qn in sorted(program.nodes):
        fn = program.nodes[qn]
        total = fn.total
        for eff in total:
            effect_counts[eff] += 1
        if UNKNOWN in total:
            unknown_functions += 1
        entry: dict[str, object] = {
            "path": fn.path,
            "line": fn.line,
            "layer": fn.layer,
            "intrinsic": sorted(fn.intrinsic),
            "inherited": sorted(fn.inherited),
            "effects": sorted(total),
            "declared": sorted(fn.declared),
            "calls": len(fn.edges),
            "unknown_calls": sorted(set(fn.unknown_calls))[:8],
        }
        if fn.justification:
            entry["justification"] = fn.justification
        functions[qn] = entry
    return {
        "schema_version": EFFECTS_SCHEMA_VERSION,
        "functions": functions,
        "summary": {
            "functions": len(program.nodes),
            "with_unknown_calls": unknown_functions,
            "by_effect": effect_counts,
        },
    }


def compact_effect_signatures(table: dict[str, Any]) -> dict[str, Any]:
    """Strip a signature table down to the drift-gate essentials.

    The committed ``effects-baseline.json`` pins, per function, only the
    inferred effect set and the declared absorptions — the pair the CI
    gate compares.  Paths, line numbers and call counts churn with every
    refactor and would make the baseline noisy, so they are dropped.
    """
    return {
        "schema_version": table["schema_version"],
        "signatures": {
            qn: {"effects": list(entry["effects"]),
                 "declared": list(entry["declared"])}
            for qn, entry in table["functions"].items()
        },
    }


def compare_effect_signatures(
        committed: dict[str, Any],
        table: dict[str, Any]) -> tuple[list[str], list[str]]:
    """Diff a committed effects baseline against a fresh signature table.

    Returns ``(failures, notices)``.  A *failure* is the one change the
    gate exists to catch: a function's inferred effect set moved while
    its ``# em-effects:`` declaration stayed put — an undocumented
    behavior change on a counted path.  Everything else (functions
    added, removed, or changed *with* a matching declaration update) is
    a notice: visible in the log, re-pinned by regenerating the
    baseline, but not a build failure.
    """
    current = compact_effect_signatures(table)
    failures: list[str] = []
    notices: list[str] = []
    if committed.get("schema_version") != current["schema_version"]:
        notices.append(
            f"schema version moved "
            f"{committed.get('schema_version')!r} -> "
            f"{current['schema_version']!r}; regenerate the baseline")
    old = committed.get("signatures", {})
    new = current["signatures"]
    for qn in sorted(old.keys() - new.keys()):
        notices.append(
            f"{qn}: removed (was {old[qn].get('effects', [])})")
    for qn in sorted(new.keys() - old.keys()):
        notices.append(f"{qn}: added with effects {new[qn]['effects']}")
    for qn in sorted(old.keys() & new.keys()):
        was, now = old[qn], new[qn]
        if was.get("effects", []) == now["effects"]:
            continue
        change = (f"effects changed {was.get('effects', [])} -> "
                  f"{now['effects']}")
        if was.get("declared", []) == now["declared"]:
            failures.append(
                f"{qn}: {change} without a matching '# em-effects:' "
                f"declaration update; declare the new effect (or fix "
                f"the leak) and regenerate effects-baseline.json")
        else:
            notices.append(f"{qn}: {change} (declaration updated too; "
                           f"regenerate the baseline to re-pin)")
    return failures, notices
