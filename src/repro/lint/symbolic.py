"""The symbolic I/O-cost domain behind *emcost* (EM017–EM021).

Costs are the closed forms the paper states bounds in (Table 1):
sums of monomials over ``N`` (input tuples), ``M`` (memory),
``B`` (block size) and ``OUT`` (emitted results), with fractional
exponents (``sqrt(N^3/M)/B`` for the triangle join) and a ``log``
pseudo-factor for the ``log_{M/B}`` sort terms.  The domain is an
*asymptotic* one: numeric coefficients are dropped at parse time and
``log`` factors are ignored by the comparison, so two costs compare
the way ``Õ``-bounds do in the paper.

Comparison is exact monomial dominance under the model's parameter
chain ``1 ≤ B ≤ M ≤ N`` (with ``OUT ≥ 1`` independent).  Pointwise
exponent comparison would be wrong here — ``N/M = O(N/B)`` only
*because* ``M ≥ B`` — so terms are compared in a transformed basis of
cumulative exponents: for a monomial ``N^a · M^b · B^c · OUT^d`` the
key is ``(a, a+b, a+b+c, d)`` and ``t₂ = O(t₁)`` iff ``key(t₂) ≤
key(t₁)`` componentwise.  (Substituting ``M = N^y``, ``B = N^z`` with
``0 ≤ z ≤ y ≤ 1`` makes the exponent ``a + by + cz``; the cumulative
key is exactly the value of that linear form at the vertices of the
constraint simplex, so the componentwise test is necessary *and*
sufficient.)

Everything here is pure data manipulation: no I/O, no imports beyond
the stdlib, strict-mypy clean like the rest of :mod:`repro.lint`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping

#: The closed variable vocabulary of the cost grammar (the paper's
#: parameters).  Unknown names are a parse error, not a new variable:
#: the planner consumes these expressions and must know every symbol.
COST_VARS = ("N", "M", "B", "OUT")

#: Pseudo-variable for logarithmic factors; its argument is parsed
#: and discarded (``Õ`` hides it), the exponent is kept for display.
LOG = "log"


class CostSyntaxError(ValueError):
    """A cost expression that does not parse or uses unknown names."""


@dataclass(frozen=True)
class Term:
    """One monomial: variable → exponent (zero exponents dropped)."""

    exps: tuple[tuple[str, Fraction], ...]

    @classmethod
    def make(cls, mapping: Mapping[str, Fraction]) -> "Term":
        return cls(tuple(sorted((v, e) for v, e in mapping.items()
                                if e != 0)))

    @classmethod
    def one(cls) -> "Term":
        return cls(())

    @classmethod
    def var(cls, name: str, exp: Fraction = Fraction(1)) -> "Term":
        return cls.make({name: exp})

    def exp(self, name: str) -> Fraction:
        for v, e in self.exps:
            if v == name:
                return e
        return Fraction(0)

    def mul(self, other: "Term") -> "Term":
        merged = dict(self.exps)
        for v, e in other.exps:
            merged[v] = merged.get(v, Fraction(0)) + e
        return Term.make(merged)

    def pow(self, k: Fraction) -> "Term":
        return Term.make({v: e * k for v, e in self.exps})

    @property
    def key(self) -> tuple[Fraction, Fraction, Fraction, Fraction]:
        """The dominance key ``(a, a+b, a+b+c, d)`` (log ignored)."""
        a = self.exp("N")
        b = self.exp("M")
        c = self.exp("B")
        return (a, a + b, a + b + c, self.exp("OUT"))

    def dominates(self, other: "Term") -> bool:
        """``other = O(self)`` under ``1 ≤ B ≤ M ≤ N``, up to logs."""
        return all(o <= s for o, s in zip(other.key, self.key))

    def render(self) -> str:
        num: list[str] = []
        den: list[str] = []
        for v, e in self.exps:
            side, mag = (num, e) if e > 0 else (den, -e)
            if v == LOG:
                side.append(LOG if mag == 1 else f"{LOG}^{_exp(mag)}")
            elif mag == 1:
                side.append(v)
            else:
                side.append(f"{v}^{_exp(mag)}")
        top = "*".join(num) if num else "1"
        if not den:
            return top
        bot = "*".join(den)
        if len(den) > 1:
            bot = f"({bot})"
        return f"{top}/{bot}"


def _exp(e: Fraction) -> str:
    return str(e.numerator) if e.denominator == 1 else f"({e})"


@dataclass(frozen=True)
class Cost:
    """An asymptotic cost: a maximal antichain of monomials, or top.

    ``terms`` never contains a term dominated by another (``add``
    normalizes); the empty set is the zero cost.  ``top`` marks a
    bound the analysis could not derive (the lattice top).
    """

    terms: frozenset[Term] = frozenset()
    top: bool = False

    @property
    def is_zero(self) -> bool:
        return not self.top and not self.terms

    def add(self, other: "Cost") -> "Cost":
        if self.top or other.top:
            return TOP
        return Cost(_normalize(self.terms | other.terms))

    def mul(self, other: "Cost") -> "Cost":
        if self.is_zero or other.is_zero:
            return ZERO
        if self.top or other.top:
            return TOP
        return Cost(_normalize(
            a.mul(b) for a in self.terms for b in other.terms))

    def le(self, other: "Cost") -> bool:
        """``self = Õ(other)``: every term dominated by one of theirs."""
        if other.top:
            return True
        if self.top:
            return False
        return all(any(t.dominates(s) for t in other.terms)
                   for s in self.terms)

    def excess_over(self, other: "Cost") -> list[Term]:
        """The terms of ``self`` that break ``self = Õ(other)``."""
        if other.top or self.top:
            return []
        return sorted((s for s in self.terms
                       if not any(t.dominates(s) for t in other.terms)),
                      key=lambda t: t.key, reverse=True)

    def render(self) -> str:
        if self.top:
            return "unbounded"
        if not self.terms:
            return "0"
        ordered = sorted(self.terms, key=lambda t: (t.key, t.exps),
                         reverse=True)
        return " + ".join(t.render() for t in ordered)


ZERO = Cost()
ONE = Cost(frozenset({Term.one()}))
TOP = Cost(top=True)


def _normalize(terms: Iterable[Term]) -> frozenset[Term]:
    """Keep only dominance-maximal terms; merge same-class terms by
    the larger ``log`` exponent (the safer upper bound)."""
    by_key: dict[tuple[Fraction, Fraction, Fraction, Fraction],
                 Term] = {}
    for t in terms:
        prev = by_key.get(t.key)
        if prev is None or t.exp(LOG) > prev.exp(LOG):
            by_key[t.key] = t
    kept = list(by_key.values())
    maximal = [t for t in kept
               if not any(o is not t and o.dominates(t)
                          and not t.dominates(o) for o in kept)]
    return frozenset(maximal)


def cost_of(name: str) -> Cost:
    return Cost(frozenset({Term.var(name)}))


# ------------------------------------------------------------ parser

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<log>log(?:_\{[^}]*\})?)"
    r"|(?P<sqrt>sqrt)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<num>\d+)"
    r"|(?P<op>\*\*|[+*/^()]))")


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None or m.end() == pos:
            raise CostSyntaxError(
                f"unexpected character {text[pos:].lstrip()[:1]!r} "
                f"in cost expression {text!r}")
        pos = m.end()
        if m.group("log"):
            tokens.append("log")
        elif m.group("sqrt"):
            tokens.append("sqrt")
        elif m.group("name"):
            tokens.append(m.group("name"))
        elif m.group("num"):
            tokens.append(m.group("num"))
        else:
            tokens.append("**" if m.group("op") == "**" else
                          m.group("op"))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.toks = _tokenize(text)
        self.i = 0

    def peek(self) -> str | None:
        return self.toks[self.i] if self.i < len(self.toks) else None

    def take(self) -> str:
        tok = self.peek()
        if tok is None:
            raise CostSyntaxError(
                f"unexpected end of cost expression {self.text!r}")
        self.i += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.take()
        if got != tok:
            raise CostSyntaxError(
                f"expected {tok!r}, got {got!r} in {self.text!r}")

    # expr := term ('+' term)*
    def expr(self) -> Cost:
        out = self.term()
        while self.peek() == "+":
            self.take()
            out = out.add(self.term())
        return out

    # term := factor (('*'|'/') factor)*
    def term(self) -> Cost:
        out = self.factor()
        while self.peek() in ("*", "/"):
            op = self.take()
            rhs = self.factor()
            if op == "*":
                out = out.mul(rhs)
            else:
                out = out.mul(_invert(rhs, self.text))
        return out

    # factor := atom [('^'|'**') exponent]
    def factor(self) -> Cost:
        base = self.atom()
        if self.peek() in ("^", "**"):
            self.take()
            k = self.exponent()
            base = _power(base, k, self.text)
        return base

    def exponent(self) -> Fraction:
        if self.peek() == "(":
            self.take()
            num = self._int()
            self.expect("/")
            den = self._int()
            self.expect(")")
            return Fraction(num, den)
        return Fraction(self._int())

    def _int(self) -> int:
        tok = self.take()
        if not tok.isdigit():
            raise CostSyntaxError(
                f"expected an integer exponent, got {tok!r} "
                f"in {self.text!r}")
        return int(tok)

    def atom(self) -> Cost:
        tok = self.take()
        if tok == "(":
            inner = self.expr()
            self.expect(")")
            return inner
        if tok == "log":
            # The argument is Õ-hidden: parse and drop it when given.
            # A bare ``log`` (the renderer's output) is also accepted,
            # so rendered costs round-trip through the parser.
            if self.peek() == "(":
                self.take()
                self.expr()
                self.expect(")")
            return Cost(frozenset({Term.var(LOG)}))
        if tok == "sqrt":
            self.expect("(")
            inner = self.expr()
            self.expect(")")
            return _power(inner, Fraction(1, 2), self.text)
        if tok.isdigit():
            return ZERO if int(tok) == 0 else ONE
        if tok in COST_VARS:
            return cost_of(tok)
        raise CostSyntaxError(
            f"unknown cost variable {tok!r} in {self.text!r} "
            f"(the vocabulary is {', '.join(COST_VARS)}, log, sqrt)")


def _single(cost: Cost, text: str, what: str) -> Term:
    if cost.top or len(cost.terms) != 1:
        raise CostSyntaxError(
            f"cannot {what} a sum in {text!r}; "
            f"rewrite as a sum of simple monomials")
    return next(iter(cost.terms))


def _invert(cost: Cost, text: str) -> Cost:
    return Cost(frozenset({_single(cost, text, "divide by")
                           .pow(Fraction(-1))}))


def _power(cost: Cost, k: Fraction, text: str) -> Cost:
    if cost.is_zero:
        return ZERO
    return Cost(frozenset({_single(cost, text, "exponentiate")
                           .pow(k)}))


def parse_cost(text: str) -> Cost:
    """Parse a cost expression (raises :class:`CostSyntaxError`)."""
    p = _Parser(text)
    if p.peek() is None:
        raise CostSyntaxError("empty cost expression")
    out = p.expr()
    if p.peek() is not None:
        raise CostSyntaxError(
            f"trailing tokens after cost expression {text!r}")
    return out


def evaluate_cost(cost: Cost, values: Mapping[str, float], *,
                  log_value: float = 1.0) -> float:
    """Numeric value of a cost at a parameter point.

    Coefficients were dropped at parse time, so this is only
    meaningful up to constant factors — exactly what the
    bounds-agreement tests compare (static expression vs
    ``analysis/bounds.py`` formula, ratio bounded both ways).
    """
    if cost.top:
        return float("inf")
    total = 0.0
    for t in cost.terms:
        prod = 1.0
        for v, e in t.exps:
            base = log_value if v == LOG else values[v]
            prod *= float(base) ** float(e)
        total += prod
    return total
