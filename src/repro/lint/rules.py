"""Per-rule detection logic, shared by the single AST pass.

Each ``em0xx_*`` function inspects one node (or one module-level fact
set) and returns ``(code, message)`` findings; the visitor supplies
lexical context (layer, enclosing ``with`` stack, scope).  Keeping
the logic here — separate from the tree walk — means a rule can be
unit-tested against a single node and the registry, rules, and docs
stay in one-to-one correspondence.
"""

from __future__ import annotations

import ast

Finding = tuple[str, str]

#: Names whose call materializes its iterable argument in memory.
MATERIALIZERS = frozenset(
    {"list", "sorted", "set", "dict", "tuple", "frozenset"})

#: Attribute names that yield a charged EM iterator when called.
SCAN_ATTRS = frozenset({"scan", "reader"})

#: Attribute names returning context managers that reconcile counter
#: state on exit (EM005).
CONTEXT_ATTRS = frozenset({"suspend", "span", "phase"})

#: Modules whose import into a counted path breaks determinism (EM004).
NONDETERMINISTIC_MODULES = frozenset({"time", "random", "datetime"})

#: Modules granting raw OS I/O (EM001); builtin ``open`` and
#: ``os.read``/``os.write``/``os.open`` are matched separately.
RAW_IO_MODULES = frozenset({"shutil", "pathlib", "io"})

#: pathlib-style methods that read or write the real filesystem.
RAW_IO_METHODS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"})

#: Layers/files (relative to the ``repro`` package) allowed raw OS
#: I/O: em/ simulates the disk, data/io.py is the CSV bridge, and
#: lint/ itself is host-side tooling that reads the sources it checks.
RAW_IO_EXEMPT_LAYERS = frozenset({"em", "lint"})
RAW_IO_EXEMPT_FILES = frozenset({"data/io.py"})

#: Layers the EM002 materialization rule polices: anywhere EM scans
#: are consumed by algorithm or analysis code.
EM002_LAYERS = frozenset({"core", "query", "analysis"})

#: Layers counted paths live in (EM004).
EM004_LAYERS = frozenset({"core", "em"})

#: Layers the EM006 phase-declaration rule polices.
EM006_LAYERS = frozenset({"core"})

#: The EM003 layering matrix: layer -> banned import prefixes.
LAYERING: dict[str, tuple[str, ...]] = {
    "em": ("repro.core", "repro.query"),
    "core": ("repro.internal",),
    "obs": ("repro.core",),
}

_LAYERING_WHY = {
    "em": "the machine must not depend on the algorithms that run "
          "on it",
    "core": "internal/ holds uncharged in-memory baselines that "
            "would bypass the I/O accounting",
    "obs": "observability must stay passive and never drive the "
           "algorithms it watches",
}


def dotted_name(node: ast.AST) -> str | None:
    """Render a Name/Attribute chain as ``a.b.c``, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def raw_io_exempt(layer: str, pkg_relfile: str) -> bool:
    """EM001 scope test: is this file allowed raw OS I/O?"""
    return (layer in RAW_IO_EXEMPT_LAYERS
            or pkg_relfile in RAW_IO_EXEMPT_FILES)


def em001_import(module: str, layer: str,
                 pkg_relfile: str) -> Finding | None:
    """EM001: imports of raw-I/O-granting modules outside exempt files."""
    top = module.split(".")[0]
    if top in RAW_IO_MODULES and not raw_io_exempt(layer, pkg_relfile):
        return ("EM001",
                f"import of {top!r} grants raw OS I/O outside em/ "
                "and data/io.py; route bytes through the charged "
                "Device/EMFile API")
    return None


def em001_call(node: ast.Call, layer: str,
               pkg_relfile: str) -> Finding | None:
    """EM001: direct raw-I/O call forms (open, os.read/write/open, …)."""
    if raw_io_exempt(layer, pkg_relfile):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return ("EM001",
                "builtin open() performs raw OS I/O; route bytes "
                "through the charged Device/EMFile API (host-side "
                "report writers carry a pragma)")
    if isinstance(func, ast.Attribute):
        dotted = dotted_name(func)
        if dotted in ("os.read", "os.write", "os.open"):
            return ("EM001",
                    f"{dotted}() performs raw OS I/O; route bytes "
                    "through the charged Device/EMFile API")
        if func.attr in RAW_IO_METHODS:
            return ("EM001",
                    f".{func.attr}() performs raw OS I/O; route "
                    "bytes through the charged Device/EMFile API")
    return None


def em003_import(module: str, layer: str) -> Finding | None:
    """EM003: the layering matrix."""
    for prefix in LAYERING.get(layer, ()):
        if module == prefix or module.startswith(prefix + "."):
            return ("EM003",
                    f"{layer}/ imports {module!r}: "
                    f"{_LAYERING_WHY[layer]}")
    return None


def em004_import(module: str, layer: str) -> Finding | None:
    """EM004: nondeterminism sources in counted paths."""
    top = module.split(".")[0]
    if layer in EM004_LAYERS and top in NONDETERMINISTIC_MODULES:
        return ("EM004",
                f"import of {top!r} in counted path {layer}/ — "
                "wall-clock and randomness break the byte-identical "
                "baseline gate")
    return None


def em005_statement(node: ast.Expr) -> Finding | None:
    """EM005: a context-manager factory called and discarded."""
    call = node.value
    if (isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr in CONTEXT_ATTRS):
        return ("EM005",
                f"bare call to .{call.func.attr}() discards its "
                "context manager; use it in a with statement so "
                "__exit__ reconciles the counter state")
    return None


def is_hold(expr: ast.expr) -> bool:
    """Is this ``with`` item a ``…memory.hold(n)`` charge?"""
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "hold")


def is_scan_call(expr: ast.expr) -> bool:
    """Is this expression a charged EM iterator (``.scan()``/``.reader()``)?"""
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in SCAN_ATTRS)


def em002_call(node: ast.Call, layer: str, in_hold: bool
               ) -> Finding | None:
    """EM002: ``list(f.scan())``-style materialization outside a hold."""
    if layer not in EM002_LAYERS or in_hold:
        return None
    if not (isinstance(node.func, ast.Name)
            and node.func.id in MATERIALIZERS):
        return None
    for arg in node.args:
        if is_scan_call(arg):
            break
        if isinstance(arg, ast.GeneratorExp) and any(
                is_scan_call(g.iter) for g in arg.generators):
            break
    else:
        return None
    return ("EM002",
            f"{node.func.id}() materializes an EM scan outside a "
            "MemoryGauge-charged region; wrap it in `with "
            "device.memory.hold(n):` so the memory budget sees it")


def em002_comprehension(node: ast.ListComp | ast.SetComp | ast.DictComp,
                        layer: str, in_hold: bool) -> Finding | None:
    """EM002: a comprehension drawing directly from an EM scan."""
    if layer not in EM002_LAYERS or in_hold:
        return None
    if any(is_scan_call(g.iter) for g in node.generators):
        return (
            "EM002",
            f"{type(node).__name__} over an EM scan outside a "
            "MemoryGauge-charged region; wrap it in `with "
            "device.memory.hold(n):` so the memory budget sees it")
    return None


def em006_cross_check(
        layer: str,
        declared: tuple[str, ...] | None,
        decl_loc: tuple[int, int],
        literals: list[tuple[str, int, int]],
) -> list[tuple[str, str, int, int]]:
    """EM006: literals passed to ``.phase()`` vs the PHASES declaration.

    Returns ``(code, message, line, col)`` tuples; both directions are
    checked — undeclared literals and stale declared-but-unused names.
    """
    if layer not in EM006_LAYERS:
        return []
    out: list[tuple[str, str, int, int]] = []
    if literals and declared is None:
        name, line, col = literals[0]
        out.append(("EM006",
                    f"module passes phase name {name!r} but declares "
                    "no module-level PHASES tuple", line, col))
        return out
    declared_set = set(declared or ())
    used = {name for name, _, _ in literals}
    for name, line, col in literals:
        if name not in declared_set:
            out.append(("EM006",
                        f"phase name {name!r} is not declared in "
                        "this module's PHASES tuple", line, col))
    if declared is not None:
        line, col = decl_loc
        for name in declared:
            if name not in used:
                out.append(("EM006",
                            f"PHASES declares {name!r} but no "
                            ".phase() call in this module uses it "
                            "(stale declaration)", line, col))
    return out
