"""Workloads: random generators and the paper's worst-case constructions."""

from repro.workloads.generators import (cross_pairs, many_to_one,
                                        matching_relation, one_to_many,
                                        onto_mapping, schemas_for,
                                        skewed_instance, uniform_instance)
from repro.workloads.worstcase import (balanced_line_sizes,
                                       condition7_holds,
                                       dumbbell_worstcase_instance,
                                       cross_product_instance,
                                       cross_product_line_instance,
                                       equal_size_packing_instance,
                                       fig3_line3_instance, l5_for_regime,
                                       lollipop_worstcase_instance,
                                       mapping_line_instance,
                                       star_worstcase_instance,
                                       theorem5_domains,
                                       theorem5_line_instance,
                                       unbalanced_l5_instance)

__all__ = [
    "schemas_for", "uniform_instance", "skewed_instance",
    "matching_relation", "one_to_many", "many_to_one", "cross_pairs",
    "onto_mapping",
    "fig3_line3_instance", "cross_product_line_instance",
    "balanced_line_sizes", "star_worstcase_instance",
    "equal_size_packing_instance", "cross_product_instance",
    "unbalanced_l5_instance", "mapping_line_instance", "l5_for_regime",
    "theorem5_domains", "theorem5_line_instance",
    "dumbbell_worstcase_instance", "condition7_holds",
    "lollipop_worstcase_instance",
]
