"""Random workload generators.

Produces instances for correctness testing and average-case
benchmarking: uniform random relations, skew-heavy relations (values
hot enough to exercise the heavy paths of Section 2.3's loaders), and
fully reduced variants (the paper's standing assumption).

All generators return ``(schemas, data)`` pairs of plain dictionaries —
the shape :meth:`repro.data.instance.Instance.from_dicts` and the
internal-memory oracles both consume — with deterministic output for a
given seed.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.query.hypergraph import JoinQuery
from repro.query.reduce import full_reduce

Schemas = dict[str, tuple[str, ...]]
Data = dict[str, list[tuple]]


def schemas_for(query: JoinQuery, *, order: str = "sorted") -> Schemas:
    """Column layouts for a query's relations.

    ``order="sorted"`` lays attributes out alphabetically (the
    convention of all builders here); ``order="chain"`` respects
    ``v``-number order for line-like queries.
    """
    out: Schemas = {}
    for e in query.edge_names:
        attrs = sorted(query.edges[e])
        if order == "chain":
            attrs = sorted(query.edges[e], key=_attr_sort_key)
        out[e] = tuple(attrs)
    return out


def _attr_sort_key(attr: str) -> tuple[int, str]:
    digits = "".join(c for c in attr if c.isdigit())
    return (int(digits) if digits else 0, attr)


def uniform_instance(query: JoinQuery, sizes: Mapping[str, int] | int,
                     domain: int, *, seed: int = 0,
                     reduced: bool = False) -> tuple[Schemas, Data]:
    """Uniform random tuples over ``[0, domain)`` per attribute.

    ``sizes`` is either one size for all relations or per-edge sizes;
    duplicates are rejected (relations are sets), so ``sizes`` must be
    achievable within ``domain ** arity``.  With ``reduced=True`` the
    instance is fully reduced afterwards (sizes then shrink).
    """
    rng = random.Random(seed)
    schemas = schemas_for(query)
    data: Data = {}
    for e, attrs in schemas.items():
        want = sizes if isinstance(sizes, int) else sizes[e]
        capacity = domain ** len(attrs)
        if want > capacity:
            raise ValueError(f"cannot draw {want} distinct tuples from a "
                             f"domain of {capacity} for {e}")
        rows: set[tuple] = set()
        while len(rows) < want:
            rows.add(tuple(rng.randrange(domain) for _ in attrs))
        data[e] = sorted(rows)
    if reduced:
        data = {e: sorted(t) for e, t in
                full_reduce(query, data, schemas).items()}
    return schemas, data


def skewed_instance(query: JoinQuery, sizes: Mapping[str, int] | int,
                    domain: int, *, hot_fraction: float = 0.5,
                    hot_values: int = 2, seed: int = 0,
                    reduced: bool = False) -> tuple[Schemas, Data]:
    """Random tuples where join attributes are skewed toward hot values.

    A ``hot_fraction`` of each relation's tuples take their join
    attribute values from only ``hot_values`` choices, manufacturing
    the heavy values (``≥ M`` occurrences) that drive the heavy-side
    code paths of Algorithms 1 and 2.
    """
    from repro.query.classify import join_attributes

    rng = random.Random(seed)
    joins = join_attributes(query)
    schemas = schemas_for(query)
    data: Data = {}
    for e, attrs in schemas.items():
        want = sizes if isinstance(sizes, int) else sizes[e]
        rows: set[tuple] = set()
        attempts = 0
        while len(rows) < want and attempts < want * 50:
            attempts += 1
            hot = rng.random() < hot_fraction
            row = []
            for a in attrs:
                if a in joins and hot:
                    row.append(rng.randrange(min(hot_values, domain)))
                else:
                    row.append(rng.randrange(domain))
            rows.add(tuple(row))
        data[e] = sorted(rows)
    if reduced:
        data = {e: sorted(t) for e, t in
                full_reduce(query, data, schemas).items()}
    return schemas, data


def matching_relation(n: int, *, offset_left: int = 0,
                      offset_right: int = 0) -> list[tuple]:
    """A one-to-one matching ``{(offL + i, offR + i)}`` of size ``n``."""
    return [(offset_left + i, offset_right + i) for i in range(n)]


def one_to_many(n: int, left_value: int = 0) -> list[tuple]:
    """``n`` tuples fanning out of a single left value."""
    return [(left_value, i) for i in range(n)]


def many_to_one(n: int, right_value: int = 0) -> list[tuple]:
    """``n`` tuples funneling into a single right value."""
    return [(i, right_value) for i in range(n)]


def cross_pairs(n_left: int, n_right: int) -> list[tuple]:
    """The full ``n_left × n_right`` cross product of two domains."""
    return [(i, j) for i in range(n_left) for j in range(n_right)]


def onto_mapping(n_left: int, n_right: int) -> list[tuple]:
    """A surjective many-to-one mapping of size ``n_left`` onto ``n_right``.

    The Section 6.3 constructions use these for the middle relation of
    an unbalanced ``L5`` ("any mapping from dom(v3) onto dom(v4)").
    """
    if n_left < n_right:
        raise ValueError(f"onto mapping needs n_left >= n_right "
                         f"({n_left} < {n_right})")
    return [(i, i % n_right) for i in range(n_left)]
