"""Worst-case instance constructions from the paper's proofs.

Every optimality proof in Sections 5–7 constructs an explicit instance
whose partial join on some subset matches the largest subjoin; these
constructions drive the benchmarks' lower-bound measurements:

* :func:`fig3_line3_instance` — Figure 3: every ``R1`` tuple joins
  every ``R3`` tuple through a single middle tuple, realizing
  ``ψ(R, {e1, e3}) = N1·N3/(MB)`` (the Theorem 1 matching bound);
* :func:`cross_product_line_instance` — the Theorem 5/6 construction:
  each relation is the cross product of its attribute domains, with
  ``N_i = z_i · z_{i+1}``;
* :func:`star_worstcase_instance` — Theorem 4: single-value join
  domains, one-to-many petals, a one-tuple core — the partial join on
  the petals is ``∏ N_i``;
* :func:`equal_size_packing_instance` — Theorem 7: domains of size
  ``N`` on a vertex packing (from the greedy cover's LP duality),
  singleton domains elsewhere, cross-product relations;
* :func:`unbalanced_l5_instance` — Section 6.3: cross products with
  an *onto* middle mapping, feasible exactly when ``N1·N3·N5 < N2·N4``;
* :func:`mapping_line_instance` — the general device behind the
  Appendix A.3 ``L7`` case analysis: per-relation kind (cross product /
  one-to-one / onto / one-to-many) over given domain sizes.

All constructors return ``(schemas, data)``; relation attribute order
is chain order for lines (``(v_i, v_{i+1})``).
"""

from __future__ import annotations

import math
from typing import Literal, Sequence

from repro.query.builders import line_query, star_query
from repro.query.hypergraph import JoinQuery
from repro.workloads.generators import (Data, Schemas, cross_pairs,
                                        one_to_many, onto_mapping)

RelationKind = Literal["cross", "one1", "onto", "fanout"]


def fig3_line3_instance(n1: int, n3: int) -> tuple[Schemas, Data]:
    """Figure 3's ``L3`` lower-bound instance.

    ``dom(v2) = dom(v3) = {0}``: ``R1`` fans ``n1`` unique ``v1`` values
    into the single ``v2`` value, ``R2`` is the lone bridge tuple, and
    ``R3`` fans out to ``n3`` unique ``v4`` values.  The full join (and
    the partial join on ``{e1, e3}``) has ``n1 · n3`` results while
    ``|R2| = 1`` — the instance showing pairwise plans cannot win.
    """
    schemas: Schemas = {"e1": ("v1", "v2"), "e2": ("v2", "v3"),
                        "e3": ("v3", "v4")}
    data: Data = {"e1": [(i, 0) for i in range(n1)],
                  "e2": [(0, 0)],
                  "e3": [(0, j) for j in range(n3)]}
    return schemas, data


def cross_product_line_instance(domain_sizes: Sequence[int]
                                ) -> tuple[Schemas, Data]:
    """Theorem 5/6's construction: ``R_i = dom(v_i) × dom(v_{i+1})``.

    ``domain_sizes[i]`` is ``z_{i+1} = |dom(v_{i+1})|``; relation sizes
    come out as ``N_i = z_i · z_{i+1}``.  Every partial join on an
    independent subset ``S`` has size ``∏_{e∈S} N(e)`` — the equality
    behind Theorem 5 (and, with an interior ``z = 1``, Theorem 6).
    """
    z = list(domain_sizes)
    if len(z) < 3:
        raise ValueError("need at least 3 domain sizes (a 2-line join)")
    if any(s < 1 for s in z):
        raise ValueError("domain sizes must be positive")
    n = len(z) - 1
    schemas: Schemas = {f"e{i}": (f"v{i}", f"v{i + 1}")
                        for i in range(1, n + 1)}
    data: Data = {f"e{i}": cross_pairs(z[i - 1], z[i])
                  for i in range(1, n + 1)}
    return schemas, data


def balanced_line_sizes(domain_sizes: Sequence[int]) -> list[int]:
    """The relation sizes ``N_i = z_i · z_{i+1}`` of the construction."""
    z = list(domain_sizes)
    return [z[i] * z[i + 1] for i in range(len(z) - 1)]


def theorem5_domains(sizes: Sequence[int],
                     z1: int | None = None) -> list[int] | None:
    """Solve Theorem 5's construction: domain sizes from relation sizes.

    The proof sets ``z_i · z_{i+1} = N_i`` and shows the whole chain is
    determined by ``z_1``; the balanced condition makes some choice of
    ``z_1`` feasible (every ``z_i ≥ 1`` and ``z_i ≤ N_{i-1}, N_i``).
    This function performs exactly that search over integer ``z_1``
    (or validates a given one), returning the domain chain or ``None``
    when no feasible integral chain exists — which is how the
    *unbalanced* case manifests concretely (Section 6.3: "the
    construction of R above is not feasible").
    """
    n = len(sizes)
    if n == 0:
        return None

    def chain(z_first: int) -> list[int] | None:
        z = [z_first]
        for i in range(n):
            prev = z[-1]
            if prev <= 0 or sizes[i] % prev != 0:
                return None
            z.append(sizes[i] // prev)
        for i, zi in enumerate(z):
            if zi < 1:
                return None
            if i < n and zi > sizes[i]:
                return None
            if i > 0 and zi > sizes[i - 1]:
                return None
        return z

    if z1 is not None:
        return chain(z1)
    for candidate in range(1, sizes[0] + 1):
        if sizes[0] % candidate:
            continue
        z = chain(candidate)
        if z is not None:
            return z
    return None


def theorem5_line_instance(sizes: Sequence[int]) -> tuple[Schemas, Data]:
    """Theorem 5's worst-case instance for the given relation sizes.

    Raises :class:`ValueError` when the construction is infeasible —
    by Theorem 5 this does not happen on balanced sizes that admit an
    integral domain chain; unbalanced sizes are always rejected.
    """
    z = theorem5_domains(sizes)
    if z is None:
        raise ValueError(
            f"Theorem 5's construction is infeasible for sizes "
            f"{list(sizes)} (unbalanced, or no integral domain chain); "
            f"see Section 6.3 for the unbalanced regime")
    return cross_product_line_instance(z)


def star_worstcase_instance(petal_sizes: Sequence[int]
                            ) -> tuple[Schemas, Data]:
    """Theorem 4's instance: partial join on the petals is ``∏ N_i``.

    Join domains are singletons; petal ``i`` is a one-to-many matching
    from the single ``v_i`` value to ``N_i`` unique values; the core is
    one tuple connecting all the singleton values.
    """
    k = len(petal_sizes)
    if k < 1:
        raise ValueError("need at least one petal")
    q = star_query(k)
    schemas: Schemas = {"e0": tuple(f"v{i}" for i in range(1, k + 1))}
    data: Data = {"e0": [tuple(0 for _ in range(k))]}
    for i, n_i in enumerate(petal_sizes, start=1):
        schemas[f"e{i}"] = (f"v{i}", f"u{i}")
        data[f"e{i}"] = one_to_many(n_i)
    assert set(schemas) == set(q.edges)
    return schemas, data


def equal_size_packing_instance(query: JoinQuery, N: int
                                ) -> tuple[Schemas, Data]:
    """Theorem 7's instance from the greedy cover's vertex packing.

    Packed attributes get domains of size ``N``; every other attribute
    a singleton domain; each relation is the cross product of its
    domains.  Each edge covers at most one packed vertex, so every
    relation has at most ``N`` tuples, while the partial join over the
    cover's ``c`` relations has size ``N^c``.
    """
    from repro.query.covers import greedy_minimum_edge_cover

    packing = set(greedy_minimum_edge_cover(query).packing)
    dom = {a: (N if a in packing else 1) for a in query.attributes}
    return cross_product_instance(query, dom)


def cross_product_instance(query: JoinQuery, dom: dict[str, int]
                           ) -> tuple[Schemas, Data]:
    """Every relation as the cross product of its attributes' domains.

    The workhorse of the Section 7 constructions (lollipop case (ii),
    dumbbell cases, Theorem 7): attribute values are ``range(dom[a])``.
    """
    schemas: Schemas = {}
    data: Data = {}
    for e in query.edge_names:
        attrs = tuple(sorted(query.edges[e], key=_attr_order))
        schemas[e] = attrs
        rows = [()]
        for a in attrs:
            rows = [r + (x,) for r in rows for x in range(dom[a])]
        data[e] = rows
    return schemas, data


def _attr_order(attr: str) -> tuple[int, str]:
    digits = "".join(c for c in attr if c.isdigit())
    return (int(digits) if digits else 0, attr)


def unbalanced_l5_instance(z1: int, z2: int, z3: int, z4: int, z5: int,
                           z6: int) -> tuple[Schemas, Data]:
    """Section 6.3's unbalanced ``L5``: an onto middle mapping.

    ``R2`` and ``R4`` are cross products; ``R3`` is a surjective
    many-to-one mapping ``dom(v3) → dom(v4)`` (``z3 ≥ z4`` required);
    ``R1``/``R5`` are cross products at the ends.  Choosing
    ``z3 = z4 = 1`` against large ``z2``, ``z5`` makes
    ``N1·N3·N5 < N2·N4``.
    """
    if z3 < z4:
        raise ValueError("onto mapping needs |dom(v3)| >= |dom(v4)|")
    schemas: Schemas = {f"e{i}": (f"v{i}", f"v{i + 1}")
                        for i in range(1, 6)}
    data: Data = {
        "e1": cross_pairs(z1, z2),
        "e2": cross_pairs(z2, z3),
        "e3": onto_mapping(z3, z4),
        "e4": cross_pairs(z4, z5),
        "e5": cross_pairs(z5, z6),
    }
    return schemas, data


def mapping_line_instance(domain_sizes: Sequence[int],
                          kinds: Sequence[RelationKind]
                          ) -> tuple[Schemas, Data]:
    """A line instance with a per-relation mapping kind (Appendix A.3).

    ``kinds[i]`` builds ``R_{i+1}`` over ``dom(v_{i+1}) × dom(v_{i+2})``:

    * ``"cross"`` — full cross product;
    * ``"one1"`` — one-to-one matching (requires equal domain sizes);
    * ``"onto"`` — surjective many-to-one (left ≥ right);
    * ``"fanout"`` — one-to-many from each left value in turn
      (right = left * width fan), requires right ≥ left.
    """
    z = list(domain_sizes)
    n = len(z) - 1
    if len(kinds) != n:
        raise ValueError(f"{n} relations but {len(kinds)} kinds")
    schemas: Schemas = {f"e{i}": (f"v{i}", f"v{i + 1}")
                        for i in range(1, n + 1)}
    data: Data = {}
    for i, kind in enumerate(kinds, start=1):
        left, right = z[i - 1], z[i]
        if kind == "cross":
            rows = cross_pairs(left, right)
        elif kind == "one1":
            if left != right:
                raise ValueError(f"one-to-one needs equal domains at e{i}")
            rows = [(x, x) for x in range(left)]
        elif kind == "onto":
            rows = onto_mapping(left, right)
        elif kind == "fanout":
            if right < left:
                raise ValueError(f"fanout needs right >= left at e{i}")
            width = right // left
            rows = [(x, x * width + j) for x in range(left)
                    for j in range(width)]
        else:  # pragma: no cover - guarded by Literal
            raise ValueError(f"unknown kind {kind!r}")
        data[f"e{i}"] = rows
    return schemas, data


def l5_for_regime(total_scale: int, *, balanced: bool
                  ) -> tuple[JoinQuery, Schemas, Data]:
    """A ready-made ``L5`` in the requested balancedness regime.

    Balanced: alternating domain sizes make ``N1·N3·N5 ≥ N2·N4``.
    Unbalanced: tiny middle domains against wide ``N2``/``N4`` flip it.
    """
    s = max(2, total_scale)
    if balanced:
        schemas, data = cross_product_line_instance([s, 1, s, 1, s, 1])
    else:
        # Sizes come out as (s, 2s, 2, 2s, s): N1·N3·N5 = 2s² while
        # N2·N4 = 4s², breaking the balanced condition.
        schemas, data = unbalanced_l5_instance(1, s, 2, 2, s, 1)
    sizes = {e: len(rows) for e, rows in data.items()}
    query = line_query(5, [sizes[f"e{i}"] for i in range(1, 6)])
    return query, schemas, data


def lollipop_worstcase_instance(query: JoinQuery, *, case: str,
                                scale: int) -> tuple[Schemas, Data]:
    """The Section 7.2 lollipop constructions (cases (ii) and (iii)).

    ``case="petals"`` sets ``|dom(v_n)| = scale`` (all other join
    domains singletons) — the case (ii) instance whose partial join on
    ``S ∪ {e_{n+1}}`` is the product of the sizes.  ``case="ends"``
    puts ``scale`` on both the stick attribute and the tip attribute —
    the case (iii) instance.
    """
    from repro.query.shapes import detect_lollipop

    info = detect_lollipop(query)
    if info is None:
        raise ValueError("query is not a lollipop")
    stick_attr = next(iter(query.edges[info.stick]
                           & query.edges[info.core]))
    outer_attr = next(iter(query.edges[info.stick] - {stick_attr}))
    dom = {a: 1 for a in query.attributes}
    for p in info.petals:
        (u,) = query.edges[p] - query.edges[info.core]
        dom[u] = scale
    (tip_u,) = query.edges[info.tip] - {outer_attr}
    dom[tip_u] = scale
    if case == "petals":
        dom[stick_attr] = scale
    elif case == "ends":
        dom[stick_attr] = scale
        dom[outer_attr] = scale
    else:
        raise ValueError(f"unknown lollipop case {case!r}")
    return cross_product_instance(query, dom)


def dumbbell_worstcase_instance(query: JoinQuery, *, case: str,
                                scale: int) -> tuple[Schemas, Data]:
    """The Appendix A.4 dumbbell constructions (simplified cases).

    ``case="independent"`` — A.4 case (i) with ``f = {e_n}``: all join
    domains singletons except the petal unique attributes, making the
    partial join on petals + bar the product of their sizes.
    ``case="cores"`` — the ``f = {e_0, e_m}`` flavour of case (iv):
    the bar attributes get width so both cores grow, exercising the
    balancing condition (7) boundary.
    """
    from repro.query.shapes import detect_dumbbell

    info = detect_dumbbell(query)
    if info is None:
        raise ValueError("query is not a dumbbell")
    dom = {a: 1 for a in query.attributes}
    for p in info.petals1 + info.petals2:
        core = info.core1 if p in info.petals1 else info.core2
        (u,) = query.edges[p] - query.edges[core]
        dom[u] = scale
    if case == "independent":
        pass  # singleton join domains throughout
    elif case == "cores":
        for a in sorted(query.edges[info.bar]):
            dom[a] = 2
    else:
        raise ValueError(f"unknown dumbbell case {case!r}")
    return cross_product_instance(query, dom)


def condition7_holds(query: JoinQuery, sizes: dict[str, int]) -> bool:
    """Section 7.3's condition (7): ``N_i · N_j ≥ N_0 · N_m``.

    ``i`` ranges over the first star's petals and ``j`` over the
    second's; under this condition Algorithm 2 is optimal on the
    dumbbell.
    """
    from repro.query.shapes import detect_dumbbell

    info = detect_dumbbell(query)
    if info is None:
        raise ValueError("query is not a dumbbell")
    core_product = sizes[info.core1] * sizes[info.core2]
    return all(sizes[i] * sizes[j] >= core_product
               for i in info.petals1 for j in info.petals2)


def scaled(value: float) -> int:
    """Round a float size parameter to a usable positive integer."""
    return max(1, int(math.floor(value)))
